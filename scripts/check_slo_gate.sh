#!/usr/bin/env bash
# SLO gate: replays a pinned seeded training run and diffs its latency
# sketch quantiles against the checked-in golden with sketchml_report.
#
# The gate runs under --ignore-times, so measured wall-clock sketches
# (e.g. trainer/compute_latency_seconds) are skipped and only the
# deterministic modeled-time sketches (trainer/push_modeled_seconds) are
# quantile-compared. The diff is sketch-error aware: a quantile counts as
# regressed only when the candidate's value at rank q-2eps exceeds the
# baseline's at q+2eps, i.e. beyond what two KLL sketches with +-eps rank
# error can disagree by. Record-count drift always fails (the per-batch
# record cadence is fixed-seed deterministic).
#
# Usage:
#   scripts/check_slo_gate.sh [TRAIN_BIN] [REPORT_BIN] [GOLDEN]
# Defaults assume a ./build tree. Regenerate the golden after an
# intended behavior change with:
#   scripts/check_slo_gate.sh --regen [TRAIN_BIN]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

# Pinned configuration: keep in sync with the golden snapshot. Three
# epochs so the windowed quantiles retire at least two epoch windows.
run_train() {
  local train_bin="$1" out="$2"
  "$train_bin" --dataset=synthetic --model=lr --codec=sketchml \
    --epochs=3 --workers=3 --servers=2 --threads=2 --seed=7 \
    --obs=on --series-out="$out" >/dev/null
}

golden_default="$repo_root/bench/golden/slo_gate.series.jsonl"

if [[ "${1:-}" == "--regen" ]]; then
  train_bin="${2:-$repo_root/build/tools/sketchml_train}"
  run_train "$train_bin" "$golden_default"
  echo "regenerated $golden_default"
  exit 0
fi

train_bin="${1:-$repo_root/build/tools/sketchml_train}"
report_bin="${2:-$repo_root/build/tools/sketchml_report}"
golden="${3:-$golden_default}"

for bin in "$train_bin" "$report_bin"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 2
  fi
done
if [[ ! -f "$golden" ]]; then
  echo "error: golden snapshot $golden missing" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
candidate="$workdir/candidate.series.jsonl"

run_train "$train_bin" "$candidate"

# --allow-simd-mismatch: like the bench gate, the golden may have been
# regenerated on a machine with a different SIMD level; the compared
# metrics and modeled sketches are dispatch-invariant.
if "$report_bin" --baseline="$golden" --candidate="$candidate" \
    --ignore-times --threshold=0.01 --allow-simd-mismatch; then
  echo "slo gate: PASS"
else
  status=$?
  echo "slo gate: FAIL (sketch quantiles drifted beyond the KLL error" \
    "bound — run scripts/check_slo_gate.sh --regen if the change is" \
    "intended)" >&2
  exit "$status"
fi
