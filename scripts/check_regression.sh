#!/usr/bin/env bash
# Bench-regression gate: replays the pinned training configuration and
# diffs its metrics time-series against the checked-in golden snapshot
# with `sketchml_report --baseline`.
#
# The gate compares only deterministic metrics (--ignore-times skips
# wall-clock ones), so it passes on any machine: for a fixed seed the
# byte counts, message counts, losses, and recovery errors are exact.
# A failure means an intended behavior change (regenerate the golden,
# see below) or a real regression.
#
# Usage:
#   scripts/check_regression.sh [TRAIN_BIN] [REPORT_BIN] [GOLDEN]
# Defaults assume a ./build tree. Regenerate the golden after an
# intended behavior change with:
#   scripts/check_regression.sh --regen [TRAIN_BIN]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

# Pinned configuration: keep in sync with the golden snapshot. Results
# are bit-identical at any --threads, so the thread count is free.
run_train() {
  local train_bin="$1" out="$2"
  "$train_bin" --dataset=synthetic --model=lr --codec=sketchml \
    --epochs=2 --workers=4 --servers=2 --threads=2 --seed=1 \
    --obs=on --series-out="$out" >/dev/null
}

golden_default="$repo_root/bench/golden/regression_gate.series.jsonl"

if [[ "${1:-}" == "--regen" ]]; then
  train_bin="${2:-$repo_root/build/tools/sketchml_train}"
  run_train "$train_bin" "$golden_default"
  echo "regenerated $golden_default"
  exit 0
fi

train_bin="${1:-$repo_root/build/tools/sketchml_train}"
report_bin="${2:-$repo_root/build/tools/sketchml_report}"
golden="${3:-$golden_default}"

for bin in "$train_bin" "$report_bin"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 2
  fi
done
if [[ ! -f "$golden" ]]; then
  echo "error: golden snapshot $golden missing" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
candidate="$workdir/candidate.series.jsonl"

run_train "$train_bin" "$candidate"

# 1% threshold: deterministic metrics should match exactly; the margin
# only absorbs float formatting. --allow-simd-mismatch: the scalar gate
# (SKETCHML_SIMD=off) intentionally replays the golden on a different
# dispatch level — the point is that the metrics still match exactly.
if "$report_bin" --baseline="$golden" --candidate="$candidate" \
    --ignore-times --threshold=0.01 --allow-simd-mismatch; then
  echo "regression gate: PASS"
else
  status=$?
  echo "regression gate: FAIL (deterministic metrics drifted from" \
    "bench/golden — run scripts/check_regression.sh --regen if the" \
    "change is intended)" >&2
  exit "$status"
fi
