#!/usr/bin/env bash
# Checked-suite gate: configure + build the `checked` preset (DCHECK
# contract assertions live) and run its full test suite. Registered as
# the `checked_suite` ctest gate in the default configuration only — the
# checked configuration must not recurse into itself — so a plain
# `ctest` in build/ exercises every invariant assertion locally, not
# just in CI.
#
# Incremental: the preset's binaryDir (build-checked/) is reused across
# runs, so after the first build this is cheap.
#
# Usage: scripts/check_dcheck_suite.sh [JOBS]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"

cd "$repo_root"
cmake --preset checked > /dev/null
cmake --build --preset checked -j "$jobs" > /dev/null
ctest --preset checked -j "$jobs"
