#!/usr/bin/env bash
# Codec micro-benchmark harness: runs bench/micro_codec once on the SIMD
# dispatch default and once forced scalar (SKETCHML_SIMD=off), then merges
# both runs into one JSON report with per-bench speedups.
#
# Usage: scripts/run_micro_codec.sh [--smoke] [BUILD_DIR] [OUT_JSON]
#   --smoke    tiny min-time + reduced filter; used by the ctest gate to
#              prove the harness end to end without timing noise mattering
#   BUILD_DIR  cmake build tree containing bench/micro_codec (default: build)
#   OUT_JSON   report path (default: BENCH_codec.json in the repo root)
#
# The report's keys:
#   dispatch_default  items/s per bench with SKETCHML_SIMD unset (auto)
#   forced_scalar     items/s per bench with SKETCHML_SIMD=off
#   speedup_simd_over_scalar  ratio of the two for every shared bench
# Level-pinned benches (BM_*/scalar, BM_*/avx2) ignore the env var and
# compare the kernels inside a single run; the env-split pair above shows
# what the *dispatch default* delivers end to end.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_codec.json}"
BIN="$BUILD_DIR/bench/micro_codec"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not found or not executable (build the repo first)" >&2
  exit 2
fi
command -v python3 >/dev/null || { echo "error: python3 required" >&2; exit 2; }

MIN_TIME=0.2
FILTER='BM_Encode/|BM_Decode/sketchml|BM_DeltaBinaryKeys|BM_BucketSearch|BM_HashBuckets|BM_DeltaScan|BM_EncodeSketchMlAt'
if [[ "$SMOKE" -eq 1 ]]; then
  MIN_TIME=0.01
  FILTER='BM_BucketSearch|BM_EncodeSketchMlAt|BM_Encode/sketchml'
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

SKETCHML_SIMD=auto "$BIN" \
    --benchmark_filter="$FILTER" --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$TMP/simd.json" --benchmark_out_format=json >&2
SKETCHML_SIMD=off "$BIN" \
    --benchmark_filter="$FILTER" --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$TMP/scalar.json" --benchmark_out_format=json >&2

python3 - "$TMP/simd.json" "$TMP/scalar.json" "$OUT" <<'EOF'
import json
import sys

simd_path, scalar_path, out_path = sys.argv[1:4]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rate = bench.get("items_per_second")
        if rate:
            rates[bench["name"]] = round(rate)
    return doc, rates


simd_doc, simd_rates = load(simd_path)
_, scalar_rates = load(scalar_path)

speedup = {
    name: round(rate / scalar_rates[name], 3)
    for name, rate in simd_rates.items()
    if scalar_rates.get(name)
}

report = {
    "context": simd_doc.get("context", {}),
    "dispatch_default": simd_rates,
    "forced_scalar": scalar_rates,
    "speedup_simd_over_scalar": speedup,
}
with open(out_path, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
EOF
