#!/usr/bin/env bash
# Formatting gate: clang-format --dry-run over every .h/.cc in src/,
# tests/, tools/, and bench/ against the checked-in .clang-format.
#
# Degrades gracefully: this container does not ship clang-format, so a
# missing binary is a SKIP (exit 0 with a notice), not a failure — the
# gate bites in CI, where the lint job installs clang-format. Force a
# hard failure with --require (CI does) if the tool must be present.
#
# Usage:
#   scripts/check_format.sh            # check, skip if tool missing
#   scripts/check_format.sh --require  # check, fail if tool missing
#   scripts/check_format.sh --fix      # rewrite files in place
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
mode="check"
require=0
for arg in "$@"; do
  case "$arg" in
    --fix) mode="fix" ;;
    --require) require=1 ;;
    *) echo "usage: $0 [--fix] [--require]" >&2; exit 2 ;;
  esac
done

# Prefer an unversioned binary; fall back to versioned ones (Debian
# installs clang-format-NN).
clang_format=""
for candidate in clang-format clang-format-19 clang-format-18 \
                 clang-format-17 clang-format-16 clang-format-15 \
                 clang-format-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    clang_format="$candidate"
    break
  fi
done

if [[ -z "$clang_format" ]]; then
  if [[ "$require" -eq 1 ]]; then
    echo "check_format: clang-format not found (required)" >&2
    exit 1
  fi
  echo "check_format: clang-format not installed; skipping format check"
  exit 0
fi

cd "$repo_root"
mapfile -t files < <(find src tests tools bench \
    \( -name '*.h' -o -name '*.cc' \) -type f | sort)

if [[ "$mode" == "fix" ]]; then
  "$clang_format" -i "${files[@]}"
  echo "check_format: reformatted ${#files[@]} files"
  exit 0
fi

if ! "$clang_format" --dry-run -Werror "${files[@]}"; then
  echo "check_format: drift detected; run scripts/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format: ${#files[@]} files clean"
