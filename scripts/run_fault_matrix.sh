#!/usr/bin/env bash
# Fault-tolerance matrix: sweeps the injector's fault probabilities
# through sketchml_train and asserts the recovery protocol holds up:
#
#   * every cell trains to completion (exit 0) and prints the
#     "faults: ..." summary line;
#   * cells that inject message faults actually exercise recovery
#     (non-zero injected count; drop/corrupt cells non-zero retries);
#   * the zero-retry drop cell degrades (lost messages, degraded
#     batches) yet still finishes;
#   * the faults-off control prints no fault summary at all.
#
# The sweep is seeded, so every cell replays the identical fault
# sequence on every machine.
#
# Usage: scripts/run_fault_matrix.sh [TRAIN_BIN]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
train_bin="${1:-$repo_root/build/tools/sketchml_train}"

if [[ ! -x "$train_bin" ]]; then
  echo "error: $train_bin not built" >&2
  exit 2
fi

base_flags=(--dataset=synthetic --model=lr --codec=sketchml
  --epochs=2 --workers=4 --threads=2 --seed=1 --fault-seed=7)

# field <summary-line> <field-name> -> value
field() {
  sed -n "s/.*$2=\([0-9]*\).*/\1/p" <<<"$1"
}

run_cell() {
  local label="$1"
  shift
  local out
  if ! out="$("$train_bin" "${base_flags[@]}" "$@" 2>&1)"; then
    echo "FAIL [$label]: training did not complete" >&2
    echo "$out" >&2
    exit 1
  fi
  grep '^faults:' <<<"$out" || true
}

failures=0
expect() {
  local label="$1" want="$2" value="$3"
  case "$want" in
    nonzero) [[ "$value" -gt 0 ]] || { echo "FAIL [$label]" >&2; failures=1; } ;;
    zero) [[ "$value" -eq 0 ]] || { echo "FAIL [$label]" >&2; failures=1; } ;;
  esac
}

echo "== faults off (control) =="
control="$(run_cell "off")"
if [[ -n "$control" ]]; then
  echo "FAIL [off]: fault summary printed without an active plan" >&2
  failures=1
fi

for p in 0.01 0.05; do
  echo "== drop=$p corrupt=$p retries=3 =="
  summary="$(run_cell "drop+corrupt $p" \
    --fault-drop="$p" --fault-corrupt="$p" --fault-retries=3)"
  echo "$summary"
  expect "drop+corrupt $p: injected" nonzero "$(field "$summary" injected)"
  expect "drop+corrupt $p: retries" nonzero "$(field "$summary" retries)"
done

echo "== drop=0.5 retries=1 (degradation path) =="
summary="$(run_cell "degrade" --fault-drop=0.5 --fault-retries=1)"
echo "$summary"
expect "degrade: lost" nonzero "$(field "$summary" lost)"
expect "degrade: degraded_batches" nonzero \
  "$(field "$summary" degraded_batches)"

echo "== straggle=0.2 crash=0.02 stall=0.1 (timing faults) =="
summary="$(run_cell "timing" \
  --fault-straggle=0.2 --fault-crash=0.02 --fault-stall=0.1)"
echo "$summary"
expect "timing: injected" nonzero "$(field "$summary" injected)"
expect "timing: retries" zero "$(field "$summary" retries)"

if [[ "$failures" -ne 0 ]]; then
  echo "fault matrix: FAIL" >&2
  exit 1
fi
echo "fault matrix: PASS"
