#!/usr/bin/env bash
# Trace-structure gate: replays a pinned fault-injected training run with
# causal tracing on, rebuilds the per-batch span trees with
# `sketchml_trace`, and diffs the *structural* section of its report
# against the checked-in golden JSON.
#
# Structure (span counts per category, batches, pushes, transfer/retry
# attempts, byte totals, orphan/multi-root counts) is deterministic for a
# fixed seed at any --threads; wall-clock attribution is machine-dependent
# and the differ ignores it. The gate therefore fails only when causal
# wiring changes: a span gains/loses a parent, a retry stops being
# recorded, a category is dropped — or when the trace ring overflows
# (sketchml_trace exits 2 on dropped events).
#
# Usage:
#   scripts/check_trace_gate.sh [TRAIN_BIN] [TRACE_BIN] [GOLDEN]
# Defaults assume a ./build tree. Regenerate the golden after an intended
# tracing change with:
#   scripts/check_trace_gate.sh --regen [TRAIN_BIN] [TRACE_BIN]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

# Pinned configuration: keep in sync with the golden snapshot. Ten
# workers with seeded drops + stragglers so retry/backoff spans and
# straggler attribution are exercised, not just the happy path.
run_train() {
  local train_bin="$1" out="$2"
  "$train_bin" --dataset=synthetic --model=lr --codec=sketchml \
    --epochs=2 --workers=10 --servers=2 --threads=2 --seed=1 \
    --crc --fault-seed=7 --fault-drop=0.01 --fault-straggle=0.1 \
    --obs=on --trace-out="$out" >/dev/null
}

golden_default="$repo_root/bench/golden/trace_gate.structural.json"

if [[ "${1:-}" == "--regen" ]]; then
  train_bin="${2:-$repo_root/build/tools/sketchml_train}"
  trace_bin="${3:-$repo_root/build/tools/sketchml_trace}"
  workdir="$(mktemp -d)"
  trap 'rm -rf "$workdir"' EXIT
  run_train "$train_bin" "$workdir/trace.json"
  "$trace_bin" "$workdir/trace.json" --json="$golden_default" --quiet
  echo "regenerated $golden_default"
  exit 0
fi

train_bin="${1:-$repo_root/build/tools/sketchml_train}"
trace_bin="${2:-$repo_root/build/tools/sketchml_trace}"
golden="${3:-$golden_default}"

for bin in "$train_bin" "$trace_bin"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 2
  fi
done
if [[ ! -f "$golden" ]]; then
  echo "error: golden snapshot $golden missing" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
trace="$workdir/trace.json"

run_train "$train_bin" "$trace"

# sketchml_trace itself enforces: no dropped events (exit 2), no orphan
# spans or multi-root batches (exit 1), structural diff clean (exit 1).
if "$trace_bin" "$trace" --diff-golden="$golden" --quiet; then
  echo "trace gate: PASS"
else
  status=$?
  echo "trace gate: FAIL (causal trace structure drifted from" \
    "bench/golden — run scripts/check_trace_gate.sh --regen if the" \
    "change is intended)" >&2
  exit "$status"
fi
