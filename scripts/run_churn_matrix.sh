#!/usr/bin/env bash
# Elastic-membership matrix: seeded churn scenarios through
# sketchml_train, asserting the reconfiguration + checkpoint protocol
# holds up end to end:
#
#   * the churn-off control prints no membership summary at all;
#   * a seeded join/leave schedule replays bit-identically across
#     --threads (only the measured sim-seconds column may differ);
#   * permanent departures shrink the fleet and re-partition the server
#     shards (reconfigs >= 1 with non-zero handoff bytes);
#   * the below-quorum crash scenario fails without checkpoints and
#     completes with rollbacks once --membership-checkpoint-every is on;
#   * an unreachable quorum/scale-down combination is rejected up front
#     with an actionable error.
#
# Every cell is seeded, so the schedule replays identically on every
# machine.
#
# Usage: scripts/run_churn_matrix.sh [TRAIN_BIN]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
train_bin="${1:-$repo_root/build/tools/sketchml_train}"

if [[ ! -x "$train_bin" ]]; then
  echo "error: $train_bin not built" >&2
  exit 2
fi

base_flags=(--dataset=synthetic --model=lr --codec=sketchml
  --epochs=2 --workers=4 --seed=1)

# field <summary-line> <field-name> -> value
field() {
  sed -n "s/.*$2=\([0-9]*\).*/\1/p" <<<"$1"
}

failures=0
expect_nonzero() {
  local label="$1" value="$2"
  [[ -n "$value" && "$value" -gt 0 ]] ||
    { echo "FAIL [$label]: expected nonzero, got '${value:-}'" >&2; failures=1; }
}

echo "== churn off (control) =="
control="$("$train_bin" "${base_flags[@]}" --threads=2 2>&1)"
if grep -q '^membership:' <<<"$control"; then
  echo "FAIL [off]: membership summary printed without an active plan" >&2
  failures=1
fi

echo "== join/leave churn: replay determinism across --threads =="
churn_flags=(--membership-seed=7 --membership-join=0.05
  --membership-leave=0.05 --membership-min-workers=2)
serial="$("$train_bin" "${base_flags[@]}" --threads=1 "${churn_flags[@]}" 2>&1)"
threaded="$("$train_bin" "${base_flags[@]}" --threads=3 "${churn_flags[@]}" 2>&1)"
# Column 2 of the epoch table is measured sim-seconds and the dataset
# banner names the thread count; every other field (bytes, losses, and
# the membership summary) must replay exactly.
strip_times() { grep -v '^dataset=' <<<"$1" | awk '{$2=""; print}'; }
if ! diff <(strip_times "$serial") <(strip_times "$threaded") >/dev/null; then
  echo "FAIL [replay]: --threads=1 and --threads=3 runs diverged" >&2
  diff <(strip_times "$serial") <(strip_times "$threaded") >&2 || true
  failures=1
fi
summary="$(grep '^membership:' <<<"$serial")"
echo "$summary"
expect_nonzero "replay: churn events" \
  "$(( $(field "$summary" joins) + $(field "$summary" leaves) ))"

echo "== departures: shard re-partitioning =="
summary="$("$train_bin" "${base_flags[@]}" --threads=2 --epochs=4 \
  --servers=4 --membership-seed=1 --membership-depart=0.03 \
  --membership-min-workers=1 2>&1 | grep '^membership:')"
echo "$summary"
expect_nonzero "departs" "$(field "$summary" departs)"
expect_nonzero "reconfigs" "$(field "$summary" reconfigs)"
expect_nonzero "handoff_bytes" "$(field "$summary" handoff_bytes)"

echo "== below-quorum crash: terminal without checkpoints =="
crash_flags=(--epochs=5 --threads=1 --fault-seed=1 --fault-crash=0.06
  --min-quorum=3)
if out="$("$train_bin" "${base_flags[@]}" --epochs=5 --threads=1 \
    --fault-seed=1 --fault-crash=0.06 --min-quorum=3 2>&1)"; then
  echo "FAIL [terminal]: run completed without checkpoints" >&2
  failures=1
elif ! grep -qi 'unavailable' <<<"$out"; then
  echo "FAIL [terminal]: failure was not a quorum Unavailable" >&2
  echo "$out" >&2
  failures=1
fi

echo "== below-quorum crash: rollback-and-retry with checkpoints =="
if ! out="$("$train_bin" "${base_flags[@]}" "${crash_flags[@]}" \
    --membership-checkpoint-every=1 --membership-max-rollbacks=5 2>&1)"; then
  echo "FAIL [rollback]: checkpointed run did not complete" >&2
  echo "$out" >&2
  failures=1
else
  summary="$(grep '^membership:' <<<"$out")"
  echo "$summary"
  expect_nonzero "rollbacks" "$(field "$summary" rollbacks)"
fi

echo "== validation: quorum unreachable after scale-down is rejected =="
if out="$("$train_bin" "${base_flags[@]}" --membership-depart=0.1 \
    --membership-min-workers=1 --min-quorum=3 2>&1)"; then
  echo "FAIL [validate]: unreachable quorum config was accepted" >&2
  failures=1
elif ! grep -q 'can never be met' <<<"$out"; then
  echo "FAIL [validate]: missing the scale-down quorum diagnostic" >&2
  echo "$out" >&2
  failures=1
fi

if [[ "$failures" -ne 0 ]]; then
  echo "churn matrix: FAIL" >&2
  exit 1
fi
echo "churn matrix: PASS"
