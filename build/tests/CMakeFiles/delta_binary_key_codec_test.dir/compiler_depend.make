# Empty compiler generated dependencies file for delta_binary_key_codec_test.
# This may be replaced when dependencies are built.
