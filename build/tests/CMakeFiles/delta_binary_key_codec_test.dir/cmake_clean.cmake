file(REMOVE_RECURSE
  "CMakeFiles/delta_binary_key_codec_test.dir/delta_binary_key_codec_test.cc.o"
  "CMakeFiles/delta_binary_key_codec_test.dir/delta_binary_key_codec_test.cc.o.d"
  "delta_binary_key_codec_test"
  "delta_binary_key_codec_test.pdb"
  "delta_binary_key_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_binary_key_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
