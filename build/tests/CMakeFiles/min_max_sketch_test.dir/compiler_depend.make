# Empty compiler generated dependencies file for min_max_sketch_test.
# This may be replaced when dependencies are built.
