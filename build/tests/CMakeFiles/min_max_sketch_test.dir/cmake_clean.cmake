file(REMOVE_RECURSE
  "CMakeFiles/min_max_sketch_test.dir/min_max_sketch_test.cc.o"
  "CMakeFiles/min_max_sketch_test.dir/min_max_sketch_test.cc.o.d"
  "min_max_sketch_test"
  "min_max_sketch_test.pdb"
  "min_max_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_max_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
