# Empty compiler generated dependencies file for lossless_test.
# This may be replaced when dependencies are built.
