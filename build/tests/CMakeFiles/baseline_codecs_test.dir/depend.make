# Empty dependencies file for baseline_codecs_test.
# This may be replaced when dependencies are built.
