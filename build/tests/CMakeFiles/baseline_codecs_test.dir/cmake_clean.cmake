file(REMOVE_RECURSE
  "CMakeFiles/baseline_codecs_test.dir/baseline_codecs_test.cc.o"
  "CMakeFiles/baseline_codecs_test.dir/baseline_codecs_test.cc.o.d"
  "baseline_codecs_test"
  "baseline_codecs_test.pdb"
  "baseline_codecs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_codecs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
