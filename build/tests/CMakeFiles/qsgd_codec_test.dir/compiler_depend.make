# Empty compiler generated dependencies file for qsgd_codec_test.
# This may be replaced when dependencies are built.
