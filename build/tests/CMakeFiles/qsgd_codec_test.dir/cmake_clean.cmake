file(REMOVE_RECURSE
  "CMakeFiles/qsgd_codec_test.dir/qsgd_codec_test.cc.o"
  "CMakeFiles/qsgd_codec_test.dir/qsgd_codec_test.cc.o.d"
  "qsgd_codec_test"
  "qsgd_codec_test.pdb"
  "qsgd_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsgd_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
