file(REMOVE_RECURSE
  "CMakeFiles/grouped_min_max_sketch_test.dir/grouped_min_max_sketch_test.cc.o"
  "CMakeFiles/grouped_min_max_sketch_test.dir/grouped_min_max_sketch_test.cc.o.d"
  "grouped_min_max_sketch_test"
  "grouped_min_max_sketch_test.pdb"
  "grouped_min_max_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_min_max_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
