# Empty dependencies file for grouped_min_max_sketch_test.
# This may be replaced when dependencies are built.
