file(REMOVE_RECURSE
  "CMakeFiles/sketchml_codec_test.dir/sketchml_codec_test.cc.o"
  "CMakeFiles/sketchml_codec_test.dir/sketchml_codec_test.cc.o.d"
  "sketchml_codec_test"
  "sketchml_codec_test.pdb"
  "sketchml_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchml_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
