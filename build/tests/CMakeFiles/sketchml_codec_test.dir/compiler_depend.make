# Empty compiler generated dependencies file for sketchml_codec_test.
# This may be replaced when dependencies are built.
