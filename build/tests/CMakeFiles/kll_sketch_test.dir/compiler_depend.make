# Empty compiler generated dependencies file for kll_sketch_test.
# This may be replaced when dependencies are built.
