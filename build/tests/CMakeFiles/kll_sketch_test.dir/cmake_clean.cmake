file(REMOVE_RECURSE
  "CMakeFiles/kll_sketch_test.dir/kll_sketch_test.cc.o"
  "CMakeFiles/kll_sketch_test.dir/kll_sketch_test.cc.o.d"
  "kll_sketch_test"
  "kll_sketch_test.pdb"
  "kll_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kll_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
