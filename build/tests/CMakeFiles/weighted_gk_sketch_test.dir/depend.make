# Empty dependencies file for weighted_gk_sketch_test.
# This may be replaced when dependencies are built.
