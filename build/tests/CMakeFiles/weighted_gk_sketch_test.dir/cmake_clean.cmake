file(REMOVE_RECURSE
  "CMakeFiles/weighted_gk_sketch_test.dir/weighted_gk_sketch_test.cc.o"
  "CMakeFiles/weighted_gk_sketch_test.dir/weighted_gk_sketch_test.cc.o.d"
  "weighted_gk_sketch_test"
  "weighted_gk_sketch_test.pdb"
  "weighted_gk_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_gk_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
