# Empty dependencies file for error_feedback_test.
# This may be replaced when dependencies are built.
