file(REMOVE_RECURSE
  "CMakeFiles/error_feedback_test.dir/error_feedback_test.cc.o"
  "CMakeFiles/error_feedback_test.dir/error_feedback_test.cc.o.d"
  "error_feedback_test"
  "error_feedback_test.pdb"
  "error_feedback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_feedback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
