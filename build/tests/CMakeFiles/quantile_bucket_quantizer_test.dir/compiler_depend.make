# Empty compiler generated dependencies file for quantile_bucket_quantizer_test.
# This may be replaced when dependencies are built.
