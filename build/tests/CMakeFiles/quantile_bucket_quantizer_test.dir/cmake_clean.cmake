file(REMOVE_RECURSE
  "CMakeFiles/quantile_bucket_quantizer_test.dir/quantile_bucket_quantizer_test.cc.o"
  "CMakeFiles/quantile_bucket_quantizer_test.dir/quantile_bucket_quantizer_test.cc.o.d"
  "quantile_bucket_quantizer_test"
  "quantile_bucket_quantizer_test.pdb"
  "quantile_bucket_quantizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantile_bucket_quantizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
