# Empty dependencies file for neural_net.
# This may be replaced when dependencies are built.
