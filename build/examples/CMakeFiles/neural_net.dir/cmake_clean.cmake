file(REMOVE_RECURSE
  "CMakeFiles/neural_net.dir/neural_net.cpp.o"
  "CMakeFiles/neural_net.dir/neural_net.cpp.o.d"
  "neural_net"
  "neural_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
