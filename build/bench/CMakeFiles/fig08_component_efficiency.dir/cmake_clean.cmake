file(REMOVE_RECURSE
  "CMakeFiles/fig08_component_efficiency.dir/fig08_component_efficiency.cc.o"
  "CMakeFiles/fig08_component_efficiency.dir/fig08_component_efficiency.cc.o.d"
  "fig08_component_efficiency"
  "fig08_component_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_component_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
