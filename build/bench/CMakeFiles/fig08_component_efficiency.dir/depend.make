# Empty dependencies file for fig08_component_efficiency.
# This may be replaced when dependencies are built.
