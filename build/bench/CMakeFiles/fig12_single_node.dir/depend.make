# Empty dependencies file for fig12_single_node.
# This may be replaced when dependencies are built.
