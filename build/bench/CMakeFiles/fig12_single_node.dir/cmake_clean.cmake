file(REMOVE_RECURSE
  "CMakeFiles/fig12_single_node.dir/fig12_single_node.cc.o"
  "CMakeFiles/fig12_single_node.dir/fig12_single_node.cc.o.d"
  "fig12_single_node"
  "fig12_single_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_single_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
