# Empty compiler generated dependencies file for fig04_gradient_distribution.
# This may be replaced when dependencies are built.
