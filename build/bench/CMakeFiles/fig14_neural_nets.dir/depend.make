# Empty dependencies file for fig14_neural_nets.
# This may be replaced when dependencies are built.
