file(REMOVE_RECURSE
  "CMakeFiles/fig14_neural_nets.dir/fig14_neural_nets.cc.o"
  "CMakeFiles/fig14_neural_nets.dir/fig14_neural_nets.cc.o.d"
  "fig14_neural_nets"
  "fig14_neural_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_neural_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
