file(REMOVE_RECURSE
  "CMakeFiles/ext_ps_sharding.dir/ext_ps_sharding.cc.o"
  "CMakeFiles/ext_ps_sharding.dir/ext_ps_sharding.cc.o.d"
  "ext_ps_sharding"
  "ext_ps_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ps_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
