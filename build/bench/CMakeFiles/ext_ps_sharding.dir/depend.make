# Empty dependencies file for ext_ps_sharding.
# This may be replaced when dependencies are built.
