# Empty compiler generated dependencies file for table4_weight_types.
# This may be replaced when dependencies are built.
