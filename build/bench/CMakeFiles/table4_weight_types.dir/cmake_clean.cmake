file(REMOVE_RECURSE
  "CMakeFiles/table4_weight_types.dir/table4_weight_types.cc.o"
  "CMakeFiles/table4_weight_types.dir/table4_weight_types.cc.o.d"
  "table4_weight_types"
  "table4_weight_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_weight_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
