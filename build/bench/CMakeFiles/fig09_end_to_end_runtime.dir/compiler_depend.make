# Empty compiler generated dependencies file for fig09_end_to_end_runtime.
# This may be replaced when dependencies are built.
