file(REMOVE_RECURSE
  "CMakeFiles/fig09_end_to_end_runtime.dir/fig09_end_to_end_runtime.cc.o"
  "CMakeFiles/fig09_end_to_end_runtime.dir/fig09_end_to_end_runtime.cc.o.d"
  "fig09_end_to_end_runtime"
  "fig09_end_to_end_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_end_to_end_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
