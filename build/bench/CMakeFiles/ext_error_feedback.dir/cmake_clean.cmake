file(REMOVE_RECURSE
  "CMakeFiles/ext_error_feedback.dir/ext_error_feedback.cc.o"
  "CMakeFiles/ext_error_feedback.dir/ext_error_feedback.cc.o.d"
  "ext_error_feedback"
  "ext_error_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_error_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
