# Empty compiler generated dependencies file for ext_error_feedback.
# This may be replaced when dependencies are built.
