# Empty dependencies file for sketchml_train.
# This may be replaced when dependencies are built.
