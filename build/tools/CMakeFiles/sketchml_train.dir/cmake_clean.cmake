file(REMOVE_RECURSE
  "CMakeFiles/sketchml_train.dir/sketchml_train.cc.o"
  "CMakeFiles/sketchml_train.dir/sketchml_train.cc.o.d"
  "sketchml_train"
  "sketchml_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchml_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
