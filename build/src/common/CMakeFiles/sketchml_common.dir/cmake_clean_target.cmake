file(REMOVE_RECURSE
  "libsketchml_common.a"
)
