file(REMOVE_RECURSE
  "CMakeFiles/sketchml_common.dir/byte_buffer.cc.o"
  "CMakeFiles/sketchml_common.dir/byte_buffer.cc.o.d"
  "CMakeFiles/sketchml_common.dir/crc32.cc.o"
  "CMakeFiles/sketchml_common.dir/crc32.cc.o.d"
  "CMakeFiles/sketchml_common.dir/flags.cc.o"
  "CMakeFiles/sketchml_common.dir/flags.cc.o.d"
  "CMakeFiles/sketchml_common.dir/histogram.cc.o"
  "CMakeFiles/sketchml_common.dir/histogram.cc.o.d"
  "CMakeFiles/sketchml_common.dir/logging.cc.o"
  "CMakeFiles/sketchml_common.dir/logging.cc.o.d"
  "CMakeFiles/sketchml_common.dir/murmur_hash.cc.o"
  "CMakeFiles/sketchml_common.dir/murmur_hash.cc.o.d"
  "CMakeFiles/sketchml_common.dir/random.cc.o"
  "CMakeFiles/sketchml_common.dir/random.cc.o.d"
  "CMakeFiles/sketchml_common.dir/status.cc.o"
  "CMakeFiles/sketchml_common.dir/status.cc.o.d"
  "CMakeFiles/sketchml_common.dir/stopwatch.cc.o"
  "CMakeFiles/sketchml_common.dir/stopwatch.cc.o.d"
  "libsketchml_common.a"
  "libsketchml_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchml_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
