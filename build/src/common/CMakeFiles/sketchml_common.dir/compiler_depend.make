# Empty compiler generated dependencies file for sketchml_common.
# This may be replaced when dependencies are built.
