file(REMOVE_RECURSE
  "libsketchml_ml.a"
)
