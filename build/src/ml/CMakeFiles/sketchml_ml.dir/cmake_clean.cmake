file(REMOVE_RECURSE
  "CMakeFiles/sketchml_ml.dir/csr_matrix.cc.o"
  "CMakeFiles/sketchml_ml.dir/csr_matrix.cc.o.d"
  "CMakeFiles/sketchml_ml.dir/dataset.cc.o"
  "CMakeFiles/sketchml_ml.dir/dataset.cc.o.d"
  "CMakeFiles/sketchml_ml.dir/gradient.cc.o"
  "CMakeFiles/sketchml_ml.dir/gradient.cc.o.d"
  "CMakeFiles/sketchml_ml.dir/loss.cc.o"
  "CMakeFiles/sketchml_ml.dir/loss.cc.o.d"
  "CMakeFiles/sketchml_ml.dir/metrics.cc.o"
  "CMakeFiles/sketchml_ml.dir/metrics.cc.o.d"
  "CMakeFiles/sketchml_ml.dir/mlp.cc.o"
  "CMakeFiles/sketchml_ml.dir/mlp.cc.o.d"
  "CMakeFiles/sketchml_ml.dir/optimizer.cc.o"
  "CMakeFiles/sketchml_ml.dir/optimizer.cc.o.d"
  "CMakeFiles/sketchml_ml.dir/synthetic.cc.o"
  "CMakeFiles/sketchml_ml.dir/synthetic.cc.o.d"
  "libsketchml_ml.a"
  "libsketchml_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchml_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
