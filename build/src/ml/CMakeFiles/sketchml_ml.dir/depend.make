# Empty dependencies file for sketchml_ml.
# This may be replaced when dependencies are built.
