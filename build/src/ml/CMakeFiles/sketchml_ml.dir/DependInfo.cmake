
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/csr_matrix.cc" "src/ml/CMakeFiles/sketchml_ml.dir/csr_matrix.cc.o" "gcc" "src/ml/CMakeFiles/sketchml_ml.dir/csr_matrix.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/sketchml_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/sketchml_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/gradient.cc" "src/ml/CMakeFiles/sketchml_ml.dir/gradient.cc.o" "gcc" "src/ml/CMakeFiles/sketchml_ml.dir/gradient.cc.o.d"
  "/root/repo/src/ml/loss.cc" "src/ml/CMakeFiles/sketchml_ml.dir/loss.cc.o" "gcc" "src/ml/CMakeFiles/sketchml_ml.dir/loss.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/sketchml_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/sketchml_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/sketchml_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/sketchml_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/ml/CMakeFiles/sketchml_ml.dir/optimizer.cc.o" "gcc" "src/ml/CMakeFiles/sketchml_ml.dir/optimizer.cc.o.d"
  "/root/repo/src/ml/synthetic.cc" "src/ml/CMakeFiles/sketchml_ml.dir/synthetic.cc.o" "gcc" "src/ml/CMakeFiles/sketchml_ml.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketchml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
