# Empty dependencies file for sketchml_core.
# This may be replaced when dependencies are built.
