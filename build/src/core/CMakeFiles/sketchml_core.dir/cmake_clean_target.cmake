file(REMOVE_RECURSE
  "libsketchml_core.a"
)
