file(REMOVE_RECURSE
  "CMakeFiles/sketchml_core.dir/codec_factory.cc.o"
  "CMakeFiles/sketchml_core.dir/codec_factory.cc.o.d"
  "CMakeFiles/sketchml_core.dir/sketchml_codec.cc.o"
  "CMakeFiles/sketchml_core.dir/sketchml_codec.cc.o.d"
  "CMakeFiles/sketchml_core.dir/sketchml_config.cc.o"
  "CMakeFiles/sketchml_core.dir/sketchml_config.cc.o.d"
  "libsketchml_core.a"
  "libsketchml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
