
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/count_min_sketch.cc" "src/sketch/CMakeFiles/sketchml_sketch.dir/count_min_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/sketchml_sketch.dir/count_min_sketch.cc.o.d"
  "/root/repo/src/sketch/gk_sketch.cc" "src/sketch/CMakeFiles/sketchml_sketch.dir/gk_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/sketchml_sketch.dir/gk_sketch.cc.o.d"
  "/root/repo/src/sketch/grouped_min_max_sketch.cc" "src/sketch/CMakeFiles/sketchml_sketch.dir/grouped_min_max_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/sketchml_sketch.dir/grouped_min_max_sketch.cc.o.d"
  "/root/repo/src/sketch/kll_sketch.cc" "src/sketch/CMakeFiles/sketchml_sketch.dir/kll_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/sketchml_sketch.dir/kll_sketch.cc.o.d"
  "/root/repo/src/sketch/min_max_sketch.cc" "src/sketch/CMakeFiles/sketchml_sketch.dir/min_max_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/sketchml_sketch.dir/min_max_sketch.cc.o.d"
  "/root/repo/src/sketch/quantile_sketch.cc" "src/sketch/CMakeFiles/sketchml_sketch.dir/quantile_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/sketchml_sketch.dir/quantile_sketch.cc.o.d"
  "/root/repo/src/sketch/weighted_gk_sketch.cc" "src/sketch/CMakeFiles/sketchml_sketch.dir/weighted_gk_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/sketchml_sketch.dir/weighted_gk_sketch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketchml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
