file(REMOVE_RECURSE
  "libsketchml_sketch.a"
)
