# Empty dependencies file for sketchml_sketch.
# This may be replaced when dependencies are built.
