file(REMOVE_RECURSE
  "CMakeFiles/sketchml_sketch.dir/count_min_sketch.cc.o"
  "CMakeFiles/sketchml_sketch.dir/count_min_sketch.cc.o.d"
  "CMakeFiles/sketchml_sketch.dir/gk_sketch.cc.o"
  "CMakeFiles/sketchml_sketch.dir/gk_sketch.cc.o.d"
  "CMakeFiles/sketchml_sketch.dir/grouped_min_max_sketch.cc.o"
  "CMakeFiles/sketchml_sketch.dir/grouped_min_max_sketch.cc.o.d"
  "CMakeFiles/sketchml_sketch.dir/kll_sketch.cc.o"
  "CMakeFiles/sketchml_sketch.dir/kll_sketch.cc.o.d"
  "CMakeFiles/sketchml_sketch.dir/min_max_sketch.cc.o"
  "CMakeFiles/sketchml_sketch.dir/min_max_sketch.cc.o.d"
  "CMakeFiles/sketchml_sketch.dir/quantile_sketch.cc.o"
  "CMakeFiles/sketchml_sketch.dir/quantile_sketch.cc.o.d"
  "CMakeFiles/sketchml_sketch.dir/weighted_gk_sketch.cc.o"
  "CMakeFiles/sketchml_sketch.dir/weighted_gk_sketch.cc.o.d"
  "libsketchml_sketch.a"
  "libsketchml_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchml_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
