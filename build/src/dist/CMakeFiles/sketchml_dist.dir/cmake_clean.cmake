file(REMOVE_RECURSE
  "CMakeFiles/sketchml_dist.dir/stats.cc.o"
  "CMakeFiles/sketchml_dist.dir/stats.cc.o.d"
  "CMakeFiles/sketchml_dist.dir/trainer.cc.o"
  "CMakeFiles/sketchml_dist.dir/trainer.cc.o.d"
  "libsketchml_dist.a"
  "libsketchml_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchml_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
