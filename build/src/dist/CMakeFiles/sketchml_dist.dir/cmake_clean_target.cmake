file(REMOVE_RECURSE
  "libsketchml_dist.a"
)
