
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/stats.cc" "src/dist/CMakeFiles/sketchml_dist.dir/stats.cc.o" "gcc" "src/dist/CMakeFiles/sketchml_dist.dir/stats.cc.o.d"
  "/root/repo/src/dist/trainer.cc" "src/dist/CMakeFiles/sketchml_dist.dir/trainer.cc.o" "gcc" "src/dist/CMakeFiles/sketchml_dist.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/sketchml_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sketchml_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sketchml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/sketchml_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
