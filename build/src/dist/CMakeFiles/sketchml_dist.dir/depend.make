# Empty dependencies file for sketchml_dist.
# This may be replaced when dependencies are built.
