# Empty dependencies file for sketchml_compress.
# This may be replaced when dependencies are built.
