file(REMOVE_RECURSE
  "CMakeFiles/sketchml_compress.dir/checksummed_codec.cc.o"
  "CMakeFiles/sketchml_compress.dir/checksummed_codec.cc.o.d"
  "CMakeFiles/sketchml_compress.dir/codec.cc.o"
  "CMakeFiles/sketchml_compress.dir/codec.cc.o.d"
  "CMakeFiles/sketchml_compress.dir/delta_binary_key_codec.cc.o"
  "CMakeFiles/sketchml_compress.dir/delta_binary_key_codec.cc.o.d"
  "CMakeFiles/sketchml_compress.dir/error_feedback_codec.cc.o"
  "CMakeFiles/sketchml_compress.dir/error_feedback_codec.cc.o.d"
  "CMakeFiles/sketchml_compress.dir/lossless.cc.o"
  "CMakeFiles/sketchml_compress.dir/lossless.cc.o.d"
  "CMakeFiles/sketchml_compress.dir/one_bit_codec.cc.o"
  "CMakeFiles/sketchml_compress.dir/one_bit_codec.cc.o.d"
  "CMakeFiles/sketchml_compress.dir/qsgd_codec.cc.o"
  "CMakeFiles/sketchml_compress.dir/qsgd_codec.cc.o.d"
  "CMakeFiles/sketchml_compress.dir/quantile_bucket_quantizer.cc.o"
  "CMakeFiles/sketchml_compress.dir/quantile_bucket_quantizer.cc.o.d"
  "CMakeFiles/sketchml_compress.dir/raw_codec.cc.o"
  "CMakeFiles/sketchml_compress.dir/raw_codec.cc.o.d"
  "CMakeFiles/sketchml_compress.dir/zipml_codec.cc.o"
  "CMakeFiles/sketchml_compress.dir/zipml_codec.cc.o.d"
  "libsketchml_compress.a"
  "libsketchml_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketchml_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
