file(REMOVE_RECURSE
  "libsketchml_compress.a"
)
