
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/checksummed_codec.cc" "src/compress/CMakeFiles/sketchml_compress.dir/checksummed_codec.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/checksummed_codec.cc.o.d"
  "/root/repo/src/compress/codec.cc" "src/compress/CMakeFiles/sketchml_compress.dir/codec.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/codec.cc.o.d"
  "/root/repo/src/compress/delta_binary_key_codec.cc" "src/compress/CMakeFiles/sketchml_compress.dir/delta_binary_key_codec.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/delta_binary_key_codec.cc.o.d"
  "/root/repo/src/compress/error_feedback_codec.cc" "src/compress/CMakeFiles/sketchml_compress.dir/error_feedback_codec.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/error_feedback_codec.cc.o.d"
  "/root/repo/src/compress/lossless.cc" "src/compress/CMakeFiles/sketchml_compress.dir/lossless.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/lossless.cc.o.d"
  "/root/repo/src/compress/one_bit_codec.cc" "src/compress/CMakeFiles/sketchml_compress.dir/one_bit_codec.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/one_bit_codec.cc.o.d"
  "/root/repo/src/compress/qsgd_codec.cc" "src/compress/CMakeFiles/sketchml_compress.dir/qsgd_codec.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/qsgd_codec.cc.o.d"
  "/root/repo/src/compress/quantile_bucket_quantizer.cc" "src/compress/CMakeFiles/sketchml_compress.dir/quantile_bucket_quantizer.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/quantile_bucket_quantizer.cc.o.d"
  "/root/repo/src/compress/raw_codec.cc" "src/compress/CMakeFiles/sketchml_compress.dir/raw_codec.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/raw_codec.cc.o.d"
  "/root/repo/src/compress/zipml_codec.cc" "src/compress/CMakeFiles/sketchml_compress.dir/zipml_codec.cc.o" "gcc" "src/compress/CMakeFiles/sketchml_compress.dir/zipml_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sketchml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/sketchml_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
