// Quickstart: compress and decompress one sparse gradient with SketchML.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "core/sketchml.h"

int main() {
  using namespace sketchml;

  // 1. A sparse gradient: key-value pairs sorted by key, values
  //    concentrated near zero like real SGD gradients (Figure 4).
  common::Rng rng(42);
  common::SparseGradient gradient;
  uint64_t key = 0;
  for (int i = 0; i < 50000; ++i) {
    key += 1 + rng.NextBounded(40);  // Sparse ascending keys.
    const double value = rng.NextBernoulli(0.9)
                             ? rng.NextGaussian() * 0.01
                             : rng.NextGaussian() * 0.3;
    gradient.push_back({key, value});
  }

  // 2. Configure the codec. Defaults follow the paper: q=256 quantile
  //    buckets, r=8 groups, MinMaxSketch of 2 rows x d/5 columns.
  core::SketchMlConfig config;
  core::SketchMlCodec codec(config);

  // 3. Encode.
  compress::EncodedGradient message;
  common::Status status = codec.Encode(gradient, &message);
  if (!status.ok()) {
    std::fprintf(stderr, "encode failed: %s\n", status.ToString().c_str());
    return 1;
  }

  const double raw_bytes = static_cast<double>(gradient.size()) * 12.0;
  std::printf("gradient:        %zu nonzero pairs\n", gradient.size());
  std::printf("raw size:        %.1f KB (4-byte keys + 8-byte values)\n",
              raw_bytes / 1e3);
  std::printf("encoded size:    %.1f KB  (%.2fx compression)\n",
              message.size() / 1e3, raw_bytes / message.size());

  const auto& cost = codec.last_space_cost();
  std::printf("  keys (delta-binary): %zu bytes\n", cost.key_bytes);
  std::printf("  MinMaxSketch bins:   %zu bytes\n", cost.sketch_bytes);
  std::printf("  bucket means:        %zu bytes\n", cost.bucket_mean_bytes);

  // 4. Decode and inspect the guarantees: keys are exact, signs never
  //    flip, and magnitudes only decay (never amplify).
  common::SparseGradient decoded;
  status = codec.Decode(message, &decoded);
  if (!status.ok()) {
    std::fprintf(stderr, "decode failed: %s\n", status.ToString().c_str());
    return 1;
  }

  size_t exact_keys = 0, sign_safe = 0;
  double err = 0.0, norm = 0.0;
  for (size_t i = 0; i < gradient.size(); ++i) {
    if (decoded[i].key == gradient[i].key) ++exact_keys;
    if (gradient[i].value * decoded[i].value >= 0) ++sign_safe;
    err += std::pow(gradient[i].value - decoded[i].value, 2);
    norm += std::pow(gradient[i].value, 2);
  }
  std::printf("decoded pairs:   %zu\n", decoded.size());
  std::printf("exact keys:      %zu / %zu (lossless by design)\n",
              exact_keys, gradient.size());
  std::printf("sign-safe:       %zu / %zu\n", sign_safe, gradient.size());
  std::printf("relative L2 err: %.2f%% (values are lossy but bounded)\n",
              100.0 * err / norm);
  return 0;
}
