// Geo-distributed ML example (the paper's Case 3, §1.1): training across
// data centers over a WAN, where bandwidth is ~10x scarcer and latency
// ~100x higher than in a LAN. Gradient compression is the difference
// between feasible and hopeless here.
//
//   ./build/examples/geo_distributed

#include <cstdio>

#include "core/sketchml.h"
#include "dist/trainer.h"
#include "ml/synthetic.h"

int main() {
  using namespace sketchml;

  ml::SyntheticConfig data_config = ml::PresetFor("kdd12");
  data_config.num_instances = 20000;
  ml::Dataset all = ml::GenerateSynthetic(data_config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  // Four "data centers", each holding a shard, exchanging gradients over
  // a WAN (100 Mbps, 50 ms latency; scaled like the datasets).
  dist::ClusterConfig wan_cluster;
  wan_cluster.num_workers = 4;
  wan_cluster.network =
      dist::NetworkModel::Scaled(dist::NetworkModel::Wan(), 840.0);

  // The same four sites if they were colocated on a LAN.
  dist::ClusterConfig lan_cluster = wan_cluster;
  lan_cluster.network =
      dist::NetworkModel::Scaled(dist::NetworkModel::Lab1Gbps(), 840.0);

  dist::TrainerConfig config;
  config.learning_rate = 0.05;
  config.adam_epsilon = 0.01;
  config.evaluate_test_loss = false;

  std::printf("%-10s %-14s %16s %14s\n", "network", "codec", "sec/epoch",
              "MB moved");
  for (const auto& [label, cluster] :
       {std::pair<const char*, dist::ClusterConfig>{"LAN", lan_cluster},
        {"WAN", wan_cluster}}) {
    for (const char* codec_name : {"adam-double", "sketchml"}) {
      auto codec = std::move(core::MakeCodec(codec_name)).value();
      dist::DistributedTrainer trainer(&train, nullptr, loss.get(),
                                       std::move(codec), cluster, config);
      auto stats = trainer.Run(3);
      if (!stats.ok()) return 1;
      const auto total = dist::Aggregate(*stats);
      std::printf("%-10s %-14s %16.1f %14.2f\n", label, codec_name,
                  total.TotalSeconds() / 3.0,
                  (total.bytes_up + total.bytes_down) / 1e6);
    }
  }
  std::printf("\nOn the WAN the uncompressed baseline spends nearly all\n"
              "its time moving gradients between sites; SketchML cuts the\n"
              "traffic ~5x and the epoch time with it (Case 3, §1.1).\n");
  return 0;
}
