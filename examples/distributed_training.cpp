// Distributed training example: logistic regression on a KDD-style
// sparse dataset across 10 simulated executors, comparing SketchML
// against the uncompressed Adam baseline — the paper's headline workload
// (§4.3), end to end through the public API.
//
//   ./build/examples/distributed_training

#include <cstdio>
#include <memory>

#include "core/sketchml.h"
#include "dist/trainer.h"
#include "ml/gradient.h"
#include "ml/synthetic.h"

int main() {
  using namespace sketchml;

  // KDD10-like sparse dataset, 75/25 train/test split.
  ml::SyntheticConfig data_config = ml::PresetFor("kdd10");
  data_config.num_instances = 20000;  // Keep the example snappy.
  ml::Dataset all = ml::GenerateSynthetic(data_config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  // A 10-executor cluster with a 1 Gbps link, scaled to the data size.
  dist::ClusterConfig cluster;
  cluster.num_workers = 10;
  cluster.network = dist::NetworkModel::Scaled(
      dist::NetworkModel::Lab1Gbps(), /*data_scale=*/840.0);

  dist::TrainerConfig trainer_config;
  trainer_config.learning_rate = 0.05;
  trainer_config.adam_epsilon = 0.01;

  std::printf("%-14s %8s %12s %12s %10s %10s\n", "codec", "epoch",
              "sim sec", "msg KB", "train", "test");
  for (const char* codec_name : {"adam-double", "sketchml"}) {
    auto codec = std::move(core::MakeCodec(codec_name)).value();
    dist::DistributedTrainer trainer(&train, &test, loss.get(),
                                     std::move(codec), cluster,
                                     trainer_config);
    for (int epoch = 0; epoch < 5; ++epoch) {
      auto stats = trainer.RunEpoch();
      if (!stats.ok()) {
        std::fprintf(stderr, "epoch failed: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      std::printf("%-14s %8d %12.2f %12.1f %10.4f %10.4f\n", codec_name,
                  stats->epoch, stats->TotalSeconds(),
                  stats->AvgMessageBytes() / 1e3, stats->train_loss,
                  stats->test_loss);
    }
    std::printf("\n");
  }
  std::printf("SketchML reaches the same losses with a fraction of the\n"
              "bytes, so each simulated epoch costs far less wall time.\n");
  return 0;
}
