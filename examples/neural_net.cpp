// Neural-network example (Appendix B.3): compressing dense MLP gradients
// with SketchML. Shows that the codec API is model-agnostic — anything
// that can phrase its gradient as key-value pairs can use it.
//
//   ./build/examples/neural_net

#include <cstdio>

#include "core/sketchml.h"
#include "ml/mlp.h"
#include "ml/synthetic.h"

int main() {
  using namespace sketchml;

  // A small MNIST-like problem: 10x10 images, 4 classes.
  ml::Dataset all = ml::GenerateSyntheticMnist(1200, /*side=*/10,
                                               /*num_classes=*/4, 7);
  auto [train, test] = all.Split(0.25);

  ml::Mlp mlp({100, 64, 4}, /*seed=*/3);
  std::printf("MLP 100-64-4, %zu parameters\n", mlp.NumParams());

  core::SketchMlCodec codec;
  common::SparseGradient grad, decoded;
  compress::EncodedGradient msg;

  const int steps = 120;
  const size_t batch = 60;
  double bytes_raw = 0.0, bytes_compressed = 0.0;
  for (int step = 0; step < steps; ++step) {
    const size_t begin = (step * batch) % (train.size() - batch);
    mlp.ComputeBatchGradient(train, begin, begin + batch, &grad);

    // Round-trip the gradient through SketchML before applying it, as a
    // parameter server would.
    if (!codec.Encode(grad, &msg).ok() || !codec.Decode(msg, &decoded).ok()) {
      std::fprintf(stderr, "codec round-trip failed\n");
      return 1;
    }
    bytes_raw += static_cast<double>(grad.size()) * 12.0;
    bytes_compressed += static_cast<double>(msg.size());
    mlp.ApplySgd(decoded, /*learning_rate=*/0.05);

    if (step % 30 == 29) {
      std::printf("step %3d: train loss %.3f, test accuracy %.1f%%\n",
                  step + 1, mlp.ComputeMeanLoss(train),
                  100.0 * mlp.ComputeAccuracy(test));
    }
  }
  std::printf("\ngradient traffic: %.1f MB raw -> %.1f MB compressed "
              "(%.1fx)\n",
              bytes_raw / 1e6, bytes_compressed / 1e6,
              bytes_raw / bytes_compressed);
  std::printf("the network still trains: decayed-but-sign-safe gradients\n"
              "keep SGD on its convergence track (§3.3).\n");
  return 0;
}
