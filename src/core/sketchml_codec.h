#ifndef SKETCHML_CORE_SKETCHML_CODEC_H_
#define SKETCHML_CORE_SKETCHML_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "compress/delta_binary_key_codec.h"
#include "core/sketchml_config.h"

namespace sketchml::core {

/// Byte-level breakdown of one encoded message (§3.5 space analysis).
///
/// The paper's closed form: total =
///   d * (ceil(log2(rD/d)/8) + 1/4)  -- delta keys + byte flags
///   + 8q                            -- bucket means (we use float32: 4q)
///   + s * t * ceil(log2(q)/8)       -- MinMaxSketch bins
struct SpaceCost {
  size_t header_bytes = 0;
  size_t bucket_mean_bytes = 0;  // 4q per nonempty sign stream.
  size_t sketch_bytes = 0;       // MinMaxSketch bins (s * t).
  size_t key_bytes = 0;          // Delta keys + 2-bit byte flags.
  size_t value_bytes = 0;        // Per-value payload of non-sketch codecs.

  size_t Total() const {
    return header_bytes + bucket_mean_bytes + sketch_bytes + key_bytes +
           value_bytes;
  }
};

/// The full SketchML gradient compressor (§3, Figure 2).
///
/// Encode pipeline:
///   1. split the pairs into positive and negative streams (§3.3 Sol. 1);
///      negatives are quantized on magnitude so bucket 0 is always the
///      bucket nearest zero for both streams;
///   2. per stream, quantile-bucket quantification (§3.2): a KLL quantile
///      sketch yields q equal-depth buckets, every value becomes a bucket
///      index;
///   3. bucket indexes go into a grouped MinMaxSketch keyed by gradient
///      key (§3.3): min on insert / max on query, so collisions only decay
///      values toward zero, never amplify or flip them;
///   4. each group's (ascending) key list is delta-binary encoded (§3.4).
///
/// Decode reverses it: recover keys, query the group's sketch for each
/// key, map the bucket index to its mean, re-apply the sign.
///
/// Lossy but sign- and monotonicity-safe: for every pair,
/// |decoded| <= |quantized(original)| and sign(decoded) == sign(original).
class SketchMlCodec : public compress::GradientCodec {
 public:
  explicit SketchMlCodec(const SketchMlConfig& config = SketchMlConfig());

  std::string Name() const override { return "sketchml"; }
  bool IsLossless() const override { return false; }

  /// Fresh instance on a decorrelated seed lane with its own message
  /// counter (see common::LaneSeed).
  std::unique_ptr<compress::GradientCodec> Fork(uint64_t lane) const override;

  /// With a pool, Encode runs its two sign streams as parallel tasks.
  /// Output bytes are identical with or without a pool: each stream is a
  /// self-contained byte span, so only wall-clock changes.
  void SetThreadPool(common::ThreadPool* pool) override { pool_ = pool; }

  /// Stream state is the message counter: each Encode seeds its sketches
  /// from (config seed, encode_calls_), so restoring the counter replays
  /// the original's message-seed sequence exactly.
  void SaveState(common::ByteWriter* writer) const override {
    writer->WriteVarint(encode_calls_);
  }
  [[nodiscard]] common::Status RestoreState(
      common::ByteReader* reader) override {
    return reader->ReadVarint(&encode_calls_);
  }

  /// Byte breakdown of the most recent Encode call.
  const SpaceCost& last_space_cost() const { return last_space_cost_; }

  const SketchMlConfig& config() const { return config_; }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            compress::EncodedGradient* out) override;
  common::Status DecodeImpl(const compress::EncodedGradient& in,
                            common::SparseGradient* out) override;

 public:
  /// Caller-owned scratch threaded through the batch encode pipeline so
  /// the hot path reuses one set of buffers across streams and calls.
  struct EncodeScratch {
    std::vector<double> values;
    std::vector<uint16_t> buckets;           // Quantizer batch output.
    std::vector<uint32_t> hash_idx;          // Sketch hashed indices.
    std::vector<std::vector<uint64_t>> group_keys;
    std::vector<std::vector<uint8_t>> group_locals;
    compress::DeltaBinaryKeyCodec::EncodeScratch delta;
  };

 private:
  SketchMlConfig config_;
  SpaceCost last_space_cost_;
  uint64_t encode_calls_ = 0;
  common::ThreadPool* pool_ = nullptr;
  EncodeScratch scratch_;  // Reused across streams and calls.
};

/// "Adam+Key" ablation stage of Figure 8: delta-binary keys, raw double
/// values. Lossless.
class KeyOnlyCodec : public compress::GradientCodec {
 public:
  std::string Name() const override { return "adam+key"; }
  bool IsLossless() const override { return true; }

  /// Stateless: a fork is a plain copy.
  std::unique_ptr<compress::GradientCodec> Fork(
      uint64_t /*lane*/) const override {
    return std::make_unique<KeyOnlyCodec>();
  }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            compress::EncodedGradient* out) override;
  common::Status DecodeImpl(const compress::EncodedGradient& in,
                            common::SparseGradient* out) override;
};

/// "Adam+Key+Quan" ablation stage of Figure 8: delta-binary keys plus
/// quantile-bucket quantification with explicit one-byte bucket indexes
/// (no MinMaxSketch). Positive/negative streams are separated exactly as
/// in the full codec.
class QuantileOnlyCodec : public compress::GradientCodec {
 public:
  explicit QuantileOnlyCodec(const SketchMlConfig& config = SketchMlConfig());

  std::string Name() const override { return "adam+key+quan"; }
  bool IsLossless() const override { return false; }

  /// Fresh instance on a decorrelated seed lane with its own message
  /// counter (see common::LaneSeed).
  std::unique_ptr<compress::GradientCodec> Fork(uint64_t lane) const override;

  /// Message-counter stream state, exactly as SketchMlCodec::SaveState.
  void SaveState(common::ByteWriter* writer) const override {
    writer->WriteVarint(encode_calls_);
  }
  [[nodiscard]] common::Status RestoreState(
      common::ByteReader* reader) override {
    return reader->ReadVarint(&encode_calls_);
  }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            compress::EncodedGradient* out) override;
  common::Status DecodeImpl(const compress::EncodedGradient& in,
                            common::SparseGradient* out) override;

 private:
  SketchMlConfig config_;
  uint64_t encode_calls_ = 0;
};

/// Builds the full SketchML codec behind the generic interface.
std::unique_ptr<compress::GradientCodec> MakeSketchMlCodec(
    const SketchMlConfig& config = SketchMlConfig());

}  // namespace sketchml::core

#endif  // SKETCHML_CORE_SKETCHML_CODEC_H_
