#include "core/sketchml_config.h"

namespace sketchml::core {

common::Status SketchMlConfig::Validate() const {
  if (num_buckets < 2 || num_buckets > 256) {
    return common::Status::InvalidArgument("num_buckets must be in [2, 256]");
  }
  if (num_groups < 1 || num_groups > num_buckets) {
    return common::Status::InvalidArgument(
        "num_groups must be in [1, num_buckets]");
  }
  if (rows < 1 || rows > 16) {
    return common::Status::InvalidArgument("rows must be in [1, 16]");
  }
  if (col_ratio <= 0.0 || col_ratio > 4.0) {
    return common::Status::InvalidArgument("col_ratio must be in (0, 4]");
  }
  if (min_cols < 1) {
    return common::Status::InvalidArgument("min_cols must be positive");
  }
  if (quantile_sketch_k < 8) {
    return common::Status::InvalidArgument("quantile_sketch_k must be >= 8");
  }
  return common::Status::Ok();
}

}  // namespace sketchml::core
