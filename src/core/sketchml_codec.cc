#include "core/sketchml_codec.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/bit_util.h"
#include "common/byte_buffer.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "compress/delta_binary_key_codec.h"
#include "compress/quantile_bucket_quantizer.h"
#include "sketch/grouped_min_max_sketch.h"

namespace sketchml::core {
namespace {

constexpr uint8_t kWireVersion = 1;

/// Splits `grad` into the positive (value >= 0) and negative streams,
/// preserving key order within each stream.
void SplitBySign(const common::SparseGradient& grad,
                 common::SparseGradient* pos, common::SparseGradient* neg) {
  size_t num_pos = 0;
  for (const auto& pair : grad) num_pos += pair.value >= 0 ? 1 : 0;
  pos->reserve(num_pos);
  neg->reserve(grad.size() - num_pos);
  for (const auto& pair : grad) {
    (pair.value >= 0 ? pos : neg)->push_back(pair);
  }
}

int TotalCols(const SketchMlConfig& config, size_t stream_size) {
  const int by_ratio = static_cast<int>(
      std::ceil(static_cast<double>(stream_size) * config.col_ratio));
  return std::max(config.min_cols, by_ratio);
}

compress::QuantileBucketQuantizer::Backend BackendOf(
    const SketchMlConfig& config) {
  return config.quantile_backend == QuantileBackend::kGk
             ? compress::QuantileBucketQuantizer::Backend::kGk
             : compress::QuantileBucketQuantizer::Backend::kKll;
}

/// Effective bucket count for a stream of `stream_size` values: the
/// configured q, shrunk for tiny streams so the 4q-byte means header
/// cannot dominate a small message. With fewer than 8 values per bucket
/// the extra resolution is statistically meaningless anyway.
int EffectiveBuckets(const SketchMlConfig& config, size_t stream_size) {
  const int by_size =
      std::max(16, static_cast<int>(stream_size / 8));
  return std::min(config.num_buckets, by_size);
}

/// Encodes one sign stream. When `negate` is set the stream holds
/// negative values and is quantized on magnitude, so bucket index 0 is
/// the bucket nearest zero and MinMax decay always shrinks magnitudes.
/// `scratch` is caller-owned buffer storage, reused across streams and
/// Encode calls so the hot path stays allocation-free.
///
/// Batch pipeline: one BucketsOf call buckets every value, the pairs are
/// partitioned per group, and each group's keys are inserted and
/// delta-encoded as a block. Min-updates commute and key order within a
/// group is preserved, so the wire bytes are identical to the historical
/// element-at-a-time loop.
common::Status EncodeStream(const common::SparseGradient& stream, bool negate,
                            const SketchMlConfig& config, uint64_t seed,
                            SketchMlCodec::EncodeScratch* scratch,
                            common::ByteWriter* writer, SpaceCost* cost) {
  writer->WriteVarint(stream.size());
  if (stream.empty()) return common::Status::Ok();

  std::vector<double>& values = scratch->values;
  values.clear();
  values.reserve(stream.size());
  for (const auto& pair : stream) {
    values.push_back(negate ? -pair.value : pair.value);
  }

  const int buckets = EffectiveBuckets(config, stream.size());
  const int groups = std::min(config.num_groups, buckets);
  auto quantizer = compress::QuantileBucketQuantizer::Build(
      values, buckets, config.quantile_sketch_k, seed, BackendOf(config));
  sketch::GroupedMinMaxSketch mm_sketch(buckets, groups, config.rows,
                                        TotalCols(config, stream.size()),
                                        seed);

  scratch->buckets.resize(stream.size());
  quantizer.BucketsOf(values, scratch->buckets.data());

  auto& group_keys = scratch->group_keys;
  auto& group_locals = scratch->group_locals;
  group_keys.resize(groups);
  group_locals.resize(groups);
  for (int g = 0; g < groups; ++g) {
    group_keys[g].clear();
    group_locals[g].clear();
  }
  const int width = mm_sketch.group_width();
  for (size_t i = 0; i < stream.size(); ++i) {
    const int bucket = scratch->buckets[i];
    const int g = bucket / width;
    group_keys[g].push_back(stream[i].key);
    group_locals[g].push_back(static_cast<uint8_t>(bucket - g * width));
  }
  for (int g = 0; g < groups; ++g) {
    mm_sketch.InsertGroupBatch(g, group_keys[g], group_locals[g],
                               &scratch->hash_idx);
  }

  // Size the remainder exactly and reserve once: everything below lands
  // in a single allocation (EncodedSize's extra delta scan is noise next
  // to the quantile build and sketch hashing above).
  size_t key_bytes = 0;
  for (const auto& keys : group_keys) {
    key_bytes += compress::DeltaBinaryKeyCodec::EncodedSize(keys);
  }
  const size_t num_means = quantizer.means().size();
  writer->Reserve(writer->size() + common::VarintSize(num_means) +
                  num_means * sizeof(float) + mm_sketch.SerializedSize() +
                  key_bytes + sizeof(uint64_t) - 1);  // Encode slack.

  size_t mark = writer->size();
  quantizer.SerializeMeans(writer);
  cost->bucket_mean_bytes += writer->size() - mark;

  mark = writer->size();
  mm_sketch.Serialize(writer);
  cost->sketch_bytes += writer->size() - mark;

  mark = writer->size();
  for (const auto& keys : group_keys) {
    SKETCHML_RETURN_IF_ERROR(
        compress::DeltaBinaryKeyCodec::Encode(keys, writer, &scratch->delta));
  }
  cost->key_bytes += writer->size() - mark;
  return common::Status::Ok();
}

/// Decodes one sign stream and appends its pairs (with `sign` applied)
/// to `out`.
common::Status DecodeStream(common::ByteReader* reader, double sign,
                            common::SparseGradient* out) {
  uint64_t count = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&count));
  if (count == 0) return common::Status::Ok();
  // Each pair costs at least one delta byte downstream.
  if (count > reader->remaining()) {
    return common::Status::CorruptedData("implausible stream size");
  }

  compress::QuantileBucketQuantizer quantizer({0.0, 0.0});
  SKETCHML_RETURN_IF_ERROR(
      compress::QuantileBucketQuantizer::DeserializeMeans(reader, &quantizer));

  sketch::GroupedMinMaxSketch mm_sketch(1, 1, 1, 1);
  SKETCHML_RETURN_IF_ERROR(
      sketch::GroupedMinMaxSketch::Deserialize(reader, &mm_sketch));
  if (mm_sketch.num_buckets() != quantizer.num_buckets()) {
    return common::Status::CorruptedData("bucket count mismatch");
  }

  uint64_t decoded = 0;
  std::vector<uint64_t> keys;
  std::vector<int> buckets;
  std::vector<uint32_t> idx_scratch;
  std::vector<uint8_t> local_scratch;
  for (int group = 0; group < mm_sketch.num_groups(); ++group) {
    SKETCHML_RETURN_IF_ERROR(
        compress::DeltaBinaryKeyCodec::Decode(reader, &keys));
    buckets.resize(keys.size());
    mm_sketch.QueryGroupBatch(group, keys, buckets.data(), &idx_scratch,
                              &local_scratch);
    for (size_t i = 0; i < keys.size(); ++i) {
      out->push_back({keys[i], sign * quantizer.MeanOf(buckets[i])});
    }
    decoded += keys.size();
  }
  if (decoded != count) {
    return common::Status::CorruptedData("stream key count mismatch");
  }
  return common::Status::Ok();
}

}  // namespace

SketchMlCodec::SketchMlCodec(const SketchMlConfig& config) : config_(config) {
  SKETCHML_CHECK(config.Validate().ok()) << config.Validate().ToString();
}

common::Status SketchMlCodec::EncodeImpl(const common::SparseGradient& grad,
                                     compress::EncodedGradient* out) {
  last_space_cost_ = SpaceCost();
  common::ByteWriter writer(grad.size() * 2 + 64);

  writer.WriteU8(kWireVersion);
  writer.WriteVarint(grad.size());
  last_space_cost_.header_bytes = writer.size();

  common::SparseGradient pos, neg;
  if (config_.separate_signs) {
    SplitBySign(grad, &pos, &neg);
  } else {
    pos = grad;  // Ablation: quantize both signs together (Problem 1).
  }

  // Distinct seeds per message keep hash functions fresh across epochs
  // while staying deterministic for a fixed config seed.
  const uint64_t seed = config_.seed + 0x9E3779B97F4A7C15ULL * encode_calls_;
  ++encode_calls_;

  if (pool_ != nullptr && !pos.empty() && !neg.empty()) {
    // Each stream is a self-contained byte span, so the positive stream
    // can build in a side buffer on the pool while this thread encodes
    // the negative stream; concatenation reproduces the serial layout
    // byte for byte. TaskFuture::Get runs the task inline if no pool
    // thread has picked it up, so this nests safely inside pool tasks
    // (the trainer's simulated workers).
    common::ByteWriter pos_writer(pos.size() * 2 + 64);
    SpaceCost pos_cost;
    auto pos_task = pool_->Submit([&pos, this, seed, &pos_writer, &pos_cost] {
      EncodeScratch scratch;
      return EncodeStream(pos, /*negate=*/false, config_, seed, &scratch,
                          &pos_writer, &pos_cost);
    });
    common::ByteWriter neg_writer(neg.size() * 2 + 64);
    SpaceCost neg_cost;
    const common::Status neg_status =
        EncodeStream(neg, /*negate=*/true, config_, seed + 1, &scratch_,
                     &neg_writer, &neg_cost);
    SKETCHML_RETURN_IF_ERROR(pos_task.Get());
    SKETCHML_RETURN_IF_ERROR(neg_status);
    writer.WriteBytes(pos_writer.buffer());
    writer.WriteBytes(neg_writer.buffer());
    last_space_cost_.bucket_mean_bytes =
        pos_cost.bucket_mean_bytes + neg_cost.bucket_mean_bytes;
    last_space_cost_.sketch_bytes =
        pos_cost.sketch_bytes + neg_cost.sketch_bytes;
    last_space_cost_.key_bytes = pos_cost.key_bytes + neg_cost.key_bytes;
  } else {
    SKETCHML_RETURN_IF_ERROR(EncodeStream(pos, /*negate=*/false, config_, seed,
                                          &scratch_, &writer,
                                          &last_space_cost_));
    SKETCHML_RETURN_IF_ERROR(EncodeStream(neg, /*negate=*/true, config_,
                                          seed + 1, &scratch_, &writer,
                                          &last_space_cost_));
  }
  out->bytes = writer.TakeBuffer();
  return common::Status::Ok();
}

std::unique_ptr<compress::GradientCodec> SketchMlCodec::Fork(
    uint64_t lane) const {
  SketchMlConfig fork_config = config_;
  fork_config.seed = common::LaneSeed(config_.seed, lane);
  return std::make_unique<SketchMlCodec>(fork_config);
}

common::Status SketchMlCodec::DecodeImpl(const compress::EncodedGradient& in,
                                     common::SparseGradient* out) {
  common::ByteReader reader(in.bytes);
  uint8_t version = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&version));
  if (version != kWireVersion) {
    return common::Status::CorruptedData("unknown SketchML wire version");
  }
  uint64_t total = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&total));
  // Every pair costs at least one wire byte; validate before reserving.
  if (total > in.bytes.size()) {
    return common::Status::CorruptedData("implausible pair count");
  }

  out->clear();
  out->reserve(total);
  SKETCHML_RETURN_IF_ERROR(DecodeStream(&reader, +1.0, out));
  SKETCHML_RETURN_IF_ERROR(DecodeStream(&reader, -1.0, out));
  if (out->size() != total) {
    return common::Status::CorruptedData("decoded pair count mismatch");
  }
  common::SortByKey(out);
  return common::Status::Ok();
}

common::Status KeyOnlyCodec::EncodeImpl(const common::SparseGradient& grad,
                                    compress::EncodedGradient* out) {
  common::ByteWriter writer(grad.size() * 10 + 16);
  SKETCHML_RETURN_IF_ERROR(
      compress::DeltaBinaryKeyCodec::Encode(common::Keys(grad), &writer));
  for (const auto& pair : grad) writer.WriteDouble(pair.value);
  out->bytes = writer.TakeBuffer();
  return common::Status::Ok();
}

common::Status KeyOnlyCodec::DecodeImpl(const compress::EncodedGradient& in,
                                    common::SparseGradient* out) {
  common::ByteReader reader(in.bytes);
  std::vector<uint64_t> keys;
  SKETCHML_RETURN_IF_ERROR(
      compress::DeltaBinaryKeyCodec::Decode(&reader, &keys));
  out->assign(keys.size(), {});
  for (size_t i = 0; i < keys.size(); ++i) {
    (*out)[i].key = keys[i];
    SKETCHML_RETURN_IF_ERROR(reader.ReadDouble(&(*out)[i].value));
  }
  return common::Status::Ok();
}

QuantileOnlyCodec::QuantileOnlyCodec(const SketchMlConfig& config)
    : config_(config) {}

common::Status QuantileOnlyCodec::EncodeImpl(const common::SparseGradient& grad,
                                         compress::EncodedGradient* out) {
  // Validated here rather than CHECK-ed at construction so a bad config
  // surfaces as a recoverable status instead of silent corruption: the
  // wire format stores bucket indexes as one byte, so any configuration
  // that could yield more than 256 buckets must be rejected up front.
  SKETCHML_RETURN_IF_ERROR(config_.Validate());
  common::ByteWriter writer(grad.size() * 3 + 64);
  writer.WriteU8(kWireVersion);

  common::SparseGradient pos, neg;
  SplitBySign(grad, &pos, &neg);
  const uint64_t seed = config_.seed + 0x9E3779B97F4A7C15ULL * encode_calls_;
  ++encode_calls_;

  const common::SparseGradient* streams[2] = {&pos, &neg};
  for (int s = 0; s < 2; ++s) {
    const auto& stream = *streams[s];
    const bool negate = s == 1;
    writer.WriteVarint(stream.size());
    if (stream.empty()) continue;
    std::vector<double> values;
    values.reserve(stream.size());
    for (const auto& pair : stream) {
      values.push_back(negate ? -pair.value : pair.value);
    }
    const int buckets = EffectiveBuckets(config_, stream.size());
    auto quantizer = compress::QuantileBucketQuantizer::Build(
        values, buckets, config_.quantile_sketch_k, seed + s,
        BackendOf(config_));
    if (quantizer.num_buckets() > 256) {
      return common::Status::InvalidArgument(
          "bucket index would not fit one byte: " +
          std::to_string(quantizer.num_buckets()) + " buckets");
    }
    quantizer.SerializeMeans(&writer);
    SKETCHML_RETURN_IF_ERROR(compress::DeltaBinaryKeyCodec::Encode(
        common::Keys(stream), &writer));
    std::vector<uint16_t> bucket_idx(values.size());
    quantizer.BucketsOf(values, bucket_idx.data());
    const size_t offset = writer.Extend(values.size());
    uint8_t* out_bytes = writer.MutableData() + offset;
    for (size_t i = 0; i < values.size(); ++i) {
      out_bytes[i] = static_cast<uint8_t>(bucket_idx[i]);
    }
  }
  out->bytes = writer.TakeBuffer();
  return common::Status::Ok();
}

std::unique_ptr<compress::GradientCodec> QuantileOnlyCodec::Fork(
    uint64_t lane) const {
  SketchMlConfig fork_config = config_;
  fork_config.seed = common::LaneSeed(config_.seed, lane);
  return std::make_unique<QuantileOnlyCodec>(fork_config);
}

common::Status QuantileOnlyCodec::DecodeImpl(
    const compress::EncodedGradient& in,
                                         common::SparseGradient* out) {
  common::ByteReader reader(in.bytes);
  uint8_t version = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&version));
  if (version != kWireVersion) {
    return common::Status::CorruptedData("unknown wire version");
  }
  out->clear();
  for (int s = 0; s < 2; ++s) {
    const double sign = s == 0 ? 1.0 : -1.0;
    uint64_t count = 0;
    SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&count));
    if (count == 0) continue;
    if (count > reader.remaining()) {
      return common::Status::CorruptedData("implausible stream size");
    }
    compress::QuantileBucketQuantizer quantizer({0.0, 0.0});
    SKETCHML_RETURN_IF_ERROR(
        compress::QuantileBucketQuantizer::DeserializeMeans(&reader,
                                                            &quantizer));
    std::vector<uint64_t> keys;
    SKETCHML_RETURN_IF_ERROR(
        compress::DeltaBinaryKeyCodec::Decode(&reader, &keys));
    if (keys.size() != count) {
      return common::Status::CorruptedData("key count mismatch");
    }
    for (uint64_t key : keys) {
      uint8_t bucket = 0;
      SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&bucket));
      if (bucket >= quantizer.num_buckets()) {
        return common::Status::CorruptedData("bucket index out of range");
      }
      out->push_back({key, sign * quantizer.MeanOf(bucket)});
    }
  }
  common::SortByKey(out);
  return common::Status::Ok();
}

std::unique_ptr<compress::GradientCodec> MakeSketchMlCodec(
    const SketchMlConfig& config) {
  return std::make_unique<SketchMlCodec>(config);
}

}  // namespace sketchml::core
