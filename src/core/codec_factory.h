#ifndef SKETCHML_CORE_CODEC_FACTORY_H_
#define SKETCHML_CORE_CODEC_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "compress/codec.h"
#include "core/sketchml_config.h"

namespace sketchml::core {

/// Builds a gradient codec by name. Known names:
///   "adam-double"   raw 12d-byte baseline (the paper's "Adam")
///   "adam-float"    raw with 4-byte float values
///   "adam+key"      delta-binary keys, raw values (Fig 8 stage 2)
///   "adam+key+quan" + quantile-bucket quantification (Fig 8 stage 3)
///   "sketchml"      full pipeline (Fig 8 stage 4)
///   "zipml-8bit" / "zipml-16bit"  uniform quantization baseline
///   "onebit"        threshold truncation baseline
///
/// `config` parameterizes the SketchML-family codecs and is ignored by the
/// baselines.
common::Result<std::unique_ptr<compress::GradientCodec>> MakeCodec(
    const std::string& name, const SketchMlConfig& config = SketchMlConfig());

/// Builds `lanes` independent instances of codec `name`, one per parallel
/// seed lane (lane i holds seed `common::LaneSeed(config.seed, i)` for
/// seeded codecs). Each instance owns its message counter, so concurrent
/// simulated workers produce deterministic byte streams regardless of how
/// their Encode calls interleave. Fails if the codec is unknown or does
/// not support forking.
common::Result<std::vector<std::unique_ptr<compress::GradientCodec>>>
MakeCodecBank(const std::string& name, int lanes,
              const SketchMlConfig& config = SketchMlConfig());

/// All names `MakeCodec` accepts, in presentation order.
std::vector<std::string> KnownCodecNames();

}  // namespace sketchml::core

#endif  // SKETCHML_CORE_CODEC_FACTORY_H_
