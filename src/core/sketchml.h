#ifndef SKETCHML_CORE_SKETCHML_H_
#define SKETCHML_CORE_SKETCHML_H_

/// \file
/// Umbrella header for the SketchML library public API.
///
/// Quick start:
/// \code
///   #include "core/sketchml.h"
///
///   sketchml::core::SketchMlConfig cfg;          // paper defaults
///   sketchml::core::SketchMlCodec codec(cfg);
///   sketchml::compress::EncodedGradient msg;
///   codec.Encode(gradient, &msg);                // sorted key-value pairs
///   codec.Decode(msg, &restored);                // exact keys, ~values
/// \endcode

#include "common/sparse.h"
#include "common/status.h"
#include "compress/checksummed_codec.h"
#include "compress/codec.h"
#include "compress/delta_binary_key_codec.h"
#include "compress/lossless.h"
#include "compress/one_bit_codec.h"
#include "compress/qsgd_codec.h"
#include "compress/quantile_bucket_quantizer.h"
#include "compress/raw_codec.h"
#include "compress/zipml_codec.h"
#include "core/codec_factory.h"
#include "core/sketchml_codec.h"
#include "core/sketchml_config.h"
#include "sketch/count_min_sketch.h"
#include "sketch/gk_sketch.h"
#include "sketch/grouped_min_max_sketch.h"
#include "sketch/kll_sketch.h"
#include "sketch/min_max_sketch.h"

#endif  // SKETCHML_CORE_SKETCHML_H_
