#include "core/codec_factory.h"

#include "compress/lossless.h"
#include "compress/one_bit_codec.h"
#include "compress/qsgd_codec.h"
#include "compress/raw_codec.h"
#include "compress/zipml_codec.h"
#include "core/sketchml_codec.h"

namespace sketchml::core {

common::Result<std::unique_ptr<compress::GradientCodec>> MakeCodec(
    const std::string& name, const SketchMlConfig& config) {
  using compress::GradientCodec;
  if (name == "adam-double") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::RawCodec>(compress::ValueType::kDouble));
  }
  if (name == "adam-float") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::RawCodec>(compress::ValueType::kFloat));
  }
  if (name == "adam+key") {
    return std::unique_ptr<GradientCodec>(std::make_unique<KeyOnlyCodec>());
  }
  if (name == "adam+key+quan") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<QuantileOnlyCodec>(config));
  }
  if (name == "sketchml") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<SketchMlCodec>(config));
  }
  if (name == "zipml-8bit") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::ZipMlCodec>(8, config.seed + 17));
  }
  if (name == "zipml-16bit") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::ZipMlCodec>(16, config.seed + 17));
  }
  if (name == "onebit") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::OneBitCodec>());
  }
  if (name == "qsgd") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::QsgdCodec>(255, config.seed + 19));
  }
  if (name == "huffman") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::HuffmanGradientCodec>("huffman"));
  }
  if (name == "rle") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::RleGradientCodec>("rle"));
  }
  return common::Status::NotFound("unknown codec: " + name);
}

std::vector<std::string> KnownCodecNames() {
  return {"adam-double", "adam-float",  "adam+key",    "adam+key+quan",
          "sketchml",    "zipml-8bit",  "zipml-16bit", "onebit",
          "qsgd",        "huffman",     "rle"};
}

}  // namespace sketchml::core
