#include "core/codec_factory.h"

#include "compress/lossless.h"
#include "compress/one_bit_codec.h"
#include "compress/qsgd_codec.h"
#include "compress/raw_codec.h"
#include "compress/zipml_codec.h"
#include "core/sketchml_codec.h"

namespace sketchml::core {

common::Result<std::unique_ptr<compress::GradientCodec>> MakeCodec(
    const std::string& name, const SketchMlConfig& config) {
  using compress::GradientCodec;
  if (name == "adam-double") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::RawCodec>(compress::ValueType::kDouble));
  }
  if (name == "adam-float") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::RawCodec>(compress::ValueType::kFloat));
  }
  if (name == "adam+key") {
    return std::unique_ptr<GradientCodec>(std::make_unique<KeyOnlyCodec>());
  }
  if (name == "adam+key+quan") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<QuantileOnlyCodec>(config));
  }
  if (name == "sketchml") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<SketchMlCodec>(config));
  }
  if (name == "zipml-8bit") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::ZipMlCodec>(8, config.seed + 17));
  }
  if (name == "zipml-16bit") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::ZipMlCodec>(16, config.seed + 17));
  }
  if (name == "onebit") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::OneBitCodec>());
  }
  if (name == "qsgd") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::QsgdCodec>(255, config.seed + 19));
  }
  if (name == "huffman") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::HuffmanGradientCodec>("huffman"));
  }
  if (name == "rle") {
    return std::unique_ptr<GradientCodec>(
        std::make_unique<compress::RleGradientCodec>("rle"));
  }
  return common::Status::NotFound("unknown codec: " + name);
}

common::Result<std::vector<std::unique_ptr<compress::GradientCodec>>>
MakeCodecBank(const std::string& name, int lanes,
              const SketchMlConfig& config) {
  if (lanes <= 0) {
    return common::Status::InvalidArgument("lanes must be positive");
  }
  SKETCHML_ASSIGN_OR_RETURN(std::unique_ptr<compress::GradientCodec> proto,
                            MakeCodec(name, config));
  std::vector<std::unique_ptr<compress::GradientCodec>> bank;
  bank.reserve(lanes);
  for (int lane = 0; lane < lanes; ++lane) {
    auto fork = proto->Fork(static_cast<uint64_t>(lane));
    if (fork == nullptr) {
      return common::Status::InvalidArgument("codec " + name +
                                             " does not support forking");
    }
    bank.push_back(std::move(fork));
  }
  return bank;
}

std::vector<std::string> KnownCodecNames() {
  return {"adam-double", "adam-float",  "adam+key",    "adam+key+quan",
          "sketchml",    "zipml-8bit",  "zipml-16bit", "onebit",
          "qsgd",        "huffman",     "rle"};
}

}  // namespace sketchml::core
