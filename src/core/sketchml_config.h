#ifndef SKETCHML_CORE_SKETCHML_CONFIG_H_
#define SKETCHML_CORE_SKETCHML_CONFIG_H_

#include <cstdint>

#include "common/status.h"

namespace sketchml::core {

/// Quantile-sketch implementation used to derive the bucket splits.
enum class QuantileBackend {
  kKll,  // Randomized merging sketch (the DataSketches stand-in; default).
  kGk,   // Deterministic Greenwald-Khanna [16].
};

/// Hyper-parameters of the SketchML compression framework (§2.1, §4.1).
///
/// Defaults follow the paper: q = 256 quantile buckets (one-byte indexes,
/// §3.2), quantile sketch size 128 (§4.1), MinMaxSketch of 2 rows by d/5
/// columns (§4.1: "the size of MinMaxSketch is 2 x d/5"), and r = 8
/// bucket groups (§3.3 Solution 2 example).
struct SketchMlConfig {
  /// Number of quantile buckets per sign (paper's q). Must be in [2, 256]
  /// so a bucket index fits one byte.
  int num_buckets = 256;

  /// Number of MinMaxSketch groups (paper's r). Must divide into
  /// num_buckets sensibly: 1 <= num_groups <= num_buckets.
  int num_groups = 8;

  /// Hash tables per MinMaxSketch (paper's s).
  int rows = 2;

  /// Columns as a fraction of the number of nonzero values d (paper's
  /// t = d * col_ratio; default d/5).
  double col_ratio = 0.2;

  /// Minimum total columns, so tiny gradients still get a usable table.
  int min_cols = 16;

  /// Size parameter of the quantile sketch (paper: 128 by default). For
  /// the GK backend this maps to epsilon = 1 / (2 k).
  int quantile_sketch_k = 128;

  /// Which quantile sketch supplies the splits (§2.3 discusses both).
  QuantileBackend quantile_backend = QuantileBackend::kKll;

  /// Separate positive/negative quantization (§3.3 Solution 1). Disabling
  /// reproduces the "reversed gradient" failure for ablation.
  bool separate_signs = true;

  /// Base seed for sketch hash functions and the quantile sketch.
  uint64_t seed = 1;

  /// Verifies ranges; returns InvalidArgument with a description if bad.
  common::Status Validate() const;
};

}  // namespace sketchml::core

#endif  // SKETCHML_CORE_SKETCHML_CONFIG_H_
