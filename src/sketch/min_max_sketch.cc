#include "sketch/min_max_sketch.h"

#include <algorithm>
#include <limits>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/obs.h"
#include "common/simd.h"

namespace sketchml::sketch {

MinMaxSketch::MinMaxSketch(int rows, int cols, uint64_t seed)
    : rows_(rows), cols_(cols), seed_(seed) {
  SKETCHML_CHECK_GT(rows, 0);
  SKETCHML_CHECK_GT(cols, 0);
  hashes_.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    hashes_.emplace_back(seed * 0x9E3779B185EBCA87ULL +
                         static_cast<uint64_t>(i) * 0x100000001b3ULL + 1);
  }
  table_.assign(static_cast<size_t>(rows) * cols, kEmpty);
}

void MinMaxSketch::Insert(uint64_t key, uint8_t value) {
  for (int row = 0; row < rows_; ++row) {
    uint8_t& cell = table_[CellIndex(row, key)];
    cell = std::min(cell, value);
  }
  ++insertions_;
  // Never-overestimate bound (Theorem A.4): every bin of `key` was just
  // min'd with `value`, so the max over them cannot exceed it.
  SKETCHML_DCHECK_LE(QueryCell(key), value);
  if (obs::MetricsEnabled()) {
    static const obs::Counter inserts =
        obs::MetricsRegistry::Global().GetCounter("sketch/minmax/inserts");
    inserts.Increment();
  }
}

void MinMaxSketch::InsertBatch(std::span<const uint64_t> keys,
                               std::span<const uint8_t> values,
                               std::vector<uint32_t>* idx_scratch) {
  SKETCHML_CHECK_EQ(keys.size(), values.size());
  const size_t count = keys.size();
  if (count == 0) return;
  // All hashed indices first (the vectorizable part), row-major so each
  // row's table slice is applied in one contiguous pass.
  idx_scratch->resize(static_cast<size_t>(rows_) * count);
  for (int row = 0; row < rows_; ++row) {
    common::simd::HashBuckets(keys.data(), count, hashes_[row].seed(),
                              static_cast<uint64_t>(cols_),
                              idx_scratch->data() + row * count);
  }
  for (int row = 0; row < rows_; ++row) {
    uint8_t* row_bins = table_.data() + static_cast<size_t>(row) * cols_;
    const uint32_t* idx = idx_scratch->data() + row * count;
    for (size_t i = 0; i < count; ++i) {
      uint8_t& cell = row_bins[idx[i]];
      cell = std::min(cell, values[i]);
    }
  }
  insertions_ += count;
#if SKETCHML_DCHECK_ENABLED
  // Never-overestimate bound (Theorem A.4) per inserted pair, via the
  // metrics-free recomputation, exactly as the per-element path checks.
  for (size_t i = 0; i < count; ++i) {
    SKETCHML_DCHECK_LE(QueryCell(keys[i]), values[i]);
  }
#endif
  if (obs::MetricsEnabled()) {
    static const obs::Counter inserts =
        obs::MetricsRegistry::Global().GetCounter("sketch/minmax/inserts");
    inserts.Add(static_cast<double>(count));
  }
}

void MinMaxSketch::QueryBatch(std::span<const uint64_t> keys, uint8_t* out,
                              std::vector<uint32_t>* idx_scratch) const {
  const size_t count = keys.size();
  if (count == 0) return;
  idx_scratch->resize(static_cast<size_t>(rows_) * count);
  for (int row = 0; row < rows_; ++row) {
    common::simd::HashBuckets(keys.data(), count, hashes_[row].seed(),
                              static_cast<uint64_t>(cols_),
                              idx_scratch->data() + row * count);
  }
  for (size_t i = 0; i < count; ++i) {
    uint8_t best = 0;
    bool any = false;
    for (int row = 0; row < rows_; ++row) {
      const uint8_t cell =
          table_[static_cast<size_t>(row) * cols_ +
                 (*idx_scratch)[static_cast<size_t>(row) * count + i]];
      if (cell != kEmpty) {
        best = std::max(best, cell);
        any = true;
      }
    }
    out[i] = any ? best : kEmpty;
    SKETCHML_DCHECK_EQ(out[i], QueryCell(keys[i]));
  }
  if (obs::MetricsEnabled()) {
    static const obs::Counter queries =
        obs::MetricsRegistry::Global().GetCounter("sketch/minmax/queries");
    queries.Add(static_cast<double>(count));
  }
}

uint8_t MinMaxSketch::QueryCell(uint64_t key) const {
  uint8_t best = 0;
  bool any = false;
  for (int row = 0; row < rows_; ++row) {
    const uint8_t cell = table_[CellIndex(row, key)];
    if (cell != kEmpty) {
      best = std::max(best, cell);
      any = true;
    }
  }
  return any ? best : kEmpty;
}

uint8_t MinMaxSketch::Query(uint64_t key) const {
  if (obs::MetricsEnabled()) {
    static const obs::Counter queries =
        obs::MetricsRegistry::Global().GetCounter("sketch/minmax/queries");
    queries.Increment();
  }
  return QueryCell(key);
}

void MinMaxSketch::Serialize(common::ByteWriter* writer) const {
  writer->WriteVarint(static_cast<uint64_t>(rows_));
  writer->WriteVarint(static_cast<uint64_t>(cols_));
  writer->WriteU64(seed_);
  writer->WriteBytes(table_);
}

size_t MinMaxSketch::SerializedSize() const {
  return static_cast<size_t>(
             common::VarintSize(static_cast<uint64_t>(rows_)) +
             common::VarintSize(static_cast<uint64_t>(cols_))) +
         sizeof(uint64_t) + table_.size();
}

common::Status MinMaxSketch::Deserialize(common::ByteReader* reader,
                                         MinMaxSketch* out) {
  uint64_t rows = 0, cols = 0, seed = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&rows));
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&cols));
  SKETCHML_RETURN_IF_ERROR(reader->ReadU64(&seed));
  // Divide instead of multiplying: `rows * cols` can wrap uint64_t for a
  // corrupt header (e.g. cols = 2^63) and dodge the bound; and `cols` must
  // fit `int` before the constructor cast below.
  if (rows == 0 || cols == 0 || rows > 64 ||
      cols > reader->remaining() / rows ||
      cols > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return common::Status::CorruptedData("implausible MinMaxSketch shape");
  }
  MinMaxSketch sketch(static_cast<int>(rows), static_cast<int>(cols), seed);
  SKETCHML_RETURN_IF_ERROR(
      reader->ReadRaw(sketch.table_.data(), sketch.table_.size()));
  *out = std::move(sketch);
  return common::Status::Ok();
}

common::Status MinMaxSketch::Merge(const MinMaxSketch& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_ ||
      seed_ != other.seed_) {
    return common::Status::InvalidArgument(
        "MinMaxSketch::Merge requires identical geometry and seed");
  }
  for (size_t i = 0; i < table_.size(); ++i) {
    table_[i] = std::min(table_[i], other.table_[i]);
  }
  insertions_ += other.insertions_;
  return common::Status::Ok();
}

}  // namespace sketchml::sketch
