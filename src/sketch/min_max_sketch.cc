#include "sketch/min_max_sketch.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/obs.h"

namespace sketchml::sketch {

MinMaxSketch::MinMaxSketch(int rows, int cols, uint64_t seed)
    : rows_(rows), cols_(cols), seed_(seed) {
  SKETCHML_CHECK_GT(rows, 0);
  SKETCHML_CHECK_GT(cols, 0);
  hashes_.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    hashes_.emplace_back(seed * 0x9E3779B185EBCA87ULL +
                         static_cast<uint64_t>(i) * 0x100000001b3ULL + 1);
  }
  table_.assign(static_cast<size_t>(rows) * cols, kEmpty);
}

void MinMaxSketch::Insert(uint64_t key, uint8_t value) {
  for (int row = 0; row < rows_; ++row) {
    uint8_t& cell = table_[CellIndex(row, key)];
    cell = std::min(cell, value);
  }
  ++insertions_;
  // Never-overestimate bound (Theorem A.4): every bin of `key` was just
  // min'd with `value`, so the max over them cannot exceed it.
  SKETCHML_DCHECK_LE(QueryCell(key), value);
  if (obs::MetricsEnabled()) {
    static const obs::Counter inserts =
        obs::MetricsRegistry::Global().GetCounter("sketch/minmax/inserts");
    inserts.Increment();
  }
}

uint8_t MinMaxSketch::QueryCell(uint64_t key) const {
  uint8_t best = 0;
  bool any = false;
  for (int row = 0; row < rows_; ++row) {
    const uint8_t cell = table_[CellIndex(row, key)];
    if (cell != kEmpty) {
      best = std::max(best, cell);
      any = true;
    }
  }
  return any ? best : kEmpty;
}

uint8_t MinMaxSketch::Query(uint64_t key) const {
  if (obs::MetricsEnabled()) {
    static const obs::Counter queries =
        obs::MetricsRegistry::Global().GetCounter("sketch/minmax/queries");
    queries.Increment();
  }
  return QueryCell(key);
}

void MinMaxSketch::Serialize(common::ByteWriter* writer) const {
  writer->WriteVarint(static_cast<uint64_t>(rows_));
  writer->WriteVarint(static_cast<uint64_t>(cols_));
  writer->WriteU64(seed_);
  writer->WriteBytes(table_);
}

common::Status MinMaxSketch::Deserialize(common::ByteReader* reader,
                                         MinMaxSketch* out) {
  uint64_t rows = 0, cols = 0, seed = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&rows));
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&cols));
  SKETCHML_RETURN_IF_ERROR(reader->ReadU64(&seed));
  if (rows == 0 || cols == 0 || rows > 64 ||
      rows * cols > reader->remaining()) {
    return common::Status::CorruptedData("implausible MinMaxSketch shape");
  }
  MinMaxSketch sketch(static_cast<int>(rows), static_cast<int>(cols), seed);
  SKETCHML_RETURN_IF_ERROR(
      reader->ReadRaw(sketch.table_.data(), sketch.table_.size()));
  *out = std::move(sketch);
  return common::Status::Ok();
}

}  // namespace sketchml::sketch
