#include "sketch/quantile_sketch.h"

#include "common/logging.h"

namespace sketchml::sketch {

void QuantileSketch::UpdateAll(const std::vector<double>& values) {
  for (double v : values) Update(v);
}

std::vector<double> QuantileSketch::EqualDepthSplits(int num_splits) const {
  SKETCHML_CHECK_GT(num_splits, 0);
  SKETCHML_CHECK_GT(Count(), 0u);
  std::vector<double> splits;
  splits.reserve(num_splits + 1);
  splits.push_back(Min());
  for (int i = 1; i < num_splits; ++i) {
    const double q = static_cast<double>(i) / num_splits;
    double v = Quantile(q);
    // Quantile estimates can jitter below the running maximum of previous
    // splits; enforce monotonicity so bucket thresholds are well ordered.
    if (v < splits.back()) v = splits.back();
    splits.push_back(v);
  }
  double hi = Max();
  if (hi < splits.back()) hi = splits.back();
  splits.push_back(hi);
  return splits;
}

}  // namespace sketchml::sketch
