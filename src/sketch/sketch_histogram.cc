#include "sketch/sketch_histogram.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/obs.h"
#include "common/thread_annotations.h"
#include "sketch/kll_sketch.h"

namespace sketchml::obs {
namespace {

using sketch::KllSketch;

// Slot capacity: sketch histograms are per-entity latency distributions
// (a few per worker), far fewer than counters.
constexpr int kMaxSketchHistograms = 512;

// Accuracy parameter of every backing sketch; matches the codec default,
// ~1.5 % normalized rank error.
constexpr int kSketchK = 256;

// Every canonical rebuild seeds its sketch identically, so a rebuild is a
// pure function of the gathered (value, weight) multiset — the property
// the cross-thread determinism contract rests on.
constexpr uint64_t kCanonicalSeed = 0x5ca1ab1eULL;

// A per-thread buffer holding more raw values than this spills into the
// slot's KLL sketch, bounding memory per (thread, slot) between window
// retirements. Below the threshold snapshots are exact and
// partition-invariant; above it the sketch error bound takes over.
constexpr size_t kSpillThreshold = 4096;

KllSketch MakeCanonicalSketch() {
  KllSketch sketch(kSketchK, kCanonicalSeed);
  // Telemetry-internal sketches stay out of the sketch/kll/* self-metrics
  // (their rebuild/merge counts depend on sampler cadence, not workload).
  sketch.SetInstrumented(false);
  return sketch;
}

/// One slot's retained state (guarded by the registry mutex).
struct Slot {
  Slot()
      : spill(MakeCanonicalSketch()),
        lifetime(MakeCanonicalSketch()) {}

  KllSketch spill;                     // Overflowed + remote-merged tail data.
  std::vector<double> retired_values;  // Raw tail values from exited threads.
  std::vector<KllSketch> windows;      // Ring, oldest first.
  KllSketch lifetime;                  // Merge of every retired window.
};

/// One thread's private raw-value buffers, indexed by slot id. The mutex
/// is uncontended on the record path (only the owner writes); snapshots
/// and window advances take it briefly to gather or drain.
struct Shard {
  common::Mutex mutex;
  std::vector<std::vector<double>> buffers SKETCHML_GUARDED_BY(mutex);
};

struct Impl {
  mutable common::Mutex mutex;
  std::map<std::string, int, std::less<>> ids SKETCHML_GUARDED_BY(mutex);
  std::vector<std::string> names SKETCHML_GUARDED_BY(mutex);
  std::vector<std::unique_ptr<Slot>> slots SKETCHML_GUARDED_BY(mutex);
  std::vector<Shard*> live_shards SKETCHML_GUARDED_BY(mutex);
};

Impl& GetImpl() {
  // NOLINTNEXTLINE(sketchml-naked-new): leaked on purpose.
  static Impl* impl = new Impl;  // Leaked: outlives thread-local dtors.
  return *impl;
}

void RetireShard(Shard* shard) {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  {
    common::MutexLock shard_lock(shard->mutex);
    for (size_t id = 0; id < shard->buffers.size(); ++id) {
      auto& buf = shard->buffers[id];
      auto& retired = impl.slots[id]->retired_values;
      retired.insert(retired.end(), buf.begin(), buf.end());
    }
  }
  impl.live_shards.erase(
      std::find(impl.live_shards.begin(), impl.live_shards.end(), shard));
  delete shard;  // NOLINT(sketchml-naked-new): end of TLS retire cycle.
}

struct TlsShard {
  Shard* shard = nullptr;
  ~TlsShard() {
    if (shard != nullptr) RetireShard(shard);
  }
};

Shard* ThisShard() {
  thread_local TlsShard tls;
  if (tls.shard == nullptr) {
    // NOLINTNEXTLINE(sketchml-naked-new): owned by the TLS retire cycle.
    auto* shard = new Shard;
    Impl& impl = GetImpl();
    common::MutexLock lock(impl.mutex);
    impl.live_shards.push_back(shard);
    tls.shard = shard;
  }
  return tls.shard;
}

/// Canonical sketch of everything recorded into `id` since the last
/// window advance. Caller holds the registry mutex. With `drain`, the
/// gathered sources are cleared (the tail becomes the retired window).
KllSketch BuildTailLocked(Impl& impl, int id, bool drain)
    SKETCHML_REQUIRES(impl.mutex) {
  Slot& slot = *impl.slots[id];
  std::vector<std::pair<double, uint64_t>> items = slot.spill.RetainedItems();
  // The spill sketch's exact extremes may not survive as retained items
  // (compaction drops values); re-applied to the rebuilt tail below so
  // Min()/Max() stay exact end to end.
  const bool spill_nonempty = slot.spill.Count() > 0;
  const double spill_min = spill_nonempty ? slot.spill.Min() : 0.0;
  const double spill_max = spill_nonempty ? slot.spill.Max() : 0.0;
  for (double v : slot.retired_values) items.emplace_back(v, 1);
  for (Shard* shard : impl.live_shards) {
    common::MutexLock shard_lock(shard->mutex);
    if (shard->buffers.size() > static_cast<size_t>(id)) {
      for (double v : shard->buffers[id]) items.emplace_back(v, 1);
      if (drain) shard->buffers[id].clear();
    }
  }
  if (drain) {
    slot.retired_values.clear();
    slot.spill = MakeCanonicalSketch();
  }
  // Sorting makes the rebuild a function of the multiset alone — any
  // thread partitioning of the same stream rebuilds bit-identically (see
  // the class comment for the spill caveat).
  std::sort(items.begin(), items.end());
  KllSketch tail = MakeCanonicalSketch();
  for (const auto& [value, weight] : items) {
    tail.UpdateWeighted(value, weight);
  }
  if (spill_nonempty) tail.ExpandRange(spill_min, spill_max);
  return tail;
}

SketchQuantile QuantileWithBounds(const KllSketch& sketch, double q,
                                  double eps) {
  SketchQuantile out;
  out.value = sketch.Quantile(q);
  out.lo = sketch.Quantile(std::max(0.0, q - 2.0 * eps));
  out.hi = sketch.Quantile(std::min(1.0, q + 2.0 * eps));
  return out;
}

std::vector<SketchHistogramSummary> CollectForSnapshot() {
  return SketchHistogramRegistry::Global().Summaries();
}

void ResetForMetricsRegistry() { SketchHistogramRegistry::Global().Reset(); }

}  // namespace

SketchHistogramRegistry& SketchHistogramRegistry::Global() {
  static SketchHistogramRegistry* instance = [] {
    // NOLINTNEXTLINE(sketchml-naked-new): leaked on purpose.
    auto* registry = new SketchHistogramRegistry;
    // From now on MetricsRegistry snapshots/resets include sketch slots.
    SetSketchSummarySource(&CollectForSnapshot);
    SetSketchResetHook(&ResetForMetricsRegistry);
    return registry;
  }();
  return *instance;
}

SketchHistogram SketchHistogramRegistry::Get(std::string_view name) {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  const auto it = impl.ids.find(name);
  if (it != impl.ids.end()) return SketchHistogram(it->second);
  if (static_cast<int>(impl.names.size()) >= kMaxSketchHistograms) {
    SKETCHML_LOG(Warning) << "sketch histogram registry full; dropping "
                          << std::string(name);
    return SketchHistogram(-1);
  }
  const int id = static_cast<int>(impl.names.size());
  impl.names.emplace_back(name);
  impl.ids.emplace(std::string(name), id);
  impl.slots.push_back(std::make_unique<Slot>());
  return SketchHistogram(id);
}

SketchHistogram SketchHistogramRegistry::Get(std::string_view base,
                                             const MetricLabels& labels) {
  return Get(LabeledName(base, labels));
}

void SketchHistogram::Record(double value) const {
  if (id_ < 0 || !MetricsEnabled()) return;
  Shard* shard = ThisShard();
  bool spill = false;
  {
    common::MutexLock lock(shard->mutex);
    if (shard->buffers.size() <= static_cast<size_t>(id_)) {
      shard->buffers.resize(id_ + 1);
    }
    auto& buf = shard->buffers[id_];
    buf.push_back(value);
    spill = buf.size() >= kSpillThreshold;
  }
  if (spill) {
    // Re-acquire in registry→shard order (never shard→registry).
    Impl& impl = GetImpl();
    common::MutexLock lock(impl.mutex);
    common::MutexLock shard_lock(shard->mutex);
    auto& buf = shard->buffers[id_];
    if (buf.size() < kSpillThreshold) return;  // Raced with a drain.
    KllSketch& dst = impl.slots[id_]->spill;
    for (double v : buf) dst.Update(v);
    buf.clear();
  }
}

void SketchHistogramRegistry::AdvanceWindows() {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  for (int id = 0; id < static_cast<int>(impl.slots.size()); ++id) {
    Slot& slot = *impl.slots[id];
    KllSketch window = BuildTailLocked(impl, id, /*drain=*/true);
    slot.lifetime.Merge(window);
    slot.windows.push_back(std::move(window));
    if (static_cast<int>(slot.windows.size()) > kSketchHistogramWindows) {
      slot.windows.erase(slot.windows.begin());
    }
  }
}

std::vector<SketchHistogramSummary> SketchHistogramRegistry::Summaries()
    const {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  const double eps = KllSketch::NormalizedRankError(kSketchK);
  std::vector<SketchHistogramSummary> out;
  for (int id = 0; id < static_cast<int>(impl.slots.size()); ++id) {
    const Slot& slot = *impl.slots[id];
    const KllSketch tail = BuildTailLocked(impl, id, /*drain=*/false);
    KllSketch full = slot.lifetime;
    full.Merge(tail);
    if (full.Count() == 0) continue;  // Mirror empty-histogram skipping.
    KllSketch recent = MakeCanonicalSketch();
    for (const KllSketch& window : slot.windows) recent.Merge(window);
    recent.Merge(tail);

    SketchHistogramSummary summary;
    summary.name = impl.names[id];
    summary.count = full.Count();
    summary.min = full.Min();
    summary.max = full.Max();
    summary.eps = eps;
    summary.p50 = QuantileWithBounds(full, 0.50, eps);
    summary.p90 = QuantileWithBounds(full, 0.90, eps);
    summary.p99 = QuantileWithBounds(full, 0.99, eps);
    summary.p999 = QuantileWithBounds(full, 0.999, eps);
    summary.window_count = recent.Count();
    summary.windows = static_cast<int>(slot.windows.size());
    if (recent.Count() > 0) {
      summary.wp50 = QuantileWithBounds(recent, 0.50, eps);
      summary.wp99 = QuantileWithBounds(recent, 0.99, eps);
    }
    out.push_back(std::move(summary));
  }
  return out;
}

std::vector<uint8_t> SketchHistogramRegistry::SerializeTail(
    const SketchHistogram& h) const {
  if (h.id_ < 0) return {};
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  const KllSketch tail = BuildTailLocked(impl, h.id_, /*drain=*/false);
  if (tail.Count() == 0) return {};
  common::ByteWriter writer(tail.SerializedSize());
  tail.Serialize(&writer);
  return writer.TakeBuffer();
}

std::vector<uint8_t> SketchHistogramRegistry::DrainTail(
    const SketchHistogram& h) {
  if (h.id_ < 0) return {};
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  const KllSketch tail = BuildTailLocked(impl, h.id_, /*drain=*/true);
  if (tail.Count() == 0) return {};
  common::ByteWriter writer(tail.SerializedSize());
  tail.Serialize(&writer);
  return writer.TakeBuffer();
}

common::Status SketchHistogramRegistry::MergeSerialized(
    const SketchHistogram& h, const uint8_t* data, size_t size) {
  if (h.id_ < 0) {
    return common::Status::InvalidArgument("inert sketch histogram handle");
  }
  common::ByteReader reader(data, size);
  KllSketch remote;
  SKETCHML_RETURN_IF_ERROR(
      KllSketch::Deserialize(&reader, &remote, kCanonicalSeed));
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  impl.slots[h.id_]->spill.Merge(remote);
  return common::Status::Ok();
}

void SketchHistogramRegistry::Reset() {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  for (auto& slot : impl.slots) {
    slot->spill = MakeCanonicalSketch();
    slot->retired_values.clear();
    slot->windows.clear();
    slot->lifetime = MakeCanonicalSketch();
  }
  for (Shard* shard : impl.live_shards) {
    common::MutexLock shard_lock(shard->mutex);
    for (auto& buf : shard->buffers) buf.clear();
  }
}

}  // namespace sketchml::obs
