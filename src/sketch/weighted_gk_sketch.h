#ifndef SKETCHML_SKETCH_WEIGHTED_GK_SKETCH_H_
#define SKETCHML_SKETCH_WEIGHTED_GK_SKETCH_H_

#include <cstddef>
#include <vector>

namespace sketchml::sketch {

/// Weighted Greenwald–Khanna quantile summary — the generalization behind
/// XGBoost's weighted quantile sketch ([11], cited in §2.3 as a GK
/// extension). Items carry arbitrary positive weights; `Quantile(q)`
/// answers rank queries over the *weighted* CDF with rank error at most
/// `epsilon * total_weight`.
///
/// Useful wherever split candidates must respect importance rather than
/// counts: instance-weighted training data, gradient values weighted by
/// feature frequency, second-order (hessian-weighted) splits as in
/// gradient boosting.
class WeightedGkSketch {
 public:
  /// `epsilon` is the weighted-rank-error fraction, in (0, 0.5).
  explicit WeightedGkSketch(double epsilon = 0.001);

  /// Inserts `value` with positive `weight` (checked).
  void Update(double value, double weight = 1.0);

  /// Total weight inserted.
  double TotalWeight() const { return total_weight_; }
  /// Number of items inserted.
  size_t Count() const { return count_; }

  /// Value whose weighted rank is ~`q * TotalWeight()`; q clamps to
  /// [0, 1]. Requires a non-empty sketch (checked).
  double Quantile(double q) const;

  double Min() const;
  double Max() const;

  /// Stored tuples (space footprint).
  size_t NumTuples() const { return tuples_.size(); }

  /// O(n) walk of the weighted-GK invariants: tuples sorted by value,
  /// positive gaps, non-negative deltas, exact boundary tuples (Δ == 0),
  /// and Σg == TotalWeight() up to float accumulation-order error.
  /// Exercised via SKETCHML_DCHECK after insert/compress in checked
  /// builds.
  bool InvariantsHold() const;

 private:
  struct Tuple {
    double value;
    double g;      // Weighted gap from the previous tuple's rmin.
    double delta;  // Weighted rank uncertainty.
  };

  void Compress();

  double epsilon_;
  double total_weight_ = 0.0;
  size_t count_ = 0;
  size_t compress_every_;
  size_t since_compress_ = 0;
  std::vector<Tuple> tuples_;  // Ordered by value.
};

}  // namespace sketchml::sketch

#endif  // SKETCHML_SKETCH_WEIGHTED_GK_SKETCH_H_
