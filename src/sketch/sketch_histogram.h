#ifndef SKETCHML_SKETCH_SKETCH_HISTOGRAM_H_
#define SKETCHML_SKETCH_SKETCH_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/metrics_registry.h"
#include "common/status.h"

namespace sketchml::obs {

/// Number of retired windows each sketch-histogram slot keeps. One window
/// is retired per `AdvanceWindows()` call (the trainer calls it once per
/// epoch), so the windowed quantiles in snapshots cover the last
/// `kSketchHistogramWindows` epochs plus the current tail.
inline constexpr int kSketchHistogramWindows = 8;

/// Handle to a KLL-sketch-backed latency/size distribution — the
/// paper-grade alternative to the pow2 `Histogram`: mergeable across
/// instances (and nodes) with a proven ±ε rank-error bound instead of
/// factor-of-2 bucket interpolation. Same contract as the other metric
/// handles: cheap to copy, `Record` is a no-op until the handle has been
/// obtained from the registry and while `MetricsEnabled()` is false (one
/// branch — the <2 % disabled-overhead budget).
class SketchHistogram {
 public:
  SketchHistogram() = default;
  void Record(double value) const;

 private:
  friend class SketchHistogramRegistry;
  explicit SketchHistogram(int id) : id_(id) {}
  int id_ = -1;
};

/// Process-wide registry of sketch-backed histograms, mirroring
/// `MetricsRegistry`: idempotent registration by canonical labeled name,
/// per-thread shards on the record path, retired-shard retention on
/// thread exit, merge-on-snapshot.
///
/// Record appends raw values to a per-thread buffer (one uncontended
/// mutex acquisition — unlike counters there is no fixed-size atomic cell
/// a quantile summary could live in). Buffers spill into a per-slot KLL
/// sketch when they exceed a threshold, bounding memory.
///
/// Snapshots rebuild a *canonical* sketch: all retained (value, weight)
/// pairs across shards are gathered, sorted, and re-inserted into a
/// fixed-seed KLL. While every shard still holds raw (weight-1) values —
/// i.e. below the spill threshold per window — the gathered multiset is
/// exactly the recorded multiset regardless of how recording threads
/// partitioned it, so snapshots are bit-identical across `--threads`
/// values. Past the spill threshold the rank-error bound still holds but
/// exact partition-invariance does not (documented in
/// docs/observability.md).
///
/// On first use the registry installs itself as the snapshot source for
/// `MetricsRegistry` (see SetSketchSummarySource), so `Snapshot()`,
/// metric dumps, and the JSONL sampler pick up sketch summaries
/// automatically.
class SketchHistogramRegistry {
 public:
  static SketchHistogramRegistry& Global();

  SketchHistogram Get(std::string_view name);
  SketchHistogram Get(std::string_view base, const MetricLabels& labels);

  /// Retires the current window of every slot: drains shard buffers and
  /// the spill sketch into a canonical window sketch, pushes it onto the
  /// slot's ring (evicting beyond kSketchHistogramWindows), and merges it
  /// into the lifetime sketch. The trainer calls this once per epoch.
  void AdvanceWindows();

  /// Merge-on-snapshot summaries of every non-empty slot, in registration
  /// order. Lifetime quantiles cover everything ever recorded (retired
  /// windows plus the live tail); windowed quantiles cover the ring plus
  /// the tail.
  std::vector<SketchHistogramSummary> Summaries() const;

  /// Serialized canonical sketch of everything recorded into `h` since
  /// the last AdvanceWindows (the current window tail). Non-consuming;
  /// empty when the tail is empty or the handle is inert. This is the
  /// cross-node aggregation payload: the driver serializes each worker's
  /// tail, counts the bytes as telemetry traffic, and merges the payloads
  /// into a cluster-wide slot.
  std::vector<uint8_t> SerializeTail(const SketchHistogram& h) const;

  /// Deserializes a SerializeTail payload and merges it into `h`'s
  /// current tail, as if the remote values had been recorded here.
  common::Status MergeSerialized(const SketchHistogram& h, const uint8_t* data,
                                 size_t size);

  /// Consuming variant of SerializeTail: serializes `h`'s current window
  /// tail and clears the sources it was built from, so the drained values
  /// will NOT reappear in the next SerializeTail/AdvanceWindows. This is
  /// the leave-time handoff primitive — a departing worker's tail is
  /// drained exactly once into the cluster slot; the non-consuming
  /// SerializeTail would double-count it at the epoch-boundary merge.
  /// Retired windows and the lifetime sketch are untouched.
  std::vector<uint8_t> DrainTail(const SketchHistogram& h);

  /// Clears all recorded data (names stay registered). Same contract as
  /// MetricsRegistry::Reset — no concurrent recording. Also invoked via
  /// the reset hook whenever MetricsRegistry::Reset runs.
  void Reset();
};

}  // namespace sketchml::obs

#endif  // SKETCHML_SKETCH_SKETCH_HISTOGRAM_H_
