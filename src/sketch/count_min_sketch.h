#ifndef SKETCHML_SKETCH_COUNT_MIN_SKETCH_H_
#define SKETCHML_SKETCH_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/murmur_hash.h"

namespace sketchml::sketch {

/// Count-Min frequency sketch (Cormode & Muthukrishnan [12], Figure 1).
///
/// A two-dimensional array of `rows` hash tables with `cols` bins each.
/// Insertion increments one bin per row; queries take the minimum over
/// rows, so estimates are never below the true frequency (one-sided
/// overestimation error ε·N with probability 1-δ for rows = ln(1/δ),
/// cols = e/ε).
///
/// SketchML evaluates — and rejects — the additive Count-Min strategy for
/// storing bucket indexes (§3.3 Motivation): collisions amplify decoded
/// gradients arbitrarily. The `theory_validation` bench reproduces that
/// negative result with this class.
class CountMinSketch {
 public:
  /// Creates a sketch with `rows` hash tables of `cols` bins. `seed`
  /// derives the per-row hash functions.
  CountMinSketch(int rows, int cols, uint64_t seed = 7);

  /// Adds `amount` to item `key`'s frequency.
  void Add(uint64_t key, uint64_t amount = 1);

  /// Returns the (over-)estimated frequency of `key`.
  uint64_t Query(uint64_t key) const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  uint64_t TotalInsertions() const { return total_; }

  /// Bytes of counter storage.
  size_t SizeBytes() const { return table_.size() * sizeof(uint64_t); }

 private:
  size_t CellIndex(int row, uint64_t key) const {
    return static_cast<size_t>(row) * cols_ + hashes_[row].Bucket(key, cols_);
  }

  int rows_;
  int cols_;
  uint64_t total_ = 0;
  std::vector<common::HashFunction> hashes_;
  std::vector<uint64_t> table_;  // rows_ x cols_, row-major.
};

}  // namespace sketchml::sketch

#endif  // SKETCHML_SKETCH_COUNT_MIN_SKETCH_H_
