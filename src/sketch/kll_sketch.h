#ifndef SKETCHML_SKETCH_KLL_SKETCH_H_
#define SKETCHML_SKETCH_KLL_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"
#include "common/random.h"
#include "common/status.h"
#include "sketch/quantile_sketch.h"

namespace sketchml::sketch {

/// Merging quantile sketch in the KLL family — the from-scratch stand-in
/// for the Yahoo DataSketches quantile sketch the paper uses (§3.2).
///
/// Items are buffered in levels; when a level fills it is sorted and
/// compacted: every other item (random phase) is promoted to the next
/// level with doubled weight. With parameter `k = 256` the sketch answers
/// quantile queries with ~1 % rank error at better-than-99 % confidence,
/// matching the "99 % correctness when m = 256" claim quoted in §2.3.
///
/// Supports `Merge`, which the distributed driver uses to combine
/// per-worker sketches.
class KllSketch : public QuantileSketch {
 public:
  /// `k` controls accuracy/space (level-0 capacity). `seed` drives the
  /// random compaction phase; fixed seed => deterministic sketch.
  explicit KllSketch(int k = 256, uint64_t seed = 1);

  void Update(double value) override;
  uint64_t Count() const override { return count_; }
  double Quantile(double q) const override;
  double Min() const override;
  double Max() const override;

  /// One SortedItems() pass + prefix weights for all ranks instead of a
  /// fresh gather-and-sort per Quantile call. Bit-identical to the base
  /// implementation (pinned by tests), ~num_splits times cheaper — this
  /// sits on the encode hot path via QuantileBucketQuantizer::Build.
  std::vector<double> EqualDepthSplits(int num_splits) const override;

  /// Merges `other` into this sketch. Equivalent to having updated this
  /// sketch with other's entire stream.
  void Merge(const KllSketch& other);

  /// Estimated rank (fraction of items <= value) of `value`.
  double Rank(double value) const;

  /// Inserts `value` with weight `weight` directly into level log2(weight).
  /// `weight` must be a power of two — the only weights a KLL compactor
  /// produces — so replaying another sketch's retained items through this
  /// call reproduces an equivalent summary. Used by the telemetry layer's
  /// canonical rebuild (obs::SketchHistogramRegistry): gathering retained
  /// items from per-thread shards, sorting, and re-inserting them into a
  /// fixed-seed sketch yields a result independent of how the stream was
  /// partitioned across threads.
  void UpdateWeighted(double value, uint64_t weight);

  /// All retained (value, weight) pairs sorted by (value, weight). The
  /// multiset these represent is rank-equivalent to the full stream within
  /// the sketch's error bound.
  std::vector<std::pair<double, uint64_t>> RetainedItems() const {
    return SortedItems();
  }

  /// Wire format: version byte, k, count, min, max, then per-level item
  /// arrays. Captures the full summary state (not the RNG), so a
  /// deserialized sketch answers identical queries and merges losslessly;
  /// future compactions of the copy draw from `seed` passed to Deserialize.
  size_t SerializedSize() const;
  void Serialize(common::ByteWriter* writer) const;
  static common::Status Deserialize(common::ByteReader* reader, KllSketch* out,
                                    uint64_t seed = 1);

  /// Widens the exact [Min(), Max()] range to cover [lo, hi]. The sketch
  /// tracks extremes separately from the retained items (compaction may
  /// drop the actual minimum/maximum), so a canonical rebuild from
  /// RetainedItems() must re-apply the source sketch's range to keep
  /// Min()/Max() exact. Only valid on a non-empty sketch.
  void ExpandRange(double lo, double hi);

  /// Normalized rank-error bound ε for parameter `k`: quantile estimates
  /// land within ±ε of the true rank with high confidence. Empirical KLL
  /// fit (DataSketches-style 2.296 / k^0.9); ~1.5 % at the default k=256,
  /// consistent with the ~1 % typical error quoted in the class comment.
  static double NormalizedRankError(int k);
  double NormalizedRankError() const { return NormalizedRankError(k_); }

  /// Sketches owned by the telemetry layer itself must not feed the
  /// `sketch/kll/*` self-metrics: snapshot-time rebuilds and merges would
  /// otherwise inflate those counters by an amount that depends on how
  /// often the sampler fires, breaking run-to-run determinism of metric
  /// dumps. Default on; the obs::SketchHistogramRegistry turns it off for
  /// its internal sketches.
  void SetInstrumented(bool instrumented) { instrumented_ = instrumented; }

  int k() const { return k_; }

  /// Total retained items across all levels (space footprint).
  size_t NumRetained() const;

  /// Compactor weight conservation: Σ_level |level| · 2^level == Count()
  /// (a compaction promotes exactly half a level's items with doubled
  /// weight, so total weight is invariant), plus Min() <= Max() on
  /// non-empty sketches. Exercised via SKETCHML_DCHECK after
  /// update/merge in checked builds.
  bool InvariantsHold() const;

 private:
  /// Capacity of `level` (geometrically decreasing with depth below top).
  /// Served from `capacities_`: every capacity depends on the level count,
  /// so they are recomputed only when a level is added (Update sits on the
  /// encode hot path and must not pay a std::pow per item).
  size_t LevelCapacity(int level) const { return capacities_[level]; }

  /// Recomputes `capacities_` for the current level count.
  void RefreshCapacities();

  /// Sorts and compacts `level`, promoting half its items.
  void Compact(int level);

  /// Gathers all retained (value, weight) pairs sorted by value.
  std::vector<std::pair<double, uint64_t>> SortedItems() const;

  int k_;
  bool instrumented_ = true;
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  common::Rng rng_;
  // levels_[i] holds items of weight 2^i; level 0 is unsorted.
  std::vector<std::vector<double>> levels_;
  std::vector<size_t> capacities_;  // capacities_[i] = capacity of level i.
};

}  // namespace sketchml::sketch

#endif  // SKETCHML_SKETCH_KLL_SKETCH_H_
