#include "sketch/count_min_sketch.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace sketchml::sketch {

CountMinSketch::CountMinSketch(int rows, int cols, uint64_t seed)
    : rows_(rows), cols_(cols) {
  SKETCHML_CHECK_GT(rows, 0);
  SKETCHML_CHECK_GT(cols, 0);
  hashes_.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    hashes_.emplace_back(seed * 0x100000001b3ULL + static_cast<uint64_t>(i));
  }
  table_.assign(static_cast<size_t>(rows) * cols, 0);
}

void CountMinSketch::Add(uint64_t key, uint64_t amount) {
  for (int row = 0; row < rows_; ++row) {
    table_[CellIndex(row, key)] += amount;
  }
  total_ += amount;
}

uint64_t CountMinSketch::Query(uint64_t key) const {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (int row = 0; row < rows_; ++row) {
    best = std::min(best, table_[CellIndex(row, key)]);
  }
  return best;
}

}  // namespace sketchml::sketch
