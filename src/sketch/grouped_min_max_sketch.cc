#include "sketch/grouped_min_max_sketch.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/logging.h"

namespace sketchml::sketch {

GroupedMinMaxSketch::GroupedMinMaxSketch(int num_buckets, int num_groups,
                                         int rows, int total_cols,
                                         uint64_t seed)
    : num_buckets_(num_buckets), num_groups_(num_groups) {
  SKETCHML_CHECK_GT(num_buckets, 0);
  SKETCHML_CHECK_GT(num_groups, 0);
  SKETCHML_CHECK_LE(num_groups, num_buckets);
  group_width_ = static_cast<int>(
      common::CeilDiv(static_cast<uint64_t>(num_buckets),
                      static_cast<uint64_t>(num_groups)));
  // Local (within-group) indexes must fit one byte (<= 256 buckets/group).
  SKETCHML_CHECK_LE(group_width_, 256);
  const int cols_per_group = std::max(
      1, static_cast<int>(common::CeilDiv(
             static_cast<uint64_t>(std::max(total_cols, 1)),
             static_cast<uint64_t>(num_groups))));
  groups_.reserve(num_groups);
  for (int g = 0; g < num_groups; ++g) {
    groups_.emplace_back(rows, cols_per_group,
                         seed + static_cast<uint64_t>(g) * 0x9E3779B9ULL);
  }
}

void GroupedMinMaxSketch::Insert(uint64_t key, int bucket) {
  SKETCHML_CHECK_GE(bucket, 0);
  SKETCHML_CHECK_LT(bucket, num_buckets_);
  const int group = GroupOf(bucket);
  const int local = bucket - group * group_width_;
  // The within-group index must fit the group's byte-sized bins.
  SKETCHML_DCHECK_GE(local, 0);
  SKETCHML_DCHECK_LT(local, group_width_);
  groups_[group].Insert(key, static_cast<uint8_t>(local));
}

int GroupedMinMaxSketch::Query(uint64_t key, int group) const {
  SKETCHML_CHECK_GE(group, 0);
  SKETCHML_CHECK_LT(group, num_groups_);
  int local = groups_[group].Query(key);
  // kEmpty either means "every bin only ever held the maximal index" (only
  // possible when the group spans a full byte) or an uninserted key; both
  // clamp to the group's top index.
  if (local >= group_width_) local = group_width_ - 1;
  const int bucket = std::min(group * group_width_ + local, num_buckets_ - 1);
  // Group-bound guarantee (§3.3): the decoded index stays inside the
  // queried group's bucket range (clamped to the global top index for a
  // degenerate trailing group), so collision error is < group_width.
  // The clamp matters: decode iterates wire-declared groups, and a
  // corrupted message may address a group no honest bucket maps to.
  SKETCHML_DCHECK_GE(bucket, std::min(group * group_width_, num_buckets_ - 1));
  SKETCHML_DCHECK_LT(bucket,
                     std::min((group + 1) * group_width_, num_buckets_));
  return bucket;
}

void GroupedMinMaxSketch::InsertGroupBatch(
    int group, std::span<const uint64_t> keys,
    std::span<const uint8_t> locals, std::vector<uint32_t>* idx_scratch) {
  SKETCHML_CHECK_GE(group, 0);
  SKETCHML_CHECK_LT(group, num_groups_);
  if (keys.empty()) return;
#if SKETCHML_DCHECK_ENABLED
  // Same contract per pair as Insert: the caller-computed local index
  // must address a bucket of this group (and fit the byte-sized bins).
  for (size_t i = 0; i < locals.size(); ++i) {
    SKETCHML_DCHECK_LT(static_cast<int>(locals[i]), group_width_);
    SKETCHML_DCHECK_LT(group * group_width_ + static_cast<int>(locals[i]),
                       num_buckets_);
  }
#endif
  groups_[group].InsertBatch(keys, locals, idx_scratch);
}

void GroupedMinMaxSketch::QueryGroupBatch(
    int group, std::span<const uint64_t> keys, int* buckets_out,
    std::vector<uint32_t>* idx_scratch,
    std::vector<uint8_t>* local_scratch) const {
  SKETCHML_CHECK_GE(group, 0);
  SKETCHML_CHECK_LT(group, num_groups_);
  if (keys.empty()) return;
  local_scratch->resize(keys.size());
  groups_[group].QueryBatch(keys, local_scratch->data(), idx_scratch);
  for (size_t i = 0; i < keys.size(); ++i) {
    int local = (*local_scratch)[i];
    if (local >= group_width_) local = group_width_ - 1;
    const int bucket =
        std::min(group * group_width_ + local, num_buckets_ - 1);
    // Same group-bound guarantee the per-element Query asserts (§3.3).
    SKETCHML_DCHECK_GE(bucket,
                       std::min(group * group_width_, num_buckets_ - 1));
    SKETCHML_DCHECK_LT(bucket,
                       std::min((group + 1) * group_width_, num_buckets_));
    buckets_out[i] = bucket;
  }
}

size_t GroupedMinMaxSketch::SizeBytes() const {
  size_t total = 0;
  for (const auto& g : groups_) total += g.SizeBytes();
  return total;
}

size_t GroupedMinMaxSketch::SerializedSize() const {
  size_t total = static_cast<size_t>(
      common::VarintSize(static_cast<uint64_t>(num_buckets_)) +
      common::VarintSize(static_cast<uint64_t>(num_groups_)));
  for (const auto& g : groups_) total += g.SerializedSize();
  return total;
}

void GroupedMinMaxSketch::Serialize(common::ByteWriter* writer) const {
  writer->WriteVarint(static_cast<uint64_t>(num_buckets_));
  writer->WriteVarint(static_cast<uint64_t>(num_groups_));
  for (const auto& g : groups_) g.Serialize(writer);
}

common::Status GroupedMinMaxSketch::Deserialize(common::ByteReader* reader,
                                                GroupedMinMaxSketch* out) {
  uint64_t num_buckets = 0, num_groups = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&num_buckets));
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&num_groups));
  if (num_buckets == 0 || num_groups == 0 || num_groups > num_buckets ||
      num_buckets > (1ULL << 20)) {
    return common::Status::CorruptedData("implausible grouped sketch shape");
  }
  GroupedMinMaxSketch result;
  result.num_buckets_ = static_cast<int>(num_buckets);
  result.num_groups_ = static_cast<int>(num_groups);
  result.group_width_ = static_cast<int>(
      common::CeilDiv(num_buckets, num_groups));
  result.groups_.reserve(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    MinMaxSketch sketch(1, 1);
    SKETCHML_RETURN_IF_ERROR(MinMaxSketch::Deserialize(reader, &sketch));
    result.groups_.push_back(std::move(sketch));
  }
  *out = std::move(result);
  return common::Status::Ok();
}

}  // namespace sketchml::sketch
