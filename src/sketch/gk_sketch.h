#ifndef SKETCHML_SKETCH_GK_SKETCH_H_
#define SKETCHML_SKETCH_GK_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sketch/quantile_sketch.h"

namespace sketchml::sketch {

/// Greenwald–Khanna quantile summary (GK01), the classical deterministic
/// quantile sketch the paper cites [16].
///
/// Maintains an ordered sequence of tuples (v, g, Δ) where `g` is the gap
/// between the minimum ranks of consecutive tuples and `Δ` bounds the rank
/// uncertainty of the tuple. Guarantees every quantile answer has rank
/// error at most `epsilon * n`, using O((1/ε) log(εn)) tuples.
class GkSketch : public QuantileSketch {
 public:
  /// `epsilon` is the target rank-error fraction; must be in (0, 0.5).
  explicit GkSketch(double epsilon = 0.001);

  void Update(double value) override;
  uint64_t Count() const override { return count_; }
  double Quantile(double q) const override;
  double Min() const override;
  double Max() const override;

  double epsilon() const { return epsilon_; }

  /// Number of stored tuples (the sketch's space footprint).
  size_t NumTuples() const { return tuples_.size(); }

  /// O(n) walk of the GK structural invariants: tuples sorted by value,
  /// Σg == Count(), the exact-min/max boundary tuples carry Δ == 0, and
  /// every tuple's rank band g + Δ fits within max(1, ⌊2εn⌋). Exercised
  /// via SKETCHML_DCHECK after insert/compress in checked builds.
  bool InvariantsHold() const;

 private:
  struct Tuple {
    double value;
    uint64_t g;      // rmin(this) - rmin(previous)
    uint64_t delta;  // rmax(this) - rmin(this)
  };

  /// Merges tuples whose combined uncertainty stays within 2*epsilon*n.
  void Compress();

  double epsilon_;
  uint64_t count_ = 0;
  uint64_t compress_every_;
  uint64_t since_compress_ = 0;
  std::vector<Tuple> tuples_;  // Ordered by value.
};

}  // namespace sketchml::sketch

#endif  // SKETCHML_SKETCH_GK_SKETCH_H_
