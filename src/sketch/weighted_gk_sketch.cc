#include "sketch/weighted_gk_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace sketchml::sketch {

WeightedGkSketch::WeightedGkSketch(double epsilon) : epsilon_(epsilon) {
  SKETCHML_CHECK(epsilon > 0.0 && epsilon < 0.5);
  compress_every_ =
      std::max<size_t>(1, static_cast<size_t>(1.0 / (2.0 * epsilon_)));
}

void WeightedGkSketch::Update(double value, double weight) {
  SKETCHML_CHECK_GT(weight, 0.0);
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), value,
      [](const Tuple& t, double v) { return t.value < v; });

  double delta = 0.0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insertion inherits the allowed weighted uncertainty. The
    // new item's own weight is certain, so subtract it from the band.
    const double band = 2.0 * epsilon_ * total_weight_;
    delta = std::max(0.0, band - weight);
  }
  tuples_.insert(it, Tuple{value, weight, delta});
  total_weight_ += weight;
  ++count_;

  if (++since_compress_ >= compress_every_) {
    Compress();
    since_compress_ = 0;
  }
  SKETCHML_DCHECK(InvariantsHold());
}

bool WeightedGkSketch::InvariantsHold() const {
  if (tuples_.empty()) return count_ == 0 && total_weight_ == 0.0;
  if (tuples_.front().delta != 0.0 || tuples_.back().delta != 0.0) {
    return false;
  }
  double g_sum = 0.0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    if (!(t.g > 0.0) || t.delta < 0.0) return false;
    if (i > 0 && tuples_[i - 1].value > t.value) return false;  // Sorted.
    g_sum += t.g;
  }
  // Compress folds gaps in a different order than Update accumulated
  // total_weight_, so allow relative float error.
  const double tolerance = 1e-9 * std::max(1.0, total_weight_);
  return std::abs(g_sum - total_weight_) <= tolerance;
}

void WeightedGkSketch::Compress() {
  if (tuples_.size() < 3) return;
  const double threshold = 2.0 * epsilon_ * total_weight_;
  if (threshold <= 0.0) return;

  // Right-to-left fold, preserving the exact min and max tuples.
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  kept.push_back(tuples_.back());
  for (size_t idx = tuples_.size() - 1; idx-- > 1;) {
    Tuple& successor = kept.back();
    const Tuple& cur = tuples_[idx];
    if (cur.g + successor.g + successor.delta < threshold) {
      successor.g += cur.g;
    } else {
      kept.push_back(cur);
    }
  }
  kept.push_back(tuples_.front());
  std::reverse(kept.begin(), kept.end());
  tuples_ = std::move(kept);
  SKETCHML_DCHECK(InvariantsHold());
}

double WeightedGkSketch::Quantile(double q) const {
  SKETCHML_CHECK_GT(count_, 0u);
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_weight_;

  double rmin = 0.0;
  double best_value = tuples_.front().value;
  double best_error = std::numeric_limits<double>::infinity();
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const double rmax = rmin + t.delta;
    // A tuple's own weight covers the weighted ranks (rmin - g, rmax];
    // if the target falls inside, this tuple is the exact answer (heavy
    // items span wide rank intervals — the midpoint heuristic alone
    // would miss them).
    if (target > rmin - t.g && target <= rmax) return t.value;
    const double mid = 0.5 * (rmin + rmax);
    const double err = std::abs(mid - target);
    if (err < best_error) {
      best_error = err;
      best_value = t.value;
    }
  }
  return best_value;
}

double WeightedGkSketch::Min() const {
  SKETCHML_CHECK(!tuples_.empty());
  return tuples_.front().value;
}

double WeightedGkSketch::Max() const {
  SKETCHML_CHECK(!tuples_.empty());
  return tuples_.back().value;
}

}  // namespace sketchml::sketch
