#ifndef SKETCHML_SKETCH_GROUPED_MIN_MAX_SKETCH_H_
#define SKETCHML_SKETCH_GROUPED_MIN_MAX_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"
#include "sketch/min_max_sketch.h"

namespace sketchml::sketch {

/// Grouped MinMaxSketch (§3.3, Solution 2 — "Grouped MinMaxSketch").
///
/// Divides the `num_buckets` bucket indexes into `num_groups` equal-width
/// ranges and gives each range its own MinMaxSketch. A key whose bucket
/// index falls in group g is only inserted into (and queried from) group
/// g's sketch, so a hash collision can at worst report the smallest index
/// *within the same group*: the maximal decoding error drops from q to
/// q / r (paper notation), which is what rescues convergence near the
/// optimum where gradients are tiny.
///
/// The caller must remember each key's group (SketchML stores the key
/// lists per group on the wire) and pass it back to `Query`.
class GroupedMinMaxSketch {
 public:
  /// `total_cols` bins are divided evenly among groups (at least 1 per
  /// group); `rows` hash tables per group sketch.
  GroupedMinMaxSketch(int num_buckets, int num_groups, int rows,
                      int total_cols, uint64_t seed = 13);

  /// Group that bucket index `bucket` belongs to.
  int GroupOf(int bucket) const { return bucket / group_width_; }

  /// Inserts `key` with global bucket index `bucket` (in [0, num_buckets)).
  void Insert(uint64_t key, int bucket);

  /// Returns the decoded global bucket index for `key`, which was inserted
  /// into `group`. Result is <= the inserted index and within the group's
  /// range (error < num_buckets / num_groups).
  int Query(uint64_t key, int group) const;

  /// Batch Insert of a block of keys that all map to `group`, with their
  /// *local* (within-group) indexes — the caller has already bucketed and
  /// grouped them, so this just forwards to the group sketch's batch path.
  /// Table bytes and metrics are bit-identical to per-element Insert.
  /// `idx_scratch` as in MinMaxSketch::InsertBatch.
  void InsertGroupBatch(int group, std::span<const uint64_t> keys,
                        std::span<const uint8_t> locals,
                        std::vector<uint32_t>* idx_scratch);

  /// Batch Query: `buckets_out[i]` = Query(keys[i], group). `buckets_out`
  /// must hold `keys.size()` entries; `local_scratch` is caller-owned
  /// storage for the raw group-sketch answers.
  void QueryGroupBatch(int group, std::span<const uint64_t> keys,
                       int* buckets_out, std::vector<uint32_t>* idx_scratch,
                       std::vector<uint8_t>* local_scratch) const;

  int num_buckets() const { return num_buckets_; }
  int num_groups() const { return num_groups_; }
  int group_width() const { return group_width_; }

  /// Total bytes of bin storage across groups.
  size_t SizeBytes() const;

  /// Exact size Serialize will append, for reserve-exact assembly.
  size_t SerializedSize() const;

  /// Wire format: shape header + each group's sketch.
  void Serialize(common::ByteWriter* writer) const;
  static common::Status Deserialize(common::ByteReader* reader,
                                    GroupedMinMaxSketch* out);

 private:
  GroupedMinMaxSketch() = default;

  int num_buckets_ = 0;
  int num_groups_ = 0;
  int group_width_ = 0;
  std::vector<MinMaxSketch> groups_;
};

}  // namespace sketchml::sketch

#endif  // SKETCHML_SKETCH_GROUPED_MIN_MAX_SKETCH_H_
