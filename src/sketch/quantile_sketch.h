#ifndef SKETCHML_SKETCH_QUANTILE_SKETCH_H_
#define SKETCHML_SKETCH_QUANTILE_SKETCH_H_

#include <cstdint>
#include <vector>

namespace sketchml::sketch {

/// Streaming quantile estimator (§2.3).
///
/// A quantile sketch summarizes a single pass over comparable items with a
/// small data structure and answers rank queries `q ∈ [0, 1]`: `Quantile(0.5)`
/// estimates the median, `Quantile(0.01)` the 1st percentile. SketchML uses
/// one to place gradient values into equal-population buckets (§3.2).
class QuantileSketch {
 public:
  virtual ~QuantileSketch() = default;

  /// Inserts one item.
  virtual void Update(double value) = 0;

  /// Number of items inserted so far.
  virtual uint64_t Count() const = 0;

  /// Returns an estimate of the item at rank `q * Count()`. `q` is clamped
  /// to [0, 1]. Undefined when the sketch is empty (checked).
  virtual double Quantile(double q) const = 0;

  /// Exact minimum and maximum of the stream (all implementations track
  /// these losslessly, as DataSketches does).
  virtual double Min() const = 0;
  virtual double Max() const = 0;

  /// Convenience: inserts every element of `values`.
  void UpdateAll(const std::vector<double>& values);

  /// Returns the `q+1` split points {Quantile(0), Quantile(1/q), ...,
  /// Quantile(1)} used by quantile-bucket quantification (§3.2 step 1).
  /// `num_splits` is the paper's `q`; the result has `num_splits + 1`
  /// strictly non-decreasing entries with exact min/max at the ends.
  /// Virtual so sketches can answer all `q` ranks from one sorted pass;
  /// overrides must return exactly what the default implementation would.
  virtual std::vector<double> EqualDepthSplits(int num_splits) const;
};

}  // namespace sketchml::sketch

#endif  // SKETCHML_SKETCH_QUANTILE_SKETCH_H_
