#ifndef SKETCHML_SKETCH_MIN_MAX_SKETCH_H_
#define SKETCHML_SKETCH_MIN_MAX_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/byte_buffer.h"
#include "common/logging.h"
#include "common/murmur_hash.h"
#include "common/status.h"

namespace sketchml::sketch {

/// MinMaxSketch — the paper's novel sketch (§3.3, Figure 5).
///
/// Stores one small integer (a bucket index, < 256) per key using `rows`
/// hash tables of `cols` one-byte bins.
///
///  * Insert: each chosen bin keeps the **minimum** of its current value
///    and the inserted value, so hash collisions can only *decrease* what
///    is stored ("Min").
///  * Query: take the **maximum** of the `rows` candidate bins, the one
///    closest to the original value ("Max").
///
/// Hence queries are never overestimates: the decoded bucket index is
/// less than or equal to the inserted one (Appendix A.2 shows the value of
/// any bin equals the minimum value among keys mapping to it, Theorem A.4,
/// and derives the exact-answer rate, Eq. (2)). Underestimated bucket
/// indexes decay gradients toward the "minimum bucket" instead of
/// amplifying them, which preserves SGD convergence.
class MinMaxSketch {
 public:
  /// Initial bin value. Doubles as the "never written" indicator: since
  /// insertion takes the minimum, a bin equal to kEmpty either was never
  /// written or only ever received the maximal index 255 — both decode to
  /// the same (top) value, so no information is lost.
  static constexpr uint8_t kEmpty = 0xff;

  /// `rows` = number of hash tables (paper's `s`), `cols` = bins per table
  /// (paper's `t`). `seed` derives the row hash functions; encoder and
  /// decoder must use the same seed (it is serialized).
  MinMaxSketch(int rows, int cols, uint64_t seed = 13);

  /// Inserts `(key, value)`. Each row bin keeps min(current, value).
  /// Inserting 255 is legal and equivalent to leaving the bin untouched.
  void Insert(uint64_t key, uint8_t value);

  /// Returns the max over the key's row bins — the best available
  /// underestimate of the inserted value. Querying a key that was never
  /// inserted returns kEmpty.
  uint8_t Query(uint64_t key) const;

  /// Batch Insert: hashes a whole block of keys row-major through the
  /// dispatched simd::HashBuckets kernel, then applies the min-updates.
  /// Min-updates commute, so the resulting table (and every metric) is
  /// bit-identical to inserting the pairs one at a time in any order.
  /// `keys` and `values` must have equal length. `idx_scratch` is
  /// caller-owned hashed-index storage (resized to rows * count), reused
  /// across calls so the encode hot path stays allocation-free.
  void InsertBatch(std::span<const uint64_t> keys,
                   std::span<const uint8_t> values,
                   std::vector<uint32_t>* idx_scratch);

  /// Batch Query: `out[i]` = Query(keys[i]), bit-identical results and
  /// metrics. `out` must hold `keys.size()` entries; `idx_scratch` as in
  /// InsertBatch.
  void QueryBatch(std::span<const uint64_t> keys, uint8_t* out,
                  std::vector<uint32_t>* idx_scratch) const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  uint64_t seed() const { return seed_; }
  uint64_t NumInsertions() const { return insertions_; }

  /// Bytes of bin storage (the wire size of the table).
  size_t SizeBytes() const { return table_.size(); }

  /// Exact size Serialize will append, for reserve-exact assembly.
  size_t SerializedSize() const;

  /// Appends rows/cols/seed and the bin table to `writer` (wire format).
  void Serialize(common::ByteWriter* writer) const;

  /// Reconstructs a sketch previously written by `Serialize`.
  static common::Status Deserialize(common::ByteReader* reader,
                                    MinMaxSketch* out);

  /// Merges `other` into this sketch: every bin keeps
  /// min(this, other) — min-updates commute, so the merge equals having
  /// inserted both sketches' streams into one table (the mergeability the
  /// elastic shard re-partitioning relies on). Requires identical
  /// geometry and hash seed; InvalidArgument otherwise.
  [[nodiscard]] common::Status Merge(const MinMaxSketch& other);

 private:
  size_t CellIndex(int row, uint64_t key) const {
    const size_t index =
        static_cast<size_t>(row) * cols_ + hashes_[row].Bucket(key, cols_);
    SKETCHML_DCHECK_LT(index, table_.size());
    return index;
  }

  /// Query without the observability counter: safe to call from DCHECK
  /// conditions, which must leave metrics untouched so checked and
  /// release runs publish identical counts.
  uint8_t QueryCell(uint64_t key) const;

  int rows_;
  int cols_;
  uint64_t seed_;
  uint64_t insertions_ = 0;
  std::vector<common::HashFunction> hashes_;
  std::vector<uint8_t> table_;  // rows_ x cols_, row-major; kEmpty = unset.
};

}  // namespace sketchml::sketch

#endif  // SKETCHML_SKETCH_MIN_MAX_SKETCH_H_
