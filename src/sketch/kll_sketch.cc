#include "sketch/kll_sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/obs.h"

namespace sketchml::sketch {

namespace {
// Per-level capacity decay; 2/3 is the published KLL constant.
constexpr double kLevelDecay = 2.0 / 3.0;
constexpr size_t kMinLevelCapacity = 8;
}  // namespace

KllSketch::KllSketch(int k, uint64_t seed) : k_(k), rng_(seed) {
  SKETCHML_CHECK_GE(k, 8);
  levels_.emplace_back();
  RefreshCapacities();
  levels_[0].reserve(LevelCapacity(0));
}

void KllSketch::RefreshCapacities() {
  // The highest levels get capacity k; deeper (younger) levels decay
  // geometrically. Level 0 is youngest, so decay by the distance from the
  // top level.
  capacities_.resize(levels_.size());
  for (size_t level = 0; level < levels_.size(); ++level) {
    const int depth = static_cast<int>(levels_.size()) - 1 -
                      static_cast<int>(level);
    const double cap = static_cast<double>(k_) * std::pow(kLevelDecay, depth);
    capacities_[level] =
        std::max<size_t>(kMinLevelCapacity, static_cast<size_t>(cap));
  }
}

void KllSketch::Update(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  if (instrumented_ && obs::MetricsEnabled()) {
    static const obs::Counter updates =
        obs::MetricsRegistry::Global().GetCounter("sketch/kll/updates");
    updates.Increment();
  }
  levels_[0].push_back(value);
  if (levels_[0].size() >= LevelCapacity(0)) {
    // Compact cascading upward while levels overflow.
    for (int level = 0; level < static_cast<int>(levels_.size()); ++level) {
      if (levels_[level].size() >= LevelCapacity(level)) {
        Compact(level);
      }
    }
  }
  SKETCHML_DCHECK(InvariantsHold());
}

bool KllSketch::InvariantsHold() const {
  uint64_t weight = 0;
  for (size_t level = 0; level < levels_.size(); ++level) {
    weight += static_cast<uint64_t>(levels_[level].size()) << level;
  }
  if (weight != count_) return false;  // Compaction lost or forged items.
  return count_ == 0 || min_ <= max_;
}

void KllSketch::Compact(int level) {
  if (levels_[level].size() < 2) return;
  if (instrumented_ && obs::MetricsEnabled()) {
    static const obs::Counter compactions =
        obs::MetricsRegistry::Global().GetCounter("sketch/kll/compactions");
    compactions.Increment();
  }
  // Grow the level list *before* taking references: emplace_back can
  // reallocate and would otherwise dangle them.
  if (level + 1 >= static_cast<int>(levels_.size())) {
    levels_.emplace_back();
    RefreshCapacities();
  }
  auto& buf = levels_[level];
  auto& next = levels_[level + 1];
  std::sort(buf.begin(), buf.end());
  // Random phase: keep either the even- or odd-indexed half.
  const size_t phase = rng_.NextBounded(2);
  // If the buffer has odd size, one item stays behind at this level so
  // total weight is conserved. Shrink in place rather than swapping in a
  // fresh vector: this runs every few inserts at level 0, and keeping the
  // buffer's capacity keeps the hot path allocation-free.
  size_t n = buf.size();
  const bool odd = (n % 2 == 1);
  if (odd) --n;
  for (size_t i = phase; i < n; i += 2) {
    next.push_back(buf[i]);
  }
  if (odd) buf[0] = buf[n];
  buf.resize(odd ? 1 : 0);
}

std::vector<std::pair<double, uint64_t>> KllSketch::SortedItems() const {
  std::vector<std::pair<double, uint64_t>> items;
  items.reserve(NumRetained());
  for (size_t level = 0; level < levels_.size(); ++level) {
    const uint64_t weight = 1ULL << level;
    for (double v : levels_[level]) items.emplace_back(v, weight);
  }
  std::sort(items.begin(), items.end());
  return items;
}

double KllSketch::Quantile(double q) const {
  SKETCHML_CHECK_GT(count_, 0u);
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const auto items = SortedItems();
  uint64_t total_weight = 0;
  for (const auto& [v, w] : items) total_weight += w;
  const double target = q * static_cast<double>(total_weight);
  uint64_t cumulative = 0;
  for (const auto& [v, w] : items) {
    cumulative += w;
    if (static_cast<double>(cumulative) >= target) return v;
  }
  return max_;
}

std::vector<double> KllSketch::EqualDepthSplits(int num_splits) const {
  SKETCHML_CHECK_GT(num_splits, 0);
  SKETCHML_CHECK_GT(count_, 0u);
  // One gather-and-sort answers every rank; each split is then a binary
  // search over the prefix weights. Must stay bit-identical to the base
  // class (Quantile per split): Quantile(q) returns the first item whose
  // cumulative weight reaches q * total, which is exactly the
  // lower_bound below, and the interior q values are in (0, 1) so the
  // min/max shortcuts never fire.
  const auto items = SortedItems();
  std::vector<double> cumulative;
  cumulative.reserve(items.size());
  uint64_t running = 0;
  for (const auto& [v, w] : items) {
    running += w;
    cumulative.push_back(static_cast<double>(running));
  }
  const double total_weight = cumulative.empty() ? 0.0 : cumulative.back();

  std::vector<double> splits;
  splits.reserve(num_splits + 1);
  splits.push_back(Min());
  for (int i = 1; i < num_splits; ++i) {
    const double q = static_cast<double>(i) / num_splits;
    const double target = q * total_weight;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), target);
    double v = it == cumulative.end()
                   ? max_
                   : items[static_cast<size_t>(it - cumulative.begin())].first;
    // Quantile estimates can jitter below the running maximum of previous
    // splits; enforce monotonicity so bucket thresholds are well ordered.
    if (v < splits.back()) v = splits.back();
    splits.push_back(v);
  }
  double hi = Max();
  if (hi < splits.back()) hi = splits.back();
  splits.push_back(hi);
  return splits;
}

double KllSketch::Rank(double value) const {
  SKETCHML_CHECK_GT(count_, 0u);
  const auto items = SortedItems();
  uint64_t total_weight = 0;
  uint64_t below = 0;
  for (const auto& [v, w] : items) {
    total_weight += w;
    if (v <= value) below += w;
  }
  return static_cast<double>(below) / static_cast<double>(total_weight);
}

double KllSketch::Min() const {
  SKETCHML_CHECK_GT(count_, 0u);
  return min_;
}

double KllSketch::Max() const {
  SKETCHML_CHECK_GT(count_, 0u);
  return max_;
}

void KllSketch::Merge(const KllSketch& other) {
  if (other.count_ == 0) return;
  const bool instrumented = instrumented_ && obs::MetricsEnabled();
  const uint64_t start_ns = instrumented ? obs::NowNs() : 0;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  if (levels_.size() < other.levels_.size()) {
    levels_.resize(other.levels_.size());
    RefreshCapacities();
  }
  for (size_t level = 0; level < other.levels_.size(); ++level) {
    auto& dst = levels_[level];
    const auto& src = other.levels_[level];
    dst.insert(dst.end(), src.begin(), src.end());
  }
  // Restore capacity invariants.
  for (int level = 0; level < static_cast<int>(levels_.size()); ++level) {
    if (levels_[level].size() >= LevelCapacity(level)) Compact(level);
  }
  if (instrumented) {
    auto& registry = obs::MetricsRegistry::Global();
    static const obs::Counter merges = registry.GetCounter("sketch/kll/merges");
    static const obs::Histogram merge_ns =
        registry.GetHistogram("sketch/kll/merge_ns");
    merges.Increment();
    merge_ns.Record(static_cast<double>(obs::NowNs() - start_ns));
  }
  SKETCHML_DCHECK(InvariantsHold());
}

size_t KllSketch::NumRetained() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

void KllSketch::UpdateWeighted(double value, uint64_t weight) {
  SKETCHML_CHECK_GT(weight, 0u);
  SKETCHML_CHECK_EQ(weight & (weight - 1), 0u);  // Power of two.
  const int target = std::countr_zero(weight);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += weight;
  if (target >= static_cast<int>(levels_.size())) {
    levels_.resize(target + 1);
    RefreshCapacities();
  }
  levels_[target].push_back(value);
  if (levels_[target].size() >= LevelCapacity(target)) {
    for (int level = target; level < static_cast<int>(levels_.size());
         ++level) {
      if (levels_[level].size() >= LevelCapacity(level)) Compact(level);
    }
  }
  SKETCHML_DCHECK(InvariantsHold());
}

namespace {
constexpr uint8_t kKllWireVersion = 1;
}  // namespace

size_t KllSketch::SerializedSize() const {
  size_t size = 1 + 4 + 8 + 8 + 8;  // version, k, count, min, max.
  size += common::ByteWriter::VarintSize(levels_.size());
  for (const auto& level : levels_) {
    size += common::ByteWriter::VarintSize(level.size());
    size += level.size() * sizeof(double);
  }
  return size;
}

void KllSketch::Serialize(common::ByteWriter* writer) const {
  writer->WriteU8(kKllWireVersion);
  writer->WriteU32(static_cast<uint32_t>(k_));
  writer->WriteU64(count_);
  writer->WriteDouble(min_);
  writer->WriteDouble(max_);
  writer->WriteVarint(levels_.size());
  for (const auto& level : levels_) {
    writer->WriteVarint(level.size());
    for (double v : level) writer->WriteDouble(v);
  }
}

common::Status KllSketch::Deserialize(common::ByteReader* reader,
                                      KllSketch* out, uint64_t seed) {
  uint8_t version = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadU8(&version));
  if (version != kKllWireVersion) {
    return common::Status::CorruptedData("unknown KLL wire version");
  }
  uint32_t k = 0;
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadU32(&k));
  SKETCHML_RETURN_IF_ERROR(reader->ReadU64(&count));
  SKETCHML_RETURN_IF_ERROR(reader->ReadDouble(&min));
  SKETCHML_RETURN_IF_ERROR(reader->ReadDouble(&max));
  if (k < 8) return common::Status::CorruptedData("KLL k below minimum");
  uint64_t num_levels = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&num_levels));
  if (num_levels == 0 || num_levels > 64) {
    return common::Status::CorruptedData("KLL level count out of range");
  }
  KllSketch sketch(static_cast<int>(k), seed);
  sketch.levels_.resize(num_levels);
  uint64_t weight = 0;
  for (uint64_t level = 0; level < num_levels; ++level) {
    uint64_t n = 0;
    SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&n));
    if (n > count) return common::Status::CorruptedData("KLL level too large");
    auto& buf = sketch.levels_[level];
    buf.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      SKETCHML_RETURN_IF_ERROR(reader->ReadDouble(&buf[i]));
    }
    weight += n << level;
  }
  if (weight != count) {
    return common::Status::CorruptedData("KLL weight/count mismatch");
  }
  sketch.count_ = count;
  sketch.min_ = min;
  sketch.max_ = max;
  sketch.RefreshCapacities();
  if (!sketch.InvariantsHold()) {
    return common::Status::CorruptedData("KLL invariants violated");
  }
  *out = std::move(sketch);
  return common::Status::Ok();
}

void KllSketch::ExpandRange(double lo, double hi) {
  SKETCHML_CHECK_GT(count_, 0u);
  SKETCHML_CHECK_LE(lo, hi);
  min_ = std::min(min_, lo);
  max_ = std::max(max_, hi);
}

double KllSketch::NormalizedRankError(int k) {
  return 2.296 / std::pow(static_cast<double>(k), 0.9);
}

}  // namespace sketchml::sketch
