#include "sketch/kll_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/obs.h"

namespace sketchml::sketch {

namespace {
// Per-level capacity decay; 2/3 is the published KLL constant.
constexpr double kLevelDecay = 2.0 / 3.0;
constexpr size_t kMinLevelCapacity = 8;
}  // namespace

KllSketch::KllSketch(int k, uint64_t seed) : k_(k), rng_(seed) {
  SKETCHML_CHECK_GE(k, 8);
  levels_.emplace_back();
  levels_[0].reserve(LevelCapacity(0));
}

size_t KllSketch::LevelCapacity(int level) const {
  // The highest levels get capacity k; deeper (younger) levels decay
  // geometrically. `level` counts from 0 = youngest, so decay by the
  // distance from the top level.
  const int depth = static_cast<int>(levels_.size()) - 1 - level;
  double cap = static_cast<double>(k_) * std::pow(kLevelDecay, depth);
  return std::max<size_t>(kMinLevelCapacity, static_cast<size_t>(cap));
}

void KllSketch::Update(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  if (obs::MetricsEnabled()) {
    static const obs::Counter updates =
        obs::MetricsRegistry::Global().GetCounter("sketch/kll/updates");
    updates.Increment();
  }
  levels_[0].push_back(value);
  if (levels_[0].size() >= LevelCapacity(0)) {
    // Compact cascading upward while levels overflow.
    for (int level = 0; level < static_cast<int>(levels_.size()); ++level) {
      if (levels_[level].size() >= LevelCapacity(level)) {
        Compact(level);
      }
    }
  }
  SKETCHML_DCHECK(InvariantsHold());
}

bool KllSketch::InvariantsHold() const {
  uint64_t weight = 0;
  for (size_t level = 0; level < levels_.size(); ++level) {
    weight += static_cast<uint64_t>(levels_[level].size()) << level;
  }
  if (weight != count_) return false;  // Compaction lost or forged items.
  return count_ == 0 || min_ <= max_;
}

void KllSketch::Compact(int level) {
  if (levels_[level].size() < 2) return;
  if (obs::MetricsEnabled()) {
    static const obs::Counter compactions =
        obs::MetricsRegistry::Global().GetCounter("sketch/kll/compactions");
    compactions.Increment();
  }
  // Grow the level list *before* taking references: emplace_back can
  // reallocate and would otherwise dangle them.
  if (level + 1 >= static_cast<int>(levels_.size())) {
    levels_.emplace_back();
  }
  auto& buf = levels_[level];
  auto& next = levels_[level + 1];
  std::sort(buf.begin(), buf.end());
  // Random phase: keep either the even- or odd-indexed half.
  const size_t phase = rng_.NextBounded(2);
  // If the buffer has odd size, one item stays behind at this level so
  // total weight is conserved.
  std::vector<double> leftover;
  size_t n = buf.size();
  if (n % 2 == 1) {
    leftover.push_back(buf.back());
    --n;
  }
  for (size_t i = phase; i < n; i += 2) {
    next.push_back(buf[i]);
  }
  buf = std::move(leftover);
}

std::vector<std::pair<double, uint64_t>> KllSketch::SortedItems() const {
  std::vector<std::pair<double, uint64_t>> items;
  items.reserve(NumRetained());
  for (size_t level = 0; level < levels_.size(); ++level) {
    const uint64_t weight = 1ULL << level;
    for (double v : levels_[level]) items.emplace_back(v, weight);
  }
  std::sort(items.begin(), items.end());
  return items;
}

double KllSketch::Quantile(double q) const {
  SKETCHML_CHECK_GT(count_, 0u);
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const auto items = SortedItems();
  uint64_t total_weight = 0;
  for (const auto& [v, w] : items) total_weight += w;
  const double target = q * static_cast<double>(total_weight);
  uint64_t cumulative = 0;
  for (const auto& [v, w] : items) {
    cumulative += w;
    if (static_cast<double>(cumulative) >= target) return v;
  }
  return max_;
}

double KllSketch::Rank(double value) const {
  SKETCHML_CHECK_GT(count_, 0u);
  const auto items = SortedItems();
  uint64_t total_weight = 0;
  uint64_t below = 0;
  for (const auto& [v, w] : items) {
    total_weight += w;
    if (v <= value) below += w;
  }
  return static_cast<double>(below) / static_cast<double>(total_weight);
}

double KllSketch::Min() const {
  SKETCHML_CHECK_GT(count_, 0u);
  return min_;
}

double KllSketch::Max() const {
  SKETCHML_CHECK_GT(count_, 0u);
  return max_;
}

void KllSketch::Merge(const KllSketch& other) {
  if (other.count_ == 0) return;
  const bool instrumented = obs::MetricsEnabled();
  const uint64_t start_ns = instrumented ? obs::NowNs() : 0;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  while (levels_.size() < other.levels_.size()) levels_.emplace_back();
  for (size_t level = 0; level < other.levels_.size(); ++level) {
    auto& dst = levels_[level];
    const auto& src = other.levels_[level];
    dst.insert(dst.end(), src.begin(), src.end());
  }
  // Restore capacity invariants.
  for (int level = 0; level < static_cast<int>(levels_.size()); ++level) {
    if (levels_[level].size() >= LevelCapacity(level)) Compact(level);
  }
  if (instrumented) {
    auto& registry = obs::MetricsRegistry::Global();
    static const obs::Counter merges = registry.GetCounter("sketch/kll/merges");
    static const obs::Histogram merge_ns =
        registry.GetHistogram("sketch/kll/merge_ns");
    merges.Increment();
    merge_ns.Record(static_cast<double>(obs::NowNs() - start_ns));
  }
  SKETCHML_DCHECK(InvariantsHold());
}

size_t KllSketch::NumRetained() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

}  // namespace sketchml::sketch
