#include "sketch/gk_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/obs.h"

namespace sketchml::sketch {

GkSketch::GkSketch(double epsilon) : epsilon_(epsilon) {
  SKETCHML_CHECK(epsilon > 0.0 && epsilon < 0.5);
  compress_every_ =
      std::max<uint64_t>(1, static_cast<uint64_t>(1.0 / (2.0 * epsilon_)));
}

void GkSketch::Update(double value) {
  // Find the insertion point: first tuple with value >= new value.
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), value,
      [](const Tuple& t, double v) { return t.value < v; });

  uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insertion: the new tuple may sit anywhere inside the rank
    // band of its neighborhood, so it inherits the allowed uncertainty.
    const uint64_t band =
        static_cast<uint64_t>(std::floor(2.0 * epsilon_ * count_));
    delta = band > 0 ? band - 1 : 0;
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;
  if (obs::MetricsEnabled()) {
    static const obs::Counter updates =
        obs::MetricsRegistry::Global().GetCounter("sketch/gk/updates");
    updates.Increment();
  }

  if (++since_compress_ >= compress_every_) {
    Compress();
    since_compress_ = 0;
  }
  SKETCHML_DCHECK(InvariantsHold());
}

bool GkSketch::InvariantsHold() const {
  if (tuples_.empty()) return count_ == 0;
  if (tuples_.front().delta != 0 || tuples_.back().delta != 0) return false;
  const uint64_t band = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::floor(2.0 * epsilon_ * static_cast<double>(count_))));
  uint64_t g_sum = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    if (t.g == 0) return false;                            // Gaps are counts.
    if (i > 0 && tuples_[i - 1].value > t.value) return false;  // Sorted.
    if (t.g + t.delta > band) return false;                // GK band bound.
    g_sum += t.g;
  }
  return g_sum == count_;  // No rank mass lost by Compress.
}

void GkSketch::Compress() {
  if (tuples_.size() < 3) return;
  if (obs::MetricsEnabled()) {
    static const obs::Counter compressions =
        obs::MetricsRegistry::Global().GetCounter("sketch/gk/compressions");
    compressions.Increment();
  }
  const uint64_t threshold =
      static_cast<uint64_t>(std::floor(2.0 * epsilon_ * count_));
  if (threshold == 0) return;

  // Standard GK compress: scan right-to-left, folding tuple i into its
  // successor when the merged tuple's rank band (g_i + g_{i+1} + Δ_{i+1})
  // stays below the threshold. The min (first) and max (last) tuples are
  // never removed, so Min()/Max() stay exact.
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  kept.push_back(tuples_.back());
  for (size_t idx = tuples_.size() - 1; idx-- > 1;) {
    Tuple& successor = kept.back();  // Tuple to the right of tuples_[idx].
    const Tuple& cur = tuples_[idx];
    if (cur.g + successor.g + successor.delta < threshold) {
      successor.g += cur.g;  // Fold cur into its successor.
    } else {
      kept.push_back(cur);
    }
  }
  kept.push_back(tuples_.front());
  std::reverse(kept.begin(), kept.end());
  tuples_ = std::move(kept);
  SKETCHML_DCHECK(InvariantsHold());
}

double GkSketch::Quantile(double q) const {
  SKETCHML_CHECK_GT(count_, 0u);
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                q * static_cast<double>(count_))));

  // Return the value of the tuple whose rank band is closest to `target`;
  // by the GK invariant this is within epsilon * n of the true rank.
  uint64_t rmin = 0;
  double best_value = tuples_.front().value;
  double best_error = std::numeric_limits<double>::infinity();
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const uint64_t rmax = rmin + t.delta;
    const double mid =
        0.5 * (static_cast<double>(rmin) + static_cast<double>(rmax));
    const double err = std::abs(mid - static_cast<double>(target));
    if (err < best_error) {
      best_error = err;
      best_value = t.value;
    }
  }
  return best_value;
}

double GkSketch::Min() const {
  SKETCHML_CHECK(!tuples_.empty());
  return tuples_.front().value;
}

double GkSketch::Max() const {
  SKETCHML_CHECK(!tuples_.empty());
  return tuples_.back().value;
}

}  // namespace sketchml::sketch
