#ifndef SKETCHML_ANALYSIS_PASSES_H_
#define SKETCHML_ANALYSIS_PASSES_H_

// The four cross-TU semantic passes behind tools/sketchml_analyze.
//
//   layering  — the include graph must respect the layer DAG
//               (common -> sketch -> compress -> core -> ml -> dist ->
//               tools; src/analysis is std-only) and contain no cycles.
//   wire      — every Serialize/SerializeTail/SaveState has its matching
//               Deserialize/MergeSerialized/RestoreState, and the two
//               bodies issue the same Write*/Read* field sequence
//               (width + order), so wire/checkpoint format drift fails
//               the build instead of a golden test.
//   names     — metric and trace-span string literals consumed in
//               reports, trace analysis, and docs must have a matching
//               registration/emission site; near-miss typos are called
//               out explicitly.
//   replay    — call-graph reachability from replay-critical entry
//               points (trainer epoch loop, codec Encode/Decode, fault
//               and membership oracles) must not hit wall-clock or
//               ambient-randomness primitives outside the sanctioned
//               common/ wrappers. NOLINT does not clear a finding here:
//               a deterministic path that needs an exception must be
//               baselined with a justification.
//
// Intentional violations live in a checked-in baseline file (one
// `<pass> <key> <justification>` line each); stale entries are findings
// themselves so the escape hatch cannot rot.

#include <map>
#include <string>
#include <vector>

#include "analysis/project_model.h"

namespace sketchml::analysis {

struct Finding {
  std::string pass;  // "layering", "wire", "names", or "replay".
  std::string key;   // Stable, space-free baseline key.
  std::string file;  // Repo-relative path for display ("" for global).
  size_t line = 0;   // 1-based; 0 when not tied to a line.
  std::string message;
};

struct AnalyzeOptions {
  // Replay-pass entry points, matched as substrings of qualified
  // function names. Empty means the built-in replay-critical set.
  std::vector<std::string> replay_entries;
  // Directory of *.md files scanned by the names pass for metric
  // references; "" disables doc scanning.
  std::string docs_dir;
};

std::vector<Finding> RunLayeringPass(const ProjectModel& model);
std::vector<Finding> RunWirePass(const ProjectModel& model);
std::vector<Finding> RunNamesPass(const ProjectModel& model,
                                  const AnalyzeOptions& options);
std::vector<Finding> RunReplayPass(const ProjectModel& model,
                                   const AnalyzeOptions& options);

/// Baseline of intentional findings: (pass, key) -> justification.
struct Baseline {
  std::map<std::pair<std::string, std::string>, std::string> entries;
};

/// Parses a baseline file. Each non-blank, non-# line is
/// `<pass> <key> <justification...>`; a missing justification or unknown
/// pass id is a config error (returns false and sets `error`).
bool ParseBaseline(const std::string& text, Baseline* baseline,
                   std::string* error);

/// Removes findings whose (pass, key) appears in `baseline` and appends
/// one "stale baseline entry" finding for every baseline entry (of a
/// pass id in `passes_run`) that suppressed nothing.
std::vector<Finding> ApplyBaseline(std::vector<Finding> findings,
                                   const Baseline& baseline,
                                   const std::vector<std::string>& passes_run);

}  // namespace sketchml::analysis

#endif  // SKETCHML_ANALYSIS_PASSES_H_
