#ifndef SKETCHML_ANALYSIS_STRIPPED_SOURCE_H_
#define SKETCHML_ANALYSIS_STRIPPED_SOURCE_H_

// Shared source-model tokenizer for the repo's static-analysis tools.
//
// Both `tools/sketchml_lint` (per-file rules) and `tools/sketchml_analyze`
// (whole-project semantic passes) analyze the same stripped view of a
// source file: comments and string/char literal *contents* blanked out
// (replaced by spaces, preserving line structure and column positions) so
// token matching never fires inside them, plus the raw comment text per
// line for NOLINT handling and the untouched raw lines for the few checks
// that genuinely need literal text (quoted #include paths, trace-category
// literals). Keeping one implementation here is what stops the two tools
// from drifting: a tokenizer fix lands in both at once.
//
// This library is deliberately dependency-free (standard library only) so
// CI can compile the analyzers with a bare `g++` invocation, outside the
// CMake build, and so it sits at the very bottom of the layer DAG the
// layering pass itself enforces.

#include <string>
#include <string_view>
#include <vector>

namespace sketchml::analysis {

/// One file split into lines, with comments and string/char literal
/// contents blanked out.
struct StrippedSource {
  std::string path;  // As reported in diagnostics.
  std::string rel;   // Repo-relative with forward slashes, for scoping.
  std::vector<std::string> code;      // Line with comments/strings blanked.
  std::vector<std::string> comments;  // Comment text on each line ("" if none).
  std::vector<std::string> raw;       // Untouched source lines (for matching
                                      // quoted #include paths).
};

/// Blanks comments and literal contents, preserving line structure and
/// column positions. Tracks enough state for //, /* */, "...", '...', and
/// raw strings R"delim(...)delim".
StrippedSource StripToCode(const std::string& path, const std::string& rel,
                           const std::string& text);

/// True for characters that can appear inside an identifier.
bool IsIdentChar(char c);

/// True when `needle` occurs in `line` at a token boundary (no identifier
/// character on either side).
bool ContainsToken(std::string_view line, std::string_view needle);

/// True when `prefix` begins an identifier in `line` (no identifier
/// character to its left); the token may continue to the right, matching
/// whole identifier families like _mm256_* or __m128/__m128d/__m128i.
bool ContainsTokenPrefix(std::string_view line, std::string_view prefix);

/// True when `needle` occurs at a token boundary and is immediately
/// followed (modulo spaces) by an opening parenthesis — i.e. a call.
bool ContainsCall(std::string_view line, std::string_view needle);

/// Suppression lookup: `rule` is suppressed on `line_idx` if that line's
/// comment (or the previous line's via NOLINTNEXTLINE) names it — or
/// names no rule at all (a bare NOLINT suppresses everything; the
/// sketchml-nolint-justification audit in sketchml_lint flags those).
bool Suppressed(const StrippedSource& file, size_t line_idx,
                const std::string& rule);

/// String literals on line `line_idx`, read from the raw text using the
/// stripped line's quote positions (so quotes inside comments or char
/// literals never confuse the extraction). Raw strings yield their first
/// line only; multi-line literal tails are skipped.
std::vector<std::string> StringLiteralsOnLine(const StrippedSource& file,
                                              size_t line_idx);

/// Repo-relative path with forward slashes: the longest suffix starting
/// at a known top-level directory (src/, tests/, tools/, bench/,
/// examples/, docs/), else the whole path.
std::string RepoRelative(const std::string& generic_path);

}  // namespace sketchml::analysis

#endif  // SKETCHML_ANALYSIS_STRIPPED_SOURCE_H_
