#include "analysis/project_model.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace sketchml::analysis {
namespace {

// Tokens the function scanner must never treat as a callee or a function
// name: control flow, operators that read like calls, and declaration
// keywords that precede a '(' in function-pointer types.
const std::set<std::string, std::less<>>& NonCalleeKeywords() {
  static const std::set<std::string, std::less<>> kSet = {
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "alignof",  "alignas",  "decltype",
      "noexcept", "throw",    "new",      "delete",   "static_assert",
      "assert",   "defined",  "void",     "int",      "bool",
      "char",     "double",   "float",    "auto",     "unsigned",
      "signed",   "long",     "short",    "const",    "constexpr",
      "consteval","constinit","static",   "inline",   "explicit",
      "virtual",  "typename", "case",     "default",  "do",
      "else",     "goto",     "requires", "co_await", "co_return",
      "co_yield", "operator", "not",      "and",      "or",
  };
  return kSet;
}

struct Tok {
  std::string text;
  size_t line = 0;  // 1-based.
};

bool IsIdentTok(const std::string& t) {
  return !t.empty() && (IsIdentChar(t[0]) && !std::isdigit(
                            static_cast<unsigned char>(t[0])));
}

// Tokenizes the stripped code: identifiers/numbers, "::" as one token,
// string/char literals as single '"' / '\'' tokens, all other punctuation
// one char per token. Preprocessor directive lines (and their backslash
// continuations) are skipped entirely so macro definitions never skew the
// brace/scope tracking.
std::vector<Tok> Tokenize(const StrippedSource& src) {
  std::vector<Tok> toks;
  bool in_directive = false;
  for (size_t li = 0; li < src.code.size(); ++li) {
    const std::string& line = src.code[li];
    if (!in_directive) {
      size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') {
        in_directive = true;
      }
    }
    if (in_directive) {
      const std::string& raw =
          li < src.raw.size() ? src.raw[li] : std::string();
      const size_t last = raw.find_last_not_of(" \t");
      in_directive = last != std::string::npos && raw[last] == '\\';
      continue;
    }
    for (size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (c == ' ' || c == '\t') {
        ++i;
      } else if (IsIdentChar(c)) {
        size_t j = i + 1;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        toks.push_back({line.substr(i, j - i), li + 1});
        i = j;
      } else if (c == '"' || c == '\'') {
        // Literal contents are blanked; find the closer on this line.
        const size_t close = line.find(c, i + 1);
        toks.push_back({std::string(1, c), li + 1});
        i = close == std::string::npos ? line.size() : close + 1;
      } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        toks.push_back({"::", li + 1});
        i += 2;
      } else {
        toks.push_back({std::string(1, c), li + 1});
        ++i;
      }
    }
  }
  return toks;
}

// Index of the token matching the '(' (or '{', '<') at `open`, or
// toks.size() when unbalanced.
size_t MatchGroup(const std::vector<Tok>& toks, size_t open,
                  const std::string& open_tok, const std::string& close_tok) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == open_tok) ++depth;
    if (toks[i].text == close_tok && --depth == 0) return i;
  }
  return toks.size();
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind;
  std::string name;
  int function_index = -1;  // For kFunction: index into model->functions.
};

bool InsideFunction(const std::vector<Scope>& scopes) {
  for (const Scope& s : scopes) {
    if (s.kind == Scope::kFunction) return true;
  }
  return false;
}

// Walks qualifier tokens leftward from the name token at `name_idx`
// ("A::B::name", "Class<T>::name", "~Class") and returns {qualifier
// chain without the name, first token index of the whole reference}.
std::pair<std::vector<std::string>, size_t> WalkQualifiers(
    const std::vector<Tok>& toks, size_t name_idx) {
  std::vector<std::string> parts;
  size_t j = name_idx;
  while (j >= 2 && toks[j - 1].text == "::") {
    size_t k = j - 2;
    if (toks[k].text == ">") {
      // Skip a template argument list backwards to its '<'.
      int depth = 0;
      while (k > 0) {
        if (toks[k].text == ">") ++depth;
        if (toks[k].text == "<" && --depth == 0) break;
        --k;
      }
      if (k == 0 || !IsIdentTok(toks[k - 1].text)) break;
      --k;
    }
    if (!IsIdentTok(toks[k].text)) break;
    parts.insert(parts.begin(), toks[k].text);
    j = k;
  }
  return {parts, j};
}

std::string JoinScopes(const std::vector<Scope>& scopes,
                       const std::vector<std::string>& quals,
                       const std::string& name) {
  std::string out;
  for (const Scope& s : scopes) {
    if ((s.kind == Scope::kNamespace || s.kind == Scope::kClass) &&
        !s.name.empty()) {
      out += s.name;
      out += "::";
    }
  }
  for (const std::string& q : quals) {
    out += q;
    out += "::";
  }
  out += name;
  return out;
}

void ScanFunctions(const std::vector<Tok>& toks, int file_index,
                   ProjectModel* model) {
  std::vector<Scope> scopes;
  size_t i = 0;
  const auto pop_scope = [&](size_t close_line) {
    if (scopes.empty()) return;
    if (scopes.back().kind == Scope::kFunction &&
        scopes.back().function_index >= 0) {
      model->functions[scopes.back().function_index].body_end = close_line;
    }
    scopes.pop_back();
  };
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    const bool in_fn = InsideFunction(scopes);
    if (t == "{") {
      scopes.push_back({Scope::kBlock, "", -1});
      ++i;
      continue;
    }
    if (t == "}") {
      pop_scope(toks[i].line);
      ++i;
      continue;
    }
    if (in_fn) {
      // Inside a body: record call sites only.
      if (IsIdentTok(t) && i + 1 < toks.size() && toks[i + 1].text == "(" &&
          NonCalleeKeywords().count(t) == 0) {
        const auto [quals, first] = WalkQualifiers(toks, i);
        (void)first;
        std::string qualified;
        for (const std::string& q : quals) {
          qualified += q;
          qualified += "::";
        }
        qualified += t;
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
          if (it->kind == Scope::kFunction && it->function_index >= 0) {
            model->functions[it->function_index].calls.push_back(
                {t, qualified, toks[i].line});
            break;
          }
        }
      }
      ++i;
      continue;
    }
    // Declaration scope (global / namespace / class body).
    if (t == "namespace") {
      std::string name;
      size_t j = i + 1;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";" &&
             toks[j].text != "=") {
        name += toks[j].text;
        ++j;
      }
      if (j < toks.size() && toks[j].text == "{") {
        scopes.push_back({Scope::kNamespace, name, -1});
        i = j + 1;
      } else {
        // Alias or declaration: skip past the ';'.
        while (j < toks.size() && toks[j].text != ";") ++j;
        i = j + 1;
      }
      continue;
    }
    if ((t == "class" || t == "struct") &&
        (i == 0 || toks[i - 1].text != "enum")) {
      std::string name;
      size_t j = i + 1;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";" &&
             toks[j].text != ":") {
        if (toks[j].text == "(") {
          j = MatchGroup(toks, j, "(", ")") + 1;  // Attribute macro args.
          continue;
        }
        if (toks[j].text == "<") {
          j = MatchGroup(toks, j, "<", ">") + 1;  // Template-id (spec.).
          continue;
        }
        if (IsIdentTok(toks[j].text) && toks[j].text != "final" &&
            toks[j].text != "alignas") {
          name = toks[j].text;
        }
        ++j;
      }
      if (j < toks.size() && toks[j].text == ":") {
        // Base clause: scan to the '{' (or ';' defensively).
        while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
          ++j;
        }
      }
      if (j < toks.size() && toks[j].text == "{") {
        scopes.push_back({Scope::kClass, name, -1});
      }
      i = j + 1;
      continue;
    }
    if (t == "enum" || t == "union") {
      size_t j = i + 1;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
        ++j;
      }
      if (j < toks.size() && toks[j].text == "{") {
        j = MatchGroup(toks, j, "{", "}");
      }
      i = j + 1;
      continue;
    }
    if (t == "using" || t == "typedef" || t == "friend") {
      size_t j = i + 1;
      while (j < toks.size() && toks[j].text != ";") ++j;
      i = j + 1;
      continue;
    }
    if (t == "template" && i + 1 < toks.size() && toks[i + 1].text == "<") {
      i = MatchGroup(toks, i + 1, "<", ">") + 1;
      continue;
    }
    if (IsIdentTok(t) && i + 1 < toks.size() && toks[i + 1].text == "(" &&
        NonCalleeKeywords().count(t) == 0) {
      // Function-definition candidate. Resolve the name (destructor tilde
      // and explicit qualifiers), then walk the signature to decide
      // definition vs. declaration.
      std::string name = t;
      size_t name_first = i;
      if (i > 0 && toks[i - 1].text == "~") {
        name = "~" + name;
        name_first = i - 1;
      }
      const auto [quals, first] = WalkQualifiers(toks, name_first);
      (void)first;
      const size_t lparen = i + 1;
      size_t rparen = MatchGroup(toks, lparen, "(", ")");
      size_t j = rparen + 1;
      bool is_def = false;
      size_t body_lbrace = 0;
      while (j < toks.size()) {
        const std::string& s = toks[j].text;
        if (s == "{") {
          is_def = true;
          body_lbrace = j;
          break;
        }
        if (s == ";" || s == "=" || s == ",") break;
        if (s == ":") {
          // Constructor initializer list: skip `member(init)` /
          // `member{init}` groups until the body brace.
          ++j;
          while (j < toks.size()) {
            while (j < toks.size() && toks[j].text != "(" &&
                   toks[j].text != "{" && toks[j].text != ";") {
              ++j;
            }
            if (j >= toks.size() || toks[j].text == ";") break;
            const bool paren = toks[j].text == "(";
            j = MatchGroup(toks, j, paren ? "(" : "{", paren ? ")" : "}") + 1;
            if (j < toks.size() && toks[j].text == ",") {
              ++j;
              continue;
            }
            break;
          }
          if (j < toks.size() && toks[j].text == "{") {
            is_def = true;
            body_lbrace = j;
          }
          break;
        }
        if (s == "(") {
          j = MatchGroup(toks, j, "(", ")") + 1;  // Trailing attr macro.
          continue;
        }
        ++j;
      }
      if (!is_def) {
        i = lparen + 1;
        continue;
      }
      FunctionDef def;
      def.name = name;
      def.qualified = JoinScopes(scopes, quals, name);
      if (!quals.empty()) {
        def.owner = quals.back();
      } else {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
          if (it->kind == Scope::kClass) {
            def.owner = it->name;
            break;
          }
        }
      }
      def.file = file_index;
      def.line = toks[lparen].line;
      def.body_begin = toks[body_lbrace].line;
      def.body_end = toks[body_lbrace].line;  // Fixed up at the close brace.
      const int fn_index = static_cast<int>(model->functions.size());
      model->functions.push_back(std::move(def));
      scopes.push_back({Scope::kFunction, name, fn_index});
      i = body_lbrace + 1;
      continue;
    }
    ++i;
  }
  // Unterminated scopes (unbalanced preprocessor branches): close at EOF.
  while (!scopes.empty()) {
    pop_scope(toks.empty() ? 0 : toks.back().line);
  }
}

void ExtractIncludes(ProjectFile* pf) {
  for (size_t li = 0; li < pf->src.raw.size(); ++li) {
    const std::string& raw = pf->src.raw[li];
    size_t p = raw.find_first_not_of(" \t");
    if (p == std::string::npos || raw[p] != '#') continue;
    p = raw.find_first_not_of(" \t", p + 1);
    if (p == std::string::npos || raw.compare(p, 7, "include") != 0) continue;
    p = raw.find_first_not_of(" \t", p + 7);
    if (p == std::string::npos || raw[p] != '"') continue;
    const size_t close = raw.find('"', p + 1);
    if (close == std::string::npos) continue;
    pf->includes.push_back(raw.substr(p + 1, close - p - 1));
    pf->include_lines.push_back(li + 1);
  }
}

}  // namespace

int ProjectModel::FileIndex(std::string_view rel) const {
  for (size_t i = 0; i < files.size(); ++i) {
    if (files[i].src.rel == rel) return static_cast<int>(i);
  }
  return -1;
}

std::vector<const FunctionDef*> ProjectModel::MethodsOf(
    std::string_view owner) const {
  std::vector<const FunctionDef*> out;
  for (const FunctionDef& f : functions) {
    if (f.owner == owner) out.push_back(&f);
  }
  return out;
}

void AddFileToModel(StrippedSource src, ProjectModel* model) {
  const int file_index = static_cast<int>(model->files.size());
  model->files.push_back({std::move(src), {}, {}});
  ProjectFile& pf = model->files.back();
  ExtractIncludes(&pf);
  const std::vector<Tok> toks = Tokenize(pf.src);
  const size_t first_fn = model->functions.size();
  ScanFunctions(toks, file_index, model);
  for (size_t fi = first_fn; fi < model->functions.size(); ++fi) {
    FunctionDef& def = model->functions[fi];
    for (size_t li = def.body_begin; li <= def.body_end &&
                    li - 1 < pf.src.code.size(); ++li) {
      for (std::string& lit : StringLiteralsOnLine(pf.src, li - 1)) {
        def.literals.emplace_back(std::move(lit), li);
      }
    }
    model->functions_by_name[def.name].push_back(static_cast<int>(fi));
  }
}

bool LoadProjectTree(const std::string& root,
                     const std::vector<std::string>& subdirs,
                     ProjectModel* model, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const fs::path& p = it->path();
      // Fixture trees are analyzed with the fixture directory itself as
      // the root, so only skip them when they are nested *below* the
      // scanned subdir — not when the root already points inside one.
      const std::string below = fs::relative(p, dir, ec).generic_string();
      if (below.find("lint_fixtures") != std::string::npos ||
          below.find("analysis_fixtures") != std::string::npos) {
        continue;
      }
      const std::string ext = p.extension().string();
      if (ext == ".h" || ext == ".cc") paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::ifstream in(p);
    if (!in) {
      if (error) *error = "cannot read " + p.string();
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string generic = p.generic_string();
    AddFileToModel(StripToCode(generic, RepoRelative(generic), buf.str()),
                   model);
  }
  return true;
}

}  // namespace sketchml::analysis
