#ifndef SKETCHML_ANALYSIS_PROJECT_MODEL_H_
#define SKETCHML_ANALYSIS_PROJECT_MODEL_H_

// Whole-project source model for cross-translation-unit analysis.
//
// `tools/sketchml_lint` reasons about one file at a time; the semantic
// passes in `tools/sketchml_analyze` need properties no single TU can
// show: the include graph (layering, cycles), matched serialize/
// deserialize method pairs (wire-format symmetry), registration vs.
// consumption of metric/trace name literals, and call-graph reachability
// (replay purity). This model is the shared substrate: every scanned
// file stripped to code (see stripped_source.h), its quoted project
// includes, and a heuristic function index — qualified name, owning
// class, body line range, call sites, and string literals per function.
//
// The function scanner is deliberately an 80% parser: it tracks brace
// depth, namespace/class scopes, and distinguishes definitions from
// declarations by walking a signature to `{` vs `;`. That is enough to
// index every function in this repo; pathological C++ that confuses it
// degrades analysis coverage, never correctness of the build.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/stripped_source.h"

namespace sketchml::analysis {

/// One identifier-followed-by-'(' occurrence inside a function body.
struct CallSite {
  std::string name;       // Callee as written, without qualifiers.
  std::string qualified;  // With any explicit A::B:: qualifier chain.
  size_t line = 0;        // 1-based.
};

/// One function (or method) definition.
struct FunctionDef {
  std::string name;       // Unqualified name.
  std::string qualified;  // namespace::Class::name as resolvable from the
                          // scope stack plus explicit qualifiers.
  std::string owner;      // Innermost class (scope or explicit qualifier),
                          // "" for free functions.
  int file = -1;          // Index into ProjectModel::files.
  size_t line = 0;        // 1-based line of the signature's '('.
  size_t body_begin = 0;  // 1-based first line of the body (the '{').
  size_t body_end = 0;    // 1-based line of the closing '}'.
  std::vector<CallSite> calls;
  std::vector<std::pair<std::string, size_t>> literals;  // (text, line).
};

/// One scanned file.
struct ProjectFile {
  StrippedSource src;
  std::vector<std::string> includes;  // Quoted project-relative includes.
  std::vector<size_t> include_lines;  // 1-based, aligned with `includes`.
};

struct ProjectModel {
  std::vector<ProjectFile> files;
  std::vector<FunctionDef> functions;
  // Unqualified name -> indices into `functions`.
  std::map<std::string, std::vector<int>, std::less<>> functions_by_name;

  /// Index of the file whose repo-relative path is `rel`, or -1.
  int FileIndex(std::string_view rel) const;

  /// All functions defined in class/struct `owner`.
  std::vector<const FunctionDef*> MethodsOf(std::string_view owner) const;
};

/// Parses one stripped file into the model: appends the file, extracts
/// its includes, and indexes its function definitions.
void AddFileToModel(StrippedSource src, ProjectModel* model);

/// Loads every .h/.cc under `root`/<subdir> for each subdir (links
/// followed; paths containing "lint_fixtures" or "analysis_fixtures"
/// *below* the scanned subdir are skipped, so a fixture tree can itself
/// be the root) and builds the model. Returns false and sets `error`
/// when a subdir exists but a file cannot be read; nonexistent subdirs
/// are silently skipped so fixture trees can be partial.
bool LoadProjectTree(const std::string& root,
                     const std::vector<std::string>& subdirs,
                     ProjectModel* model, std::string* error);

}  // namespace sketchml::analysis

#endif  // SKETCHML_ANALYSIS_PROJECT_MODEL_H_
