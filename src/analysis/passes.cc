#include "analysis/passes.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace sketchml::analysis {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers.

std::string LayerOf(const std::string& rel) {
  if (rel.rfind("tools/", 0) == 0) return "tools";
  if (rel.rfind("src/", 0) != 0) return "";
  const size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

// Edit distance with early-out; used for near-miss typo suggestions.
size_t EditDistance(std::string_view a, std::string_view b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string NearMiss(const std::string& needle,
                     const std::set<std::string>& candidates) {
  std::string best;
  size_t best_dist = 3;  // Suggest only within edit distance 2.
  for (const std::string& c : candidates) {
    const size_t d = EditDistance(needle, c);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

// Literals on `line` (1-based) and the following `extra` lines, in source
// order — metric/span call arguments regularly wrap one line.
std::vector<std::string> LiteralsNear(const StrippedSource& src, size_t line,
                                      size_t extra) {
  std::vector<std::string> out;
  for (size_t li = line; li <= line + extra; ++li) {
    if (li == 0 || li > src.code.size()) break;
    for (std::string& lit : StringLiteralsOnLine(src, li - 1)) {
      out.push_back(std::move(lit));
    }
  }
  return out;
}

// Resolves a quoted include ("common/foo.h") to the rel path of a scanned
// file, or "" when the target is outside the model (system-ish include).
std::string ResolveInclude(const ProjectModel& model, const std::string& inc) {
  if (model.FileIndex("src/" + inc) >= 0) return "src/" + inc;
  if (model.FileIndex(inc) >= 0) return inc;
  return "";
}

// Transitive include closure of every file (rel -> set of reachable rels).
std::map<std::string, std::set<std::string>> IncludeClosures(
    const ProjectModel& model) {
  std::map<std::string, std::vector<std::string>> direct;
  for (const ProjectFile& pf : model.files) {
    std::vector<std::string>& out = direct[pf.src.rel];
    for (const std::string& inc : pf.includes) {
      const std::string target = ResolveInclude(model, inc);
      if (!target.empty()) out.push_back(target);
    }
  }
  std::map<std::string, std::set<std::string>> closures;
  for (const auto& [rel, _] : direct) {
    std::set<std::string>& closure = closures[rel];
    std::vector<std::string> stack{rel};
    while (!stack.empty()) {
      const std::string cur = std::move(stack.back());
      stack.pop_back();
      const auto it = direct.find(cur);
      if (it == direct.end()) continue;
      for (const std::string& next : it->second) {
        if (closure.insert(next).second) stack.push_back(next);
      }
    }
  }
  return closures;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: layering.

std::vector<Finding> RunLayeringPass(const ProjectModel& model) {
  // Directed layer DAG. A layer may include itself and anything listed.
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {"common"}},
      {"analysis", {"analysis"}},  // std-only: bottom of the DAG.
      {"sketch", {"sketch", "common"}},
      {"compress", {"compress", "sketch", "common"}},
      {"core", {"core", "compress", "sketch", "common"}},
      {"ml", {"ml", "core", "compress", "sketch", "common"}},
      {"dist", {"dist", "ml", "core", "compress", "sketch", "common"}},
  };
  std::vector<Finding> findings;
  for (const ProjectFile& pf : model.files) {
    const std::string layer = LayerOf(pf.src.rel);
    if (layer.empty() || layer == "tools") continue;  // tools: top of DAG.
    const auto allowed_it = kAllowed.find(layer);
    for (size_t i = 0; i < pf.includes.size(); ++i) {
      const std::string& inc = pf.includes[i];
      const size_t slash = inc.find('/');
      if (slash == std::string::npos) continue;
      const std::string target = inc.substr(0, slash);
      if (kAllowed.find(target) == kAllowed.end()) continue;  // Not a layer.
      const bool ok = allowed_it != kAllowed.end() &&
                      allowed_it->second.count(target) > 0;
      if (!ok) {
        std::string allowed_list;
        if (allowed_it != kAllowed.end()) {
          for (const std::string& a : allowed_it->second) {
            if (!allowed_list.empty()) allowed_list += ", ";
            allowed_list += a;
          }
        }
        findings.push_back(
            {"layering", pf.src.rel + "->" + inc, pf.src.rel,
             pf.include_lines[i],
             "layer '" + layer + "' may not include \"" + inc +
                 "\" (allowed layers: " + allowed_list +
                 "); invert the dependency or add a seam in a lower layer"});
      }
    }
  }

  // File-level include cycles (any cycle breaks the DAG regardless of
  // layer labels). Iterative coloring DFS; each cycle reported once,
  // keyed by its lexicographically smallest member.
  std::map<std::string, std::vector<std::string>> edges;
  for (const ProjectFile& pf : model.files) {
    std::vector<std::string>& out = edges[pf.src.rel];
    for (const std::string& inc : pf.includes) {
      const std::string target = ResolveInclude(model, inc);
      if (!target.empty()) out.push_back(target);
    }
  }
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black.
  std::set<std::string> reported;
  std::vector<std::string> path;
  // Explicit stack of (node, next-edge-index) to avoid recursion.
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        path.push_back(node);
        for (const std::string& next : edges[node]) {
          if (color[next] == 1) {
            auto it = std::find(path.begin(), path.end(), next);
            std::vector<std::string> cycle(it, path.end());
            const std::string key =
                "cycle:" + *std::min_element(cycle.begin(), cycle.end());
            if (reported.insert(key).second) {
              std::string msg = "include cycle: ";
              for (const std::string& n : cycle) msg += n + " -> ";
              msg += next;
              findings.push_back({"layering", key, next, 0, msg});
            }
          } else if (color[next] == 0) {
            dfs(next);
          }
        }
        path.pop_back();
        color[node] = 2;
      };
  for (const auto& [rel, _] : edges) {
    if (color[rel] == 0) dfs(rel);
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 2: wire-format symmetry.

namespace {

const std::map<std::string, std::string>& WriterToReader() {
  static const std::map<std::string, std::string> kPairs = {
      {"Serialize", "Deserialize"},
      {"SerializeTail", "MergeSerialized"},
      {"SaveState", "RestoreState"},
  };
  return kPairs;
}

bool IsPairName(const std::string& name) {
  for (const auto& [w, r] : WriterToReader()) {
    if (name == w || name == r) return true;
  }
  return false;
}

std::string MapWireSuffix(const std::string& suffix) {
  static const std::map<std::string, std::string> kWidths = {
      {"U8", "u8"},       {"U16", "u16"},     {"U32", "u32"},
      {"U64", "u64"},     {"I8", "i8"},       {"I16", "i16"},
      {"I32", "i32"},     {"I64", "i64"},     {"Float", "f32"},
      {"Double", "f64"},  {"Varint", "varint"}, {"UintN", "uintN"},
      {"Raw", "bytes"},   {"Bytes", "bytes"}, {"Span", "bytes"},
  };
  const auto it = kWidths.find(suffix);
  return it != kWidths.end() ? it->second : "helper:" + suffix;
}

// The ordered wire-op sequence a body issues: byte widths for
// Write*/Read* calls, "sub" for a nested pair-method call that actually
// targets the stream (the call line mentions `writer` or `reader` — an
// in-memory SaveState(uint64_t[]) on an RNG is not a wire op), and
// matching "helper:X" for project helpers like WriteVector/ReadVector.
std::vector<std::string> WireOps(const ProjectModel& model,
                                 const FunctionDef& def) {
  std::vector<std::string> ops;
  const StrippedSource& src = model.files[def.file].src;
  for (const CallSite& call : def.calls) {
    const std::string& n = call.name;
    if (IsPairName(n)) {
      const std::string& line =
          call.line - 1 < src.code.size() ? src.code[call.line - 1] : "";
      if (ContainsToken(line, "writer") || ContainsToken(line, "reader")) {
        ops.push_back("sub");
      }
      continue;
    }
    if (n.rfind("Write", 0) == 0 && n.size() > 5 &&
        std::isupper(static_cast<unsigned char>(n[5]))) {
      ops.push_back(MapWireSuffix(n.substr(5)));
    } else if (n.rfind("Read", 0) == 0 && n.size() > 4 &&
               std::isupper(static_cast<unsigned char>(n[4]))) {
      ops.push_back(MapWireSuffix(n.substr(4)));
    }
  }
  return ops;
}

std::string JoinOps(const std::vector<std::string>& ops) {
  if (ops.empty()) return "(none)";
  std::string out;
  for (const std::string& op : ops) {
    if (!out.empty()) out += ",";
    out += op;
  }
  return out;
}

std::string PairKey(const ProjectModel& model, const FunctionDef& def) {
  if (!def.owner.empty()) return def.owner + "::" + def.name;
  return def.name + ":" + model.files[def.file].src.rel;
}

// The counterpart definition: same owner for methods, same file for free
// functions. Returns nullptr when none exists.
const FunctionDef* FindCounterpart(const ProjectModel& model,
                                   const FunctionDef& def,
                                   const std::string& paired_name) {
  const auto it = model.functions_by_name.find(paired_name);
  if (it == model.functions_by_name.end()) return nullptr;
  for (const int idx : it->second) {
    const FunctionDef& cand = model.functions[idx];
    if (!def.owner.empty() ? cand.owner == def.owner
                           : cand.owner.empty() && cand.file == def.file) {
      return &cand;
    }
  }
  return nullptr;
}

}  // namespace

std::vector<Finding> RunWirePass(const ProjectModel& model) {
  std::vector<Finding> findings;
  std::set<std::string> seen;  // One finding per (owner, pair).
  for (const FunctionDef& def : model.functions) {
    const auto writer_it = WriterToReader().find(def.name);
    if (writer_it != WriterToReader().end()) {
      if (!seen.insert(PairKey(model, def)).second) continue;
      const FunctionDef* reader =
          FindCounterpart(model, def, writer_it->second);
      const std::string& rel = model.files[def.file].src.rel;
      if (reader == nullptr) {
        findings.push_back(
            {"wire", PairKey(model, def), rel, def.line,
             def.name + " in " +
                 (def.owner.empty() ? "file " + rel : def.owner) +
                 " has no matching " + writer_it->second +
                 "; serialized state that cannot be read back is a wire-"
                 "format bug"});
        continue;
      }
      const std::vector<std::string> w_ops = WireOps(model, def);
      const std::vector<std::string> r_ops = WireOps(model, *reader);
      if (w_ops != r_ops) {
        findings.push_back(
            {"wire", PairKey(model, def), rel, def.line,
             def.qualified + " writes [" + JoinOps(w_ops) + "] but " +
                 reader->qualified + " reads [" + JoinOps(r_ops) +
                 "]; the field sequences (width + order) must match"});
      }
      continue;
    }
    // Reader with no writer: flag once from the reader side.
    for (const auto& [w, r] : WriterToReader()) {
      if (def.name != r) continue;
      if (FindCounterpart(model, def, w) != nullptr) continue;
      if (!seen.insert(PairKey(model, def)).second) continue;
      const std::string& rel = model.files[def.file].src.rel;
      findings.push_back(
          {"wire", PairKey(model, def), rel, def.line,
           def.name + " in " +
               (def.owner.empty() ? "file " + rel : def.owner) +
               " has no matching " + w +
               "; a reader without a writer usually means the pair was "
               "renamed on one side only"});
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 3: name-registry drift.

namespace {

// Span categories must come from the documented allowlist (mirrors the
// sketchml-trace-category lint rule and docs/observability.md).
bool IsTraceCategory(const std::string& s) {
  static const std::set<std::string> kCategories = {"trainer", "codec",
                                                    "network", "test",
                                                    "bench"};
  return kCategories.count(s) > 0;
}

bool LooksLikeMetricName(const std::string& s) {
  if (s.find('/') == std::string::npos) return false;
  if (s.front() == '/' || s.back() == '/') return false;
  for (const char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '/' ||
          c == '_' || c == '{' || c == '}' || c == '=' || c == ',')) {
      return false;
    }
  }
  return true;
}

std::string MetricBase(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

void AddOrphan(const std::string& kind, const std::string& needle,
               const std::set<std::string>& registered,
               const std::string& file, size_t line,
               std::set<std::string>* dedupe, std::vector<Finding>* out) {
  if (!dedupe->insert(needle).second) return;
  std::string msg = kind + " \"" + needle + "\" has no registration site";
  const std::string suggestion = NearMiss(needle, registered);
  if (!suggestion.empty()) {
    msg += "; did you mean \"" + suggestion + "\"?";
  } else {
    msg += "; register it or remove the stale consumer";
  }
  out->push_back({"names", needle, file, line, msg});
}

}  // namespace

std::vector<Finding> RunNamesPass(const ProjectModel& model,
                                  const AnalyzeOptions& options) {
  static const std::set<std::string> kRegisterCalls = {
      "GetCounter", "GetGauge", "GetHistogram", "Get"};
  static const std::set<std::string> kConsumeCalls = {
      "CounterValueOf", "GaugeValueOf", "FindHistogram",
      "FindSketch",     "SumCounters",  "LabeledName"};

  std::set<std::string> metric_bases;
  std::set<std::string> metric_prefixes;  // Dynamic names: "codec/" + field.
  std::set<std::string> span_categories;
  std::set<std::string> span_names;
  struct Consumption {
    std::string value;
    std::string file;
    size_t line;
  };
  std::vector<Consumption> metric_uses;
  std::vector<Consumption> category_uses;
  std::vector<Consumption> name_uses;

  // Metric registration and consumption ride on the call-site index.
  for (const FunctionDef& def : model.functions) {
    const StrippedSource& src = model.files[def.file].src;
    for (const CallSite& call : def.calls) {
      const bool reg = kRegisterCalls.count(call.name) > 0;
      const bool use = kConsumeCalls.count(call.name) > 0;
      if (!reg && !use) continue;
      for (const std::string& lit : LiteralsNear(src, call.line, 2)) {
        // A registration literal ending in '/' is a dynamic-name prefix:
        // `GetCounter(std::string("codec/") + field)` registers the whole
        // codec/* family.
        if (reg && lit.size() > 1 && lit.back() == '/' &&
            LooksLikeMetricName(lit.substr(0, lit.size() - 1) + "/x")) {
          metric_prefixes.insert(lit);
          break;
        }
        if (!LooksLikeMetricName(lit)) continue;
        if (reg) {
          metric_bases.insert(MetricBase(lit));
        } else {
          metric_uses.push_back({MetricBase(lit), src.rel, call.line});
        }
        break;  // First metric-shaped literal is the name argument.
      }
    }
  }

  // Span emission is line-based: `obs::TraceSpan s("cat", "name")` records
  // the *variable* as the call, so the model's call index cannot see it.
  for (const ProjectFile& pf : model.files) {
    const StrippedSource& src = pf.src;
    if (src.rel.rfind("src/common/trace.", 0) == 0) continue;  // API decl.
    for (size_t li = 0; li < src.code.size(); ++li) {
      const std::string& line = src.code[li];
      const bool emission = ContainsToken(line, "TraceSpan") ||
                            ContainsCall(line, "EmitSpan") ||
                            ContainsCall(line, "EmitSpanWithParent") ||
                            ContainsCall(line, "emplace");
      if (!emission) continue;
      const std::vector<std::string> lits = LiteralsNear(src, li + 1, 1);
      if (lits.empty() || !IsTraceCategory(lits[0])) continue;
      span_categories.insert(lits[0]);
      if (lits.size() > 1) span_names.insert(lits[1]);
    }
  }

  // Span consumption: IsSpan(span, "cat", "name") calls plus
  // `.category == "x"` / `.name == "y"` comparisons in the trace analyzer.
  for (const ProjectFile& pf : model.files) {
    const StrippedSource& src = pf.src;
    const bool analyzer = src.rel.find("trace_analysis") != std::string::npos;
    for (size_t li = 0; li < src.code.size(); ++li) {
      const std::string& line = src.code[li];
      if (ContainsCall(line, "IsSpan")) {
        const std::vector<std::string> lits = LiteralsNear(src, li + 1, 1);
        if (!lits.empty()) {
          category_uses.push_back({lits[0], src.rel, li + 1});
        }
        if (lits.size() > 1) {
          name_uses.push_back({lits[1], src.rel, li + 1});
        }
        continue;
      }
      if (!analyzer || line.find("==") == std::string::npos) continue;
      if (ContainsToken(line, "category")) {
        for (const std::string& lit : StringLiteralsOnLine(src, li)) {
          category_uses.push_back({lit, src.rel, li + 1});
        }
      } else if (ContainsToken(line, "name")) {
        for (const std::string& lit : StringLiteralsOnLine(src, li)) {
          name_uses.push_back({lit, src.rel, li + 1});
        }
      }
    }
  }

  const auto registered = [&](const std::string& base) {
    if (metric_bases.count(base) > 0) return true;
    for (const std::string& prefix : metric_prefixes) {
      if (base.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };

  std::vector<Finding> findings;
  std::set<std::string> dedupe;
  for (const Consumption& use : metric_uses) {
    if (registered(use.value)) continue;
    AddOrphan("consumed metric", use.value, metric_bases, use.file, use.line,
              &dedupe, &findings);
  }
  for (const Consumption& use : category_uses) {
    if (span_categories.count(use.value) > 0) continue;
    AddOrphan("consumed span category", use.value, span_categories, use.file,
              use.line, &dedupe, &findings);
  }
  for (const Consumption& use : name_uses) {
    if (span_names.count(use.value) > 0) continue;
    AddOrphan("consumed span name", use.value, span_names, use.file, use.line,
              &dedupe, &findings);
  }

  // Docs: backtick-quoted metric-shaped names must be registered (or be a
  // span name), so docs/observability.md cannot drift from the code.
  if (!options.docs_dir.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<fs::path> docs;
    for (fs::directory_iterator it(options.docs_dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->path().extension() == ".md") docs.push_back(it->path());
    }
    std::sort(docs.begin(), docs.end());
    for (const fs::path& doc : docs) {
      std::ifstream in(doc);
      if (!in) continue;
      const std::string rel = RepoRelative(doc.generic_string());
      std::string line;
      size_t li = 0;
      while (std::getline(in, line)) {
        ++li;
        size_t pos = 0;
        while ((pos = line.find('`', pos)) != std::string::npos) {
          const size_t close = line.find('`', pos + 1);
          if (close == std::string::npos) break;
          const std::string token = line.substr(pos + 1, close - pos - 1);
          pos = close + 1;
          if (!LooksLikeMetricName(token)) continue;
          // Prose shorthands the pass cannot resolve: brace *expansions*
          // like `trainer/{compute,encode}_seconds` (a '}' before the last
          // character), path-ish mentions (`src/common`, `tools/...`), and
          // intrinsic families — only real metric names start with a
          // lowercase component that is not a repo directory.
          const size_t close_brace = token.find('}');
          if (close_brace != std::string::npos &&
              close_brace + 1 != token.size()) {
            continue;
          }
          if (!std::islower(static_cast<unsigned char>(token.front()))) {
            continue;
          }
          static const std::set<std::string> kPathComponents = {
              "src",  "tests",    "tools", "bench", "docs", "examples",
              "scripts", "build", "common", "compress", "core", "ml",
              "dist", "analysis"};
          if (kPathComponents.count(token.substr(0, token.find('/'))) > 0) {
            continue;
          }
          const std::string base = MetricBase(token);
          if (registered(base) || span_names.count(base) > 0) {
            continue;
          }
          // "cat/name" span shorthand used in prose.
          const size_t slash = base.find('/');
          if (span_categories.count(base.substr(0, slash)) > 0 &&
              span_names.count(base.substr(slash + 1)) > 0) {
            continue;
          }
          AddOrphan("documented metric", base, metric_bases, rel, li, &dedupe,
                    &findings);
        }
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Pass 4: replay purity.

namespace {

// Files whose wall-clock/randomness use is the sanctioned wrapper layer:
// deterministic code may call *into* these (obs::NowNs only feeds trace
// timestamps; common::Rng is seeded, replayable randomness).
bool IsSanctionedFile(const std::string& rel) {
  for (const char* prefix :
       {"src/common/random.", "src/common/stopwatch.", "src/common/trace.",
        "src/common/obs."}) {
    if (rel.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

struct Taint {
  std::string token;
  size_t line = 0;
};

// A function is tainted when its body textually uses a wall-clock or
// ambient-randomness primitive. Deliberately ignores NOLINT: per-line
// lint suppressions silence the style rule, but a *reachable* use on a
// replay-critical path needs a baselined justification instead.
bool DirectTaint(const ProjectModel& model, const FunctionDef& def,
                 Taint* taint) {
  static const char* kTokens[] = {
      "random_device", "mt19937",      "mt19937_64",
      "default_random_engine",         "system_clock",
      "steady_clock",  "high_resolution_clock"};
  static const char* kCalls[] = {"rand",        "srand",       "time",
                                 "gettimeofday", "clock_gettime",
                                 "localtime",   "gmtime",      "localtime_r",
                                 "gmtime_r"};
  const StrippedSource& src = model.files[def.file].src;
  if (IsSanctionedFile(src.rel)) return false;
  for (size_t li = def.body_begin; li <= def.body_end && li - 1 < src.code.size();
       ++li) {
    const std::string& line = src.code[li - 1];
    for (const char* t : kTokens) {
      if (ContainsToken(line, t)) {
        *taint = {t, li};
        return true;
      }
    }
    for (const char* c : kCalls) {
      if (ContainsCall(line, c)) {
        *taint = {c, li};
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> RunReplayPass(const ProjectModel& model,
                                   const AnalyzeOptions& options) {
  std::vector<std::string> entries = options.replay_entries;
  if (entries.empty()) {
    entries = {"DistributedTrainer::RunEpoch", "EncodeImpl", "DecodeImpl",
               "FaultInjector::", "MembershipOracle::",
               "MembershipDirectory::"};
  }

  // Direct taint per function.
  std::vector<Taint> taints(model.functions.size());
  std::vector<bool> tainted(model.functions.size(), false);
  for (size_t i = 0; i < model.functions.size(); ++i) {
    tainted[i] = DirectTaint(model, model.functions[i], &taints[i]);
  }

  // Call edges, pruned by the include graph: a cross-file call can only
  // target a function whose header is in the caller file's transitive
  // include closure (a .cc-only function is file-local by construction).
  // This is what keeps by-name resolution from inventing paths through
  // same-named methods of classes the caller cannot even see.
  const auto closures = IncludeClosures(model);
  const auto edge_allowed = [&](const FunctionDef& from,
                                const FunctionDef& to) {
    if (from.file == to.file) return true;
    const std::string& to_rel = model.files[to.file].src.rel;
    std::string to_header = to_rel;
    if (to_rel.size() > 3 && to_rel.compare(to_rel.size() - 3, 3, ".cc") == 0) {
      to_header = to_rel.substr(0, to_rel.size() - 3) + ".h";
      if (model.FileIndex(to_header) < 0) return false;  // File-local.
    }
    const auto it = closures.find(model.files[from.file].src.rel);
    return it != closures.end() && it->second.count(to_header) > 0;
  };

  std::vector<std::vector<int>> adj(model.functions.size());
  for (size_t i = 0; i < model.functions.size(); ++i) {
    for (const CallSite& call : model.functions[i].calls) {
      const auto it = model.functions_by_name.find(call.name);
      if (it == model.functions_by_name.end()) continue;
      for (const int target : it->second) {
        if (edge_allowed(model.functions[i],
                         model.functions[static_cast<size_t>(target)])) {
          adj[i].push_back(target);
        }
      }
    }
  }

  std::vector<Finding> findings;
  std::set<std::string> seen;
  for (const std::string& entry : entries) {
    for (size_t e = 0; e < model.functions.size(); ++e) {
      if (model.functions[e].qualified.find(entry) == std::string::npos) {
        continue;
      }
      // BFS with parents for a shortest witness path.
      std::vector<int> parent(model.functions.size(), -2);
      std::vector<int> queue{static_cast<int>(e)};
      parent[e] = -1;
      for (size_t qi = 0; qi < queue.size(); ++qi) {
        const int cur = queue[qi];
        for (const int next : adj[static_cast<size_t>(cur)]) {
          if (parent[static_cast<size_t>(next)] != -2) continue;
          parent[static_cast<size_t>(next)] = cur;
          queue.push_back(next);
        }
      }
      for (const int reached : queue) {
        if (!tainted[static_cast<size_t>(reached)]) continue;
        const FunctionDef& entry_fn = model.functions[e];
        const FunctionDef& sink = model.functions[static_cast<size_t>(reached)];
        const std::string key = entry_fn.qualified + "->" + sink.qualified;
        if (!seen.insert(key).second) continue;
        std::vector<std::string> path;
        for (int cur = reached; cur != -1;
             cur = parent[static_cast<size_t>(cur)]) {
          path.push_back(model.functions[static_cast<size_t>(cur)].qualified);
        }
        std::reverse(path.begin(), path.end());
        std::string path_str;
        for (const std::string& p : path) {
          if (!path_str.empty()) path_str += " -> ";
          path_str += p;
        }
        const Taint& taint = taints[static_cast<size_t>(reached)];
        findings.push_back(
            {"replay", key, model.files[sink.file].src.rel, taint.line,
             "replay-critical path uses " + taint.token + ": " + path_str +
                 "; route through common/random.h or common/obs.h, or "
                 "baseline with a justification"});
      }
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Baseline handling.

bool ParseBaseline(const std::string& text, Baseline* baseline,
                   std::string* error) {
  static const std::set<std::string> kPasses = {"layering", "wire", "names",
                                                "replay"};
  std::istringstream in(text);
  std::string line;
  size_t li = 0;
  while (std::getline(in, line)) {
    ++li;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string pass, key;
    if (!(fields >> pass)) continue;  // Blank.
    if (kPasses.count(pass) == 0) {
      *error = "baseline line " + std::to_string(li) + ": unknown pass '" +
               pass + "'";
      return false;
    }
    if (!(fields >> key)) {
      *error = "baseline line " + std::to_string(li) + ": missing key";
      return false;
    }
    std::string justification;
    std::getline(fields, justification);
    const size_t start = justification.find_first_not_of(" \t");
    justification =
        start == std::string::npos ? "" : justification.substr(start);
    if (justification.empty()) {
      *error = "baseline line " + std::to_string(li) +
               ": entry '" + key + "' needs a justification";
      return false;
    }
    baseline->entries[{pass, key}] = justification;
  }
  return true;
}

std::vector<Finding> ApplyBaseline(
    std::vector<Finding> findings, const Baseline& baseline,
    const std::vector<std::string>& passes_run) {
  std::set<std::pair<std::string, std::string>> used;
  std::vector<Finding> out;
  for (Finding& f : findings) {
    if (baseline.entries.count({f.pass, f.key}) > 0) {
      used.insert({f.pass, f.key});
    } else {
      out.push_back(std::move(f));
    }
  }
  for (const auto& [entry, justification] : baseline.entries) {
    (void)justification;
    if (used.count(entry) > 0) continue;
    if (std::find(passes_run.begin(), passes_run.end(), entry.first) ==
        passes_run.end()) {
      continue;  // Pass not run this invocation; cannot judge staleness.
    }
    out.push_back({entry.first, entry.second, "", 0,
                   "stale baseline entry '" + entry.second + "' for pass '" +
                       entry.first + "' suppresses nothing; delete it"});
  }
  return out;
}

}  // namespace sketchml::analysis
