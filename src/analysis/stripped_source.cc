#include "analysis/stripped_source.h"

#include <cctype>

namespace sketchml::analysis {

StrippedSource StripToCode(const std::string& path, const std::string& rel,
                           const std::string& text) {
  StrippedSource out;
  out.path = path;
  out.rel = rel;

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  // For kRawString: the )delim" terminator.
  std::string code_line, comment_line;

  const auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary literals cannot span lines; reset defensively.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line += "//";
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line += "/*";
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for R / u8R / LR / UR / uR.
          const bool raw =
              !code_line.empty() && code_line.back() == 'R' &&
              (code_line.size() < 2 ||
               !(std::isalnum(static_cast<unsigned char>(
                     code_line[code_line.size() - 2])) ||
                 code_line[code_line.size() - 2] == '_') ||
               code_line[code_line.size() - 2] == '8' ||
               code_line[code_line.size() - 2] == 'u' ||
               code_line[code_line.size() - 2] == 'U' ||
               code_line[code_line.size() - 2] == 'L');
          if (raw) {
            // Collect the delimiter up to '('. (assign() instead of a
            // literal assignment dodges a gcc-12 -Wrestrict false positive.)
            raw_delim.assign(1, ')');
            size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && text[j] != '\n') {
              raw_delim += text[j];
              ++j;
            }
            raw_delim += '"';
            state = State::kRawString;
            code_line += '"';
          } else {
            state = State::kString;
            code_line += '"';
          }
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        code_line += ' ';
        comment_line += c;
        if (c == '*' && next == '/') {
          comment_line += '/';
          code_line += ' ';
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) {
            if (text[i + k] == '\n') {
              flush_line();
            } else {
              code_line += ' ';
            }
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  if (!code_line.empty() || !comment_line.empty()) flush_line();
  // Raw lines, aligned with code/comments (padded if the file ends in '\n').
  std::string raw_line;
  for (const char c : text) {
    if (c == '\n') {
      out.raw.push_back(std::move(raw_line));
      raw_line.clear();
    } else {
      raw_line += c;
    }
  }
  if (!raw_line.empty()) out.raw.push_back(std::move(raw_line));
  out.raw.resize(out.code.size());
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool ContainsToken(std::string_view line, std::string_view needle) {
  size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + needle.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

bool ContainsTokenPrefix(std::string_view line, std::string_view prefix) {
  size_t pos = 0;
  while ((pos = line.find(prefix, pos)) != std::string_view::npos) {
    if (pos == 0 || !IsIdentChar(line[pos - 1])) return true;
    pos += 1;
  }
  return false;
}

bool ContainsCall(std::string_view line, std::string_view needle) {
  size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + needle.size();
    while (end < line.size() && line[end] == ' ') ++end;
    if (left_ok && end < line.size() && line[end] == '(') return true;
    pos += 1;
  }
  return false;
}

bool Suppressed(const StrippedSource& file, size_t line_idx,
                const std::string& rule) {
  const auto mentions = [&](const std::string& comment,
                            std::string_view marker) {
    const size_t pos = comment.find(marker);
    if (pos == std::string::npos) return false;
    const size_t after = pos + marker.size();
    if (after >= comment.size() || comment[after] != '(') return true;  // Bare.
    const size_t close = comment.find(')', after);
    if (close == std::string::npos) return true;
    const std::string list = comment.substr(after + 1, close - after - 1);
    return list.find(rule) != std::string::npos;
  };
  const std::string& own = file.comments[line_idx];
  // The NEXTLINE marker also contains "NOLINT"; check the longer marker
  // first and only accept a plain NOLINT that is not a NOLINTNEXTLINE.
  if (own.find("NOLINT") != std::string::npos &&
      own.find("NOLINTNEXTLINE") == std::string::npos &&
      mentions(own, "NOLINT")) {
    return true;
  }
  if (line_idx > 0 && mentions(file.comments[line_idx - 1], "NOLINTNEXTLINE")) {
    return true;
  }
  return false;
}

std::vector<std::string> StringLiteralsOnLine(const StrippedSource& file,
                                              size_t line_idx) {
  std::vector<std::string> out;
  if (line_idx >= file.code.size()) return out;
  const std::string& code = file.code[line_idx];
  const std::string& raw =
      line_idx < file.raw.size() ? file.raw[line_idx] : std::string();
  size_t pos = 0;
  while ((pos = code.find('"', pos)) != std::string::npos) {
    // Literal contents are blanked in `code`, so the next '"' closes it
    // (a literal that continues past end-of-line has no closer: skip it).
    const size_t close = code.find('"', pos + 1);
    if (close == std::string::npos) break;
    if (close < raw.size()) {
      out.push_back(raw.substr(pos + 1, close - pos - 1));
    }
    pos = close + 1;
  }
  return out;
}

std::string RepoRelative(const std::string& generic_path) {
  for (const char* root :
       {"src/", "tests/", "tools/", "bench/", "examples/", "docs/"}) {
    const size_t pos = generic_path.rfind(root);
    if (pos != std::string::npos) return generic_path.substr(pos);
  }
  return generic_path;
}

}  // namespace sketchml::analysis
