#include "ml/gradient.h"

#include <unordered_map>

#include "common/logging.h"

namespace sketchml::ml {

common::SparseGradient ComputeBatchGradient(const Loss& loss,
                                            const DenseVector& w,
                                            const Dataset& data, size_t begin,
                                            size_t end, double lambda) {
  SKETCHML_CHECK_LE(begin, end);
  SKETCHML_CHECK_LE(end, data.size());
  std::unordered_map<uint32_t, double> acc;
  acc.reserve((end - begin) * 8);
  const double inv_batch = end > begin ? 1.0 / (end - begin) : 0.0;
  for (size_t i = begin; i < end; ++i) {
    const Instance& x = data.instances()[i];
    const double margin = Dot(w, x);
    const double scale = loss.PointGradientScale(margin, x.label) * inv_batch;
    if (scale == 0.0) continue;
    for (const auto& f : x.features) {
      acc[f.index] += scale * static_cast<double>(f.value);
    }
  }
  common::SparseGradient grad;
  grad.reserve(acc.size());
  for (const auto& [key, value] : acc) {
    const double with_reg = value + lambda * w[key];
    if (with_reg != 0.0) grad.push_back({key, with_reg});
  }
  common::SortByKey(&grad);
  return grad;
}

double ComputeMeanLoss(const Loss& loss, const DenseVector& w,
                       const Dataset& data, double lambda) {
  if (data.size() == 0) return 0.0;
  double total = 0.0;
  for (const auto& x : data.instances()) {
    total += loss.PointLoss(Dot(w, x), x.label);
  }
  double reg = 0.0;
  if (lambda > 0.0) {
    for (double wi : w) reg += wi * wi;
    reg *= lambda / 2.0;
  }
  return total / static_cast<double>(data.size()) + reg;
}

double ComputeAccuracy(const DenseVector& w, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  size_t correct = 0;
  for (const auto& x : data.instances()) {
    const double margin = Dot(w, x);
    if ((margin >= 0 ? 1.0 : -1.0) == x.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace sketchml::ml
