#ifndef SKETCHML_ML_MLP_H_
#define SKETCHML_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "common/sparse.h"
#include "ml/dataset.h"
#include "ml/types.h"

namespace sketchml::ml {

/// Fully-connected neural network with ReLU hidden layers and a softmax
/// cross-entropy output — the Appendix B.3 model (input 20x20, two hidden
/// layers of 600, output 10).
///
/// Parameters live in one flat vector so a whole-model gradient can be
/// expressed as key-value pairs (keys 0..P-1) and pushed through any
/// `GradientCodec`, exactly as the paper applies SketchML to NN models.
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}; at least 2 entries.
  /// Weights get Xavier-style random init from `seed`.
  Mlp(std::vector<int> layer_sizes, uint64_t seed = 1);

  /// Total parameter count (weights + biases).
  size_t NumParams() const { return params_.size(); }

  /// Runs forward + backward over instances [begin, end); accumulates the
  /// mean gradient into `grad` (dense, as sorted key-value pairs) and
  /// returns the mean cross-entropy loss. Labels must be 0..classes-1.
  double ComputeBatchGradient(const Dataset& data, size_t begin, size_t end,
                              common::SparseGradient* grad) const;

  /// Mean cross-entropy loss over `data`.
  double ComputeMeanLoss(const Dataset& data) const;

  /// Top-1 accuracy over `data`.
  double ComputeAccuracy(const Dataset& data) const;

  /// Applies a (possibly decoded/lossy) gradient via plain SGD.
  void ApplySgd(const common::SparseGradient& grad, double learning_rate);

  std::vector<double>& mutable_params() { return params_; }
  const std::vector<double>& params() const { return params_; }
  const std::vector<int>& layer_sizes() const { return layer_sizes_; }

 private:
  /// Forward pass; fills per-layer activations. Returns the softmax
  /// probabilities of the final layer.
  std::vector<double> Forward(const Instance& x,
                              std::vector<std::vector<double>>* acts) const;

  // Offset of layer l's weight matrix / bias vector in params_.
  size_t WeightOffset(int layer) const { return weight_offsets_[layer]; }
  size_t BiasOffset(int layer) const { return bias_offsets_[layer]; }

  std::vector<int> layer_sizes_;
  std::vector<size_t> weight_offsets_;
  std::vector<size_t> bias_offsets_;
  std::vector<double> params_;
};

}  // namespace sketchml::ml

#endif  // SKETCHML_ML_MLP_H_
