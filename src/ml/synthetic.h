#ifndef SKETCHML_ML_SYNTHETIC_H_
#define SKETCHML_ML_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "ml/dataset.h"

namespace sketchml::ml {

/// Parameters of the synthetic sparse dataset generator.
///
/// The generator is the stand-in for the paper's KDD10 / KDD12 / CTR
/// datasets (Table 1): features follow a Zipf popularity law (a few very
/// common features, a long rare tail — the structure that makes gradient
/// keys clustered and delta-encoding effective), instances carry a fixed
/// average number of nonzeros, and labels come from a sparse
/// ground-truth model plus noise so that losses actually decrease under
/// training.
struct SyntheticConfig {
  uint64_t num_instances = 20000;
  uint64_t dim = 1 << 20;
  double avg_nnz = 40;        // Nonzero features per instance.
  double zipf_alpha = 1.1;    // Feature popularity skew.
  double label_noise = 0.1;   // Fraction of labels flipped / noise sigma.
  bool regression = false;    // Real-valued labels instead of +-1.
  uint64_t seed = 1;
};

/// Generates a dataset per `config`. Deterministic for a fixed seed.
Dataset GenerateSynthetic(const SyntheticConfig& config);

/// Named presets scaled down from Table 1, preserving each dataset's
/// per-executor *gradient density* regime (d/D ≈ 10 % at batch ratio 0.1,
/// per Figure 8(d)) rather than absolute size:
///   "kdd10" — here 2^16 dims, ~60 nnz/instance
///   "kdd12" — here 2^17 dims, ~40 nnz/instance (sparser gradients)
///   "ctr"   — here 2^15 dims, ~150 nnz/instance (denser, compute-heavy)
/// Unknown names fall back to the default config.
SyntheticConfig PresetFor(const std::string& name, uint64_t seed = 1);

/// Generates a synthetic MNIST-like image classification dataset for the
/// Appendix B.3 MLP experiment: `num_classes` Gaussian class templates of
/// `side * side` pixels; each instance is its class template plus pixel
/// noise. Labels are 0..num_classes-1 (stored in Instance::label).
Dataset GenerateSyntheticMnist(uint64_t num_instances, int side = 20,
                               int num_classes = 10, uint64_t seed = 1);

}  // namespace sketchml::ml

#endif  // SKETCHML_ML_SYNTHETIC_H_
