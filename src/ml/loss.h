#ifndef SKETCHML_ML_LOSS_H_
#define SKETCHML_ML_LOSS_H_

#include <memory>
#include <string>

#include "ml/types.h"

namespace sketchml::ml {

/// A generalized-linear-model loss with ℓ2 regularization (§4.1).
///
/// `PointLoss` evaluates the per-instance loss at margin m = <w, x> (with
/// label y); `PointGradientScale` returns dL/dm so the per-instance
/// gradient is scale * x — the sparse structure SketchML compresses.
class Loss {
 public:
  virtual ~Loss() = default;

  virtual std::string Name() const = 0;

  /// Per-instance loss given the prediction margin and the label.
  virtual double PointLoss(double margin, double label) const = 0;

  /// dL/dmargin given the margin and the label.
  virtual double PointGradientScale(double margin, double label) const = 0;
};

/// Logistic regression: log(1 + exp(-y m)).
class LogisticLoss : public Loss {
 public:
  std::string Name() const override { return "LR"; }
  double PointLoss(double margin, double label) const override;
  double PointGradientScale(double margin, double label) const override;
};

/// Support vector machine (hinge): max(0, 1 - y m).
class HingeLoss : public Loss {
 public:
  std::string Name() const override { return "SVM"; }
  double PointLoss(double margin, double label) const override;
  double PointGradientScale(double margin, double label) const override;
};

/// Linear regression (squared): (y - m)^2.
class SquaredLoss : public Loss {
 public:
  std::string Name() const override { return "Linear"; }
  double PointLoss(double margin, double label) const override;
  double PointGradientScale(double margin, double label) const override;
};

/// Builds a loss by the paper's model names: "lr", "svm", "linear".
/// Returns nullptr for unknown names.
std::unique_ptr<Loss> MakeLoss(const std::string& name);

}  // namespace sketchml::ml

#endif  // SKETCHML_ML_LOSS_H_
