#include "ml/csr_matrix.h"

#include <unordered_map>

#include "common/logging.h"

namespace sketchml::ml {

CsrMatrix CsrMatrix::FromDataset(const Dataset& data) {
  CsrMatrix matrix;
  matrix.cols_ = data.dim();
  size_t total_nnz = 0;
  for (const auto& inst : data.instances()) {
    total_nnz += inst.features.size();
  }
  matrix.row_offsets_.reserve(data.size() + 1);
  matrix.indices_.reserve(total_nnz);
  matrix.values_.reserve(total_nnz);
  matrix.labels_.reserve(data.size());

  matrix.row_offsets_.push_back(0);
  for (const auto& inst : data.instances()) {
    for (const auto& f : inst.features) {
      matrix.indices_.push_back(f.index);
      matrix.values_.push_back(f.value);
    }
    matrix.row_offsets_.push_back(matrix.indices_.size());
    matrix.labels_.push_back(inst.label);
  }
  return matrix;
}

double CsrMatrix::RowDot(size_t row, const DenseVector& w) const {
  const RowView view = Row(row);
  double sum = 0.0;
  for (size_t i = 0; i < view.nnz; ++i) {
    sum += w[view.indices[i]] * static_cast<double>(view.values[i]);
  }
  return sum;
}

common::SparseGradient ComputeBatchGradientCsr(const Loss& loss,
                                               const DenseVector& w,
                                               const CsrMatrix& matrix,
                                               size_t begin, size_t end,
                                               double lambda) {
  SKETCHML_CHECK_LE(begin, end);
  SKETCHML_CHECK_LE(end, matrix.rows());
  std::unordered_map<uint32_t, double> acc;
  acc.reserve((end - begin) * 8);
  const double inv_batch = end > begin ? 1.0 / (end - begin) : 0.0;
  for (size_t row = begin; row < end; ++row) {
    const double margin = matrix.RowDot(row, w);
    const double scale =
        loss.PointGradientScale(margin, matrix.label(row)) * inv_batch;
    if (scale == 0.0) continue;
    const CsrMatrix::RowView view = matrix.Row(row);
    for (size_t i = 0; i < view.nnz; ++i) {
      acc[view.indices[i]] += scale * static_cast<double>(view.values[i]);
    }
  }
  common::SparseGradient grad;
  grad.reserve(acc.size());
  for (const auto& [key, value] : acc) {
    const double with_reg = value + lambda * w[key];
    if (with_reg != 0.0) grad.push_back({key, with_reg});
  }
  common::SortByKey(&grad);
  return grad;
}

}  // namespace sketchml::ml
