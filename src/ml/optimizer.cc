#include "ml/optimizer.h"

#include <cmath>
#include <string>
#include <utility>

#include "common/logging.h"

namespace sketchml::ml {

namespace {

void WriteVector(const DenseVector& vec, common::ByteWriter* writer) {
  writer->WriteVarint(vec.size());
  for (double v : vec) writer->WriteDouble(v);
}

/// Reads a vector written by WriteVector into `out`, requiring exactly
/// `expected` elements. `out` is untouched unless the whole read
/// succeeds, so a corrupted checkpoint can never half-overwrite state.
common::Status ReadVector(common::ByteReader* reader, size_t expected,
                          DenseVector* out) {
  uint64_t count = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&count));
  if (count != expected) {
    return common::Status::CorruptedData(
        "optimizer state dimension mismatch: blob has " +
        std::to_string(count) + " values, optimizer expects " +
        std::to_string(expected));
  }
  if (count * sizeof(double) > reader->remaining()) {
    return common::Status::CorruptedData("optimizer state truncated");
  }
  DenseVector values(count);
  for (uint64_t i = 0; i < count; ++i) {
    SKETCHML_RETURN_IF_ERROR(reader->ReadDouble(&values[i]));
  }
  *out = std::move(values);
  return common::Status::Ok();
}

}  // namespace

void Optimizer::SaveState(common::ByteWriter* writer) const {
  WriteVector(weights_, writer);
}

common::Status Optimizer::RestoreState(common::ByteReader* reader) {
  return ReadVector(reader, weights_.size(), &weights_);
}

void SgdOptimizer::Apply(const common::SparseGradient& grad) {
  for (const auto& pair : grad) {
    weights_[pair.key] -= learning_rate_ * pair.value;
  }
}

AdamOptimizer::AdamOptimizer(uint64_t dim, double learning_rate, double beta1,
                             double beta2, double epsilon)
    : Optimizer(dim),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      m_(dim, 0.0),
      v_(dim, 0.0) {
  SKETCHML_CHECK(beta1 >= 0 && beta1 < 1);
  SKETCHML_CHECK(beta2 >= 0 && beta2 < 1);
}

void AdamOptimizer::Apply(const common::SparseGradient& grad) {
  ++step_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (const auto& pair : grad) {
    const uint64_t k = pair.key;
    const double g = pair.value;
    m_[k] = beta1_ * m_[k] + (1.0 - beta1_) * g;
    v_[k] = beta2_ * v_[k] + (1.0 - beta2_) * g * g;
    const double m_hat = m_[k] / bias1;
    const double v_hat = v_[k] / bias2;
    weights_[k] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

void AdamOptimizer::SaveState(common::ByteWriter* writer) const {
  Optimizer::SaveState(writer);
  writer->WriteVarint(step_);
  WriteVector(m_, writer);
  WriteVector(v_, writer);
}

common::Status AdamOptimizer::RestoreState(common::ByteReader* reader) {
  SKETCHML_RETURN_IF_ERROR(Optimizer::RestoreState(reader));
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&step_));
  SKETCHML_RETURN_IF_ERROR(ReadVector(reader, m_.size(), &m_));
  return ReadVector(reader, v_.size(), &v_);
}

}  // namespace sketchml::ml
