#include "ml/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace sketchml::ml {

void SgdOptimizer::Apply(const common::SparseGradient& grad) {
  for (const auto& pair : grad) {
    weights_[pair.key] -= learning_rate_ * pair.value;
  }
}

AdamOptimizer::AdamOptimizer(uint64_t dim, double learning_rate, double beta1,
                             double beta2, double epsilon)
    : Optimizer(dim),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      m_(dim, 0.0),
      v_(dim, 0.0) {
  SKETCHML_CHECK(beta1 >= 0 && beta1 < 1);
  SKETCHML_CHECK(beta2 >= 0 && beta2 < 1);
}

void AdamOptimizer::Apply(const common::SparseGradient& grad) {
  ++step_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (const auto& pair : grad) {
    const uint64_t k = pair.key;
    const double g = pair.value;
    m_[k] = beta1_ * m_[k] + (1.0 - beta1_) * g;
    v_[k] = beta2_ * v_[k] + (1.0 - beta2_) * g * g;
    const double m_hat = m_[k] / bias1;
    const double v_hat = v_[k] / bias2;
    weights_[k] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

}  // namespace sketchml::ml
