#ifndef SKETCHML_ML_DATASET_H_
#define SKETCHML_ML_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ml/types.h"

namespace sketchml::ml {

/// An in-memory sparse dataset: instances plus the model dimensionality.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<Instance> instances, uint64_t dim)
      : instances_(std::move(instances)), dim_(dim) {}

  const std::vector<Instance>& instances() const { return instances_; }
  std::vector<Instance>& mutable_instances() { return instances_; }
  uint64_t dim() const { return dim_; }
  size_t size() const { return instances_.size(); }

  /// Average nonzero features per instance.
  double AvgNnz() const;

  /// Splits off the last `fraction` of instances as a test set (the
  /// paper's 75 / 25 protocol). Returns {train, test}.
  std::pair<Dataset, Dataset> Split(double test_fraction) const;

 private:
  std::vector<Instance> instances_;
  uint64_t dim_ = 0;
};

/// Parses a LIBSVM/SVMLight-format file ("label idx:val idx:val ...",
/// 1-based or 0-based indices autodetected as-is; indices are used
/// verbatim). Labels {0, 1} are mapped to {-1, +1}.
common::Result<Dataset> ReadLibSvmFile(const std::string& path);

/// Parses LIBSVM-format text from a string (for tests).
common::Result<Dataset> ParseLibSvm(const std::string& text);

/// Writes `data` in LIBSVM format ("label idx:val ..."), one instance
/// per line. Inverse of ReadLibSvmFile up to float formatting.
common::Status WriteLibSvmFile(const Dataset& data, const std::string& path);

}  // namespace sketchml::ml

#endif  // SKETCHML_ML_DATASET_H_
