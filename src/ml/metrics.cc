#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace sketchml::ml {

double AucFromScores(const std::vector<double>& scores,
                     const std::vector<double>& labels) {
  SKETCHML_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  if (n == 0) return 0.5;

  // Rank-sum formulation: AUC = (R_pos - P(P+1)/2) / (P * N) where R_pos
  // is the sum of (tie-averaged) ranks of positive instances.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }

  double positives = 0, negatives = 0, positive_rank_sum = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] > 0) {
      positives += 1;
      positive_rank_sum += ranks[k];
    } else {
      negatives += 1;
    }
  }
  if (positives == 0 || negatives == 0) return 0.5;
  return (positive_rank_sum - positives * (positives + 1) / 2.0) /
         (positives * negatives);
}

double ComputeAuc(const DenseVector& w, const Dataset& data) {
  std::vector<double> scores, labels;
  scores.reserve(data.size());
  labels.reserve(data.size());
  for (const auto& x : data.instances()) {
    scores.push_back(Dot(w, x));
    labels.push_back(x.label);
  }
  return AucFromScores(scores, labels);
}

double ComputeRmse(const DenseVector& w, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  double total = 0.0;
  for (const auto& x : data.instances()) {
    const double diff = Dot(w, x) - x.label;
    total += diff * diff;
  }
  return std::sqrt(total / static_cast<double>(data.size()));
}

}  // namespace sketchml::ml
