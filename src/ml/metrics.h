#ifndef SKETCHML_ML_METRICS_H_
#define SKETCHML_ML_METRICS_H_

#include <vector>

#include "ml/dataset.h"
#include "ml/types.h"

namespace sketchml::ml {

/// Area under the ROC curve for binary classification scores.
/// `scores[i]` is the model margin for instance i; `labels[i]` is ±1.
/// Ties are handled by the standard rank-average (trapezoid) rule.
/// Returns 0.5 when one class is absent.
double AucFromScores(const std::vector<double>& scores,
                     const std::vector<double>& labels);

/// AUC of model `w` over `data` — the metric CTR systems optimize.
double ComputeAuc(const DenseVector& w, const Dataset& data);

/// Root-mean-squared error of the margins against the labels
/// (regression).
double ComputeRmse(const DenseVector& w, const Dataset& data);

}  // namespace sketchml::ml

#endif  // SKETCHML_ML_METRICS_H_
