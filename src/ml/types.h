#ifndef SKETCHML_ML_TYPES_H_
#define SKETCHML_ML_TYPES_H_

#include <cstdint>
#include <vector>

#include "common/sparse.h"

namespace sketchml::ml {

/// One feature of a training instance: dimension index and value.
struct Feature {
  uint32_t index = 0;
  float value = 0.0f;
};

/// A sparse training instance with its label. Labels are +1/-1 for
/// classification (LR, SVM) and real-valued for regression.
struct Instance {
  std::vector<Feature> features;  // Sorted by ascending index.
  double label = 0.0;
};

/// Dense model/weight vector.
using DenseVector = std::vector<double>;

/// Sparse dot product <w, x>.
inline double Dot(const DenseVector& w, const Instance& x) {
  double sum = 0.0;
  for (const auto& f : x.features) {
    sum += w[f.index] * static_cast<double>(f.value);
  }
  return sum;
}

/// Accumulates `scale * x` into the sparse map-backed gradient
/// accumulator `acc` (dense vector indexed by dimension).
inline void Axpy(double scale, const Instance& x, DenseVector* acc) {
  for (const auto& f : x.features) {
    (*acc)[f.index] += scale * static_cast<double>(f.value);
  }
}

}  // namespace sketchml::ml

#endif  // SKETCHML_ML_TYPES_H_
