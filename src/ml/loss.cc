#include "ml/loss.h"

#include <algorithm>
#include <cmath>

namespace sketchml::ml {

double LogisticLoss::PointLoss(double margin, double label) const {
  const double z = -label * margin;
  // log(1 + e^z), numerically stable for large |z|.
  if (z > 30) return z;
  return std::log1p(std::exp(z));
}

double LogisticLoss::PointGradientScale(double margin, double label) const {
  const double z = -label * margin;
  const double sigma = z > 30 ? 1.0 : std::exp(z) / (1.0 + std::exp(z));
  return -label * sigma;
}

double HingeLoss::PointLoss(double margin, double label) const {
  return std::max(0.0, 1.0 - label * margin);
}

double HingeLoss::PointGradientScale(double margin, double label) const {
  return label * margin < 1.0 ? -label : 0.0;
}

double SquaredLoss::PointLoss(double margin, double label) const {
  const double diff = label - margin;
  return diff * diff;
}

double SquaredLoss::PointGradientScale(double margin, double label) const {
  return 2.0 * (margin - label);
}

std::unique_ptr<Loss> MakeLoss(const std::string& name) {
  if (name == "lr") return std::make_unique<LogisticLoss>();
  if (name == "svm") return std::make_unique<HingeLoss>();
  if (name == "linear") return std::make_unique<SquaredLoss>();
  return nullptr;
}

}  // namespace sketchml::ml
