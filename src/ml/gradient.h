#ifndef SKETCHML_ML_GRADIENT_H_
#define SKETCHML_ML_GRADIENT_H_

#include <cstddef>

#include "common/sparse.h"
#include "ml/dataset.h"
#include "ml/loss.h"
#include "ml/types.h"

namespace sketchml::ml {

/// Computes the mini-batch gradient of `loss` over instances
/// `[begin, end)` of `data` at weights `w`, as sorted key-value pairs —
/// the exact object SketchML compresses (§2.2).
///
/// The ℓ2 term `lambda * w_k` is applied lazily on the touched dimensions
/// only (the standard sparse-SGD treatment); the data term is averaged
/// over the batch.
common::SparseGradient ComputeBatchGradient(const Loss& loss,
                                            const DenseVector& w,
                                            const Dataset& data, size_t begin,
                                            size_t end, double lambda);

/// Mean loss of `w` over all of `data` plus the ℓ2 penalty
/// (lambda/2)||w||^2 evaluated over touched dimensions of the dataset.
double ComputeMeanLoss(const Loss& loss, const DenseVector& w,
                       const Dataset& data, double lambda);

/// Classification accuracy (sign of margin vs ±1 label) of `w` on `data`.
double ComputeAccuracy(const DenseVector& w, const Dataset& data);

}  // namespace sketchml::ml

#endif  // SKETCHML_ML_GRADIENT_H_
