#ifndef SKETCHML_ML_CSR_MATRIX_H_
#define SKETCHML_ML_CSR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/sparse.h"
#include "ml/dataset.h"
#include "ml/loss.h"
#include "ml/types.h"

namespace sketchml::ml {

/// Compressed Sparse Row storage of a dataset's feature matrix (§1.1 /
/// §5 mention CSR as the standard sparse representation).
///
/// Compared with the per-instance `std::vector<Feature>` layout, CSR
/// packs all indices and values into two contiguous arrays with a row
/// offset table: one allocation, sequential scans, and ~40 % less memory
/// (no per-vector headers). The trainer-facing helpers below mirror the
/// AoS API so the two layouts are interchangeable.
class CsrMatrix {
 public:
  /// Borrowed, read-only view of one row.
  struct RowView {
    const uint32_t* indices;
    const float* values;
    size_t nnz;
  };

  /// Builds CSR arrays (and the label vector) from `data`.
  static CsrMatrix FromDataset(const Dataset& data);

  size_t rows() const { return row_offsets_.size() - 1; }
  uint64_t cols() const { return cols_; }
  size_t nnz() const { return indices_.size(); }
  double label(size_t row) const { return labels_[row]; }

  RowView Row(size_t row) const {
    const size_t begin = row_offsets_[row];
    return {indices_.data() + begin, values_.data() + begin,
            row_offsets_[row + 1] - begin};
  }

  /// Sparse dot product <w, row>.
  double RowDot(size_t row, const DenseVector& w) const;

  /// Bytes of index/value/offset storage.
  size_t MemoryBytes() const {
    return indices_.size() * sizeof(uint32_t) +
           values_.size() * sizeof(float) +
           row_offsets_.size() * sizeof(size_t) +
           labels_.size() * sizeof(double);
  }

 private:
  CsrMatrix() = default;

  uint64_t cols_ = 0;
  std::vector<size_t> row_offsets_;  // rows + 1 entries.
  std::vector<uint32_t> indices_;
  std::vector<float> values_;
  std::vector<double> labels_;
};

/// CSR-backed mini-batch gradient: identical semantics to
/// `ComputeBatchGradient` (same loss, same lazy ℓ2), different storage.
common::SparseGradient ComputeBatchGradientCsr(const Loss& loss,
                                               const DenseVector& w,
                                               const CsrMatrix& matrix,
                                               size_t begin, size_t end,
                                               double lambda);

}  // namespace sketchml::ml

#endif  // SKETCHML_ML_CSR_MATRIX_H_
