#include "ml/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/logging.h"

namespace sketchml::ml {

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  SKETCHML_CHECK_GT(config.num_instances, 0u);
  SKETCHML_CHECK_GT(config.dim, 0u);
  common::Rng rng(config.seed);
  common::ZipfSampler zipf(config.dim, config.zipf_alpha);

  // Sparse ground-truth model: popular features get weights so that the
  // signal is actually learnable from few nonzeros. A random permutation
  // maps Zipf rank -> feature id so "hot" ids are scattered over [0, D),
  // like hashed features in real CTR data.
  // Using a multiplicative shuffle keeps memory O(1).
  const uint64_t a = 0x9E3779B97F4A7C15ULL | 1;  // Odd => invertible mod 2^64.
  auto rank_to_feature = [&](uint64_t rank) {
    return (rank * a + 0x1234567) % config.dim;
  };

  const uint64_t truth_size = std::min<uint64_t>(config.dim, 4096);
  std::vector<double> truth(truth_size);
  for (auto& w : truth) w = rng.NextGaussian();

  std::vector<Instance> instances;
  instances.reserve(config.num_instances);
  for (uint64_t i = 0; i < config.num_instances; ++i) {
    Instance inst;
    // Poisson-ish nonzero count around avg_nnz (at least 1).
    const int nnz = std::max<int>(
        1, static_cast<int>(config.avg_nnz * (0.5 + rng.NextDouble())));
    std::set<uint32_t> indices;
    double signal = 0.0;
    while (static_cast<int>(indices.size()) < nnz) {
      const uint64_t rank = zipf.Sample(rng);
      const uint32_t feature =
          static_cast<uint32_t>(rank_to_feature(rank));
      if (!indices.insert(feature).second) continue;
      const double value = 1.0;  // Binary features, as in CTR data.
      if (rank < truth_size) signal += truth[rank] * value;
      inst.features.push_back({feature, static_cast<float>(value)});
    }
    std::sort(inst.features.begin(), inst.features.end(),
              [](const Feature& x, const Feature& y) {
                return x.index < y.index;
              });

    if (config.regression) {
      inst.label = signal + rng.NextGaussian() * config.label_noise;
    } else {
      double margin = signal;
      if (rng.NextBernoulli(config.label_noise)) margin = -margin;
      inst.label = margin >= 0 ? 1.0 : -1.0;
    }
    instances.push_back(std::move(inst));
  }
  return Dataset(std::move(instances), config.dim);
}

SyntheticConfig PresetFor(const std::string& name, uint64_t seed) {
  SyntheticConfig config;
  config.seed = seed;
  // The presets scale Table 1 down while preserving each dataset's
  // *gradient density* regime: the paper's per-executor gradients carry
  // d/D ≈ 10 % nonzeros at batch ratio 0.1 (Figure 8(d)), which is what
  // makes delta keys ~1.27 bytes and amortizes the 8q-byte bucket means.
  if (name == "kdd10") {
    config.num_instances = 40000;
    config.dim = 1 << 16;
    config.avg_nnz = 60;
    config.zipf_alpha = 1.05;
  } else if (name == "kdd12") {
    config.num_instances = 60000;
    config.dim = 1 << 17;
    config.avg_nnz = 40;
    config.zipf_alpha = 1.1;
  } else if (name == "ctr") {
    config.num_instances = 40000;
    config.dim = 1 << 15;
    config.avg_nnz = 150;  // CTR is denser (paper §4.3.2).
    config.zipf_alpha = 1.0;
  }
  return config;
}

Dataset GenerateSyntheticMnist(uint64_t num_instances, int side,
                               int num_classes, uint64_t seed) {
  common::Rng rng(seed);
  const int pixels = side * side;
  // Class templates: smooth random blobs.
  std::vector<std::vector<double>> templates(num_classes,
                                             std::vector<double>(pixels));
  for (auto& tmpl : templates) {
    // Two random Gaussian blobs per class.
    for (int blob = 0; blob < 2; ++blob) {
      const double cx = rng.NextUniform(4, side - 4);
      const double cy = rng.NextUniform(4, side - 4);
      const double sigma = rng.NextUniform(2.0, 4.0);
      for (int y = 0; y < side; ++y) {
        for (int x = 0; x < side; ++x) {
          const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
          tmpl[y * side + x] += std::exp(-d2 / (2 * sigma * sigma));
        }
      }
    }
  }

  std::vector<Instance> instances;
  instances.reserve(num_instances);
  for (uint64_t i = 0; i < num_instances; ++i) {
    const int cls = static_cast<int>(rng.NextBounded(num_classes));
    Instance inst;
    inst.label = cls;
    inst.features.reserve(pixels);
    for (int p = 0; p < pixels; ++p) {
      const double v = templates[cls][p] + rng.NextGaussian() * 0.15;
      if (std::abs(v) > 1e-3) {
        inst.features.push_back(
            {static_cast<uint32_t>(p), static_cast<float>(v)});
      }
    }
    instances.push_back(std::move(inst));
  }
  return Dataset(std::move(instances), static_cast<uint64_t>(pixels));
}

}  // namespace sketchml::ml
