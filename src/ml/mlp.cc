#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace sketchml::ml {

Mlp::Mlp(std::vector<int> layer_sizes, uint64_t seed)
    : layer_sizes_(std::move(layer_sizes)) {
  SKETCHML_CHECK_GE(layer_sizes_.size(), 2u);
  size_t offset = 0;
  const int layers = static_cast<int>(layer_sizes_.size()) - 1;
  for (int l = 0; l < layers; ++l) {
    weight_offsets_.push_back(offset);
    offset += static_cast<size_t>(layer_sizes_[l]) * layer_sizes_[l + 1];
    bias_offsets_.push_back(offset);
    offset += layer_sizes_[l + 1];
  }
  params_.assign(offset, 0.0);
  common::Rng rng(seed);
  for (int l = 0; l < layers; ++l) {
    const double scale =
        std::sqrt(2.0 / (layer_sizes_[l] + layer_sizes_[l + 1]));
    double* w = params_.data() + WeightOffset(l);
    const size_t count =
        static_cast<size_t>(layer_sizes_[l]) * layer_sizes_[l + 1];
    for (size_t i = 0; i < count; ++i) w[i] = rng.NextGaussian() * scale;
  }
}

std::vector<double> Mlp::Forward(
    const Instance& x, std::vector<std::vector<double>>* acts) const {
  const int layers = static_cast<int>(layer_sizes_.size()) - 1;
  std::vector<double> current(layer_sizes_[0], 0.0);
  for (const auto& f : x.features) {
    if (f.index < current.size()) current[f.index] = f.value;
  }
  if (acts != nullptr) acts->push_back(current);

  for (int l = 0; l < layers; ++l) {
    const int in = layer_sizes_[l];
    const int out = layer_sizes_[l + 1];
    const double* w = params_.data() + WeightOffset(l);
    const double* b = params_.data() + BiasOffset(l);
    std::vector<double> next(out, 0.0);
    for (int j = 0; j < out; ++j) next[j] = b[j];
    for (int i = 0; i < in; ++i) {
      const double xi = current[i];
      if (xi == 0.0) continue;
      const double* row = w + static_cast<size_t>(i) * out;
      for (int j = 0; j < out; ++j) next[j] += xi * row[j];
    }
    if (l + 1 < layers) {
      for (double& v : next) v = std::max(0.0, v);  // ReLU.
    }
    current = std::move(next);
    if (acts != nullptr) acts->push_back(current);
  }

  // Softmax on the output layer.
  const double max_logit = *std::max_element(current.begin(), current.end());
  double denom = 0.0;
  for (double& v : current) {
    v = std::exp(v - max_logit);
    denom += v;
  }
  for (double& v : current) v /= denom;
  return current;
}

double Mlp::ComputeBatchGradient(const Dataset& data, size_t begin,
                                 size_t end,
                                 common::SparseGradient* grad) const {
  SKETCHML_CHECK_LT(begin, end);
  SKETCHML_CHECK_LE(end, data.size());
  const int layers = static_cast<int>(layer_sizes_.size()) - 1;
  std::vector<double> flat(params_.size(), 0.0);
  double total_loss = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(end - begin);

  for (size_t n = begin; n < end; ++n) {
    const Instance& x = data.instances()[n];
    const int label = static_cast<int>(x.label);
    std::vector<std::vector<double>> acts;
    std::vector<double> probs = Forward(x, &acts);
    SKETCHML_CHECK_GE(label, 0);
    SKETCHML_CHECK_LT(label, static_cast<int>(probs.size()));
    total_loss += -std::log(std::max(probs[label], 1e-12));

    // Backward. delta = dL/dz for the current layer's pre-activations.
    std::vector<double> delta = probs;
    delta[label] -= 1.0;
    for (int l = layers - 1; l >= 0; --l) {
      const int in = layer_sizes_[l];
      const int out = layer_sizes_[l + 1];
      const std::vector<double>& input = acts[l];
      double* gw = flat.data() + WeightOffset(l);
      double* gb = flat.data() + BiasOffset(l);
      for (int j = 0; j < out; ++j) gb[j] += delta[j] * inv_batch;
      for (int i = 0; i < in; ++i) {
        const double xi = input[i];
        if (xi == 0.0) continue;
        double* grow = gw + static_cast<size_t>(i) * out;
        for (int j = 0; j < out; ++j) {
          grow[j] += xi * delta[j] * inv_batch;
        }
      }
      if (l > 0) {
        const double* w = params_.data() + WeightOffset(l);
        std::vector<double> prev_delta(in, 0.0);
        for (int i = 0; i < in; ++i) {
          if (acts[l][i] <= 0.0) continue;  // ReLU derivative.
          const double* row = w + static_cast<size_t>(i) * out;
          double sum = 0.0;
          for (int j = 0; j < out; ++j) sum += row[j] * delta[j];
          prev_delta[i] = sum;
        }
        delta = std::move(prev_delta);
      }
    }
  }

  grad->clear();
  grad->reserve(flat.size());
  for (size_t k = 0; k < flat.size(); ++k) {
    if (flat[k] != 0.0) grad->push_back({k, flat[k]});
  }
  return total_loss * inv_batch;
}

double Mlp::ComputeMeanLoss(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  double total = 0.0;
  for (const auto& x : data.instances()) {
    const auto probs = Forward(x, nullptr);
    const int label = static_cast<int>(x.label);
    total += -std::log(std::max(probs[label], 1e-12));
  }
  return total / static_cast<double>(data.size());
}

double Mlp::ComputeAccuracy(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  size_t correct = 0;
  for (const auto& x : data.instances()) {
    const auto probs = Forward(x, nullptr);
    const int predicted = static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
    if (predicted == static_cast<int>(x.label)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

void Mlp::ApplySgd(const common::SparseGradient& grad, double learning_rate) {
  for (const auto& pair : grad) {
    params_[pair.key] -= learning_rate * pair.value;
  }
}

}  // namespace sketchml::ml
