#include "ml/dataset.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sketchml::ml {

double Dataset::AvgNnz() const {
  if (instances_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& inst : instances_) total += inst.features.size();
  return static_cast<double>(total) / instances_.size();
}

std::pair<Dataset, Dataset> Dataset::Split(double test_fraction) const {
  const size_t test_count =
      static_cast<size_t>(static_cast<double>(size()) * test_fraction);
  const size_t train_count = size() - test_count;
  std::vector<Instance> train(instances_.begin(),
                              instances_.begin() + train_count);
  std::vector<Instance> test(instances_.begin() + train_count,
                             instances_.end());
  return {Dataset(std::move(train), dim_), Dataset(std::move(test), dim_)};
}

namespace {

common::Status ParseLine(const std::string& line, Instance* inst,
                         uint64_t* max_index) {
  std::istringstream ss(line);
  double label = 0.0;
  if (!(ss >> label)) {
    return common::Status::CorruptedData("missing label: " + line);
  }
  // Map {0, 1} labels to {-1, +1}; leave regression targets alone
  // (they are also commonly 0/1 in CTR-style data, which maps fine).
  inst->label = label == 0.0 ? -1.0 : label;

  std::string token;
  while (ss >> token) {
    const size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return common::Status::CorruptedData("bad feature token: " + token);
    }
    char* end = nullptr;
    const unsigned long long index =
        std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() + colon) {
      return common::Status::CorruptedData("bad feature index: " + token);
    }
    const double value = std::strtod(token.c_str() + colon + 1, &end);
    if (end == token.c_str() + colon + 1) {
      return common::Status::CorruptedData("bad feature value: " + token);
    }
    inst->features.push_back(
        {static_cast<uint32_t>(index), static_cast<float>(value)});
    *max_index = std::max(*max_index, static_cast<uint64_t>(index));
  }
  std::sort(inst->features.begin(), inst->features.end(),
            [](const Feature& a, const Feature& b) {
              return a.index < b.index;
            });
  return common::Status::Ok();
}

common::Result<Dataset> ParseStream(std::istream& in) {
  std::vector<Instance> instances;
  uint64_t max_index = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    Instance inst;
    SKETCHML_RETURN_IF_ERROR(ParseLine(line, &inst, &max_index));
    instances.push_back(std::move(inst));
  }
  return Dataset(std::move(instances), max_index + 1);
}

}  // namespace

common::Result<Dataset> ReadLibSvmFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return common::Status::IoError("cannot open " + path);
  }
  return ParseStream(file);
}

common::Result<Dataset> ParseLibSvm(const std::string& text) {
  std::istringstream ss(text);
  return ParseStream(ss);
}

common::Status WriteLibSvmFile(const Dataset& data, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return common::Status::IoError("cannot open " + path + " for writing");
  }
  for (const auto& inst : data.instances()) {
    file << inst.label;
    for (const auto& f : inst.features) {
      file << ' ' << f.index << ':' << f.value;
    }
    file << '\n';
  }
  if (!file) {
    return common::Status::IoError("write failed for " + path);
  }
  return common::Status::Ok();
}

}  // namespace sketchml::ml
