#ifndef SKETCHML_ML_OPTIMIZER_H_
#define SKETCHML_ML_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/byte_buffer.h"
#include "common/sparse.h"
#include "common/status.h"
#include "ml/types.h"

namespace sketchml::ml {

/// A first-order optimizer owning a dense weight vector and consuming
/// sparse gradients.
class Optimizer {
 public:
  explicit Optimizer(uint64_t dim) : weights_(dim, 0.0) {}
  virtual ~Optimizer() = default;

  virtual std::string Name() const = 0;

  /// Applies one sparse gradient step.
  virtual void Apply(const common::SparseGradient& grad) = 0;

  const DenseVector& weights() const { return weights_; }
  DenseVector& mutable_weights() { return weights_; }

  /// Serializes the optimizer's full mutable state (checkpoint seam).
  /// The base captures the weight vector as varint dim + raw doubles;
  /// stateful optimizers append their moments/counters. Hyperparameters
  /// are configuration, not state — the caller reconstructs the optimizer
  /// and replays state into it.
  virtual void SaveState(common::ByteWriter* writer) const;

  /// Restores state written by `SaveState` on an optimizer of the same
  /// kind and dimension. Input may come from a corrupted checkpoint:
  /// dimension mismatches and truncation surface kCorruptedData, and the
  /// weight vector is only overwritten after the blob's header validates.
  [[nodiscard]] virtual common::Status RestoreState(
      common::ByteReader* reader);

 protected:
  DenseVector weights_;
};

/// Plain SGD: w -= eta * g.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(uint64_t dim, double learning_rate)
      : Optimizer(dim), learning_rate_(learning_rate) {}

  std::string Name() const override { return "sgd"; }
  void Apply(const common::SparseGradient& grad) override;

  double learning_rate() const { return learning_rate_; }

 private:
  double learning_rate_;
};

/// Adam [27], the paper's optimizer for every experiment (§4.1) and the
/// compensation for MinMaxSketch's decayed gradients (§3.3 Solution 2):
/// the per-dimension effective step eta/sqrt(v_t) grows when a dimension's
/// gradients shrink, counteracting systematic underestimation.
///
/// Sparse "lazy" variant: first and second moments update only on touched
/// dimensions; bias correction uses a global step count.
class AdamOptimizer : public Optimizer {
 public:
  /// Paper settings: beta1 = 0.9, beta2 = 0.999, epsilon = 1e-8.
  AdamOptimizer(uint64_t dim, double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8);

  std::string Name() const override { return "adam"; }
  void Apply(const common::SparseGradient& grad) override;

  uint64_t step() const { return step_; }

  /// Base weights, then step count and both moment vectors.
  void SaveState(common::ByteWriter* writer) const override;
  [[nodiscard]] common::Status RestoreState(
      common::ByteReader* reader) override;

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  uint64_t step_ = 0;
  DenseVector m_;  // First moment.
  DenseVector v_;  // Second moment.
};

}  // namespace sketchml::ml

#endif  // SKETCHML_ML_OPTIMIZER_H_
