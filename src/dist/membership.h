#ifndef SKETCHML_DIST_MEMBERSHIP_H_
#define SKETCHML_DIST_MEMBERSHIP_H_

#include <cstdint>
#include <vector>

#include "common/flags.h"
#include "common/result.h"
#include "common/status.h"

namespace sketchml::dist {

/// Declarative elastic-membership model for the distributed simulator —
/// the FaultPlan's sibling (ROADMAP "elastic cluster"). Where a FaultPlan
/// breaks a fixed fleet, a MembershipPlan *changes* the fleet: seeded
/// scale-up / scale-down / permanent-leave events fire at batch
/// boundaries, and the trainer runs the reconfiguration protocol
/// documented in docs/fault_tolerance.md (weight sync + residual warm
/// start on join, telemetry-sketch handoff on leave, consistent-hash
/// shard re-partitioning at epoch boundaries).
///
/// Every decision is a pure function of (seed, kind, batch, worker) via
/// the same SplitMix64 counter-hash style as FaultInjector, so a churn
/// schedule is replayable: identical run-to-run and at any thread count.
///
/// With every probability at zero (`Active()` false) the trainer takes
/// its fixed-fleet code path: no ring hashing, no handoffs, and
/// bit-identical messages, stats, and losses to a build without this
/// layer. Checkpointing (`checkpoint_every`) is independent of churn so
/// epoch checkpoints can back plain fault-tolerance runs too.
struct MembershipPlan {
  uint64_t seed = 1;  // Base seed for all membership decisions.

  // --- Churn events (evaluated per worker id at each batch boundary) ---
  double join_prob = 0.0;    // P(a standby worker joins the fleet).
  double leave_prob = 0.0;   // P(an active worker scales down; may rejoin).
  double depart_prob = 0.0;  // P(an active worker leaves permanently).

  // --- Fleet envelope ---
  int max_workers = 0;  // Fleet ceiling / id universe (0 = num_workers).
  int min_workers = 1;  // Scale-down floor of concurrently active workers.

  // --- Epoch checkpoints ---
  int checkpoint_every = 0;  // Save a checkpoint every N epochs (0 = off).
  int max_rollbacks = 2;     // Rollback-and-retry budget per run.

  /// True when any churn event can fire. Inactive plans cost nothing:
  /// the trainer keys shards by range, not by ring, and the fleet never
  /// changes size.
  bool Active() const {
    return join_prob > 0.0 || leave_prob > 0.0 || depart_prob > 0.0;
  }

  /// True when epoch checkpoints are taken (independently of churn).
  bool CheckpointsEnabled() const { return checkpoint_every > 0; }

  /// True when the plan can ever reduce the active worker count — the
  /// case ValidateClusterConfig cross-checks against FaultPlan.min_quorum.
  bool CanShrink() const { return leave_prob > 0.0 || depart_prob > 0.0; }
};

/// Rejects probabilities outside [0, 1] and nonsensical fleet envelopes
/// or checkpoint budgets.
common::Status ValidateMembershipPlan(const MembershipPlan& plan);

/// `plan.max_workers` with the 0-default resolved against the cluster's
/// starting worker count.
inline int ResolvedMaxWorkers(const MembershipPlan& plan, int num_workers) {
  return plan.max_workers > 0 ? plan.max_workers : num_workers;
}

/// Reads the shared `--membership-*` flags into a plan:
///
///   --membership-seed=N              decision seed (default 1)
///   --membership-join=P              per-standby-batch join probability
///   --membership-leave=P             per-active-batch scale-down probability
///   --membership-depart=P            per-active-batch permanent-leave prob.
///   --membership-max-workers=K       fleet ceiling (0 = num_workers)
///   --membership-min-workers=K       scale-down floor (default 1)
///   --membership-checkpoint-every=N  checkpoint cadence in epochs (0 = off)
///   --membership-max-rollbacks=N     rollback-and-retry budget (default 2)
///
/// The returned plan is validated; all-defaults yields an inactive plan.
common::Result<MembershipPlan> MembershipPlanFromFlags(
    const common::FlagParser& flags);

/// Deterministic, stateless membership oracle over a `MembershipPlan`,
/// mirroring FaultInjector: every decision hashes (plan seed, event kind,
/// batch, worker) into a uniform [0, 1) draw, so the schedule is
/// independent of call order and thread interleaving. `batch` is the
/// trainer's global batch index (monotonic across epochs and rollbacks).
class MembershipOracle {
 public:
  explicit MembershipOracle(const MembershipPlan& plan) : plan_(plan) {}

  const MembershipPlan& plan() const { return plan_; }

  /// True when standby `worker` joins the fleet at batch boundary `batch`.
  bool ShouldJoin(uint64_t batch, int worker) const {
    return Draw(kJoin, batch, worker) < plan_.join_prob;
  }

  /// True when active `worker` scales down (to standby) at `batch`.
  bool ShouldLeave(uint64_t batch, int worker) const {
    return Draw(kLeave, batch, worker) < plan_.leave_prob;
  }

  /// True when active `worker` leaves permanently at `batch`.
  bool ShouldDepart(uint64_t batch, int worker) const {
    return Draw(kDepart, batch, worker) < plan_.depart_prob;
  }

 private:
  // Distinct from FaultInjector::Kind so a shared seed never correlates
  // fault and membership schedules.
  enum Kind : uint64_t { kJoin = 101, kLeave, kDepart };

  /// Uniform [0, 1) draw for the decision keyed by the arguments.
  double Draw(Kind kind, uint64_t batch, int worker) const;

  MembershipPlan plan_;
};

/// Lifecycle of one worker id in the directory.
enum class WorkerState : uint8_t {
  kActive,    // Computing gradients this batch.
  kStandby,   // In the id universe, waiting to join (initial spares, or
              // scaled-down workers eligible to rejoin).
  kDeparted,  // Left permanently; never returns.
};

/// One applied membership event, for stats/metrics and the event log.
struct MembershipEvent {
  enum Kind : uint8_t { kJoin, kLeave, kDepart } kind;
  int worker = 0;
  uint64_t batch = 0;
};

/// Driver-side membership state machine. Worker ids live in the fixed
/// universe [0, max_workers); ids [0, num_workers) start active and the
/// rest standby. `ApplyBatch` walks the universe in id order (a serial,
/// driver-only pass — deterministic at any thread count) applying
/// depart > leave > join per worker, with the floor (`min_workers`)
/// enforced as events are applied, so the schedule can never drain the
/// fleet below the floor even when many draws fire in one batch.
class MembershipDirectory {
 public:
  MembershipDirectory() : oracle_(MembershipPlan{}) {}
  MembershipDirectory(const MembershipPlan& plan, int initial_workers);

  /// Applies this batch boundary's events; appends them to `events`.
  void ApplyBatch(uint64_t batch, std::vector<MembershipEvent>* events);

  /// Sorted ids of currently active workers.
  const std::vector<int>& active() const { return active_; }

  /// Size of the id universe (codec lanes / metric slots to provision).
  int universe() const { return static_cast<int>(states_.size()); }

  WorkerState state(int worker) const { return states_[worker]; }

 private:
  MembershipPlan plan_;
  MembershipOracle oracle_;
  std::vector<WorkerState> states_;
  std::vector<int> active_;  // Sorted; rebuilt after every ApplyBatch.
};

/// Consistent-hash ring over server shards (ReSketch-style partition-
/// aware placement, SNIPPETS.md §1). Each shard owns a fixed set of
/// virtual points derived only from its id, so growing or shrinking the
/// shard count moves only the keys between a removed/added shard and its
/// ring successor — the property that makes epoch-boundary
/// re-partitioning an O(moved keys) sketch handoff instead of a full
/// reshuffle. Deterministic: the ring is a pure function of the shard
/// count.
class ShardRing {
 public:
  /// Points per shard; enough for ±20 % balance at the simulator's shard
  /// counts without making ShardOf's binary search noticeable.
  static constexpr int kVirtualNodes = 16;

  /// Rebuilds the ring for shards [0, num_shards).
  void Rebuild(int num_shards);

  /// Owning shard of `key`: the first ring point clockwise of hash(key).
  int ShardOf(uint64_t key) const;

  int num_shards() const { return num_shards_; }

 private:
  int num_shards_ = 0;
  // (ring position, shard id), sorted by position.
  std::vector<std::pair<uint64_t, int>> points_;
};

/// Server shards scale with the fleet: the shard count for
/// `active_workers` out of an initial `initial_workers`-worker /
/// `num_servers`-shard cluster, proportional and clamped to
/// [1, num_servers]. With a full fleet this is exactly `num_servers`.
int ActiveServerCount(int num_servers, int active_workers,
                      int initial_workers);

}  // namespace sketchml::dist

#endif  // SKETCHML_DIST_MEMBERSHIP_H_
