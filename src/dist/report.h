#ifndef SKETCHML_DIST_REPORT_H_
#define SKETCHML_DIST_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"
#include "common/result.h"
#include "common/status.h"

namespace sketchml::dist {

/// Parsed form of the observability dumps (`*.series.jsonl` from
/// MetricsSampler, `*.metrics.jsonl` snapshots, `*.trace.json` Chrome
/// traces) plus the analyses `sketchml_report` runs over them: per-worker
/// phase breakdown (the paper's Figure 9 view), per-epoch straggler
/// summary, per-codec compression/recovery summary, and an A/B diff used
/// as a bench-regression gate.

/// Summary of one histogram inside a time-series sample (the sampler
/// writes quantiles, not raw buckets).
struct HistogramSummary {
  std::string name;  // Canonical, possibly labeled.
  double count = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double Mean() const { return count == 0.0 ? 0.0 : sum / count; }
};

/// Summary of one sketch-backed histogram inside a sample: KLL quantiles
/// with their error windows (see SketchHistogramSummary in the obs
/// layer). `pXX_lo`/`pXX_hi` are the values at rank q∓2ε — the interval
/// the true order statistic lies in — so A/B diffs can require a
/// regression to exceed the sketch's own error bound before firing.
struct SketchSummary {
  std::string name;  // Canonical, possibly labeled.
  double count = 0.0;
  double min = 0.0;
  double max = 0.0;
  double eps = 0.0;
  double p50 = 0.0, p50_lo = 0.0, p50_hi = 0.0;
  double p90 = 0.0, p90_lo = 0.0, p90_hi = 0.0;
  double p99 = 0.0, p99_lo = 0.0, p99_hi = 0.0;
  double p999 = 0.0, p999_lo = 0.0, p999_hi = 0.0;
  // Windowed view (ring of per-epoch sub-sketches plus the live tail).
  double window_count = 0.0;
  double windows = 0.0;
  double wp50 = 0.0, wp50_lo = 0.0, wp50_hi = 0.0;
  double wp99 = 0.0, wp99_lo = 0.0, wp99_hi = 0.0;
};

/// One snapshot line of a `*.series.jsonl` file. Counter values are
/// cumulative since process start; consumers diff successive samples.
struct SeriesSample {
  double t_ns = 0.0;
  std::string reason;  // "interval" | "epoch" | "final".
  double dropped_trace_events = 0.0;
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSummary> histograms;
  std::vector<SketchSummary> sketches;

  double CounterOr(std::string_view name, double default_value) const;
  double GaugeOr(std::string_view name, double default_value) const;
  const HistogramSummary* FindHistogram(std::string_view name) const;
  const SketchSummary* FindSketch(std::string_view name) const;

  /// Sum of counters with base name `base` whose labels contain all of
  /// `want` — same roll-up rule as MetricsSnapshot::SumCounters.
  double SumCounters(std::string_view base,
                     const obs::MetricLabels& want) const;
};

/// A fully parsed run time-series: header metadata plus samples in file
/// order.
struct RunSeries {
  std::string git_sha;
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<SeriesSample> samples;

  std::string MetaOr(std::string_view key,
                     std::string_view default_value) const;

  /// The last sample (cumulative totals for the whole run); nullptr when
  /// the series has none.
  const SeriesSample* Final() const;

  /// Samples written at epoch boundaries, in epoch order.
  std::vector<const SeriesSample*> EpochSamples() const;
};

/// Parses the full text of a series file / reads it from disk.
common::Result<RunSeries> ParseRunSeries(std::string_view text);
common::Result<RunSeries> LoadRunSeries(const std::string& path);

/// Per-worker phase totals (seconds already charged with the trainer's
/// mean-per-worker scaling, so rows sum to the aggregate trainer
/// counters).
struct WorkerPhaseRow {
  int worker = 0;
  double compute_seconds = 0.0;
  double encode_seconds = 0.0;
  double recovery_error_l1 = 0.0;
  double recovery_ref_l1 = 0.0;

  double TotalSeconds() const { return compute_seconds + encode_seconds; }
  /// Relative L1 recovery error of this worker's decoded gradients.
  double RecoveryErrorRel() const {
    return recovery_ref_l1 <= 0.0 ? 0.0
                                  : recovery_error_l1 / recovery_ref_l1;
  }
};

/// Per-server-shard totals.
struct ServerPhaseRow {
  int server = 0;
  double decode_seconds = 0.0;
  double gather_seconds = 0.0;  // Modeled per-link transfer time.
  double gather_bytes = 0.0;
};

/// Per-codec compression and latency summary (aggregated across all
/// instances of the codec: driver lane plus per-worker forks).
struct CodecRow {
  std::string codec;
  double encode_calls = 0.0;
  double encode_bytes = 0.0;
  double raw_bytes = 0.0;
  double mean_encode_ns = 0.0;
  double mean_decode_ns = 0.0;
  double p99_encode_ns = 0.0;  // Max p99 across instances.
  double p99_decode_ns = 0.0;

  /// raw/encoded — the paper's compression-ratio convention (>1 good).
  double CompressionRatio() const {
    return encode_bytes <= 0.0 ? 0.0 : raw_bytes / encode_bytes;
  }
};

/// One epoch's phase totals (deltas between successive epoch-boundary
/// samples) and its straggler summary.
struct EpochRow {
  int epoch = 0;
  double compute_seconds = 0.0;
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  double update_seconds = 0.0;
  double network_seconds = 0.0;
  double train_loss = 0.0;
  double test_loss = 0.0;

  /// Worker with the largest compute+encode time this epoch — with
  /// mean-per-worker charging all workers *should* be equal, so a high
  /// imbalance marks a straggler on the critical path.
  int straggler_worker = -1;
  double straggler_seconds = 0.0;
  double mean_worker_seconds = 0.0;

  /// p99-based straggler detection (the default rendering): worker with
  /// the largest windowed p99 of its per-batch compute latency sketch
  /// this epoch. Mean-based detection hides a worker that is slow on a
  /// few batches but average overall; the tail statistic catches it.
  /// Populated only when the series carries sketch summaries
  /// (p99_straggler_worker stays -1 otherwise and rendering falls back
  /// to the mean columns).
  int p99_straggler_worker = -1;
  double p99_straggler_seconds = 0.0;  // That worker's window p99.
  double mean_worker_p99 = 0.0;        // Mean of all workers' window p99s.

  double Imbalance() const {
    return mean_worker_seconds <= 0.0
               ? 0.0
               : straggler_seconds / mean_worker_seconds;
  }
  double P99Imbalance() const {
    return mean_worker_p99 <= 0.0 ? 0.0
                                  : p99_straggler_seconds / mean_worker_p99;
  }
  double TotalSeconds() const {
    return compute_seconds + encode_seconds + decode_seconds +
           update_seconds + network_seconds;
  }
};

/// Fault-injection / recovery totals for a run (all zero — and the
/// rendered section omitted — when the run had no FaultPlan active).
struct FaultSummary {
  double injected_drop = 0.0;      // fault/injected{kind=drop}
  double injected_corrupt = 0.0;   // fault/injected{kind=corrupt}
  double injected_straggle = 0.0;  // fault/injected{kind=straggle}
  double injected_crash = 0.0;     // fault/injected{kind=crash}
  double injected_stall = 0.0;     // fault/injected{kind=stall}
  double retries = 0.0;            // net/retries
  double retransmit_bytes = 0.0;   // net/retransmit_bytes
  double lost_messages = 0.0;      // net/lost_messages
  double degraded_batches = 0.0;   // trainer/degraded_batches

  double InjectedTotal() const {
    return injected_drop + injected_corrupt + injected_straggle +
           injected_crash + injected_stall;
  }
  bool Any() const {
    return InjectedTotal() > 0.0 || retries > 0.0 || lost_messages > 0.0 ||
           degraded_batches > 0.0;
  }
};

/// Elastic-membership totals for a run (all zero — and the rendered
/// section omitted — when the run had no MembershipPlan active and no
/// checkpoints enabled). Every field is a deterministic count for a
/// fixed seed, so the A/B diff treats any drift as a regression.
struct MembershipSummary {
  double joins = 0.0;             // membership/events{kind=join}
  double leaves = 0.0;            // membership/events{kind=leave}
  double departs = 0.0;           // membership/events{kind=depart}
  double handoff_bytes = 0.0;     // membership/handoff_bytes
  double sync_bytes = 0.0;        // membership/sync_bytes
  double reconfigurations = 0.0;  // membership/reconfigurations
  double rollbacks = 0.0;         // membership/rollbacks
  double checkpoint_bytes = 0.0;  // membership/checkpoint_bytes

  double EventTotal() const { return joins + leaves + departs; }
  bool Any() const {
    return EventTotal() > 0.0 || reconfigurations > 0.0 ||
           rollbacks > 0.0 || checkpoint_bytes > 0.0;
  }
};

/// Everything `sketchml_report` prints for a single run.
struct RunReport {
  std::string git_sha;
  std::vector<std::pair<std::string, std::string>> meta;

  // Aggregate phase totals ("trainer/*_seconds" at the final sample).
  double compute_seconds = 0.0;
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  double update_seconds = 0.0;
  double network_seconds = 0.0;

  std::vector<WorkerPhaseRow> workers;
  std::vector<ServerPhaseRow> servers;
  std::vector<CodecRow> codecs;
  std::vector<EpochRow> epochs;
  std::vector<SketchSummary> sketches;  // Final sample's sketch quantiles.
  FaultSummary faults;
  MembershipSummary membership;
  double dropped_trace_events = 0.0;
};

/// Builds the report from a parsed series (tolerates missing families —
/// a run recorded without labels still yields the aggregate section).
RunReport BuildRunReport(const RunSeries& series);

/// Rendering options for the single-run report.
struct RenderOptions {
  /// Use the legacy mean-based straggler columns even when sketch-based
  /// p99 detection is available (--straggler-mean; kept for one release).
  bool straggler_mean = false;
};

/// Human-readable rendering (what the CLI prints).
std::string RenderRunReport(const RunReport& report);
std::string RenderRunReport(const RunReport& report,
                            const RenderOptions& options);

/// A/B comparison of two runs' final samples.
struct DiffOptions {
  /// Relative change that flags a metric: |cand-base| / max(|base|,eps).
  double threshold = 0.25;
  /// Skip wall-clock metrics ("*_seconds", "*_ns"): they vary run to run
  /// on real machines, while byte counts, message counts, and losses are
  /// deterministic for a fixed seed. The golden-snapshot regression gate
  /// runs with this on.
  bool ignore_times = false;
};

struct MetricDelta {
  std::string name;  // Canonical name, "gauge:"-prefixed for gauges.
  double baseline = 0.0;
  double candidate = 0.0;
  bool timing = false;
  /// True when the change is in the harmful direction (more seconds,
  /// more bytes, more error/loss — or *any* change for count-style
  /// metrics, which a fixed-seed run reproduces exactly).
  bool regression = false;

  double RelChange() const;
};

/// One sketch-quantile comparison in the SLO section of an A/B diff.
/// Sketch-error-aware: `regression` fires only when the candidate's
/// lower confidence value exceeds the baseline's upper one — a drift
/// smaller than the combined KLL rank-error windows cannot fire, so the
/// gate never flags its own estimation noise.
struct SloDelta {
  std::string name;     // Sketch name.
  std::string quantile; // "p50" | "p99" | "p999" | "count".
  double baseline = 0.0;
  double candidate = 0.0;
  double baseline_hi = 0.0;  // Baseline value at q+2ε.
  double candidate_lo = 0.0; // Candidate value at q-2ε.
  bool regression = false;
};

struct DiffResult {
  size_t metrics_compared = 0;
  std::vector<MetricDelta> flagged;  // Changes beyond the threshold.
  std::vector<SloDelta> slo;         // Sketch-quantile SLO comparisons
                                     // (flagged entries only).

  bool HasRegression() const;
};

DiffResult DiffRuns(const RunSeries& baseline, const RunSeries& candidate,
                    const DiffOptions& options);
std::string RenderDiff(const DiffResult& diff, const DiffOptions& options);

/// Aggregated view of a Chrome trace (`*.trace.json`): total/max span
/// duration per (category, name), plus the dropped-events footer.
struct TraceSummary {
  struct Row {
    std::string category;
    std::string name;
    uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::vector<Row> rows;  // Sorted by descending total_us.
  double dropped_events = 0.0;
};

common::Result<TraceSummary> SummarizeTrace(std::string_view json_text);
common::Result<TraceSummary> LoadTraceSummary(const std::string& path);
std::string RenderTraceSummary(const TraceSummary& summary);

/// Renders a `*.metrics.jsonl` snapshot dump as a sorted table.
common::Result<std::string> SummarizeMetricsJsonl(std::string_view text);

/// Reads a whole file into a string.
common::Result<std::string> ReadFileToString(const std::string& path);

}  // namespace sketchml::dist

#endif  // SKETCHML_DIST_REPORT_H_
