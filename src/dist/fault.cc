#include "dist/fault.h"

#include <algorithm>
#include <string>

namespace sketchml::dist {

namespace {

/// SplitMix64 finalizer — the same mixer `common::LaneSeed` uses, applied
/// as a chain so every decision coordinate perturbs every output bit.
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t MixAll(uint64_t seed, uint64_t kind, uint64_t batch,
                uint64_t worker, uint64_t server, uint64_t attempt) {
  uint64_t z = Mix(seed ^ (kind * 0xd1342543de82ef95ULL));
  z = Mix(z ^ batch);
  z = Mix(z ^ (worker + 1));
  z = Mix(z ^ ((server + 1) << 20));
  return Mix(z ^ (attempt + 1));
}

/// Top 53 bits as a uniform double in [0, 1).
double ToUnit(uint64_t z) {
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

common::Status CheckProbability(const char* name, double p) {
  if (p < 0.0 || p > 1.0) {
    return common::Status::InvalidArgument(
        std::string(name) + " must be in [0, 1], got " + std::to_string(p));
  }
  return common::Status::Ok();
}

}  // namespace

common::Status ValidateFaultPlan(const FaultPlan& plan) {
  SKETCHML_RETURN_IF_ERROR(CheckProbability("drop_prob", plan.drop_prob));
  SKETCHML_RETURN_IF_ERROR(
      CheckProbability("corrupt_prob", plan.corrupt_prob));
  SKETCHML_RETURN_IF_ERROR(
      CheckProbability("straggle_prob", plan.straggle_prob));
  SKETCHML_RETURN_IF_ERROR(CheckProbability("crash_prob", plan.crash_prob));
  SKETCHML_RETURN_IF_ERROR(CheckProbability("stall_prob", plan.stall_prob));
  if (plan.straggle_factor < 1.0) {
    return common::Status::InvalidArgument(
        "straggle_factor must be >= 1 (1 = no delay)");
  }
  if (plan.crash_batches < 1) {
    return common::Status::InvalidArgument("crash_batches must be >= 1");
  }
  if (plan.stall_seconds < 0.0) {
    return common::Status::InvalidArgument("stall_seconds must be >= 0");
  }
  if (plan.max_retries < 0 || plan.max_retries > 62) {
    return common::Status::InvalidArgument(
        "max_retries must be in [0, 62] (backoff doubles per attempt)");
  }
  if (plan.backoff_seconds < 0.0) {
    return common::Status::InvalidArgument("backoff_seconds must be >= 0");
  }
  if (plan.min_quorum < 1) {
    return common::Status::InvalidArgument("min_quorum must be >= 1");
  }
  return common::Status::Ok();
}

common::Result<FaultPlan> FaultPlanFromFlags(
    const common::FlagParser& flags) {
  FaultPlan plan;
  SKETCHML_ASSIGN_OR_RETURN(const int64_t seed,
                            flags.GetInt("fault-seed", 1));
  plan.seed = static_cast<uint64_t>(seed);
  SKETCHML_ASSIGN_OR_RETURN(plan.drop_prob,
                            flags.GetDouble("fault-drop", 0.0));
  SKETCHML_ASSIGN_OR_RETURN(plan.corrupt_prob,
                            flags.GetDouble("fault-corrupt", 0.0));
  SKETCHML_ASSIGN_OR_RETURN(plan.straggle_prob,
                            flags.GetDouble("fault-straggle", 0.0));
  SKETCHML_ASSIGN_OR_RETURN(
      plan.straggle_factor, flags.GetDouble("fault-straggle-factor", 4.0));
  SKETCHML_ASSIGN_OR_RETURN(plan.crash_prob,
                            flags.GetDouble("fault-crash", 0.0));
  SKETCHML_ASSIGN_OR_RETURN(const int64_t crash_batches,
                            flags.GetInt("fault-crash-batches", 3));
  plan.crash_batches = static_cast<int>(crash_batches);
  SKETCHML_ASSIGN_OR_RETURN(plan.stall_prob,
                            flags.GetDouble("fault-stall", 0.0));
  SKETCHML_ASSIGN_OR_RETURN(plan.stall_seconds,
                            flags.GetDouble("fault-stall-seconds", 0.05));
  SKETCHML_ASSIGN_OR_RETURN(const int64_t retries,
                            flags.GetInt("fault-retries", 3));
  plan.max_retries = static_cast<int>(retries);
  SKETCHML_ASSIGN_OR_RETURN(plan.backoff_seconds,
                            flags.GetDouble("fault-backoff", 1e-3));
  SKETCHML_ASSIGN_OR_RETURN(const int64_t quorum,
                            flags.GetInt("min-quorum", 1));
  plan.min_quorum = static_cast<int>(quorum);
  SKETCHML_RETURN_IF_ERROR(ValidateFaultPlan(plan));
  return plan;
}

double FaultInjector::Draw(Kind kind, uint64_t batch, int worker, int server,
                          int attempt) const {
  return ToUnit(MixAll(plan_.seed, kind, batch,
                       static_cast<uint64_t>(worker),
                       static_cast<uint64_t>(server),
                       static_cast<uint64_t>(attempt)));
}

void FaultInjector::Corrupt(std::vector<uint8_t>* bytes, uint64_t batch,
                            int worker, int server, int attempt) const {
  if (bytes->empty()) return;
  // One extra mix decorrelates the damage pattern from the fire/no-fire
  // decision that used the plain (kCorrupt, ...) coordinates.
  uint64_t z = Mix(MixAll(plan_.seed, kCorrupt, batch,
                          static_cast<uint64_t>(worker),
                          static_cast<uint64_t>(server),
                          static_cast<uint64_t>(attempt)));
  if (z & 1) {
    // Truncation: keep a hashed prefix (possibly empty).
    bytes->resize((z >> 1) % bytes->size());
    return;
  }
  const int flips = 1 + static_cast<int>((z >> 1) & 3);
  for (int f = 0; f < flips; ++f) {
    z = Mix(z);
    (*bytes)[z % bytes->size()] ^=
        static_cast<uint8_t>(1u << ((z >> 32) & 7));
  }
}

bool FaultInjector::WorkerCrashed(uint64_t batch, int worker) const {
  if (plan_.crash_prob <= 0.0) return false;
  const uint64_t window = static_cast<uint64_t>(plan_.crash_batches);
  const uint64_t first = batch >= window - 1 ? batch - (window - 1) : 0;
  for (uint64_t b0 = first; b0 <= batch; ++b0) {
    if (Draw(kCrash, b0, worker, 0, 0) < plan_.crash_prob) return true;
  }
  return false;
}

}  // namespace sketchml::dist
