#include "dist/trace_analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/json.h"
#include "dist/report.h"

namespace sketchml::dist {
namespace {

using common::JsonValue;

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsSpan(const TraceSpanRecord& span, std::string_view category,
            std::string_view name) {
  return span.category == category && span.name == name;
}

/// The wall-phase bucket a span's self-time on the critical path belongs
/// to. Structural spans (epoch, batch, push, broadcast) and anything
/// unrecognized fall through to `other`.
double* PhaseBucket(PhaseAttribution* attribution,
                    const TraceSpanRecord& span) {
  if (span.category == "trainer") {
    if (span.name == "compute") return &attribution->compute_us;
    if (span.name == "aggregate") return &attribution->aggregate_us;
    if (span.name == "update") return &attribution->update_us;
  } else if (span.category == "codec") {
    if (StartsWith(span.name, "encode/")) return &attribution->encode_us;
    if (StartsWith(span.name, "decode/")) return &attribution->decode_us;
  }
  return &attribution->other_us;
}

/// Nodes of the reconstructed causal forest: span index plus wall
/// children (modeled "network" spans carry simulated durations on a wall
/// timestamp, so they are kept out of the wall walk).
struct TreeIndex {
  std::unordered_map<uint64_t, size_t> by_span_id;
  std::unordered_map<uint64_t, std::vector<size_t>> wall_children;
};

constexpr int kMaxWalkDepth = 64;  // Spans nest ~5 deep; cycles bail out.

/// Backward critical-path walk. Attributes the window [lo_us, hi_us] of
/// `span` exactly: descend into the latest-ending wall child first, jump
/// to its begin, repeat; every gap between children (and before the
/// first) is `span`'s own time. The recursion clips children to the
/// window, so the attributed total equals hi_us - lo_us by construction.
void WalkCriticalPath(const std::vector<TraceSpanRecord>& spans,
                      const TreeIndex& index, const TraceSpanRecord& span,
                      double lo_us, double hi_us, int depth,
                      PhaseAttribution* attribution) {
  double* self_bucket = PhaseBucket(attribution, span);
  if (depth >= kMaxWalkDepth) {
    *self_bucket += hi_us - lo_us;
    return;
  }
  const auto children_it = index.wall_children.find(span.span_id);
  double cursor = hi_us;
  if (children_it != index.wall_children.end()) {
    std::vector<size_t> order = children_it->second;
    std::sort(order.begin(), order.end(), [&spans](size_t a, size_t b) {
      return spans[a].end_us() > spans[b].end_us();
    });
    for (size_t child_index : order) {
      if (cursor <= lo_us) break;
      const TraceSpanRecord& child = spans[child_index];
      const double child_hi = std::min(child.end_us(), cursor);
      const double child_lo = std::max(child.ts_us, lo_us);
      if (child_hi <= child_lo) continue;  // Outside the window.
      *self_bucket += cursor - child_hi;   // Gap: span's own time.
      WalkCriticalPath(spans, index, child, child_lo, child_hi, depth + 1,
                       attribution);
      cursor = child_lo;
    }
  }
  if (cursor > lo_us) *self_bucket += cursor - lo_us;
}

void AppendJsonKey(std::ostream& out, std::string_view key, bool* first) {
  if (!*first) out << ',';
  *first = false;
  out << '"' << key << "\":";
}

void AppendJsonNumber(std::ostream& out, std::string_view key, double value,
                      bool* first) {
  AppendJsonKey(out, key, first);
  char buf[40];
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out << buf;
}

std::string FormatSeconds(double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%10.6f", us / 1e6);
  return buf;
}

/// Recursive exact comparison of two structural JSON values; mismatches
/// are appended as "<path>: golden <a> != candidate <b>" lines.
void CompareStructural(const std::string& path, const JsonValue* golden,
                       const JsonValue* candidate,
                       std::vector<std::string>* mismatches) {
  if (golden == nullptr) {
    mismatches->push_back(path + ": missing from golden");
    return;
  }
  if (candidate == nullptr) {
    mismatches->push_back(path + ": missing from candidate");
    return;
  }
  if (golden->is_object() || candidate->is_object()) {
    if (!golden->is_object() || !candidate->is_object()) {
      mismatches->push_back(path + ": object/non-object mismatch");
      return;
    }
    for (const auto& [key, value] : golden->object_items()) {
      CompareStructural(path + "." + key, &value, candidate->Find(key),
                        mismatches);
    }
    for (const auto& [key, value] : candidate->object_items()) {
      if (golden->Find(key) == nullptr) {
        mismatches->push_back(path + "." + key + ": missing from golden");
      }
    }
    return;
  }
  if (golden->is_number() && candidate->is_number()) {
    if (golden->number_value() != candidate->number_value()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s: golden %.17g != candidate %.17g",
                    path.c_str(), golden->number_value(),
                    candidate->number_value());
      mismatches->push_back(buf);
    }
    return;
  }
  if (golden->is_string() && candidate->is_string()) {
    if (golden->string_value() != candidate->string_value()) {
      mismatches->push_back(path + ": golden \"" + golden->string_value() +
                            "\" != candidate \"" + candidate->string_value() +
                            "\"");
    }
    return;
  }
  if (golden->type() != candidate->type()) {
    mismatches->push_back(path + ": type mismatch");
  }
}

}  // namespace

double TraceSpanRecord::ArgOr(std::string_view key,
                              double default_value) const {
  for (const auto& [arg_key, value] : args) {
    if (arg_key == key) return value;
  }
  return default_value;
}

common::Result<ParsedTrace> ParseChromeTrace(std::string_view json_text) {
  SKETCHML_ASSIGN_OR_RETURN(const JsonValue root,
                            JsonValue::Parse(json_text));
  if (!root.is_object()) {
    return common::Status::InvalidArgument("trace root is not an object");
  }
  ParsedTrace trace;
  trace.dropped_events =
      static_cast<uint64_t>(root.NumberOr("droppedEvents", 0.0));
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return common::Status::InvalidArgument("trace has no traceEvents array");
  }
  for (const JsonValue& event : events->array_items()) {
    if (event.StringOr("ph", "") != "X") continue;  // Metadata / flows.
    TraceSpanRecord span;
    span.category = event.StringOr("cat", "");
    span.name = event.StringOr("name", "");
    span.tid = static_cast<uint32_t>(event.NumberOr("tid", 0.0));
    span.ts_us = event.NumberOr("ts", 0.0);
    span.dur_us = event.NumberOr("dur", 0.0);
    if (const JsonValue* args = event.Find("args");
        args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->object_items()) {
        if (!value.is_number()) continue;
        const auto id = static_cast<uint64_t>(value.number_value());
        if (key == "trace_id") {
          span.trace_id = id;
        } else if (key == "span_id") {
          span.span_id = id;
        } else if (key == "parent_span_id") {
          span.parent_span_id = id;
        } else {
          span.args.emplace_back(key, value.number_value());
        }
      }
    }
    trace.spans.push_back(std::move(span));
  }
  return trace;
}

common::Result<ParsedTrace> LoadChromeTrace(const std::string& path) {
  SKETCHML_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  auto parsed = ParseChromeTrace(text);
  if (!parsed.ok()) {
    return common::Status::InvalidArgument(path + ": " +
                                           parsed.status().message());
  }
  return parsed;
}

common::Result<CriticalPathReport> AnalyzeTrace(const ParsedTrace& trace) {
  CriticalPathReport report;
  report.dropped_events = trace.dropped_events;

  TreeIndex index;
  index.by_span_id.reserve(trace.spans.size());
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpanRecord& span = trace.spans[i];
    if (span.span_id != 0) index.by_span_id.emplace(span.span_id, i);
  }

  std::map<std::string, uint64_t> by_category;
  std::unordered_map<uint64_t, uint64_t> roots_per_trace;
  std::map<int, uint64_t> straggler_counts;
  std::vector<size_t> epoch_spans;

  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpanRecord& span = trace.spans[i];
    ++by_category[span.category];
    if (span.trace_id != 0) {
      if (span.parent_span_id == 0) {
        ++roots_per_trace[span.trace_id];
      } else if (index.by_span_id.count(span.parent_span_id) == 0) {
        ++report.orphan_spans;
      } else if (span.category != "network") {
        index.wall_children[span.parent_span_id].push_back(i);
      }
    }
    if (IsSpan(span, "trainer", "epoch")) {
      epoch_spans.push_back(i);
    } else if (IsSpan(span, "trainer", "batch")) {
      ++report.batches;
    } else if (IsSpan(span, "trainer", "push")) {
      ++report.pushes;
    } else if (IsSpan(span, "network", "transfer")) {
      ++report.transfers;
      const auto attempt = static_cast<int>(span.ArgOr("attempt", 0.0));
      const auto bytes = static_cast<uint64_t>(span.ArgOr("bytes", 0.0));
      if (attempt >= 1) {
        ++report.retry_attempts;
        report.retransmit_bytes += bytes;
      } else {
        report.first_attempt_bytes += bytes;
      }
    } else if (IsSpan(span, "network", "retry")) {
      ++report.retry_spans;
      report.modeled.retry_us += span.dur_us;
    } else if (IsSpan(span, "network", "gather")) {
      report.modeled.gather_us += span.dur_us;
      report.bytes_up += static_cast<uint64_t>(span.ArgOr("bytes", 0.0));
    } else if (IsSpan(span, "network", "broadcast")) {
      report.modeled.broadcast_us += span.dur_us;
      report.bytes_down += static_cast<uint64_t>(span.ArgOr("bytes", 0.0));
    }
  }
  report.epochs = epoch_spans.size();
  if (report.epochs == 0) {
    return common::Status::InvalidArgument(
        "no (\"trainer\", \"epoch\") span: trace was not recorded by the "
        "trainer, or the trainer category was filtered out");
  }
  for (const auto& [trace_id, roots] : roots_per_trace) {
    if (roots > 1) ++report.multi_root_traces;
  }
  report.spans_by_category.assign(by_category.begin(), by_category.end());

  // Wall attribution: partition each epoch span's duration exactly.
  for (size_t epoch_index : epoch_spans) {
    const TraceSpanRecord& epoch = trace.spans[epoch_index];
    report.epoch_total_us += epoch.dur_us;
    WalkCriticalPath(trace.spans, index, epoch, epoch.ts_us, epoch.end_us(),
                     0, &report.attribution);
  }

  // Straggler attribution: the latest-ending push under each batch is
  // the chain that bounded it.
  for (const TraceSpanRecord& span : trace.spans) {
    if (!IsSpan(span, "trainer", "batch")) continue;
    const auto children_it = index.wall_children.find(span.span_id);
    if (children_it == index.wall_children.end()) continue;
    const TraceSpanRecord* bounding = nullptr;
    for (size_t child_index : children_it->second) {
      const TraceSpanRecord& child = trace.spans[child_index];
      if (!IsSpan(child, "trainer", "push")) continue;
      if (bounding == nullptr || child.end_us() > bounding->end_us()) {
        bounding = &child;
      }
    }
    if (bounding != nullptr) {
      ++straggler_counts[static_cast<int>(bounding->ArgOr("worker", -1.0))];
    }
  }
  for (const auto& [worker, count] : straggler_counts) {
    report.stragglers.push_back({worker, count});
  }
  std::sort(report.stragglers.begin(), report.stragglers.end(),
            [](const StragglerRow& a, const StragglerRow& b) {
              if (a.batches_bounded != b.batches_bounded) {
                return a.batches_bounded > b.batches_bounded;
              }
              return a.worker < b.worker;
            });
  return report;
}

std::string RenderCriticalPathReport(const CriticalPathReport& report) {
  std::ostringstream out;
  const PhaseAttribution& a = report.attribution;
  const double total = a.TotalUs();
  out << "== critical path (wall) ==\n";
  out << "  phase          seconds   share\n";
  const auto row = [&](const char* label, double us) {
    char share[16];
    std::snprintf(share, sizeof(share), "%5.1f%%",
                  total > 0.0 ? 100.0 * us / total : 0.0);
    out << "  " << label << FormatSeconds(us) << "  " << share << "\n";
  };
  row("compute   ", a.compute_us);
  row("encode    ", a.encode_us);
  row("decode    ", a.decode_us);
  row("aggregate ", a.aggregate_us);
  row("update    ", a.update_us);
  row("other     ", a.other_us);
  out << "  total     " << FormatSeconds(total) << "  (epoch spans "
      << FormatSeconds(report.epoch_total_us) << ")\n";
  out << "== modeled network (simulated links) ==\n";
  out << "  gather    " << FormatSeconds(report.modeled.gather_us)
      << "\n  broadcast " << FormatSeconds(report.modeled.broadcast_us)
      << "\n  retry     " << FormatSeconds(report.modeled.retry_us) << "\n";
  out << "== structure ==\n";
  out << "  epochs " << report.epochs << ", batches " << report.batches
      << ", pushes " << report.pushes << ", transfers " << report.transfers
      << " (" << report.retry_attempts << " retries), orphans "
      << report.orphan_spans << ", multi-root traces "
      << report.multi_root_traces << "\n";
  out << "  bytes: up " << report.bytes_up << ", down " << report.bytes_down
      << ", retransmitted " << report.retransmit_bytes;
  char amp[32];
  std::snprintf(amp, sizeof(amp), " (amplification %.3f)\n",
                report.RetryAmplification());
  out << amp;
  if (!report.stragglers.empty()) {
    out << "== stragglers (push chain bounding the batch) ==\n";
    for (const StragglerRow& s : report.stragglers) {
      out << "  worker " << s.worker << ": " << s.batches_bounded << "/"
          << report.batches << " batches\n";
    }
  }
  if (report.dropped_events > 0) {
    out << "!! dropped events: " << report.dropped_events
        << " (timeline truncated; raise the trace ring capacity)\n";
  }
  return out.str();
}

std::string CriticalPathReportToJson(const CriticalPathReport& report) {
  std::ostringstream out;
  out << "{\"structural\":{";
  bool first = true;
  const auto number = [&](std::string_view key, double value) {
    AppendJsonNumber(out, key, value, &first);
  };
  number("epochs", static_cast<double>(report.epochs));
  number("batches", static_cast<double>(report.batches));
  number("pushes", static_cast<double>(report.pushes));
  number("transfers", static_cast<double>(report.transfers));
  number("retry_attempts", static_cast<double>(report.retry_attempts));
  number("retry_spans", static_cast<double>(report.retry_spans));
  number("orphan_spans", static_cast<double>(report.orphan_spans));
  number("multi_root_traces", static_cast<double>(report.multi_root_traces));
  number("bytes_up", static_cast<double>(report.bytes_up));
  number("bytes_down", static_cast<double>(report.bytes_down));
  number("first_attempt_bytes",
         static_cast<double>(report.first_attempt_bytes));
  number("retransmit_bytes", static_cast<double>(report.retransmit_bytes));
  number("retry_amplification", report.RetryAmplification());
  AppendJsonKey(out, "spans_by_category", &first);
  out << '{';
  bool first_category = true;
  for (const auto& [category, count] : report.spans_by_category) {
    AppendJsonNumber(out, category, static_cast<double>(count),
                     &first_category);
  }
  out << '}';
  out << "},\"timing\":{";
  first = true;
  number("epoch_total_us", report.epoch_total_us);
  number("compute_us", report.attribution.compute_us);
  number("encode_us", report.attribution.encode_us);
  number("decode_us", report.attribution.decode_us);
  number("aggregate_us", report.attribution.aggregate_us);
  number("update_us", report.attribution.update_us);
  number("other_us", report.attribution.other_us);
  number("modeled_gather_us", report.modeled.gather_us);
  number("modeled_broadcast_us", report.modeled.broadcast_us);
  number("modeled_retry_us", report.modeled.retry_us);
  AppendJsonKey(out, "stragglers", &first);
  out << '[';
  bool first_straggler = true;
  for (const StragglerRow& s : report.stragglers) {
    if (!first_straggler) out << ',';
    first_straggler = false;
    out << "{\"worker\":" << s.worker << ",\"batches_bounded\":"
        << s.batches_bounded << '}';
  }
  out << ']';
  out << "},\"dropped_events\":" << report.dropped_events << "}\n";
  return out.str();
}

common::Result<std::vector<std::string>> DiffStructuralJson(
    std::string_view golden_json, std::string_view candidate_json) {
  SKETCHML_ASSIGN_OR_RETURN(const JsonValue golden,
                            JsonValue::Parse(golden_json));
  SKETCHML_ASSIGN_OR_RETURN(const JsonValue candidate,
                            JsonValue::Parse(candidate_json));
  const JsonValue* golden_structural = golden.Find("structural");
  const JsonValue* candidate_structural = candidate.Find("structural");
  if (golden_structural == nullptr) {
    return common::Status::InvalidArgument(
        "golden report has no \"structural\" section");
  }
  if (candidate_structural == nullptr) {
    return common::Status::InvalidArgument(
        "candidate report has no \"structural\" section");
  }
  std::vector<std::string> mismatches;
  CompareStructural("structural", golden_structural, candidate_structural,
                    &mismatches);
  return mismatches;
}

}  // namespace sketchml::dist
