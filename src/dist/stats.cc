#include "dist/stats.h"

#include <cstdio>

namespace sketchml::dist {

std::string EpochStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "epoch %2d: %.2fs (cpu %.2fs net %.2fs) up %.2fMB "
                "down %.2fMB loss %.5f",
                epoch, TotalSeconds(),
                compute_seconds + encode_seconds + decode_seconds +
                    update_seconds,
                network_seconds, bytes_up / 1e6, bytes_down / 1e6,
                train_loss);
  return buf;
}

EpochStats Aggregate(const std::vector<EpochStats>& stats) {
  EpochStats total;
  for (const auto& s : stats) {
    total.compute_seconds += s.compute_seconds;
    total.encode_seconds += s.encode_seconds;
    total.decode_seconds += s.decode_seconds;
    total.update_seconds += s.update_seconds;
    total.network_seconds += s.network_seconds;
    total.bytes_up += s.bytes_up;
    total.bytes_down += s.bytes_down;
    total.messages += s.messages;
    total.num_batches += s.num_batches;
  }
  if (!stats.empty()) {
    total.epoch = stats.back().epoch;
    total.train_loss = stats.back().train_loss;
    total.test_loss = stats.back().test_loss;
    double nnz = 0.0;
    for (const auto& s : stats) nnz += s.avg_gradient_nnz;
    total.avg_gradient_nnz = nnz / static_cast<double>(stats.size());
  }
  return total;
}

}  // namespace sketchml::dist
