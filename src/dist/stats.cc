#include "dist/stats.h"

#include <cstdio>
#include <map>

#include "common/obs.h"

namespace sketchml::dist {

std::string EpochStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "epoch %2d: %.2fs (cpu %.2fs net %.2fs) up %.2fMB "
                "down %.2fMB loss %.5f",
                epoch, TotalSeconds(),
                compute_seconds + encode_seconds + decode_seconds +
                    update_seconds,
                network_seconds, bytes_up / 1e6, bytes_down / 1e6,
                train_loss);
  std::string out = buf;
  if (injected_faults > 0 || retries > 0 || degraded_batches > 0) {
    std::snprintf(buf, sizeof(buf),
                  " faults=%llu retries=%llu lost=%llu degraded=%llu",
                  static_cast<unsigned long long>(injected_faults),
                  static_cast<unsigned long long>(retries),
                  static_cast<unsigned long long>(lost_messages),
                  static_cast<unsigned long long>(degraded_batches));
    out += buf;
  }
  if (joins > 0 || leaves > 0 || departs > 0 || reconfigurations > 0 ||
      rollbacks > 0) {
    std::snprintf(buf, sizeof(buf),
                  " joins=%llu leaves=%llu departs=%llu reconfigs=%llu "
                  "rollbacks=%llu",
                  static_cast<unsigned long long>(joins),
                  static_cast<unsigned long long>(leaves),
                  static_cast<unsigned long long>(departs),
                  static_cast<unsigned long long>(reconfigurations),
                  static_cast<unsigned long long>(rollbacks));
    out += buf;
  }
  return out;
}

EpochStats Aggregate(const std::vector<EpochStats>& stats) {
  EpochStats total;
  for (const auto& s : stats) {
    total.compute_seconds += s.compute_seconds;
    total.encode_seconds += s.encode_seconds;
    total.decode_seconds += s.decode_seconds;
    total.update_seconds += s.update_seconds;
    total.network_seconds += s.network_seconds;
    total.bytes_up += s.bytes_up;
    total.bytes_down += s.bytes_down;
    total.messages += s.messages;
    total.num_batches += s.num_batches;
    total.injected_faults += s.injected_faults;
    total.retries += s.retries;
    total.retransmit_bytes += s.retransmit_bytes;
    total.lost_messages += s.lost_messages;
    total.degraded_batches += s.degraded_batches;
    total.joins += s.joins;
    total.leaves += s.leaves;
    total.departs += s.departs;
    total.handoff_bytes += s.handoff_bytes;
    total.sync_bytes += s.sync_bytes;
    total.reconfigurations += s.reconfigurations;
    total.rollbacks += s.rollbacks;
    total.checkpoint_bytes += s.checkpoint_bytes;
  }
  if (!stats.empty()) {
    total.epoch = stats.back().epoch;
    total.train_loss = stats.back().train_loss;
    total.test_loss = stats.back().test_loss;
    double nnz = 0.0;
    for (const auto& s : stats) nnz += s.avg_gradient_nnz;
    total.avg_gradient_nnz = nnz / static_cast<double>(stats.size());
  }
  return total;
}

namespace {

/// Handles for the trainer's registry slice, bound once per process.
struct TrainerMetrics {
  obs::Counter compute_seconds;
  obs::Counter encode_seconds;
  obs::Counter decode_seconds;
  obs::Counter update_seconds;
  obs::Counter network_seconds;
  obs::Counter bytes_up;
  obs::Counter bytes_down;
  obs::Counter messages;
  obs::Counter num_batches;
  obs::Counter epochs;
  obs::Counter degraded_batches;
  obs::Gauge epoch;
  obs::Gauge avg_gradient_nnz;
  obs::Gauge train_loss;
  obs::Gauge test_loss;

  static const TrainerMetrics& Get() {
    static const TrainerMetrics* metrics = [] {
      // NOLINTNEXTLINE(sketchml-naked-new): leaked singleton.
      auto* m = new TrainerMetrics;
      auto& registry = obs::MetricsRegistry::Global();
      m->compute_seconds = registry.GetCounter("trainer/compute_seconds");
      m->encode_seconds = registry.GetCounter("trainer/encode_seconds");
      m->decode_seconds = registry.GetCounter("trainer/decode_seconds");
      m->update_seconds = registry.GetCounter("trainer/update_seconds");
      m->network_seconds = registry.GetCounter("trainer/network_seconds");
      m->bytes_up = registry.GetCounter("trainer/bytes_up");
      m->bytes_down = registry.GetCounter("trainer/bytes_down");
      m->messages = registry.GetCounter("trainer/messages");
      m->num_batches = registry.GetCounter("trainer/num_batches");
      m->epochs = registry.GetCounter("trainer/epochs");
      m->degraded_batches = registry.GetCounter("trainer/degraded_batches");
      m->epoch = registry.GetGauge("trainer/epoch");
      m->avg_gradient_nnz = registry.GetGauge("trainer/avg_gradient_nnz");
      m->train_loss = registry.GetGauge("trainer/train_loss");
      m->test_loss = registry.GetGauge("trainer/test_loss");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

void PublishEpochStats(const EpochStats& stats) {
  if (!obs::MetricsEnabled()) return;
  const TrainerMetrics& m = TrainerMetrics::Get();
  m.compute_seconds.Add(stats.compute_seconds);
  m.encode_seconds.Add(stats.encode_seconds);
  m.decode_seconds.Add(stats.decode_seconds);
  m.update_seconds.Add(stats.update_seconds);
  m.network_seconds.Add(stats.network_seconds);
  m.bytes_up.Add(static_cast<double>(stats.bytes_up));
  m.bytes_down.Add(static_cast<double>(stats.bytes_down));
  m.messages.Add(static_cast<double>(stats.messages));
  m.num_batches.Add(static_cast<double>(stats.num_batches));
  // Guarded so fault-free runs register no fault counters: the metrics
  // dump, series files, and the golden regression snapshot stay
  // bit-identical to a build without the fault layer.
  if (stats.degraded_batches > 0) {
    m.degraded_batches.Add(static_cast<double>(stats.degraded_batches));
  }
  m.epochs.Increment();
  m.epoch.Set(static_cast<double>(stats.epoch));
  m.avg_gradient_nnz.Set(stats.avg_gradient_nnz);
  m.train_loss.Set(stats.train_loss);
  m.test_loss.Set(stats.test_loss);
}

EpochStats EpochStatsFromMetrics(const obs::MetricsSnapshot& before,
                                 const obs::MetricsSnapshot& after) {
  const auto delta = [&](std::string_view name) {
    return after.CounterValueOf(name) - before.CounterValueOf(name);
  };
  EpochStats stats;
  stats.compute_seconds = delta("trainer/compute_seconds");
  stats.encode_seconds = delta("trainer/encode_seconds");
  stats.decode_seconds = delta("trainer/decode_seconds");
  stats.update_seconds = delta("trainer/update_seconds");
  stats.network_seconds = delta("trainer/network_seconds");
  stats.bytes_up = static_cast<uint64_t>(delta("trainer/bytes_up"));
  stats.bytes_down = static_cast<uint64_t>(delta("trainer/bytes_down"));
  stats.messages = static_cast<uint64_t>(delta("trainer/messages"));
  stats.num_batches = static_cast<size_t>(delta("trainer/num_batches"));
  stats.degraded_batches =
      static_cast<uint64_t>(delta("trainer/degraded_batches"));
  // The per-message fault counters are live-published by the trainer
  // with worker/server labels; roll them up across entities.
  const auto sum_delta = [&](std::string_view base) {
    return after.SumCounters(base, {}) - before.SumCounters(base, {});
  };
  stats.injected_faults = static_cast<uint64_t>(sum_delta("fault/injected"));
  stats.retries = static_cast<uint64_t>(sum_delta("net/retries"));
  stats.retransmit_bytes =
      static_cast<uint64_t>(sum_delta("net/retransmit_bytes"));
  stats.lost_messages = static_cast<uint64_t>(sum_delta("net/lost_messages"));
  // Membership event counters carry a kind label; filter per kind so the
  // per-kind split survives the rollup.
  const auto kind_delta = [&](const char* kind) {
    const obs::MetricLabels want = {{"kind", kind}};
    return after.SumCounters("membership/events", want) -
           before.SumCounters("membership/events", want);
  };
  stats.joins = static_cast<uint64_t>(kind_delta("join"));
  stats.leaves = static_cast<uint64_t>(kind_delta("leave"));
  stats.departs = static_cast<uint64_t>(kind_delta("depart"));
  stats.handoff_bytes =
      static_cast<uint64_t>(delta("membership/handoff_bytes"));
  stats.sync_bytes = static_cast<uint64_t>(delta("membership/sync_bytes"));
  stats.reconfigurations =
      static_cast<uint64_t>(delta("membership/reconfigurations"));
  stats.rollbacks = static_cast<uint64_t>(delta("membership/rollbacks"));
  stats.checkpoint_bytes =
      static_cast<uint64_t>(delta("membership/checkpoint_bytes"));
  stats.epoch = static_cast<int>(after.GaugeValueOf("trainer/epoch"));
  stats.avg_gradient_nnz = after.GaugeValueOf("trainer/avg_gradient_nnz");
  stats.train_loss = after.GaugeValueOf("trainer/train_loss");
  stats.test_loss = after.GaugeValueOf("trainer/test_loss");
  return stats;
}

std::string LatencyQuantileSummary(const obs::MetricsSnapshot& snap) {
  struct Group {
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  // Key: base plus the identity label (codec=/pool=), worker forks of
  // one codec merged into the codec's group.
  std::map<std::string, Group> groups;
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    const std::string_view name = h.name;
    const size_t suffix = name.find('{') == std::string_view::npos
                              ? name.size()
                              : name.find('{');
    if (suffix < 3 || name.substr(suffix - 3, 3) != "_ns") continue;
    const obs::ParsedMetricName parsed = obs::ParseMetricName(name);
    std::string key = parsed.base;
    for (const char* ident : {"codec", "pool"}) {
      const std::string_view value = obs::LabelValue(parsed.labels, ident);
      if (!value.empty()) {
        key += '{';
        key += ident;
        key += '=';
        key += value;
        key += '}';
        break;
      }
    }
    Group& g = groups[key];
    g.count += h.count;
    g.sum += h.sum;
    g.p50 = std::max(g.p50, h.P50());
    g.p95 = std::max(g.p95, h.P95());
    g.p99 = std::max(g.p99, h.P99());
  }
  std::string out;
  for (const auto& [key, g] : groups) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s: n=%llu mean=%.0fns p50<=%.0fns p95<=%.0fns "
                  "p99<=%.0fns\n",
                  key.c_str(), static_cast<unsigned long long>(g.count),
                  g.sum / static_cast<double>(g.count), g.p50, g.p95, g.p99);
    out += buf;
  }
  // KLL-backed latency sketches (unlike the pow2 histograms, quantiles
  // here merge exactly across workers — the cluster-wide lines are true
  // distribution estimates, ±eps in rank). wp99 is the windowed tail
  // over the last kSketchHistogramWindows epochs.
  for (const auto& s : snap.sketches) {
    if (s.count == 0) continue;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s: n=%llu p50=%.3gs p99=%.3gs [%.3g, %.3g] "
                  "p999=%.3gs wp99=%.3gs (eps=%.2g)\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.count),
                  s.p50.value, s.p99.value, s.p99.lo, s.p99.hi,
                  s.p999.value, s.wp99.value, s.eps);
    out += buf;
  }
  return out;
}

}  // namespace sketchml::dist
