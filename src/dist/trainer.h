#ifndef SKETCHML_DIST_TRAINER_H_
#define SKETCHML_DIST_TRAINER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/metrics_registry.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "compress/codec.h"
#include "dist/fault.h"
#include "dist/membership.h"
#include "dist/network_model.h"
#include "dist/stats.h"
#include "ml/dataset.h"
#include "ml/loss.h"
#include "ml/optimizer.h"
#include "sketch/kll_sketch.h"
#include "sketch/min_max_sketch.h"
#include "sketch/sketch_histogram.h"

namespace sketchml::dist {

/// Cluster shape for the simulator.
struct ClusterConfig {
  int num_workers = 10;
  NetworkModel network = NetworkModel::Lab1Gbps();

  /// Parameter-server shards. 1 = the paper's Spark prototype (a single
  /// driver gathers every gradient — its NIC serializes all W messages).
  /// S > 1 key-range-shards the aggregation across S server links that
  /// run in parallel, the parameter-server architecture the paper cites
  /// [22]; the gather bottleneck drops by ~S at the cost of W*S smaller
  /// messages (more per-message framing).
  int num_servers = 1;

  /// Multiplies measured gradient-computation seconds; lets experiments
  /// model slower executor hardware (e.g. the paper's JVM workers)
  /// without changing the workload.
  double compute_scale = 1.0;

  /// Multiplies measured encode/decode/aggregate seconds. Kept separate
  /// from `compute_scale` because codec kernels are tight array loops in
  /// both systems while the paper's gradient math pays full JVM overhead.
  double codec_scale = 1.0;

  /// Failure model (see dist/fault.h). Inactive by default: every
  /// message arrives intact and the trainer's byte streams, stats, and
  /// losses are bit-identical to a cluster without this field. When
  /// active, gather messages are CRC-framed, the injector can drop /
  /// corrupt / delay them, and the trainer runs the retry + quorum
  /// recovery protocol documented in docs/fault_tolerance.md.
  FaultPlan faults;

  /// Elastic-membership model (see dist/membership.h). Inactive by
  /// default: the fleet is fixed at num_workers, shards are key-range
  /// partitioned, and the trainer's byte streams, stats, and losses are
  /// bit-identical to a cluster without this field. When active, seeded
  /// join/leave/depart events fire at batch boundaries and the trainer
  /// runs the reconfiguration protocol (weight sync + residual warm
  /// start, telemetry-sketch handoff, consistent-hash shard
  /// re-partitioning). `checkpoint_every` enables epoch checkpoints
  /// independently of churn, turning a below-quorum kUnavailable epoch
  /// into rollback-and-retry.
  MembershipPlan membership;
};

/// Validates a cluster description: worker/server counts >= 1, a usable
/// NetworkModel (positive bandwidth and congestion factor, non-negative
/// latency — see NetworkModel::Validate), and a well-formed FaultPlan
/// whose min_quorum does not exceed num_workers. The trainer runs this
/// at construction and surfaces the failure from RunEpoch/Run, so a
/// misconfigured simulation returns InvalidArgument instead of silently
/// dividing by zero in TransferSeconds.
common::Status ValidateClusterConfig(const ClusterConfig& cluster);

/// Training-loop knobs (paper protocol, §4.1).
struct TrainerConfig {
  double batch_ratio = 0.1;   // Mini-batch = 10 % of the train set.
  double learning_rate = 0.1;
  double lambda = 0.01;       // ℓ2 coefficient.
  bool use_adam = true;       // Adam SGD for all candidates (§4.1).

  /// Adam's epsilon. The paper uses 1e-8 on ~11M-instance mini-batches;
  /// scaled-down workloads have much noisier gradients, and a larger
  /// epsilon damps Adam's normalized step on dimensions whose gradient is
  /// below the noise floor (otherwise rare features random-walk).
  double adam_epsilon = 1e-8;

  bool evaluate_test_loss = true;

  /// Threads executing the simulated workers (and, inside SketchML's
  /// encoder, the two sign streams). 1 = serial on the calling thread
  /// (default); 0 = one thread per hardware core; N > 1 = a fixed pool of
  /// N. All values produce bit-identical messages, stats, and losses:
  /// every worker owns a forked codec on its own seed lane and the driver
  /// reduces gradients in fixed worker order, so only wall-clock changes.
  int num_threads = 1;

  /// Causal-trace sampling: while tracing is enabled, record the
  /// per-batch causal tree (batch root, per-worker push chains, modeled
  /// per-attempt network transfers) only for batches whose global index
  /// is a multiple of this value. 1 (default) traces every batch; N > 1
  /// bounds tracing overhead on long runs. The epoch span and the
  /// driver-side aggregate/update/broadcast phase spans are always
  /// recorded; batches are sampled on the *global* batch counter, so the
  /// sampled set is deterministic across thread counts. No effect while
  /// tracing is off (the disabled path stays bit-identical).
  int trace_sample_every = 1;
};

/// Data-parallel mini-batch SGD with a pluggable gradient codec — the
/// stand-in for the paper's Spark driver/executor prototype (§4.1).
///
/// Per batch:
///   1. the batch is range-partitioned over W executors; each computes a
///      sparse gradient over its shard (measured, / W for parallelism);
///   2. each executor encodes its gradient with the codec (measured) and
///      "sends" it: bytes flow through the driver's link (modeled);
///   3. the driver decodes W messages (measured, serial), averages them,
///      and feeds the aggregate to the optimizer (Adam by default);
///   4. the driver broadcasts the updated-weights delta, re-encoded with
///      the same codec, to W executors (modeled).
///
/// Lossy codecs therefore distort what the optimizer sees exactly once,
/// matching the paper's architecture where compression sits on the
/// gradient aggregation path.
class DistributedTrainer {
 public:
  /// `codec` may be null for a no-compression (raw double) baseline.
  /// `train`/`test` and `loss` must outlive the trainer.
  DistributedTrainer(const ml::Dataset* train, const ml::Dataset* test,
                     const ml::Loss* loss,
                     std::unique_ptr<compress::GradientCodec> codec,
                     const ClusterConfig& cluster,
                     const TrainerConfig& config);

  /// Runs one epoch (one pass over the train set) and returns its stats.
  /// With checkpoints enabled (membership.checkpoint_every > 0), a
  /// below-quorum kUnavailable attempt rolls the trainer back to the
  /// last checkpoint and retries with the current (possibly shrunken)
  /// fleet, up to membership.max_rollbacks times per run; the global
  /// batch counter is NOT rewound, so a retry draws fresh fault
  /// decisions instead of replaying the fatal ones.
  common::Result<EpochStats> RunEpoch();

  /// Runs `epochs` epochs, returning per-epoch stats.
  common::Result<std::vector<EpochStats>> Run(int epochs);

  /// Serializes the trainer's full mutable training state — epoch/batch
  /// counters, optimizer (weights + moments), and every codec lane's
  /// stream state — into a CRC-framed checkpoint blob (see
  /// dist/checkpoint.h). `out` is overwritten.
  [[nodiscard]] common::Status SaveCheckpoint(std::vector<uint8_t>* out) const;

  /// Restores a SaveCheckpoint blob exactly (counters included): the
  /// trainer continues as if the intervening epochs never ran. The blob
  /// may be arbitrary bytes off disk: truncation, bit flips, or a
  /// mismatched model shape surface kCorruptedData and leave the trainer
  /// usable (a failed restore never half-applies state — parsing
  /// validates the envelope and every section before the first counter
  /// is touched).
  [[nodiscard]] common::Status RestoreCheckpoint(
      const std::vector<uint8_t>& checkpoint);

  const ml::Optimizer& optimizer() const { return *optimizer_; }
  int epochs_run() const { return epochs_run_; }

  /// Currently active workers (== num_workers while membership is off).
  int active_workers() const {
    return static_cast<int>(directory_.active().size());
  }

  /// Checkpoint rollbacks consumed so far (bounded by max_rollbacks).
  int rollbacks_used() const { return rollbacks_used_; }

  /// Simulated wall-clock seconds so far (sum over epochs).
  double simulated_seconds() const { return simulated_seconds_; }

  /// Resolved execution threads (config value with 0 mapped to the core
  /// count, and clamped to 1 when the codec cannot be forked per worker).
  int num_threads() const { return num_threads_; }

 private:
  /// Codec simulated worker `w` encodes/decodes with.
  compress::GradientCodec* WorkerCodec(int w) {
    return worker_codecs_.empty() ? codec_.get() : worker_codecs_[w].get();
  }

  /// One epoch, no rollback handling (RunEpoch wraps this with the
  /// checkpoint-based retry loop).
  common::Result<EpochStats> RunEpochAttempt();

  /// Serializes trainer state into the (unframed) checkpoint payload.
  void BuildCheckpointPayload(std::vector<uint8_t>* payload) const;

  /// Parses and applies a checkpoint blob. `for_rollback` keeps the
  /// monotonic counters (global batch index, accumulated simulated
  /// seconds) so a retried epoch draws *fresh* fault/membership
  /// decisions; an exact restore (RestoreCheckpoint) applies them too.
  common::Status RestoreFromBlob(const std::vector<uint8_t>& checkpoint,
                                 bool for_rollback);

  /// Applies one membership event (driver-side, serial): join = weight
  /// sync + residual warm start from the escrow, leave/depart = codec
  /// lane state into the escrow + telemetry-sketch handoff. Protocol
  /// bytes are charged to the NetworkModel via `stats`; telemetry bytes
  /// go to telemetry/* counters only.
  void ApplyMembershipEvent(const MembershipEvent& event, EpochStats* stats);

  /// Epoch-boundary shard re-partitioning: recomputes the active server
  /// count from the fleet size and, when it changed, hands mergeable
  /// sketch state shard-to-shard (serialize → transfer → merge, bytes
  /// charged to the NetworkModel) and rebuilds the consistent-hash ring.
  common::Status ReconfigureShards(EpochStats* stats);

  /// Feeds the batch's aggregated gradient into the owning shards'
  /// mergeable state (KLL over |value|, MinMaxSketch key->bucket cache).
  void UpdateShardState(const common::SparseGradient& grad);

  /// Per-entity labeled counters, resolved once at construction when
  /// metrics are enabled. Values are published from the driver's
  /// fixed-order reduce loop with the same scale factors EpochStats uses,
  /// so the per-entity slices reconcile exactly with the aggregate
  /// "trainer/*_seconds" counters:
  ///   compute = Σ_w worker_seconds{worker=w,phase=compute}
  ///   encode  = Σ_w worker_seconds{worker=w,phase=encode}
  ///             + driver_seconds{phase=encode}
  ///   decode  = Σ_s server_seconds{server=s,phase=decode}
  ///             + driver_seconds{phase=decode}
  ///   update  = driver_seconds{phase=update}
  ///   network = driver_seconds{phase=network}
  /// server_seconds{phase=gather} is the modeled per-link gather time
  /// (network takes the max of these per batch, so gather slices bound —
  /// rather than sum to — the network total).
  struct EntityMetrics {
    bool enabled = false;
    std::vector<obs::Counter> worker_compute;       // {worker=w,phase=compute}
    std::vector<obs::Counter> worker_encode;        // {worker=w,phase=encode}
    std::vector<obs::Counter> worker_recovery_err;  // recovery_error_l1
    std::vector<obs::Counter> worker_recovery_ref;  // recovery_ref_l1
    std::vector<obs::Counter> server_decode;        // {server=s,phase=decode}
    std::vector<obs::Counter> server_gather;        // {server=s,phase=gather}
    std::vector<obs::Counter> server_bytes;         // gather_bytes{server=s}
    obs::Counter driver_encode;
    obs::Counter driver_decode;
    obs::Counter driver_update;
    obs::Counter driver_network;
  };

  /// KLL-backed per-batch latency distributions — the sketch-native
  /// telemetry layer. Each worker has its own sketch per lane
  /// (compute/encode measured seconds, push modeled seconds); the driver
  /// records into them from the fixed-order reduce loop (single writer,
  /// so snapshots are identical at any --threads) and at every epoch
  /// boundary serializes each worker's window tail, merges it into the
  /// cluster-wide slot (the paper's sketch mergeability as the metric
  /// aggregation primitive), and retires the window. Serialized bytes are
  /// charged to telemetry/* counters only — never to the NetworkModel —
  /// so obs-on/off stays bit-identical.
  ///
  /// The push lane records *modeled* transfer seconds and carries
  /// "modeled" in its name: deterministic for a fixed seed, so the SLO
  /// gate can diff its quantiles across runs even under --ignore-times.
  struct SketchTelemetry {
    bool enabled = false;
    // trainer/compute_latency_seconds{worker=w} etc.
    std::vector<obs::SketchHistogram> worker_compute;
    std::vector<obs::SketchHistogram> worker_encode;
    std::vector<obs::SketchHistogram> worker_push;  // push_modeled_seconds
    // Cluster-wide merged slots (same base names, no labels).
    obs::SketchHistogram cluster_compute;
    obs::SketchHistogram cluster_encode;
    obs::SketchHistogram cluster_push;
    obs::Counter merges;       // telemetry/merges
    obs::Counter merge_bytes;  // telemetry/merge_bytes
  };

  /// Membership/checkpoint counters, registered only when the feature
  /// that publishes them is on (churn counters with an active plan,
  /// checkpoint counters with checkpoints enabled): a churn-off run must
  /// register no new metric names, keeping its dump and series files
  /// bit-identical to a build without the membership layer. Published
  /// from the driver loop only.
  struct MembershipMetrics {
    bool churn = false;        // membership/* churn counters live.
    bool checkpoints = false;  // checkpoint/rollback counters live.
    obs::Counter joins;             // membership/events{kind=join}
    obs::Counter leaves;            // membership/events{kind=leave}
    obs::Counter departs;           // membership/events{kind=depart}
    obs::Counter handoff_bytes;     // membership/handoff_bytes
    obs::Counter sync_bytes;        // membership/sync_bytes
    obs::Counter reconfigurations;  // membership/reconfigurations
    obs::Gauge active_workers;      // membership/active_workers
    obs::Gauge active_servers;      // membership/active_servers
    obs::Counter rollbacks;         // membership/rollbacks
    obs::Counter checkpoint_bytes;  // membership/checkpoint_bytes
  };

  /// Fault-path counters, resolved at construction only when the plan is
  /// active and metrics are on. Published from the driver's fixed-order
  /// reduce loop (single writer), never from worker threads.
  struct FaultMetrics {
    bool enabled = false;
    // fault/injected{kind=...,worker=w} per kind, net/* per worker.
    std::vector<obs::Counter> injected_drop;
    std::vector<obs::Counter> injected_corrupt;   // {kind=corrupt,worker=w}
    std::vector<obs::Counter> injected_straggle;  // {kind=straggle,worker=w}
    std::vector<obs::Counter> injected_crash;     // {kind=crash,worker=w}
    std::vector<obs::Counter> injected_stall;     // {kind=stall,server=s}
    std::vector<obs::Counter> retries;            // net/retries{worker=w}
    std::vector<obs::Counter> retransmit_bytes;
    obs::Counter lost_messages;                   // net/lost_messages
    obs::Gauge quorum;                            // trainer/quorum (last batch)
  };

  const ml::Dataset* train_;
  const ml::Dataset* test_;
  const ml::Loss* loss_;
  std::unique_ptr<compress::GradientCodec> codec_;  // Server/broadcast lane.
  // One forked codec per simulated worker (its seed lane), so concurrent
  // executors never share mutable codec state. Empty when the codec does
  // not support forking; execution then falls back to one shared codec on
  // a single thread.
  std::vector<std::unique_ptr<compress::GradientCodec>> worker_codecs_;
  std::unique_ptr<common::ThreadPool> pool_;  // Null when num_threads_ == 1.
  int num_threads_ = 1;
  ClusterConfig cluster_;
  TrainerConfig config_;
  std::unique_ptr<ml::Optimizer> optimizer_;
  EntityMetrics metrics_;
  SketchTelemetry sketch_metrics_;
  FaultMetrics fault_metrics_;
  MembershipMetrics membership_metrics_;
  /// Non-OK when the ClusterConfig failed validation; RunEpoch returns
  /// this instead of training (the constructor cannot return a Status).
  common::Status init_status_;
  FaultInjector injector_;
  bool faults_active_ = false;
  bool membership_active_ = false;
  bool checkpoints_enabled_ = false;
  /// Membership state machine; initialized for every run (with an
  /// inactive plan it pins the identity fleet 0..num_workers-1, so
  /// `directory_.active()` is THE worker-id list on both paths).
  MembershipDirectory directory_;
  ShardRing ring_;             // Rebuilt on every shard-count change.
  int initial_workers_ = 0;    // cluster_.num_workers at construction.
  int active_servers_ = 0;     // Shards currently owning key ranges.
  /// Per-shard mergeable aggregation state (membership-active only):
  /// a KLL sketch of |aggregated gradient| values and a MinMaxSketch
  /// caching key -> log2-magnitude buckets. Their only role here is to
  /// be the state that re-partitioning must hand shard-to-shard; both
  /// merge exactly (the paper's mergeability), so a re-partition is a
  /// serialize + transfer + merge instead of a rebuild.
  std::vector<sketch::KllSketch> shard_values_;
  std::vector<sketch::MinMaxSketch> shard_keys_;
  /// FIFO escrow of codec-lane state blobs saved by leaving workers;
  /// joiners adopt the oldest blob as their warm-start residual.
  std::deque<std::vector<uint8_t>> residual_escrow_;
  std::vector<uint8_t> checkpoint_;  // Last sealed checkpoint (maybe empty).
  int rollbacks_used_ = 0;
  uint64_t pending_rollbacks_ = 0;  // Rollbacks to report in the next stats.
  int epochs_run_ = 0;
  uint64_t batches_run_ = 0;  // Global batch index fed to the injector.
  double simulated_seconds_ = 0.0;
};

}  // namespace sketchml::dist

#endif  // SKETCHML_DIST_TRAINER_H_
