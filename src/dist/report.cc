#include "dist/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/json.h"

namespace sketchml::dist {
namespace {

using common::JsonValue;

std::string Format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// "1.234 s" / "12.3 ms" — phase durations span six orders of magnitude.
std::string FormatSeconds(double seconds) {
  if (seconds >= 1.0) return Format("%.3f s", seconds);
  if (seconds >= 1e-3) return Format("%.3f ms", seconds * 1e3);
  return Format("%.1f us", seconds * 1e6);
}

std::string FormatBytes(double bytes) {
  if (bytes >= 1 << 20) {
    return Format("%.2f MiB", bytes / static_cast<double>(1 << 20));
  }
  if (bytes >= 1 << 10) {
    return Format("%.2f KiB", bytes / static_cast<double>(1 << 10));
  }
  return Format("%.0f B", bytes);
}

/// Reads the integer value of label `key` from a canonical metric name,
/// -1 when absent or non-numeric.
int LabelInt(const obs::MetricLabels& labels, std::string_view key) {
  const std::string_view value = obs::LabelValue(labels, key);
  if (value.empty()) return -1;
  int out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return -1;
    out = out * 10 + (c - '0');
  }
  return out;
}

void ParseNumberMap(const JsonValue* obj,
                    std::vector<std::pair<std::string, double>>* out) {
  if (obj == nullptr || !obj->is_object()) return;
  out->reserve(obj->object_items().size());
  for (const auto& [name, value] : obj->object_items()) {
    if (value.is_number()) out->emplace_back(name, value.number_value());
  }
}

SeriesSample ParseSample(const JsonValue& line) {
  SeriesSample sample;
  sample.t_ns = line.NumberOr("t_ns", 0.0);
  sample.reason = line.StringOr("reason", "");
  sample.dropped_trace_events = line.NumberOr("dropped_trace_events", 0.0);
  ParseNumberMap(line.Find("counters"), &sample.counters);
  ParseNumberMap(line.Find("gauges"), &sample.gauges);
  if (const JsonValue* hists = line.Find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [name, h] : hists->object_items()) {
      if (!h.is_object()) continue;
      HistogramSummary summary;
      summary.name = name;
      summary.count = h.NumberOr("count", 0.0);
      summary.sum = h.NumberOr("sum", 0.0);
      summary.min = h.NumberOr("min", 0.0);
      summary.max = h.NumberOr("max", 0.0);
      summary.p50 = h.NumberOr("p50", 0.0);
      summary.p95 = h.NumberOr("p95", 0.0);
      summary.p99 = h.NumberOr("p99", 0.0);
      sample.histograms.push_back(std::move(summary));
    }
  }
  if (const JsonValue* sketches = line.Find("sketches");
      sketches != nullptr && sketches->is_object()) {
    for (const auto& [name, s] : sketches->object_items()) {
      if (!s.is_object()) continue;
      SketchSummary summary;
      summary.name = name;
      summary.count = s.NumberOr("count", 0.0);
      summary.min = s.NumberOr("min", 0.0);
      summary.max = s.NumberOr("max", 0.0);
      summary.eps = s.NumberOr("eps", 0.0);
      const struct {
        const char* key;
        double* value;
        double* lo;
        double* hi;
      } grid[] = {
          {"p50", &summary.p50, &summary.p50_lo, &summary.p50_hi},
          {"p90", &summary.p90, &summary.p90_lo, &summary.p90_hi},
          {"p99", &summary.p99, &summary.p99_lo, &summary.p99_hi},
          {"p999", &summary.p999, &summary.p999_lo, &summary.p999_hi},
          {"wp50", &summary.wp50, &summary.wp50_lo, &summary.wp50_hi},
          {"wp99", &summary.wp99, &summary.wp99_lo, &summary.wp99_hi},
      };
      for (const auto& q : grid) {
        *q.value = s.NumberOr(q.key, 0.0);
        *q.lo = s.NumberOr(std::string(q.key) + "_lo", 0.0);
        *q.hi = s.NumberOr(std::string(q.key) + "_hi", 0.0);
      }
      summary.window_count = s.NumberOr("window_count", 0.0);
      summary.windows = s.NumberOr("windows", 0.0);
      sample.sketches.push_back(std::move(summary));
    }
  }
  return sample;
}

/// Counter delta between two cumulative samples (`prev` may be null for
/// the first epoch).
double Delta(const SeriesSample& sample, const SeriesSample* prev,
             std::string_view name) {
  const double now = sample.CounterOr(name, 0.0);
  return prev == nullptr ? now : now - prev->CounterOr(name, 0.0);
}

double SumDelta(const SeriesSample& sample, const SeriesSample* prev,
                std::string_view base, const obs::MetricLabels& want) {
  const double now = sample.SumCounters(base, want);
  return prev == nullptr ? now : now - prev->SumCounters(base, want);
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsTimingMetric(std::string_view base) {
  return EndsWith(base, "_seconds") || EndsWith(base, "_ns");
}

/// Metrics where a larger value is unambiguously worse. Everything else
/// is count-style: deterministic for a fixed seed, so *any* drift there
/// is a behavior change worth flagging.
bool IsHigherWorse(std::string_view base) {
  return IsTimingMetric(base) || EndsWith(base, "_bytes") ||
         base.find("bytes") != std::string_view::npos ||
         base.find("error") != std::string_view::npos ||
         base.find("residual") != std::string_view::npos ||
         base.find("dropped") != std::string_view::npos ||
         EndsWith(base, "_loss");
}

}  // namespace

double SeriesSample::CounterOr(std::string_view name,
                               double default_value) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return default_value;
}

double SeriesSample::GaugeOr(std::string_view name,
                             double default_value) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return default_value;
}

const HistogramSummary* SeriesSample::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const SketchSummary* SeriesSample::FindSketch(std::string_view name) const {
  for (const auto& s : sketches) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double SeriesSample::SumCounters(std::string_view base,
                                 const obs::MetricLabels& want) const {
  double total = 0.0;
  for (const auto& [name, value] : counters) {
    if (name.size() < base.size() ||
        std::string_view(name).substr(0, base.size()) != base) {
      continue;
    }
    if (name.size() > base.size() && name[base.size()] != '{') continue;
    const obs::ParsedMetricName parsed = obs::ParseMetricName(name);
    if (parsed.base == base && obs::LabelsMatch(parsed.labels, want)) {
      total += value;
    }
  }
  return total;
}

std::string RunSeries::MetaOr(std::string_view key,
                              std::string_view default_value) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return std::string(default_value);
}

const SeriesSample* RunSeries::Final() const {
  return samples.empty() ? nullptr : &samples.back();
}

std::vector<const SeriesSample*> RunSeries::EpochSamples() const {
  std::vector<const SeriesSample*> out;
  for (const SeriesSample& sample : samples) {
    if (sample.reason == "epoch") out.push_back(&sample);
  }
  return out;
}

common::Result<RunSeries> ParseRunSeries(std::string_view text) {
  RunSeries series;
  bool saw_header = false;
  size_t line_number = 0;
  while (!text.empty()) {
    ++line_number;
    const size_t newline = text.find('\n');
    const std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view()
                                             : text.substr(newline + 1);
    if (line.empty()) continue;
    SKETCHML_ASSIGN_OR_RETURN(const JsonValue value, JsonValue::Parse(line));
    const std::string type = value.StringOr("type", "");
    if (type == "run") {
      saw_header = true;
      series.git_sha = value.StringOr("git_sha", "unknown");
      if (const JsonValue* meta = value.Find("meta");
          meta != nullptr && meta->is_object()) {
        for (const auto& [key, v] : meta->object_items()) {
          if (v.is_string()) series.meta.emplace_back(key, v.string_value());
        }
      }
    } else if (type == "sample") {
      series.samples.push_back(ParseSample(value));
    } else {
      return common::Status::InvalidArgument(
          "series line " + std::to_string(line_number) +
          ": unknown type '" + type + "'");
    }
  }
  if (!saw_header) {
    return common::Status::InvalidArgument(
        "not a run series: missing {\"type\":\"run\"} header line");
  }
  return series;
}

common::Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return common::Status::IoError("failed reading " + path);
  return buffer.str();
}

common::Result<RunSeries> LoadRunSeries(const std::string& path) {
  SKETCHML_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  auto parsed = ParseRunSeries(text);
  if (!parsed.ok()) {
    return common::Status::InvalidArgument(path + ": " +
                                           parsed.status().message());
  }
  return parsed;
}

RunReport BuildRunReport(const RunSeries& series) {
  RunReport report;
  report.git_sha = series.git_sha;
  report.meta = series.meta;
  const SeriesSample* final_sample = series.Final();
  if (final_sample == nullptr) return report;

  report.compute_seconds =
      final_sample->CounterOr("trainer/compute_seconds", 0.0);
  report.encode_seconds =
      final_sample->CounterOr("trainer/encode_seconds", 0.0);
  report.decode_seconds =
      final_sample->CounterOr("trainer/decode_seconds", 0.0);
  report.update_seconds =
      final_sample->CounterOr("trainer/update_seconds", 0.0);
  report.network_seconds =
      final_sample->CounterOr("trainer/network_seconds", 0.0);
  report.dropped_trace_events = final_sample->dropped_trace_events;
  report.sketches = final_sample->sketches;

  // Per-worker and per-server rows: discover the entity ids from the
  // label values actually present, then read each phase slice.
  std::set<int> worker_ids, server_ids;
  std::set<std::string> codec_names;
  for (const auto& [name, value] : final_sample->counters) {
    (void)value;
    const obs::ParsedMetricName parsed = obs::ParseMetricName(name);
    if (parsed.base == "trainer/worker_seconds" ||
        parsed.base == "trainer/recovery_error_l1") {
      const int w = LabelInt(parsed.labels, "worker");
      if (w >= 0) worker_ids.insert(w);
    } else if (parsed.base == "trainer/server_seconds" ||
               parsed.base == "trainer/gather_bytes") {
      const int s = LabelInt(parsed.labels, "server");
      if (s >= 0) server_ids.insert(s);
    } else if (parsed.base.rfind("codec/", 0) == 0) {
      const std::string_view codec = obs::LabelValue(parsed.labels, "codec");
      if (!codec.empty()) codec_names.insert(std::string(codec));
    }
  }

  for (int w : worker_ids) {
    WorkerPhaseRow row;
    row.worker = w;
    const std::string ws = std::to_string(w);
    row.compute_seconds = final_sample->SumCounters(
        "trainer/worker_seconds", {{"worker", ws}, {"phase", "compute"}});
    row.encode_seconds = final_sample->SumCounters(
        "trainer/worker_seconds", {{"worker", ws}, {"phase", "encode"}});
    row.recovery_error_l1 = final_sample->SumCounters(
        "trainer/recovery_error_l1", {{"worker", ws}});
    row.recovery_ref_l1 = final_sample->SumCounters(
        "trainer/recovery_ref_l1", {{"worker", ws}});
    report.workers.push_back(row);
  }

  for (int s : server_ids) {
    ServerPhaseRow row;
    row.server = s;
    const std::string ss = std::to_string(s);
    row.decode_seconds = final_sample->SumCounters(
        "trainer/server_seconds", {{"server", ss}, {"phase", "decode"}});
    row.gather_seconds = final_sample->SumCounters(
        "trainer/server_seconds", {{"server", ss}, {"phase", "gather"}});
    row.gather_bytes =
        final_sample->SumCounters("trainer/gather_bytes", {{"server", ss}});
    report.servers.push_back(row);
  }

  for (const std::string& codec : codec_names) {
    CodecRow row;
    row.codec = codec;
    const obs::MetricLabels want{{"codec", codec}};
    row.encode_calls =
        final_sample->SumCounters("codec/encode_calls", want);
    row.encode_bytes =
        final_sample->SumCounters("codec/encode_bytes", want);
    row.raw_bytes = final_sample->SumCounters("codec/raw_bytes", want);
    // Latency histograms exist once per codec instance (driver lane plus
    // per-worker forks). Means merge exactly; quantiles do not, so take
    // the worst p99 across instances as the codec's tail.
    double encode_count = 0.0, encode_sum = 0.0;
    double decode_count = 0.0, decode_sum = 0.0;
    for (const HistogramSummary& h : final_sample->histograms) {
      const obs::ParsedMetricName parsed = obs::ParseMetricName(h.name);
      if (obs::LabelValue(parsed.labels, "codec") != codec) continue;
      if (parsed.base == "codec/encode_ns") {
        encode_count += h.count;
        encode_sum += h.sum;
        row.p99_encode_ns = std::max(row.p99_encode_ns, h.p99);
      } else if (parsed.base == "codec/decode_ns") {
        decode_count += h.count;
        decode_sum += h.sum;
        row.p99_decode_ns = std::max(row.p99_decode_ns, h.p99);
      }
    }
    row.mean_encode_ns =
        encode_count == 0.0 ? 0.0 : encode_sum / encode_count;
    row.mean_decode_ns =
        decode_count == 0.0 ? 0.0 : decode_sum / decode_count;
    report.codecs.push_back(row);
  }

  // Fault totals (all zero unless the run had an active FaultPlan; the
  // trainer registers these names only when faults actually fire).
  report.faults.injected_drop =
      final_sample->SumCounters("fault/injected", {{"kind", "drop"}});
  report.faults.injected_corrupt =
      final_sample->SumCounters("fault/injected", {{"kind", "corrupt"}});
  report.faults.injected_straggle =
      final_sample->SumCounters("fault/injected", {{"kind", "straggle"}});
  report.faults.injected_crash =
      final_sample->SumCounters("fault/injected", {{"kind", "crash"}});
  report.faults.injected_stall =
      final_sample->SumCounters("fault/injected", {{"kind", "stall"}});
  report.faults.retries = final_sample->SumCounters("net/retries", {});
  report.faults.retransmit_bytes =
      final_sample->SumCounters("net/retransmit_bytes", {});
  report.faults.lost_messages =
      final_sample->CounterOr("net/lost_messages", 0.0);
  report.faults.degraded_batches =
      final_sample->CounterOr("trainer/degraded_batches", 0.0);

  // Membership totals (all zero unless the run had an active
  // MembershipPlan or checkpoints; the trainer registers these names
  // only when the feature is on).
  report.membership.joins =
      final_sample->SumCounters("membership/events", {{"kind", "join"}});
  report.membership.leaves =
      final_sample->SumCounters("membership/events", {{"kind", "leave"}});
  report.membership.departs =
      final_sample->SumCounters("membership/events", {{"kind", "depart"}});
  report.membership.handoff_bytes =
      final_sample->CounterOr("membership/handoff_bytes", 0.0);
  report.membership.sync_bytes =
      final_sample->CounterOr("membership/sync_bytes", 0.0);
  report.membership.reconfigurations =
      final_sample->CounterOr("membership/reconfigurations", 0.0);
  report.membership.rollbacks =
      final_sample->CounterOr("membership/rollbacks", 0.0);
  report.membership.checkpoint_bytes =
      final_sample->CounterOr("membership/checkpoint_bytes", 0.0);

  // Per-epoch rows from deltas of successive epoch-boundary samples.
  const std::vector<const SeriesSample*> epoch_samples =
      series.EpochSamples();
  const SeriesSample* prev = nullptr;
  int epoch = 0;
  for (const SeriesSample* sample : epoch_samples) {
    EpochRow row;
    row.epoch = ++epoch;
    row.compute_seconds = Delta(*sample, prev, "trainer/compute_seconds");
    row.encode_seconds = Delta(*sample, prev, "trainer/encode_seconds");
    row.decode_seconds = Delta(*sample, prev, "trainer/decode_seconds");
    row.update_seconds = Delta(*sample, prev, "trainer/update_seconds");
    row.network_seconds = Delta(*sample, prev, "trainer/network_seconds");
    row.train_loss = sample->GaugeOr("trainer/train_loss", 0.0);
    row.test_loss = sample->GaugeOr("trainer/test_loss", 0.0);

    // `worker_ids` is the union over the whole run; with elastic
    // membership a worker may join or leave mid-run, so average over the
    // workers that actually accumulated time *this epoch* — dividing by
    // the lifetime label count would dilute the mean and fake straggler
    // imbalance in every epoch after the fleet changed.
    double total_worker_seconds = 0.0;
    int epoch_worker_count = 0;
    for (int w : worker_ids) {
      const double seconds =
          SumDelta(*sample, prev, "trainer/worker_seconds",
                   {{"worker", std::to_string(w)}});
      if (seconds <= 0.0) continue;  // Not active this epoch.
      total_worker_seconds += seconds;
      ++epoch_worker_count;
      if (seconds > row.straggler_seconds) {
        row.straggler_seconds = seconds;
        row.straggler_worker = w;
      }
    }
    if (epoch_worker_count > 0) {
      row.mean_worker_seconds =
          total_worker_seconds / static_cast<double>(epoch_worker_count);
    }

    // p99 straggler from the per-worker latency sketches: the windowed
    // p99 is recomputed from the retired epoch windows, so reading it at
    // the epoch sample gives this epoch's tail without delta arithmetic.
    double sum_p99 = 0.0;
    int p99_workers = 0;
    for (int w : worker_ids) {
      const SketchSummary* sketch = sample->FindSketch(obs::LabeledName(
          "trainer/compute_latency_seconds",
          {{"worker", std::to_string(w)}}));
      if (sketch == nullptr || sketch->count <= 0.0) continue;
      sum_p99 += sketch->wp99;
      ++p99_workers;
      if (sketch->wp99 > row.p99_straggler_seconds) {
        row.p99_straggler_seconds = sketch->wp99;
        row.p99_straggler_worker = w;
      }
    }
    if (p99_workers > 0) {
      row.mean_worker_p99 = sum_p99 / static_cast<double>(p99_workers);
    }
    report.epochs.push_back(row);
    prev = sample;
  }
  return report;
}

std::string RenderRunReport(const RunReport& report) {
  return RenderRunReport(report, RenderOptions{});
}

std::string RenderRunReport(const RunReport& report,
                            const RenderOptions& options) {
  std::ostringstream out;
  out << "run: git_sha=" << report.git_sha;
  for (const auto& [key, value] : report.meta) {
    out << ' ' << key << '=' << value;
  }
  out << '\n';

  const double total = report.compute_seconds + report.encode_seconds +
                       report.decode_seconds + report.update_seconds +
                       report.network_seconds;
  out << "\n== phase totals (simulated) ==\n";
  const auto phase = [&](const char* name, double seconds) {
    out << "  " << name << ": " << FormatSeconds(seconds);
    if (total > 0.0) {
      out << "  (" << Format("%.1f%%", seconds / total * 100.0) << ")";
    }
    out << '\n';
  };
  phase("compute", report.compute_seconds);
  phase("encode ", report.encode_seconds);
  phase("decode ", report.decode_seconds);
  phase("update ", report.update_seconds);
  phase("network", report.network_seconds);
  out << "  total  : " << FormatSeconds(total) << '\n';

  if (!report.workers.empty()) {
    out << "\n== per-worker breakdown (Fig. 9 view) ==\n";
    out << "  worker     compute      encode       total   recovery-err\n";
    for (const WorkerPhaseRow& row : report.workers) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "  %6d  %10s  %10s  %10s  %12s\n", row.worker,
                    FormatSeconds(row.compute_seconds).c_str(),
                    FormatSeconds(row.encode_seconds).c_str(),
                    FormatSeconds(row.TotalSeconds()).c_str(),
                    Format("%.4g", row.RecoveryErrorRel()).c_str());
      out << buf;
    }
  }

  if (!report.servers.empty()) {
    out << "\n== per-server breakdown ==\n";
    out << "  server      decode      gather        bytes\n";
    for (const ServerPhaseRow& row : report.servers) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "  %6d  %10s  %10s  %11s\n",
                    row.server, FormatSeconds(row.decode_seconds).c_str(),
                    FormatSeconds(row.gather_seconds).c_str(),
                    FormatBytes(row.gather_bytes).c_str());
      out << buf;
    }
  }

  if (!report.codecs.empty()) {
    out << "\n== codecs ==\n";
    for (const CodecRow& row : report.codecs) {
      out << "  " << row.codec << ": ratio "
          << Format("%.2fx", row.CompressionRatio()) << " ("
          << FormatBytes(row.raw_bytes) << " -> "
          << FormatBytes(row.encode_bytes) << ", "
          << Format("%.0f", row.encode_calls) << " encodes)"
          << ", encode mean " << Format("%.0f ns", row.mean_encode_ns)
          << " p99 " << Format("%.0f ns", row.p99_encode_ns)
          << ", decode mean " << Format("%.0f ns", row.mean_decode_ns)
          << " p99 " << Format("%.0f ns", row.p99_decode_ns) << '\n';
    }
  }

  if (!report.epochs.empty()) {
    // Straggler detection defaults to the p99 of each worker's per-batch
    // compute-latency sketch (tail-sensitive); --straggler-mean restores
    // the legacy mean-based columns, which are also the fallback when the
    // series carries no sketch summaries.
    const bool have_p99 =
        std::any_of(report.epochs.begin(), report.epochs.end(),
                    [](const EpochRow& r) {
                      return r.p99_straggler_worker >= 0;
                    });
    const bool use_p99 = have_p99 && !options.straggler_mean;
    out << "\n== per-epoch summary ==\n";
    out << (use_p99
                ? "  epoch       total     compute      encode  "
                  "p99-strag  p99-imbal  train-loss\n"
                : "  epoch       total     compute      encode    "
                  "straggler  imbalance  train-loss\n");
    for (const EpochRow& row : report.epochs) {
      const int straggler =
          use_p99 ? row.p99_straggler_worker : row.straggler_worker;
      const double imbalance =
          use_p99 ? row.P99Imbalance() : row.Imbalance();
      char buf[200];
      std::snprintf(
          buf, sizeof(buf), "  %5d  %10s  %10s  %10s  %9s  %9s  %10s\n",
          row.epoch, FormatSeconds(row.TotalSeconds()).c_str(),
          FormatSeconds(row.compute_seconds).c_str(),
          FormatSeconds(row.encode_seconds).c_str(),
          straggler < 0 ? "-" : ("w" + std::to_string(straggler)).c_str(),
          Format("%.2fx", imbalance).c_str(),
          Format("%.6g", row.train_loss).c_str());
      out << buf;
    }
  }

  if (!report.sketches.empty()) {
    out << "\n== latency sketches (KLL, eps = normalized rank error) ==\n";
    out << "       count        p50        p99  [p99 lo, hi]          "
           "p999       wp99  name\n";
    for (const SketchSummary& s : report.sketches) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "  %10s  %9s  %9s  [%s, %s]  %9s  %9s  %s\n",
                    Format("%.0f", s.count).c_str(),
                    FormatSeconds(s.p50).c_str(),
                    FormatSeconds(s.p99).c_str(),
                    FormatSeconds(s.p99_lo).c_str(),
                    FormatSeconds(s.p99_hi).c_str(),
                    FormatSeconds(s.p999).c_str(),
                    FormatSeconds(s.wp99).c_str(), s.name.c_str());
      out << buf;
    }
  }

  if (report.faults.Any()) {
    const FaultSummary& f = report.faults;
    out << "\n== fault tolerance ==\n";
    out << "  injected: " << Format("%.0f", f.InjectedTotal()) << " (drop "
        << Format("%.0f", f.injected_drop) << ", corrupt "
        << Format("%.0f", f.injected_corrupt) << ", straggle "
        << Format("%.0f", f.injected_straggle) << ", crash "
        << Format("%.0f", f.injected_crash) << ", stall "
        << Format("%.0f", f.injected_stall) << ")\n";
    out << "  recovery: " << Format("%.0f", f.retries) << " retries ("
        << FormatBytes(f.retransmit_bytes) << " retransmitted), "
        << Format("%.0f", f.lost_messages) << " messages lost, "
        << Format("%.0f", f.degraded_batches)
        << " batches applied degraded\n";
  }

  if (report.membership.Any()) {
    const MembershipSummary& m = report.membership;
    out << "\n== elastic membership ==\n";
    out << "  events: " << Format("%.0f", m.EventTotal()) << " (join "
        << Format("%.0f", m.joins) << ", leave "
        << Format("%.0f", m.leaves) << ", depart "
        << Format("%.0f", m.departs) << ")\n";
    out << "  handoff: " << FormatBytes(m.handoff_bytes)
        << " state transferred, " << FormatBytes(m.sync_bytes)
        << " weight syncs, " << Format("%.0f", m.reconfigurations)
        << " shard reconfigurations\n";
    out << "  checkpoints: " << FormatBytes(m.checkpoint_bytes)
        << " written, " << Format("%.0f", m.rollbacks) << " rollbacks\n";
  }

  if (report.dropped_trace_events > 0.0) {
    out << "\nWARNING: " << Format("%.0f", report.dropped_trace_events)
        << " trace events dropped (ring wrapped) — timeline truncated;"
           " raise the trace ring capacity.\n";
  }
  return out.str();
}

double MetricDelta::RelChange() const {
  const double base = std::abs(baseline);
  if (base == 0.0) return candidate == 0.0 ? 0.0 : HUGE_VAL;
  return (candidate - baseline) / base;
}

bool DiffResult::HasRegression() const {
  return std::any_of(flagged.begin(), flagged.end(),
                     [](const MetricDelta& d) { return d.regression; }) ||
         std::any_of(slo.begin(), slo.end(),
                     [](const SloDelta& d) { return d.regression; });
}

DiffResult DiffRuns(const RunSeries& baseline, const RunSeries& candidate,
                    const DiffOptions& options) {
  DiffResult result;
  static const SeriesSample kEmpty;
  const SeriesSample& base =
      baseline.Final() != nullptr ? *baseline.Final() : kEmpty;
  const SeriesSample& cand =
      candidate.Final() != nullptr ? *candidate.Final() : kEmpty;

  // Union of metric names on both sides; gauges are prefixed so a gauge
  // and a counter with the same name cannot collide.
  std::map<std::string, std::pair<double, double>> merged;
  const auto fold = [&merged](
                        const std::vector<std::pair<std::string, double>>&
                            metrics,
                        std::string_view prefix, bool is_baseline) {
    for (const auto& [name, value] : metrics) {
      auto& slot = merged[std::string(prefix) + name];
      (is_baseline ? slot.first : slot.second) = value;
    }
  };
  fold(base.counters, "", true);
  fold(cand.counters, "", false);
  fold(base.gauges, "gauge:", true);
  fold(cand.gauges, "gauge:", false);

  for (const auto& [name, values] : merged) {
    std::string_view bare = name;
    const bool is_gauge = bare.rfind("gauge:", 0) == 0;
    if (is_gauge) bare.remove_prefix(6);
    const obs::ParsedMetricName parsed = obs::ParseMetricName(bare);
    // Instantaneous level metrics are transient (whatever the queue depth
    // happened to be at the final snapshot): not comparable across runs.
    if (parsed.base == "threadpool/queue_depth") continue;
    const bool timing = IsTimingMetric(parsed.base);
    if (timing && options.ignore_times) continue;
    ++result.metrics_compared;

    MetricDelta delta;
    delta.name = name;
    delta.baseline = values.first;
    delta.candidate = values.second;
    delta.timing = timing;
    if (std::abs(delta.RelChange()) <= options.threshold) continue;
    // Harmful-direction changes regress; for count-style metrics any
    // drift does (a fixed-seed run reproduces them exactly).
    delta.regression = IsHigherWorse(parsed.base)
                           ? delta.candidate > delta.baseline
                           : true;
    result.flagged.push_back(std::move(delta));
  }
  // Regressions first, then by magnitude.
  std::stable_sort(result.flagged.begin(), result.flagged.end(),
                   [](const MetricDelta& a, const MetricDelta& b) {
                     if (a.regression != b.regression) return a.regression;
                     return std::abs(a.RelChange()) > std::abs(b.RelChange());
                   });

  // SLO section: sketch quantiles compared with sketch-error-aware
  // thresholds. A quantile regresses only when the candidate's value at
  // rank q-2ε exceeds the baseline's at q+2ε — i.e. the drift is larger
  // than what both sketches' combined rank error could explain. The
  // "modeled" naming convention marks sketches of deterministic modeled
  // seconds (network transfer under a fixed seed), which stay comparable
  // even under --ignore-times; measured-latency sketches are skipped
  // there just like wall-clock counters.
  std::set<std::string> sketch_names;
  for (const SketchSummary& s : base.sketches) sketch_names.insert(s.name);
  for (const SketchSummary& s : cand.sketches) sketch_names.insert(s.name);
  static const SketchSummary kEmptySketch;
  for (const std::string& name : sketch_names) {
    const obs::ParsedMetricName parsed = obs::ParseMetricName(name);
    if (options.ignore_times && IsTimingMetric(parsed.base) &&
        name.find("modeled") == std::string::npos) {
      continue;
    }
    ++result.metrics_compared;
    const SketchSummary* b = base.FindSketch(name);
    const SketchSummary* c = cand.FindSketch(name);
    if (b == nullptr) b = &kEmptySketch;
    if (c == nullptr) c = &kEmptySketch;

    // Record counts are deterministic for a fixed seed: any drift is a
    // behavior change (sketch appeared/vanished, or lane cadence moved).
    if (b->count != c->count) {
      SloDelta delta;
      delta.name = name;
      delta.quantile = "count";
      delta.baseline = b->count;
      delta.candidate = c->count;
      delta.baseline_hi = b->count;
      delta.candidate_lo = c->count;
      delta.regression = true;
      result.slo.push_back(std::move(delta));
      continue;  // Quantiles are not comparable at different counts.
    }
    if (b->count == 0.0) continue;

    const struct {
      const char* quantile;
      double baseline, baseline_hi, candidate, candidate_lo;
    } checks[] = {
        {"p50", b->p50, b->p50_hi, c->p50, c->p50_lo},
        {"p99", b->p99, b->p99_hi, c->p99, c->p99_lo},
        {"p999", b->p999, b->p999_hi, c->p999, c->p999_lo},
    };
    for (const auto& check : checks) {
      if (check.candidate_lo <= check.baseline_hi) continue;
      SloDelta delta;
      delta.name = name;
      delta.quantile = check.quantile;
      delta.baseline = check.baseline;
      delta.candidate = check.candidate;
      delta.baseline_hi = check.baseline_hi;
      delta.candidate_lo = check.candidate_lo;
      delta.regression = true;
      result.slo.push_back(std::move(delta));
    }
  }
  return result;
}

std::string RenderDiff(const DiffResult& diff, const DiffOptions& options) {
  std::ostringstream out;
  out << "compared " << diff.metrics_compared << " metrics (threshold "
      << Format("%.0f%%", options.threshold * 100.0)
      << (options.ignore_times ? ", wall-clock metrics ignored" : "")
      << ")\n";
  if (diff.flagged.empty() && diff.slo.empty()) {
    out << "no metric changed beyond the threshold\n";
    return out.str();
  }
  for (const MetricDelta& delta : diff.flagged) {
    const double rel = delta.RelChange();
    out << (delta.regression ? "  REGRESSION  " : "  changed     ")
        << delta.name << ": " << Format("%.6g", delta.baseline) << " -> "
        << Format("%.6g", delta.candidate) << "  (";
    if (std::isinf(rel)) {
      out << "new";
    } else {
      out << Format("%+.1f%%", rel * 100.0);
    }
    out << ")\n";
  }
  if (!diff.slo.empty()) {
    out << "== SLO (sketch quantiles, error-bound aware) ==\n";
    for (const SloDelta& delta : diff.slo) {
      out << (delta.regression ? "  SLO REGRESSION  " : "  slo ok         ")
          << delta.name << " " << delta.quantile << ": "
          << Format("%.6g", delta.baseline) << " -> "
          << Format("%.6g", delta.candidate);
      if (delta.quantile != "count") {
        out << "  (cand lo " << Format("%.6g", delta.candidate_lo)
            << " > base hi " << Format("%.6g", delta.baseline_hi) << ")";
      }
      out << '\n';
    }
  }
  return out.str();
}

common::Result<TraceSummary> SummarizeTrace(std::string_view json_text) {
  SKETCHML_ASSIGN_OR_RETURN(const JsonValue root,
                            JsonValue::Parse(json_text));
  if (!root.is_object()) {
    return common::Status::InvalidArgument("trace root is not an object");
  }
  TraceSummary summary;
  summary.dropped_events = root.NumberOr("droppedEvents", 0.0);
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return common::Status::InvalidArgument("trace has no traceEvents array");
  }
  std::map<std::pair<std::string, std::string>, TraceSummary::Row> rows;
  for (const JsonValue& event : events->array_items()) {
    if (event.StringOr("ph", "") != "X") continue;  // Skip metadata.
    const std::string cat = event.StringOr("cat", "");
    const std::string name = event.StringOr("name", "");
    const double dur_us = event.NumberOr("dur", 0.0);
    TraceSummary::Row& row = rows[{cat, name}];
    row.category = cat;
    row.name = name;
    ++row.count;
    row.total_us += dur_us;
    row.max_us = std::max(row.max_us, dur_us);
  }
  summary.rows.reserve(rows.size());
  for (auto& [key, row] : rows) summary.rows.push_back(std::move(row));
  std::sort(summary.rows.begin(), summary.rows.end(),
            [](const TraceSummary::Row& a, const TraceSummary::Row& b) {
              return a.total_us > b.total_us;
            });
  return summary;
}

common::Result<TraceSummary> LoadTraceSummary(const std::string& path) {
  SKETCHML_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  auto parsed = SummarizeTrace(text);
  if (!parsed.ok()) {
    return common::Status::InvalidArgument(path + ": " +
                                           parsed.status().message());
  }
  return parsed;
}

std::string RenderTraceSummary(const TraceSummary& summary) {
  std::ostringstream out;
  out << "== trace span totals ==\n";
  out << "       count      total         max  span\n";
  for (const TraceSummary::Row& row : summary.rows) {
    char buf[200];
    std::snprintf(buf, sizeof(buf), "  %10llu  %9s  %10s  %s/%s\n",
                  static_cast<unsigned long long>(row.count),
                  FormatSeconds(row.total_us / 1e6).c_str(),
                  FormatSeconds(row.max_us / 1e6).c_str(),
                  row.category.c_str(), row.name.c_str());
    out << buf;
  }
  if (summary.dropped_events > 0.0) {
    out << "  dropped events: " << Format("%.0f", summary.dropped_events)
        << " (timeline truncated)\n";
  }
  return out.str();
}

common::Result<std::string> SummarizeMetricsJsonl(std::string_view text) {
  std::ostringstream out;
  out << "== metrics dump ==\n";
  size_t line_number = 0;
  while (!text.empty()) {
    ++line_number;
    const size_t newline = text.find('\n');
    const std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view()
                                             : text.substr(newline + 1);
    if (line.empty()) continue;
    auto parsed = JsonValue::Parse(line);
    if (!parsed.ok()) {
      return common::Status::InvalidArgument(
          "metrics line " + std::to_string(line_number) + ": " +
          parsed.status().message());
    }
    const JsonValue& value = parsed.value();
    const std::string type = value.StringOr("type", "?");
    const std::string name = value.StringOr("name", "?");
    if (type == "histogram") {
      out << "  " << name << ": count "
          << Format("%.0f", value.NumberOr("count", 0.0)) << ", mean "
          << Format("%.4g",
                    value.NumberOr("count", 0.0) == 0.0
                        ? 0.0
                        : value.NumberOr("sum", 0.0) /
                              value.NumberOr("count", 1.0))
          << ", max " << Format("%.4g", value.NumberOr("max", 0.0)) << '\n';
    } else {
      out << "  " << name << ": "
          << Format("%.10g", value.NumberOr("value", 0.0)) << '\n';
    }
  }
  return out.str();
}

}  // namespace sketchml::dist
