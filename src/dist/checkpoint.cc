#include "dist/checkpoint.h"

#include <string>

#include "common/byte_buffer.h"
#include "common/framing.h"

namespace sketchml::dist {

void SealCheckpoint(const std::vector<uint8_t>& payload,
                    std::vector<uint8_t>* out) {
  std::vector<uint8_t> framed;
  common::FrameMessage(payload, &framed);
  common::ByteWriter writer(sizeof(uint32_t) + 1 + framed.size());
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU8(kCheckpointVersion);
  writer.WriteBytes(framed);
  *out = writer.TakeBuffer();
}

common::Status OpenCheckpoint(const std::vector<uint8_t>& checkpoint,
                              std::vector<uint8_t>* payload) {
  common::ByteReader reader(checkpoint);
  uint32_t magic = 0;
  uint8_t version = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadU32(&magic));
  SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&version));
  if (magic != kCheckpointMagic) {
    return common::Status::CorruptedData("not a checkpoint (bad magic)");
  }
  if (version != kCheckpointVersion) {
    return common::Status::CorruptedData(
        "unsupported checkpoint version " + std::to_string(version));
  }
  const std::vector<uint8_t> framed(checkpoint.begin() + reader.position(),
                                    checkpoint.end());
  return common::UnframeMessage(framed, payload);
}

}  // namespace sketchml::dist
