#ifndef SKETCHML_DIST_CHECKPOINT_H_
#define SKETCHML_DIST_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace sketchml::dist {

/// Checkpoint envelope: a typed, CRC-framed wrapper around an opaque
/// trainer-state payload.
///
/// Wire format (little-endian):
///   u32 magic "SKCP"   (0x50434b53)
///   u8  version        (kCheckpointVersion)
///   u32 length | u32 crc32(payload) | payload   (common::FrameMessage)
///
/// The magic/version header rejects files that are not checkpoints at
/// all; the CRC frame turns truncation and bit flips into kCorruptedData
/// before any payload byte is parsed — the same detect-don't-trust
/// contract the fault path applies to wire messages. A checkpoint that
/// fails `OpenCheckpoint` must never be partially applied: callers parse
/// the payload only after the envelope validates.

inline constexpr uint32_t kCheckpointMagic = 0x50434b53u;  // "SKCP".
inline constexpr uint8_t kCheckpointVersion = 1;

/// Wraps `payload` in the magic/version/CRC envelope. `out` is
/// overwritten.
void SealCheckpoint(const std::vector<uint8_t>& payload,
                    std::vector<uint8_t>* out);

/// Validates the envelope and extracts the payload (overwritten).
/// Returns kCorruptedData on a short buffer, wrong magic, unknown
/// version, length mismatch, or CRC mismatch.
[[nodiscard]] common::Status OpenCheckpoint(
    const std::vector<uint8_t>& checkpoint, std::vector<uint8_t>* payload);

}  // namespace sketchml::dist

#endif  // SKETCHML_DIST_CHECKPOINT_H_
