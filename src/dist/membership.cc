#include "dist/membership.h"

#include <algorithm>
#include <string>

namespace sketchml::dist {

namespace {

/// SplitMix64 finalizer — the same mixer FaultInjector uses (its copy is
/// file-local to fault.cc), applied as a chain so every decision
/// coordinate perturbs every output bit.
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t MixAll(uint64_t seed, uint64_t kind, uint64_t batch,
                uint64_t worker) {
  uint64_t z = Mix(seed ^ (kind * 0xd1342543de82ef95ULL));
  z = Mix(z ^ batch);
  return Mix(z ^ (worker + 1));
}

/// Top 53 bits as a uniform double in [0, 1).
double ToUnit(uint64_t z) {
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

common::Status CheckProbability(const char* name, double p) {
  if (p < 0.0 || p > 1.0) {
    return common::Status::InvalidArgument(
        std::string(name) + " must be in [0, 1], got " + std::to_string(p));
  }
  return common::Status::Ok();
}

/// Ring position of virtual node `v` of shard `shard`. Depends only on
/// (shard, v): a shard keeps its points when the ring is resized around
/// it, the consistent-hashing invariant.
uint64_t RingPoint(int shard, int v) {
  return Mix(Mix(static_cast<uint64_t>(shard) + 1) ^
             ((static_cast<uint64_t>(v) + 1) * 0x9e3779b97f4a7c15ULL));
}

}  // namespace

common::Status ValidateMembershipPlan(const MembershipPlan& plan) {
  SKETCHML_RETURN_IF_ERROR(CheckProbability("join_prob", plan.join_prob));
  SKETCHML_RETURN_IF_ERROR(CheckProbability("leave_prob", plan.leave_prob));
  SKETCHML_RETURN_IF_ERROR(
      CheckProbability("depart_prob", plan.depart_prob));
  if (plan.max_workers < 0) {
    return common::Status::InvalidArgument(
        "max_workers must be >= 0 (0 = num_workers)");
  }
  if (plan.min_workers < 1) {
    return common::Status::InvalidArgument("min_workers must be >= 1");
  }
  if (plan.max_workers > 0 && plan.min_workers > plan.max_workers) {
    return common::Status::InvalidArgument(
        "min_workers exceeds max_workers: the fleet envelope is empty");
  }
  if (plan.checkpoint_every < 0) {
    return common::Status::InvalidArgument(
        "checkpoint_every must be >= 0 (0 = no checkpoints)");
  }
  if (plan.max_rollbacks < 0) {
    return common::Status::InvalidArgument("max_rollbacks must be >= 0");
  }
  return common::Status::Ok();
}

common::Result<MembershipPlan> MembershipPlanFromFlags(
    const common::FlagParser& flags) {
  MembershipPlan plan;
  SKETCHML_ASSIGN_OR_RETURN(const int64_t seed,
                            flags.GetInt("membership-seed", 1));
  plan.seed = static_cast<uint64_t>(seed);
  SKETCHML_ASSIGN_OR_RETURN(plan.join_prob,
                            flags.GetDouble("membership-join", 0.0));
  SKETCHML_ASSIGN_OR_RETURN(plan.leave_prob,
                            flags.GetDouble("membership-leave", 0.0));
  SKETCHML_ASSIGN_OR_RETURN(plan.depart_prob,
                            flags.GetDouble("membership-depart", 0.0));
  SKETCHML_ASSIGN_OR_RETURN(const int64_t max_workers,
                            flags.GetInt("membership-max-workers", 0));
  plan.max_workers = static_cast<int>(max_workers);
  SKETCHML_ASSIGN_OR_RETURN(const int64_t min_workers,
                            flags.GetInt("membership-min-workers", 1));
  plan.min_workers = static_cast<int>(min_workers);
  SKETCHML_ASSIGN_OR_RETURN(const int64_t checkpoint_every,
                            flags.GetInt("membership-checkpoint-every", 0));
  plan.checkpoint_every = static_cast<int>(checkpoint_every);
  SKETCHML_ASSIGN_OR_RETURN(const int64_t max_rollbacks,
                            flags.GetInt("membership-max-rollbacks", 2));
  plan.max_rollbacks = static_cast<int>(max_rollbacks);
  SKETCHML_RETURN_IF_ERROR(ValidateMembershipPlan(plan));
  return plan;
}

double MembershipOracle::Draw(Kind kind, uint64_t batch, int worker) const {
  return ToUnit(
      MixAll(plan_.seed, kind, batch, static_cast<uint64_t>(worker)));
}

MembershipDirectory::MembershipDirectory(const MembershipPlan& plan,
                                         int initial_workers)
    : plan_(plan), oracle_(plan) {
  const int universe = std::max(ResolvedMaxWorkers(plan, initial_workers),
                                initial_workers);
  states_.assign(universe, WorkerState::kStandby);
  active_.reserve(universe);
  for (int w = 0; w < initial_workers; ++w) {
    states_[w] = WorkerState::kActive;
    active_.push_back(w);
  }
}

void MembershipDirectory::ApplyBatch(uint64_t batch,
                                     std::vector<MembershipEvent>* events) {
  if (!plan_.Active()) return;
  int active_count = static_cast<int>(active_.size());
  bool changed = false;
  for (int w = 0; w < universe(); ++w) {
    switch (states_[w]) {
      case WorkerState::kDeparted:
        break;
      case WorkerState::kActive:
        // Depart wins over leave when both draws fire: the stronger event
        // subsumes the weaker. The floor is enforced per event, so a
        // batch where every active worker draws "leave" still keeps
        // min_workers of them (the lowest ids, by iteration order).
        if (oracle_.ShouldDepart(batch, w) &&
            active_count > plan_.min_workers) {
          states_[w] = WorkerState::kDeparted;
          --active_count;
          changed = true;
          events->push_back({MembershipEvent::kDepart, w, batch});
        } else if (oracle_.ShouldLeave(batch, w) &&
                   active_count > plan_.min_workers) {
          states_[w] = WorkerState::kStandby;
          --active_count;
          changed = true;
          events->push_back({MembershipEvent::kLeave, w, batch});
        }
        break;
      case WorkerState::kStandby:
        if (oracle_.ShouldJoin(batch, w)) {
          states_[w] = WorkerState::kActive;
          ++active_count;
          changed = true;
          events->push_back({MembershipEvent::kJoin, w, batch});
        }
        break;
    }
  }
  if (!changed) return;
  active_.clear();
  for (int w = 0; w < universe(); ++w) {
    if (states_[w] == WorkerState::kActive) active_.push_back(w);
  }
}

void ShardRing::Rebuild(int num_shards) {
  num_shards_ = num_shards;
  points_.clear();
  points_.reserve(static_cast<size_t>(num_shards) * kVirtualNodes);
  for (int s = 0; s < num_shards; ++s) {
    for (int v = 0; v < kVirtualNodes; ++v) {
      points_.emplace_back(RingPoint(s, v), s);
    }
  }
  std::sort(points_.begin(), points_.end());
}

int ShardRing::ShardOf(uint64_t key) const {
  if (num_shards_ <= 1) return 0;
  const uint64_t h = Mix(key ^ 0xe7037ed1a0b428dbULL);
  // First point at or clockwise of h; wrap to the ring's first point.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const std::pair<uint64_t, int>& p, uint64_t v) { return p.first < v; });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

int ActiveServerCount(int num_servers, int active_workers,
                      int initial_workers) {
  if (num_servers <= 1 || initial_workers <= 0) return std::max(1, num_servers);
  const double scaled = static_cast<double>(num_servers) *
                        static_cast<double>(active_workers) /
                        static_cast<double>(initial_workers);
  const int rounded = static_cast<int>(scaled + 0.5);
  return std::clamp(rounded, 1, num_servers);
}

}  // namespace sketchml::dist
