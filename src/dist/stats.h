#ifndef SKETCHML_DIST_STATS_H_
#define SKETCHML_DIST_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics_registry.h"

namespace sketchml::dist {

/// Per-epoch accounting produced by the distributed trainer.
///
/// CPU phases (compute/encode/decode/update) are *measured* wall time on
/// real data; network time is *modeled* from exact serialized byte counts
/// (see NetworkModel). Keeping them separate lets benches report both the
/// paper's wall-clock figures and raw message sizes.
struct EpochStats {
  int epoch = 0;

  // Measured CPU seconds (parallel phases already divided by workers).
  double compute_seconds = 0.0;  // Gradient computation on workers.
  double encode_seconds = 0.0;   // Worker-side compression.
  double decode_seconds = 0.0;   // Driver-side decompression (serial).
  double update_seconds = 0.0;   // Aggregation + optimizer step.

  // Modeled network seconds through the driver's link.
  double network_seconds = 0.0;

  // Exact serialized traffic.
  uint64_t bytes_up = 0;    // Workers -> driver (gradients).
  uint64_t bytes_down = 0;  // Driver -> workers (model update).
  uint64_t messages = 0;    // Total gradient messages this epoch.

  // Fault-tolerance accounting (all zero when the FaultPlan is inactive,
  // so fault-free stats stay bit-identical to a build without faults).
  // Drops + corruptions + stragglers + crashes + stalls.
  uint64_t injected_faults = 0;
  uint64_t retries = 0;            // Retransmit attempts beyond the first.
  uint64_t retransmit_bytes = 0;   // Bytes re-sent by those retries.
  uint64_t lost_messages = 0;      // Undelivered after the retry budget.
  uint64_t degraded_batches = 0;   // Batches applied with < W gradients.

  // Elastic-membership accounting (all zero when the MembershipPlan is
  // inactive and checkpoints are off, so a churn-free run's stats stay
  // bit-identical to a build without the membership layer).
  uint64_t joins = 0;             // Workers that joined this epoch.
  uint64_t leaves = 0;            // Graceful leaves (may rejoin later).
  uint64_t departs = 0;           // Permanent departures.
  uint64_t handoff_bytes = 0;     // State handed off (codec lanes, shards).
  uint64_t sync_bytes = 0;        // Weight syncs pulled by joiners.
  uint64_t reconfigurations = 0;  // Shard-count changes (ring rebuilds).
  uint64_t rollbacks = 0;         // Checkpoint rollbacks before this epoch.
  uint64_t checkpoint_bytes = 0;  // Size of the checkpoint sealed, if any.

  size_t num_batches = 0;
  double avg_gradient_nnz = 0.0;  // Mean d per worker message.
  double train_loss = 0.0;        // After the epoch.
  double test_loss = 0.0;

  /// Simulated wall-clock seconds of this epoch.
  double TotalSeconds() const {
    return compute_seconds + encode_seconds + decode_seconds +
           update_seconds + network_seconds;
  }

  /// CPU busy fraction of the epoch, in percent — the Figure 8(c) metric.
  /// Compressed codecs spend less time idling on the network, so their
  /// average CPU usage is higher.
  ///
  /// network_seconds is *modeled*, so a misconfigured NetworkModel can
  /// hand us a negative value; treat it as zero rather than reporting a
  /// busy fraction above 100%. The result is always in [0, 100].
  double AvgCpuPercent() const {
    const double cpu = compute_seconds + encode_seconds + decode_seconds +
                       update_seconds;
    const double network = std::max(0.0, network_seconds);
    const double total = cpu + network;
    if (total <= 0) return 0.0;
    return std::clamp(cpu / total * 100.0, 0.0, 100.0);
  }

  /// Mean gradient message size in bytes.
  double AvgMessageBytes() const {
    return messages == 0 ? 0.0
                         : static_cast<double>(bytes_up) /
                               static_cast<double>(messages);
  }

  /// One-line human-readable summary.
  std::string ToString() const;
};

/// Sums the per-epoch numbers of `stats` (loss fields take the last
/// epoch's values).
EpochStats Aggregate(const std::vector<EpochStats>& stats);

/// Publishes `stats` into the global metrics registry under `trainer/`:
/// additive fields as counters, per-epoch values (epoch number, losses,
/// mean gradient nnz) as gauges. No-op while `obs::MetricsEnabled()` is
/// false.
void PublishEpochStats(const EpochStats& stats);

/// Reconstructs an EpochStats from two registry snapshots bracketing
/// exactly one PublishEpochStats call: additive fields come from counter
/// deltas, per-epoch fields from `after`'s gauges. With a freshly reset
/// registry (`before` all zeros) the result equals the published struct
/// field for field — EpochStats is then a pure view over the registry.
EpochStats EpochStatsFromMetrics(const obs::MetricsSnapshot& before,
                                 const obs::MetricsSnapshot& after);

/// Multi-line p50/p95/p99 summary of every latency histogram ("*_ns") in
/// `snap`, grouped per codec/pool (quantiles across a group's instances
/// are not mergeable, so each line reports the summed count and mean
/// plus the *worst* instance's quantiles — a conservative tail bound).
/// KLL-backed latency sketches follow, with error-bound brackets on p99
/// and the windowed tail (their quantiles DO merge exactly — see
/// docs/observability.md). Empty string when nothing has samples.
std::string LatencyQuantileSummary(const obs::MetricsSnapshot& snap);

}  // namespace sketchml::dist

#endif  // SKETCHML_DIST_STATS_H_
