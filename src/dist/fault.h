#ifndef SKETCHML_DIST_FAULT_H_
#define SKETCHML_DIST_FAULT_H_

#include <cstdint>
#include <vector>

#include "common/flags.h"
#include "common/result.h"
#include "common/status.h"

namespace sketchml::dist {

/// Declarative failure model for the distributed simulator (§4.1's
/// clusters are real and faulty: Cluster-2 is congested and shared,
/// executors straggle, and §3.4 stresses that one corrupted key corrupts
/// the model). Every fault class is a probability plus shared seed, so a
/// plan is *replayable*: the injected fault sequence is a pure function
/// of (seed, batch, worker, server, attempt) and therefore identical
/// run-to-run and at any thread count.
///
/// With every probability at zero (`Active()` false) the trainer takes
/// its fault-free code path: no framing, no retries, and bit-identical
/// messages, stats, and losses to a build without this layer.
struct FaultPlan {
  uint64_t seed = 1;  // Base seed for all injection decisions.

  // --- Message-level faults (worker -> server gather path) ---
  double drop_prob = 0.0;     // P(message attempt is lost in transit).
  double corrupt_prob = 0.0;  // P(message attempt arrives corrupted).

  // --- Worker-level faults ---
  double straggle_prob = 0.0;    // P(worker straggles for one batch).
  double straggle_factor = 4.0;  // Compute/encode delay multiplier.
  double crash_prob = 0.0;       // P(worker crashes at a batch)...
  int crash_batches = 3;         // ...staying down for this many batches.

  // --- Server-level faults ---
  double stall_prob = 0.0;      // P(server shard stalls for one batch).
  double stall_seconds = 0.05;  // Modeled seconds a stall adds to gather.

  // --- Recovery protocol ---
  int max_retries = 3;             // Retransmit budget per message.
  double backoff_seconds = 1e-3;   // First retry backoff; doubles each
                                   // attempt (exponential backoff).
  int min_quorum = 1;  // Minimum surviving workers to apply a batch;
                       // fewer fails the epoch with kUnavailable.

  /// True when any fault can actually fire. Inactive plans cost nothing:
  /// the trainer never consults the injector and frames no messages.
  bool Active() const {
    return drop_prob > 0.0 || corrupt_prob > 0.0 || straggle_prob > 0.0 ||
           crash_prob > 0.0 || stall_prob > 0.0;
  }
};

/// Rejects probabilities outside [0, 1], non-positive factors/durations,
/// and nonsensical retry/quorum budgets.
common::Status ValidateFaultPlan(const FaultPlan& plan);

/// Reads the shared `--fault-*` flags into a plan:
///
///   --fault-seed=N             injection seed (default 1)
///   --fault-drop=P             per-message drop probability
///   --fault-corrupt=P          per-message corruption probability
///   --fault-straggle=P         per-worker-batch straggler probability
///   --fault-straggle-factor=X  straggler delay multiplier (default 4)
///   --fault-crash=P            per-worker-batch crash probability
///   --fault-crash-batches=K    batches a crashed worker stays down
///   --fault-stall=P            per-server-batch stall probability
///   --fault-stall-seconds=S    modeled seconds per stall (default 0.05)
///   --fault-retries=N          retransmit budget per message (default 3)
///   --fault-backoff=S          base retry backoff seconds (default 1e-3)
///   --min-quorum=K             minimum surviving workers (default 1)
///
/// The returned plan is validated; all-defaults yields an inactive plan.
common::Result<FaultPlan> FaultPlanFromFlags(const common::FlagParser& flags);

/// Deterministic, stateless fault oracle over a `FaultPlan`.
///
/// Every decision hashes (plan seed, fault kind, batch, worker, server,
/// attempt) into a uniform [0, 1) draw — a counter-based RNG — so
/// decisions are independent of call order and thread interleaving, and
/// two runs with the same seed inject the *same* fault sequence. `batch`
/// is the trainer's global batch index (monotonic across epochs).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  /// True when message attempt `attempt` from `worker` to server shard
  /// `server` in `batch` is lost in transit.
  bool ShouldDrop(uint64_t batch, int worker, int server,
                  int attempt) const {
    return Draw(kDrop, batch, worker, server, attempt) < plan_.drop_prob;
  }

  /// True when the attempt arrives corrupted (use `Corrupt` to mangle
  /// the actual bytes so the receiver's CRC sees real damage).
  bool ShouldCorrupt(uint64_t batch, int worker, int server,
                     int attempt) const {
    return Draw(kCorrupt, batch, worker, server, attempt) <
           plan_.corrupt_prob;
  }

  /// Deterministically mangles `bytes` in place: odd draws truncate the
  /// message, even draws flip 1-4 bits at hashed positions. No-op on an
  /// empty buffer (nothing to corrupt; the length header already fails).
  void Corrupt(std::vector<uint8_t>* bytes, uint64_t batch, int worker,
               int server, int attempt) const;

  /// Compute/encode delay multiplier for `worker` in `batch`: 1.0
  /// normally, `straggle_factor` when the worker straggles.
  double StraggleFactor(uint64_t batch, int worker) const {
    if (Draw(kStraggle, batch, worker, 0, 0) < plan_.straggle_prob) {
      return plan_.straggle_factor;
    }
    return 1.0;
  }

  /// True when `worker` is down for `batch`: a crash fires at some batch
  /// b0 with `crash_prob` and keeps the worker down for `crash_batches`
  /// batches (b0 through b0 + crash_batches - 1).
  bool WorkerCrashed(uint64_t batch, int worker) const;

  /// True when server shard `server` stalls during `batch`'s gather.
  bool ServerStalled(uint64_t batch, int server) const {
    return Draw(kStall, batch, 0, server, 0) < plan_.stall_prob;
  }

  /// Exponential backoff before retry `attempt` (attempt >= 1):
  /// backoff_seconds * 2^(attempt-1).
  double BackoffSeconds(int attempt) const {
    return plan_.backoff_seconds * static_cast<double>(1ull << (attempt - 1));
  }

 private:
  enum Kind : uint64_t { kDrop = 1, kCorrupt, kStraggle, kCrash, kStall };

  /// Uniform [0, 1) draw for the decision keyed by the arguments.
  double Draw(Kind kind, uint64_t batch, int worker, int server,
              int attempt) const;

  FaultPlan plan_;
};

}  // namespace sketchml::dist

#endif  // SKETCHML_DIST_FAULT_H_
