#include "dist/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/byte_buffer.h"
#include "common/framing.h"
#include "common/logging.h"
#include "common/obs.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "compress/raw_codec.h"
#include "dist/checkpoint.h"
#include "ml/gradient.h"

namespace sketchml::dist {

namespace {

/// Fixed seed/geometry of the per-shard mergeable state: every shard
/// (and every run) uses the same values, so serialize -> merge across
/// shards is always legal and the state is a pure function of the
/// aggregated gradient stream.
constexpr uint64_t kShardSketchSeed = 0x5ad5ad5ad5ad5ad5ULL;
constexpr int kShardKeyRows = 3;
constexpr int kShardKeyCols = 1024;

/// Log2-magnitude bucket of a gradient value for the shard key cache
/// (MinMaxSketch stores one byte per key; bucket 0 = tiniest/zero).
uint8_t MagnitudeBucket(double value) {
  const double magnitude = std::abs(value);
  if (!(magnitude > 0.0)) return 0;
  int exponent = 0;
  (void)std::frexp(magnitude, &exponent);
  // exponent of normal doubles spans about [-1021, 1025); shift into
  // [0, 254] so kEmpty (255) keeps its "never written" meaning.
  const int bucket = (exponent + 1074) / 9;
  return static_cast<uint8_t>(std::clamp(bucket, 0, 254));
}

}  // namespace

common::Status ValidateClusterConfig(const ClusterConfig& cluster) {
  if (cluster.num_workers < 1) {
    return common::Status::InvalidArgument(
        "ClusterConfig.num_workers must be >= 1");
  }
  if (cluster.num_servers < 1) {
    return common::Status::InvalidArgument(
        "ClusterConfig.num_servers must be >= 1");
  }
  SKETCHML_RETURN_IF_ERROR(cluster.network.Validate());
  if (!(cluster.compute_scale >= 0.0)) {
    return common::Status::InvalidArgument(
        "ClusterConfig.compute_scale must be >= 0");
  }
  if (!(cluster.codec_scale >= 0.0)) {
    return common::Status::InvalidArgument(
        "ClusterConfig.codec_scale must be >= 0");
  }
  SKETCHML_RETURN_IF_ERROR(ValidateFaultPlan(cluster.faults));
  if (cluster.faults.min_quorum > cluster.num_workers) {
    return common::Status::InvalidArgument(
        "FaultPlan.min_quorum exceeds num_workers: no batch could ever "
        "reach quorum");
  }
  SKETCHML_RETURN_IF_ERROR(ValidateMembershipPlan(cluster.membership));
  if (ResolvedMaxWorkers(cluster.membership, cluster.num_workers) <
      cluster.num_workers) {
    return common::Status::InvalidArgument(
        "MembershipPlan.max_workers is below num_workers: the starting "
        "fleet would not fit the id universe");
  }
  if (cluster.membership.min_workers > cluster.num_workers) {
    return common::Status::InvalidArgument(
        "MembershipPlan.min_workers exceeds num_workers: the starting "
        "fleet is already below the scale-down floor");
  }
  // FaultPlan x MembershipPlan cross-validation: after the maximum
  // scheduled scale-down only min_workers workers remain active, so a
  // quorum above that can never be met once churn shrinks the fleet —
  // every later epoch would fail kUnavailable by construction.
  if (cluster.membership.CanShrink() &&
      cluster.faults.min_quorum > cluster.membership.min_workers) {
    return common::Status::InvalidArgument(
        "FaultPlan.min_quorum (" +
        std::to_string(cluster.faults.min_quorum) +
        ") can never be met after the maximum scheduled scale-down: "
        "MembershipPlan.min_workers leaves only " +
        std::to_string(cluster.membership.min_workers) +
        " active workers");
  }
  return common::Status::Ok();
}

DistributedTrainer::DistributedTrainer(
    const ml::Dataset* train, const ml::Dataset* test, const ml::Loss* loss,
    std::unique_ptr<compress::GradientCodec> codec,
    const ClusterConfig& cluster, const TrainerConfig& config)
    : train_(train),
      test_(test),
      loss_(loss),
      codec_(std::move(codec)),
      cluster_(cluster),
      config_(config),
      injector_(cluster.faults) {
  SKETCHML_CHECK(train != nullptr);
  SKETCHML_CHECK(loss != nullptr);
  // Recoverable configuration errors surface from RunEpoch/Run (a
  // constructor cannot return a Status); skip the remaining setup so a
  // bad NetworkModel never reaches TransferSeconds.
  init_status_ = ValidateClusterConfig(cluster_);
  if (!init_status_.ok()) return;
  faults_active_ = cluster_.faults.Active();
  membership_active_ = cluster_.membership.Active();
  checkpoints_enabled_ = cluster_.membership.CheckpointsEnabled();
  initial_workers_ = cluster_.num_workers;
  // The directory exists on both paths: with an inactive plan it pins
  // the identity fleet 0..num_workers-1 forever, so directory_.active()
  // is always the list of worker ids a batch partitions over.
  directory_ = MembershipDirectory(cluster_.membership, cluster_.num_workers);
  active_servers_ = cluster_.num_servers;
  if (membership_active_) {
    ring_.Rebuild(active_servers_);
    // Per-shard mergeable state (see the header): telemetry-internal
    // sketches, excluded from the sketch/kll/* self-metrics like the
    // obs layer's own sketches.
    shard_values_.reserve(cluster_.num_servers);
    shard_keys_.reserve(cluster_.num_servers);
    for (int s = 0; s < cluster_.num_servers; ++s) {
      shard_values_.emplace_back(/*k=*/256, /*seed=*/kShardSketchSeed);
      shard_values_.back().SetInstrumented(false);
      shard_keys_.emplace_back(kShardKeyRows, kShardKeyCols,
                               kShardSketchSeed);
    }
  }
  if (codec_ == nullptr) {
    codec_ = std::make_unique<compress::RawCodec>();
  }
  if (config_.use_adam) {
    optimizer_ = std::make_unique<ml::AdamOptimizer>(
        train->dim(), config_.learning_rate, 0.9, 0.999,
        config_.adam_epsilon);
  } else {
    optimizer_ = std::make_unique<ml::SgdOptimizer>(train->dim(),
                                                    config_.learning_rate);
  }

  // One forked codec per worker lane — one per id in the membership
  // universe, not just the starting fleet, so a worker that joins later
  // already owns its deterministic seed lane. Forking is independent of
  // the thread count so that every thread count replays the same byte
  // streams (worker w always encodes with lane w).
  const int fleet = directory_.universe();
  num_threads_ = config_.num_threads == 0
                     ? common::ThreadPool::DefaultThreadCount()
                     : std::max(1, config_.num_threads);
  worker_codecs_.reserve(fleet);
  for (int w = 0; w < fleet; ++w) {
    auto fork = codec_->Fork(static_cast<uint64_t>(w));
    if (fork == nullptr) {
      // Unforkable codec: all workers must share the one instance, which
      // is only safe serially.
      worker_codecs_.clear();
      num_threads_ = 1;
      break;
    }
    fork->SetMetricLabel("worker", std::to_string(w));
    worker_codecs_.push_back(std::move(fork));
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<common::ThreadPool>(num_threads_, "trainer");
    for (auto& codec : worker_codecs_) codec->SetThreadPool(pool_.get());
    codec_->SetThreadPool(pool_.get());
  }

  if (obs::MetricsEnabled()) {
    metrics_.enabled = true;
    auto& registry = obs::MetricsRegistry::Global();
    for (int w = 0; w < fleet; ++w) {
      const std::string ws = std::to_string(w);
      metrics_.worker_compute.push_back(registry.GetCounter(
          "trainer/worker_seconds", {{"worker", ws}, {"phase", "compute"}}));
      metrics_.worker_encode.push_back(registry.GetCounter(
          "trainer/worker_seconds", {{"worker", ws}, {"phase", "encode"}}));
      metrics_.worker_recovery_err.push_back(
          registry.GetCounter("trainer/recovery_error_l1", {{"worker", ws}}));
      metrics_.worker_recovery_ref.push_back(
          registry.GetCounter("trainer/recovery_ref_l1", {{"worker", ws}}));
    }
    for (int s = 0; s < cluster_.num_servers; ++s) {
      const std::string ss = std::to_string(s);
      metrics_.server_decode.push_back(registry.GetCounter(
          "trainer/server_seconds", {{"server", ss}, {"phase", "decode"}}));
      metrics_.server_gather.push_back(registry.GetCounter(
          "trainer/server_seconds", {{"server", ss}, {"phase", "gather"}}));
      metrics_.server_bytes.push_back(
          registry.GetCounter("trainer/gather_bytes", {{"server", ss}}));
    }
    metrics_.driver_encode =
        registry.GetCounter("trainer/driver_seconds", {{"phase", "encode"}});
    metrics_.driver_decode =
        registry.GetCounter("trainer/driver_seconds", {{"phase", "decode"}});
    metrics_.driver_update =
        registry.GetCounter("trainer/driver_seconds", {{"phase", "update"}});
    metrics_.driver_network =
        registry.GetCounter("trainer/driver_seconds", {{"phase", "network"}});

    // Sketch-native latency telemetry: per-worker KLL-backed sketches
    // plus the cluster-wide slots the driver merges them into at every
    // epoch boundary. See SketchTelemetry in the header.
    sketch_metrics_.enabled = true;
    auto& sketches = obs::SketchHistogramRegistry::Global();
    for (int w = 0; w < fleet; ++w) {
      const std::string ws = std::to_string(w);
      sketch_metrics_.worker_compute.push_back(sketches.Get(
          "trainer/compute_latency_seconds", {{"worker", ws}}));
      sketch_metrics_.worker_encode.push_back(
          sketches.Get("trainer/encode_latency_seconds", {{"worker", ws}}));
      sketch_metrics_.worker_push.push_back(
          sketches.Get("trainer/push_modeled_seconds", {{"worker", ws}}));
    }
    sketch_metrics_.cluster_compute =
        sketches.Get("trainer/compute_latency_seconds");
    sketch_metrics_.cluster_encode =
        sketches.Get("trainer/encode_latency_seconds");
    sketch_metrics_.cluster_push = sketches.Get("trainer/push_modeled_seconds");
    sketch_metrics_.merges = registry.GetCounter("telemetry/merges");
    sketch_metrics_.merge_bytes = registry.GetCounter("telemetry/merge_bytes");
  }

  // Fault counters exist only when the plan is active: a fault-free run
  // must register no new metric names, keeping its dump and series files
  // bit-identical to a build without the fault layer.
  if (faults_active_ && obs::MetricsEnabled()) {
    fault_metrics_.enabled = true;
    auto& registry = obs::MetricsRegistry::Global();
    for (int w = 0; w < fleet; ++w) {
      const std::string ws = std::to_string(w);
      fault_metrics_.injected_drop.push_back(registry.GetCounter(
          "fault/injected", {{"kind", "drop"}, {"worker", ws}}));
      fault_metrics_.injected_corrupt.push_back(registry.GetCounter(
          "fault/injected", {{"kind", "corrupt"}, {"worker", ws}}));
      fault_metrics_.injected_straggle.push_back(registry.GetCounter(
          "fault/injected", {{"kind", "straggle"}, {"worker", ws}}));
      fault_metrics_.injected_crash.push_back(registry.GetCounter(
          "fault/injected", {{"kind", "crash"}, {"worker", ws}}));
      fault_metrics_.retries.push_back(
          registry.GetCounter("net/retries", {{"worker", ws}}));
      fault_metrics_.retransmit_bytes.push_back(
          registry.GetCounter("net/retransmit_bytes", {{"worker", ws}}));
    }
    for (int s = 0; s < cluster_.num_servers; ++s) {
      fault_metrics_.injected_stall.push_back(registry.GetCounter(
          "fault/injected",
          {{"kind", "stall"}, {"server", std::to_string(s)}}));
    }
    fault_metrics_.lost_messages = registry.GetCounter("net/lost_messages");
    fault_metrics_.quorum = registry.GetGauge("trainer/quorum");
  }

  // Membership counters follow the fault-metric discipline: each group
  // registers only when the feature that publishes it is on, so a
  // churn-off (or checkpoint-off) run registers no new names and its
  // metric dumps stay bit-identical to the previous layer's goldens.
  if (membership_active_ && obs::MetricsEnabled()) {
    membership_metrics_.churn = true;
    auto& registry = obs::MetricsRegistry::Global();
    membership_metrics_.joins =
        registry.GetCounter("membership/events", {{"kind", "join"}});
    membership_metrics_.leaves =
        registry.GetCounter("membership/events", {{"kind", "leave"}});
    membership_metrics_.departs =
        registry.GetCounter("membership/events", {{"kind", "depart"}});
    membership_metrics_.handoff_bytes =
        registry.GetCounter("membership/handoff_bytes");
    membership_metrics_.sync_bytes =
        registry.GetCounter("membership/sync_bytes");
    membership_metrics_.reconfigurations =
        registry.GetCounter("membership/reconfigurations");
    membership_metrics_.active_workers =
        registry.GetGauge("membership/active_workers");
    membership_metrics_.active_servers =
        registry.GetGauge("membership/active_servers");
  }
  if (checkpoints_enabled_ && obs::MetricsEnabled()) {
    membership_metrics_.checkpoints = true;
    auto& registry = obs::MetricsRegistry::Global();
    membership_metrics_.rollbacks =
        registry.GetCounter("membership/rollbacks");
    membership_metrics_.checkpoint_bytes =
        registry.GetCounter("membership/checkpoint_bytes");
  }
}

common::Result<EpochStats> DistributedTrainer::RunEpochAttempt() {
  const size_t n = train_->size();
  const size_t batch_size = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n) * config_.batch_ratio));
  const int servers = cluster_.num_servers;
  const uint64_t dim = std::max<uint64_t>(1, train_->dim());

  // Owning shard of a gradient key: consistent-hash ring while the
  // membership layer is active (shards can come and go — see
  // ReconfigureShards), the original key-range partition otherwise
  // (identity when servers == 1), so churn-off byte streams stay
  // bit-identical to the fixed-fleet trainer.
  const bool elastic = membership_active_;
  const auto shard_of = [&](uint64_t key) {
    if (elastic) return ring_.ShardOf(key);
    return static_cast<int>(key * static_cast<uint64_t>(servers) / dim);
  };

  EpochStats stats;
  stats.epoch = ++epochs_run_;
  if (membership_active_) {
    // Epoch-boundary re-partitioning: servers scale with the fleet, and
    // shard state moves via mergeable-sketch handoff.
    SKETCHML_RETURN_IF_ERROR(ReconfigureShards(&stats));
  }
  double total_nnz = 0.0;

  obs::TraceSpan epoch_span("trainer", "epoch");
  epoch_span.Arg("epoch", static_cast<double>(stats.epoch));

  common::Stopwatch watch;
  std::vector<double> shard_gather_seconds(servers);
  for (size_t batch_start = 0; batch_start < n; batch_start += batch_size) {
    const size_t batch_end = std::min(n, batch_start + batch_size);
    const size_t batch_count = batch_end - batch_start;

    // Membership events fire at batch boundaries, before the batch
    // partitions its ranges. Decisions key on the global batch counter
    // (like fault injection), so churn replays identically across
    // epochs and thread counts. With an inactive plan ApplyBatch is a
    // no-op and `ids` stays the identity fleet 0..num_workers-1.
    if (membership_active_) {
      std::vector<MembershipEvent> events;
      directory_.ApplyBatch(batches_run_, &events);
      for (const MembershipEvent& event : events) {
        ApplyMembershipEvent(event, &stats);
      }
    }
    const std::vector<int>& ids = directory_.active();
    const int workers = static_cast<int>(ids.size());
    const size_t shard =
        std::max<size_t>(1, (batch_count + workers - 1) / workers);

    // Phase 1+2: each executor is an independent task — it computes its
    // mini-gradient, splits it by server shard, encodes one message per
    // shard, and (standing in for the owning server, phase 3a) decodes
    // it. Tasks share no mutable state: worker w's codec is its own
    // forked seed lane, so results are bit-identical at any thread count.
    struct WorkerResult {
      common::Status status;
      common::SparseGradient decoded;   // Decoded pairs, in shard order.
      std::vector<size_t> shard_bytes;  // Message bytes per server shard.
      // Decode seconds attributed to each server shard (sums to
      // decode_seconds); lets the driver publish per-server slices.
      std::vector<double> shard_decode_seconds;
      // Modeled seconds on each server's gather link, including every
      // retransmit attempt and backoff wait. Only filled on the fault
      // path; the fault-free reduce derives link time from shard_bytes.
      std::vector<double> shard_link_seconds;
      uint64_t messages = 0;
      size_t nnz = 0;
      double compute_seconds = 0.0;
      double encode_seconds = 0.0;
      double decode_seconds = 0.0;
      // L1 distance between this worker's sent gradient and what the
      // server decoded, plus the sent gradient's own L1 (the denominator
      // for a relative recovery error). Only filled when metrics are on;
      // read-only over the same values either way, so the byte stream and
      // losses are bit-identical with metrics on or off.
      double recovery_error_l1 = 0.0;
      double recovery_ref_l1 = 0.0;
      // Fault accounting (all zero / contributes=true when the plan is
      // inactive). A worker contributes to the batch aggregate only if it
      // did not crash and every non-empty shard message was delivered.
      bool crashed = false;
      bool straggled = false;
      bool contributes = true;
      uint64_t injected_drops = 0;
      uint64_t injected_corruptions = 0;
      uint64_t retries = 0;
      uint64_t retransmit_bytes = 0;
      uint64_t lost = 0;
      double retry_seconds = 0.0;  // Backoff + retransmit link time.
    };
    const uint64_t gbatch = batches_run_;
    const bool faults = faults_active_;

    // Causal root of this batch. Each worker chain (compute → encode →
    // per-attempt transfer → decode) adopts this context on whatever
    // thread executes it, so the batch reconstructs as one rooted tree
    // even across pool threads. Sampling keys on the *global* batch
    // counter, so the sampled set is deterministic across thread counts;
    // an invalid context simply elides the causal spans below and never
    // touches the measured phases or byte streams.
    std::optional<obs::TraceSpan> batch_span;
    if (obs::TracingEnabled() &&
        (config_.trace_sample_every <= 1 ||
         gbatch % static_cast<uint64_t>(config_.trace_sample_every) == 0)) {
      batch_span.emplace("trainer", "batch");
      batch_span->Arg("batch", static_cast<double>(gbatch));
    }
    const obs::SpanContext batch_ctx =
        batch_span ? batch_span->context() : obs::SpanContext{};

    const auto run_worker = [&, this](int w, size_t lo, size_t hi) {
      WorkerResult r;
      r.shard_bytes.assign(servers, 0);
      r.shard_decode_seconds.assign(servers, 0.0);
      r.shard_link_seconds.assign(servers, 0.0);
      if (faults && injector_.WorkerCrashed(gbatch, w)) {
        // Crash-for-k-batches: the executor is down, computes nothing and
        // sends nothing. It rejoins via the (fault-free) weight broadcast.
        r.crashed = true;
        r.contributes = false;
        return r;
      }
      const double straggle =
          faults ? injector_.StraggleFactor(gbatch, w) : 1.0;
      r.straggled = straggle > 1.0;
      compress::GradientCodec* codec = WorkerCodec(w);
      // Cross-thread hand-off: this task may run on a pool thread, so
      // adopt the batch's context and open this worker's push span under
      // it. Inner spans (compute below, the codec's encode/decode, the
      // modeled transfer attempts) then chain off the push span through
      // the thread-local context stack.
      obs::TraceContextScope batch_scope(batch_ctx);
      std::optional<obs::TraceSpan> push_span;
      if (batch_ctx.valid()) {
        push_span.emplace("trainer", "push");
        push_span->Arg("worker", static_cast<double>(w));
        push_span->Arg("batch", static_cast<double>(gbatch));
      }
      common::Stopwatch task_watch;
      common::SparseGradient grad;
      {
        std::optional<obs::TraceSpan> span;
        if (batch_ctx.valid()) {
          span.emplace("trainer", "compute");
          span->Arg("worker", static_cast<double>(w));
        }
        grad = ml::ComputeBatchGradient(*loss_, optimizer_->weights(), *train_,
                                        lo, hi, config_.lambda);
      }
      r.compute_seconds = task_watch.Restart() * straggle;
      r.nnz = grad.size();

      // Partition by server shard (a single pass: keys are sorted and
      // shard ranges are contiguous).
      std::vector<common::SparseGradient> per_shard(servers);
      if (servers == 1) {
        per_shard[0] = std::move(grad);
      } else {
        const size_t hint = grad.size() / static_cast<size_t>(servers) + 1;
        for (auto& piece : per_shard) piece.reserve(hint);
        for (const auto& pair : grad) {
          const int dest = shard_of(pair.key);
          // A key >= dim would compute a shard past the last server and
          // corrupt the neighbouring vector silently.
          SKETCHML_DCHECK_GE(dest, 0);
          SKETCHML_DCHECK_LT(dest, servers)
              << "gradient key " << pair.key << " outside model dim " << dim;
          per_shard[dest].push_back(pair);
        }
      }

      // Recovery error: codecs keep keys exact, so walk the sorted
      // sent/decoded lists in lockstep and accumulate |sent - got|.
      const auto accumulate_recovery = [&r](
                                           const common::SparseGradient& sent,
                                           const common::SparseGradient& got) {
        size_t j = 0;
        for (const auto& pair : sent) {
          while (j < got.size() && got[j].key < pair.key) ++j;
          const double value = (j < got.size() && got[j].key == pair.key)
                                   ? got[j].value
                                   : 0.0;
          r.recovery_error_l1 += std::abs(value - pair.value);
          r.recovery_ref_l1 += std::abs(pair.value);
        }
      };

      for (int s = 0; s < servers; ++s) {
        if (per_shard[s].empty()) continue;
        task_watch.Restart();
        compress::EncodedGradient msg;
        r.status = codec->Encode(per_shard[s], &msg);
        if (!r.status.ok()) return r;
        r.encode_seconds += task_watch.Restart() * straggle;
        ++r.messages;

        if (!faults) {
          r.shard_bytes[s] = msg.size();
          // Phase 3a: the owning server decodes (serial per server, but
          // servers run in parallel — approximate with the sum / servers).
          common::SparseGradient decoded;
          r.status = codec->Decode(msg, &decoded);
          if (!r.status.ok()) return r;
          const double decode_elapsed = task_watch.Restart() / servers;
          r.decode_seconds += decode_elapsed;
          r.shard_decode_seconds[s] = decode_elapsed;
          if (metrics_.enabled) accumulate_recovery(per_shard[s], decoded);
          r.decoded.insert(r.decoded.end(), decoded.begin(), decoded.end());
          if (batch_ctx.valid()) {
            // Modeled clean transfer of this shard message (single
            // attempt), parented under the push span via the context
            // stack. Emitted outside the decode timing window.
            obs::EmitSpan(
                "network", "transfer", obs::NowNs(),
                static_cast<uint64_t>(
                    cluster_.network.TransferSeconds(msg.size()) * 1e9),
                {{"attempt", 0.0},
                 {"bytes", static_cast<double>(msg.size())}});
          }
          continue;
        }

        // Fault path: CRC-frame the payload — the framed bytes are what
        // crosses the wire — then walk the retransmit loop. Every attempt
        // charges one transfer of the framed message to this shard's
        // gather link; each retry additionally waits out an exponential
        // backoff. Drop/corrupt decisions are pure functions of
        // (seed, batch, worker, server, attempt), so the sequence is
        // replayable and independent of thread interleaving.
        std::vector<uint8_t> framed;
        common::FrameMessage(msg.bytes, &framed);
        r.shard_bytes[s] = framed.size();
        bool delivered = false;
        const int attempts = injector_.plan().max_retries + 1;
        for (int attempt = 0; attempt < attempts; ++attempt) {
          if (attempt > 0) {
            ++r.retries;
            r.retransmit_bytes += framed.size();
            r.retry_seconds += injector_.BackoffSeconds(attempt) +
                               cluster_.network.TransferSeconds(framed.size());
          }
          r.shard_link_seconds[s] +=
              cluster_.network.TransferSeconds(framed.size());
          if (attempt > 0) {
            r.shard_link_seconds[s] += injector_.BackoffSeconds(attempt);
          }
          if (batch_ctx.valid()) {
            // Modeled wire time for this delivery attempt (retries also
            // include the backoff wait that preceded them), one span per
            // attempt so retry amplification is visible in the tree.
            obs::EmitSpan(
                "network", "transfer", obs::NowNs(),
                static_cast<uint64_t>(
                    (cluster_.network.TransferSeconds(framed.size()) +
                     (attempt > 0 ? injector_.BackoffSeconds(attempt) : 0.0)) *
                    1e9),
                {{"attempt", static_cast<double>(attempt)},
                 {"bytes", static_cast<double>(framed.size())}});
          }
          if (injector_.ShouldDrop(gbatch, w, s, attempt)) {
            ++r.injected_drops;
            continue;  // Vanished in flight; the sender times out, resends.
          }
          std::vector<uint8_t> wire = framed;
          if (injector_.ShouldCorrupt(gbatch, w, s, attempt)) {
            ++r.injected_corruptions;
            injector_.Corrupt(&wire, gbatch, w, s, attempt);
          }
          // Server side: validate the frame, then decode the payload. A
          // detected corruption is NACKed and retried; the CPU spent
          // detecting it is charged to decode like any delivered message.
          task_watch.Restart();
          std::vector<uint8_t> payload;
          common::Status receive = common::UnframeMessage(wire, &payload);
          common::SparseGradient decoded;
          if (receive.ok()) {
            compress::EncodedGradient inner;
            inner.bytes = std::move(payload);
            receive = codec->Decode(inner, &decoded);
          }
          const double decode_elapsed = task_watch.Restart() / servers;
          r.decode_seconds += decode_elapsed;
          r.shard_decode_seconds[s] += decode_elapsed;
          if (!receive.ok()) continue;  // Corruption detected: retry.
          delivered = true;
          if (metrics_.enabled) accumulate_recovery(per_shard[s], decoded);
          r.decoded.insert(r.decoded.end(), decoded.begin(), decoded.end());
          break;
        }
        if (!delivered) {
          // Retry budget exhausted: the sender's final timeout closes the
          // exchange and the driver drops this worker from the batch.
          const double timeout = injector_.BackoffSeconds(attempts);
          r.shard_link_seconds[s] += timeout;
          r.retry_seconds += timeout;
          ++r.lost;
          r.contributes = false;
        }
      }
      return r;
    };

    // Slice i of the batch belongs to worker ids[i]: run_worker takes
    // the *worker id* (it keys fault decisions and picks the codec seed
    // lane), while ranges/results stay slice-indexed. With membership
    // off ids[i] == i and this is the previous fixed-fleet partition.
    std::vector<std::pair<size_t, size_t>> ranges;
    for (int i = 0; i < workers; ++i) {
      const size_t lo = batch_start + static_cast<size_t>(i) * shard;
      if (lo >= batch_end) break;
      ranges.emplace_back(lo, std::min(batch_end, lo + shard));
    }
    const int active_workers = static_cast<int>(ranges.size());
    if (active_workers == 0) continue;

    std::vector<WorkerResult> results(active_workers);
    if (pool_ != nullptr && active_workers > 1) {
      std::vector<common::TaskFuture<WorkerResult>> futures(active_workers);
      for (int i = 0; i < active_workers; ++i) {
        futures[i] = pool_->Submit([&run_worker, &ranges, &ids, i] {
          return run_worker(ids[i], ranges[i].first, ranges[i].second);
        });
      }
      for (int i = 0; i < active_workers; ++i) results[i] = futures[i].Get();
    } else {
      for (int i = 0; i < active_workers; ++i) {
        results[i] = run_worker(ids[i], ranges[i].first, ranges[i].second);
      }
    }

    // Reduce in fixed worker order so every accumulated stat is
    // independent of execution interleaving. Per-entity counters are
    // published here (not from worker threads) with the same scale
    // factors the aggregate stats use, so labeled slices reconcile with
    // EpochStats exactly (see EntityMetrics in trainer.h).
    double compute_sum = 0.0, encode_sum = 0.0, decode_sum = 0.0;
    double batch_retry_seconds = 0.0;
    uint64_t batch_bytes_up = 0;          // This batch's gather traffic.
    uint64_t batch_retransmit_bytes = 0;  // Retry amplification, this batch.
    uint64_t batch_retries = 0;
    int contributing = 0;
    std::fill(shard_gather_seconds.begin(), shard_gather_seconds.end(), 0.0);
    for (int i = 0; i < active_workers; ++i) {
      WorkerResult& r = results[i];
      // Per-worker metric slots are indexed by the worker's id in the
      // membership universe, not its slice position in this batch.
      const int w = ids[i];
      SKETCHML_RETURN_IF_ERROR(r.status);
      if (r.contributes) ++contributing;
      total_nnz += static_cast<double>(r.nnz);
      compute_sum += r.compute_seconds;
      encode_sum += r.encode_seconds;
      decode_sum += r.decode_seconds;
      stats.messages += r.messages;
      for (int s = 0; s < servers; ++s) {
        if (r.shard_bytes[s] == 0) continue;
        stats.bytes_up += r.shard_bytes[s];
        batch_bytes_up += r.shard_bytes[s];
        // On the fault path the worker already modeled its link time
        // (every retransmit attempt plus backoff waits); fault-free, one
        // clean transfer of the message.
        shard_gather_seconds[s] +=
            faults ? r.shard_link_seconds[s]
                   : cluster_.network.TransferSeconds(r.shard_bytes[s]);
      }
      if (faults) {
        stats.injected_faults += r.injected_drops + r.injected_corruptions +
                                 (r.straggled ? 1 : 0) + (r.crashed ? 1 : 0);
        stats.retries += r.retries;
        stats.retransmit_bytes += r.retransmit_bytes;
        batch_retries += r.retries;
        batch_retransmit_bytes += r.retransmit_bytes;
        stats.lost_messages += r.lost;
        batch_retry_seconds += r.retry_seconds;
        if (fault_metrics_.enabled) {
          if (r.injected_drops > 0) {
            fault_metrics_.injected_drop[w].Add(
                static_cast<double>(r.injected_drops));
          }
          if (r.injected_corruptions > 0) {
            fault_metrics_.injected_corrupt[w].Add(
                static_cast<double>(r.injected_corruptions));
          }
          if (r.straggled) fault_metrics_.injected_straggle[w].Increment();
          if (r.crashed) fault_metrics_.injected_crash[w].Increment();
          if (r.retries > 0) {
            fault_metrics_.retries[w].Add(static_cast<double>(r.retries));
            fault_metrics_.retransmit_bytes[w].Add(
                static_cast<double>(r.retransmit_bytes));
          }
          if (r.lost > 0) {
            fault_metrics_.lost_messages.Add(static_cast<double>(r.lost));
          }
        }
      }
      if (metrics_.enabled) {
        metrics_.worker_compute[w].Add(r.compute_seconds / active_workers *
                                       cluster_.compute_scale);
        metrics_.worker_encode[w].Add(r.encode_seconds / active_workers *
                                      cluster_.codec_scale);
        if (sketch_metrics_.enabled) {
          // Per-batch latency distributions, recorded from this driver
          // thread only (single writer => snapshots identical across
          // --threads). Push is the worker's total modeled link time.
          sketch_metrics_.worker_compute[w].Record(
              r.compute_seconds / active_workers * cluster_.compute_scale);
          sketch_metrics_.worker_encode[w].Record(
              r.encode_seconds / active_workers * cluster_.codec_scale);
          double push_seconds = 0.0;
          for (int s = 0; s < servers; ++s) {
            if (r.shard_bytes[s] == 0) continue;
            push_seconds +=
                faults ? r.shard_link_seconds[s]
                       : cluster_.network.TransferSeconds(r.shard_bytes[s]);
          }
          sketch_metrics_.worker_push[w].Record(push_seconds);
        }
        metrics_.worker_recovery_err[w].Add(r.recovery_error_l1);
        metrics_.worker_recovery_ref[w].Add(r.recovery_ref_l1);
        for (int s = 0; s < servers; ++s) {
          if (r.shard_decode_seconds[s] > 0.0) {
            metrics_.server_decode[s].Add(r.shard_decode_seconds[s] *
                                          cluster_.codec_scale);
          }
          if (r.shard_bytes[s] > 0) {
            metrics_.server_bytes[s].Add(
                static_cast<double>(r.shard_bytes[s]));
          }
        }
      }
    }
    if (faults) {
      // Server-shard stalls: a stalled server delays the gather in flight
      // on its link (no effect on a link with no traffic this batch).
      for (int s = 0; s < servers; ++s) {
        if (shard_gather_seconds[s] > 0.0 &&
            injector_.ServerStalled(gbatch, s)) {
          shard_gather_seconds[s] += cluster_.faults.stall_seconds;
          ++stats.injected_faults;
          if (fault_metrics_.enabled) {
            fault_metrics_.injected_stall[s].Increment();
          }
        }
      }
      // Recovery decision: enough whole gradients survived to apply the
      // batch? Below min_quorum the epoch fails with a typed status; a
      // partial-but-quorate batch is applied degraded (the aggregate is
      // rescaled to the mean of the survivors below).
      if (contributing < cluster_.faults.min_quorum) {
        return common::Status::Unavailable(
            "quorum failure at batch " + std::to_string(gbatch) + ": " +
            std::to_string(contributing) + " of " +
            std::to_string(active_workers) + " workers delivered (min_quorum=" +
            std::to_string(cluster_.faults.min_quorum) + ")");
      }
      if (contributing < active_workers) ++stats.degraded_batches;
      if (fault_metrics_.enabled) {
        fault_metrics_.quorum.Set(static_cast<double>(contributing));
      }
      if (obs::TracingEnabled() && batch_retry_seconds > 0.0) {
        // Modeled recovery time (retransmits + backoff), same convention
        // as the "gather" span below. The batch span is still open on
        // this thread, so the analyzer can charge retry amplification to
        // its batch.
        obs::EmitSpan("network", "retry", obs::NowNs(),
                      static_cast<uint64_t>(batch_retry_seconds * 1e9),
                      {{"attempt", static_cast<double>(batch_retries)},
                       {"bytes", static_cast<double>(batch_retransmit_bytes)}});
      }
    }

    // Gather happens in parallel across server links: the slowest shard
    // bounds the phase.
    const double gather_seconds = *std::max_element(
        shard_gather_seconds.begin(), shard_gather_seconds.end());
    stats.network_seconds += gather_seconds;
    if (metrics_.enabled) {
      for (int s = 0; s < servers; ++s) {
        if (shard_gather_seconds[s] > 0.0) {
          metrics_.server_gather[s].Add(shard_gather_seconds[s]);
        }
      }
      if (gather_seconds > 0.0) metrics_.driver_network.Add(gather_seconds);
    }
    if (obs::TracingEnabled() && gather_seconds > 0.0) {
      // Modeled, not measured: the span's duration is what NetworkModel
      // says the gather would have taken on the simulated links.
      obs::EmitSpan("network", "gather", obs::NowNs(),
                    static_cast<uint64_t>(gather_seconds * 1e9),
                    {{"bytes", static_cast<double>(batch_bytes_up)}});
    }

    // Phase 3b: average and apply the optimizer step. Aggregation is
    // range-partitioned into key slices so it can run on the pool: a key
    // belongs to exactly one slice and its additions always happen in
    // fixed worker order inside that slice, so every float — and the
    // sorted concatenation of the ascending slices — is bit-identical
    // at any slice or thread count.
    watch.Restart();
    common::SparseGradient mean_grad;
    {
      obs::TraceSpan aggregate_span("trainer", "aggregate");
      // K-of-W degradation: a degraded batch averages over the surviving
      // workers only (quorum above guarantees contributing >= 1). Fault
      // free, contributing == active_workers and this is the usual mean.
      const double inv_workers = 1.0 / static_cast<double>(contributing);
      const auto aggregate_slice = [&](uint64_t lo, uint64_t hi) {
        std::unordered_map<uint64_t, double> sums;
        for (int w = 0; w < active_workers; ++w) {
          if (!results[w].contributes) continue;
          for (const auto& pair : results[w].decoded) {
            if (pair.key >= lo && pair.key < hi) sums[pair.key] += pair.value;
          }
        }
        common::SparseGradient slice;
        slice.reserve(sums.size());
        for (const auto& [key, value] : sums) {
          slice.push_back({key, value * inv_workers});
        }
        common::SortByKey(&slice);
        return slice;
      };
      if (pool_ != nullptr) {
        const uint64_t slices =
            std::min(dim, static_cast<uint64_t>(4 * num_threads_));
        std::vector<common::TaskFuture<common::SparseGradient>> slice_tasks;
        slice_tasks.reserve(slices);
        for (uint64_t s = 0; s < slices; ++s) {
          const uint64_t lo = dim * s / slices;
          // The last slice absorbs any stray out-of-range key, exactly as
          // the single-map path would.
          const uint64_t hi = s + 1 == slices
                                  ? std::numeric_limits<uint64_t>::max()
                                  : dim * (s + 1) / slices;
          slice_tasks.push_back(pool_->Submit(
              [&aggregate_slice, lo, hi] { return aggregate_slice(lo, hi); }));
        }
        for (auto& task : slice_tasks) {
          const common::SparseGradient slice = task.Get();
          mean_grad.insert(mean_grad.end(), slice.begin(), slice.end());
        }
      } else {
        mean_grad = aggregate_slice(0, std::numeric_limits<uint64_t>::max());
      }
    }
    {
      obs::TraceSpan update_span("trainer", "update");
      optimizer_->Apply(mean_grad);
    }
    const double update_elapsed = watch.Restart() * cluster_.codec_scale;
    stats.update_seconds += update_elapsed;
    if (metrics_.enabled && update_elapsed > 0.0) {
      metrics_.driver_update.Add(update_elapsed);
    }
    // Feed the aggregate into the owning shards' mergeable state before
    // the broadcast below consumes (moves) mean_grad. Driver-side and
    // serial, so the sketches are a pure function of the update stream.
    if (membership_active_) UpdateShardState(mean_grad);

    // Phase 4: broadcast the aggregated update, re-encoded with the same
    // codec. With sharding each server broadcasts its key range; shards
    // broadcast in parallel so the slowest bounds the phase.
    double slowest_broadcast = 0.0;
    double driver_encode_seconds = 0.0, driver_decode_seconds = 0.0;
    uint64_t batch_bytes_down = 0;
    {
      obs::TraceSpan broadcast_span("trainer", "broadcast");
      std::vector<common::SparseGradient> update_shards(servers);
      if (servers == 1) {
        update_shards[0] = std::move(mean_grad);
      } else {
        for (const auto& pair : mean_grad) {
          update_shards[shard_of(pair.key)].push_back(pair);
        }
      }
      for (int s = 0; s < servers; ++s) {
        if (update_shards[s].empty()) continue;
        watch.Restart();
        compress::EncodedGradient update_msg;
        SKETCHML_RETURN_IF_ERROR(
            codec_->Encode(update_shards[s], &update_msg));
        const double broadcast_encode = watch.Restart() / servers;
        encode_sum += broadcast_encode;
        driver_encode_seconds += broadcast_encode;

        stats.bytes_down +=
            static_cast<uint64_t>(update_msg.size()) * active_workers;
        batch_bytes_down +=
            static_cast<uint64_t>(update_msg.size()) * active_workers;
        // Spark-style torrent broadcast: the server emits the update once
        // and executors propagate copies peer-to-peer in parallel, so the
        // critical path is ~2 link traversals regardless of W (the gather
        // path above, by contrast, really does serialize W messages
        // through each server's NIC).
        slowest_broadcast = std::max(
            slowest_broadcast,
            2.0 * cluster_.network.TransferSeconds(update_msg.size()));

        watch.Restart();
        common::SparseGradient worker_copy;
        SKETCHML_RETURN_IF_ERROR(codec_->Decode(update_msg, &worker_copy));
        const double broadcast_decode = watch.Restart();
        decode_sum += broadcast_decode;  // One decode: workers parallel.
        driver_decode_seconds += broadcast_decode;
      }
    }
    stats.network_seconds += slowest_broadcast;
    if (metrics_.enabled) {
      // The broadcast encode/decode run on the driver; charge them with
      // the same factors the aggregate stats apply below so
      //   encode = Σ worker{encode} + driver{encode}   (and likewise
      // decode over server + driver slices) reconciles exactly.
      if (driver_encode_seconds > 0.0) {
        metrics_.driver_encode.Add(driver_encode_seconds / active_workers *
                                   cluster_.codec_scale);
      }
      if (driver_decode_seconds > 0.0) {
        metrics_.driver_decode.Add(driver_decode_seconds *
                                   cluster_.codec_scale);
      }
      if (slowest_broadcast > 0.0) {
        metrics_.driver_network.Add(slowest_broadcast);
      }
    }
    if (obs::TracingEnabled() && slowest_broadcast > 0.0) {
      // Modeled torrent-broadcast time, same convention as "gather".
      obs::EmitSpan("network", "broadcast", obs::NowNs(),
                    static_cast<uint64_t>(slowest_broadcast * 1e9),
                    {{"bytes", static_cast<double>(batch_bytes_down)}});
    }

    // Workers compute/encode in parallel: charge the mean per worker.
    stats.compute_seconds +=
        compute_sum / active_workers * cluster_.compute_scale;
    stats.encode_seconds +=
        encode_sum / active_workers * cluster_.codec_scale;
    stats.decode_seconds += decode_sum * cluster_.codec_scale;
    ++stats.num_batches;
    // Global batch index: the injector keys every decision on it, so the
    // fault sequence is a function of (plan seed, lifetime batch number)
    // and replays identically across epochs and thread counts.
    ++batches_run_;
  }

  stats.avg_gradient_nnz =
      stats.messages > 0 ? total_nnz / static_cast<double>(stats.messages)
                         : 0.0;
  stats.train_loss = ml::ComputeMeanLoss(*loss_, optimizer_->weights(),
                                         *train_, config_.lambda);
  if (test_ != nullptr && config_.evaluate_test_loss) {
    stats.test_loss =
        ml::ComputeMeanLoss(*loss_, optimizer_->weights(), *test_, 0.0);
  }
  simulated_seconds_ += stats.TotalSeconds();

  // Epoch-boundary cross-node telemetry aggregation: serialize each
  // worker's window tail, merge it into the cluster-wide slot (KLL
  // mergeability as the aggregation primitive), then retire everyone's
  // window into the ring. Payload sizes are counted in telemetry/*
  // only — never charged to the NetworkModel — so enabling metrics
  // cannot perturb the modeled timings or the training output.
  if (sketch_metrics_.enabled) {
    auto& sketches = obs::SketchHistogramRegistry::Global();
    const struct {
      const std::vector<obs::SketchHistogram>* workers;
      const obs::SketchHistogram* cluster;
    } lanes[] = {
        {&sketch_metrics_.worker_compute, &sketch_metrics_.cluster_compute},
        {&sketch_metrics_.worker_encode, &sketch_metrics_.cluster_encode},
        {&sketch_metrics_.worker_push, &sketch_metrics_.cluster_push},
    };
    for (const auto& lane : lanes) {
      for (const obs::SketchHistogram& worker_sketch : *lane.workers) {
        const std::vector<uint8_t> payload =
            sketches.SerializeTail(worker_sketch);
        if (payload.empty()) continue;
        sketch_metrics_.merges.Increment();
        sketch_metrics_.merge_bytes.Add(static_cast<double>(payload.size()));
        const common::Status merged = sketches.MergeSerialized(
            *lane.cluster, payload.data(), payload.size());
        if (!merged.ok()) {
          SKETCHML_LOG(Warning)
              << "telemetry sketch merge failed: " << merged.ToString();
        }
      }
    }
    sketches.AdvanceWindows();
  }

  if (membership_metrics_.churn) {
    membership_metrics_.active_workers.Set(
        static_cast<double>(directory_.active().size()));
    membership_metrics_.active_servers.Set(
        static_cast<double>(active_servers_));
  }
  // Epoch checkpoint: seal the full training state so a later
  // below-quorum attempt can roll back here instead of failing the run.
  if (checkpoints_enabled_ &&
      epochs_run_ % cluster_.membership.checkpoint_every == 0) {
    SKETCHML_RETURN_IF_ERROR(SaveCheckpoint(&checkpoint_));
    stats.checkpoint_bytes = checkpoint_.size();
    if (membership_metrics_.checkpoints) {
      membership_metrics_.checkpoint_bytes.Add(
          static_cast<double>(checkpoint_.size()));
    }
  }

  // Rollbacks consumed since the last *reported* epoch, read only here —
  // at the end of a successful attempt — so a chain of failed retries
  // accumulates into the epoch that finally lands instead of each failed
  // attempt swallowing its predecessor's count.
  stats.rollbacks = pending_rollbacks_;
  pending_rollbacks_ = 0;
  if (stats.rollbacks > 0 && membership_metrics_.checkpoints) {
    membership_metrics_.rollbacks.Add(static_cast<double>(stats.rollbacks));
  }

  PublishEpochStats(stats);
  return stats;
}

common::Result<EpochStats> DistributedTrainer::RunEpoch() {
  SKETCHML_RETURN_IF_ERROR(init_status_);
  int attempts = 0;
  while (true) {
    common::Result<EpochStats> result = RunEpochAttempt();
    if (result.ok()) return result;
    // Only a quorum failure is recoverable, and only while a sealed
    // checkpoint exists and the per-epoch retry budget holds out.
    if (result.status().code() != common::StatusCode::kUnavailable ||
        checkpoint_.empty() || attempts >= cluster_.membership.max_rollbacks) {
      return result;
    }
    ++attempts;
    ++rollbacks_used_;
    ++pending_rollbacks_;
    // Roll the model and every codec lane back to the last epoch
    // boundary. The global batch counter is NOT rewound (for_rollback):
    // the retry draws fresh fault/membership decisions instead of
    // replaying the exact failure that killed this attempt. The counter
    // stopped *on* the failed batch's index (the failure aborts before
    // the end-of-batch increment), so step past it — otherwise the
    // retry's first batch would redraw the very decisions that just
    // failed quorum, and every retry would die at the same index.
    ++batches_run_;
    SKETCHML_RETURN_IF_ERROR(
        RestoreFromBlob(checkpoint_, /*for_rollback=*/true));
    SKETCHML_LOG(Warning) << "epoch " << epochs_run_ + 1
                          << ": rolled back to checkpoint (retry " << attempts
                          << " of " << cluster_.membership.max_rollbacks
                          << "): " << result.status().message();
  }
}

void DistributedTrainer::ApplyMembershipEvent(const MembershipEvent& event,
                                              EpochStats* stats) {
  switch (event.kind) {
    case MembershipEvent::kJoin: {
      ++stats->joins;
      if (membership_metrics_.churn) membership_metrics_.joins.Increment();
      // Warm start, step 1: the joiner pulls the current dense weights
      // over the wire — real protocol traffic, charged to the network.
      const uint64_t sync_bytes =
          static_cast<uint64_t>(optimizer_->weights().size()) * sizeof(double);
      stats->sync_bytes += sync_bytes;
      stats->network_seconds += cluster_.network.TransferSeconds(sync_bytes);
      if (membership_metrics_.churn) {
        membership_metrics_.sync_bytes.Add(static_cast<double>(sync_bytes));
      }
      // Warm start, step 2: adopt the oldest escrowed codec-lane state
      // (error-feedback residual + stream position) banked by an earlier
      // leaver, so accumulated correction signal survives churn instead
      // of resetting to zero.
      if (!residual_escrow_.empty() && !worker_codecs_.empty()) {
        const std::vector<uint8_t> blob = std::move(residual_escrow_.front());
        residual_escrow_.pop_front();
        common::ByteReader reader(blob);
        const common::Status restored =
            worker_codecs_[event.worker]->RestoreState(&reader);
        if (restored.ok()) {
          stats->handoff_bytes += blob.size();
          stats->network_seconds +=
              cluster_.network.TransferSeconds(blob.size());
          if (membership_metrics_.churn) {
            membership_metrics_.handoff_bytes.Add(
                static_cast<double>(blob.size()));
          }
        } else {
          SKETCHML_LOG(Warning)
              << "worker " << event.worker
              << " rejected escrowed codec state: " << restored.ToString();
        }
      }
      break;
    }
    case MembershipEvent::kLeave:
    case MembershipEvent::kDepart: {
      if (event.kind == MembershipEvent::kLeave) {
        ++stats->leaves;
        if (membership_metrics_.churn) membership_metrics_.leaves.Increment();
      } else {
        ++stats->departs;
        if (membership_metrics_.churn) membership_metrics_.departs.Increment();
      }
      // Graceful handoff, step 1: bank the leaver's codec-lane state
      // (residual + RNG position) in the escrow for a future joiner.
      // The blob crosses the wire to the driver, so it is charged.
      if (!worker_codecs_.empty()) {
        common::ByteWriter writer;
        worker_codecs_[event.worker]->SaveState(&writer);
        std::vector<uint8_t> blob = writer.TakeBuffer();
        if (!blob.empty()) {
          stats->handoff_bytes += blob.size();
          stats->network_seconds +=
              cluster_.network.TransferSeconds(blob.size());
          if (membership_metrics_.churn) {
            membership_metrics_.handoff_bytes.Add(
                static_cast<double>(blob.size()));
          }
          residual_escrow_.push_back(std::move(blob));
        }
      }
      // Graceful handoff, step 2: drain the leaver's labeled telemetry
      // tail into the cluster-wide slots so its latency samples survive
      // the departure (the epoch-boundary merge would otherwise lose
      // whatever the window accumulated since the last boundary).
      // Telemetry bytes follow the sketch-metrics convention: counted
      // in telemetry/* only, never charged to the NetworkModel.
      if (sketch_metrics_.enabled) {
        auto& sketches = obs::SketchHistogramRegistry::Global();
        const struct {
          const std::vector<obs::SketchHistogram>* workers;
          const obs::SketchHistogram* cluster;
        } lanes[] = {
            {&sketch_metrics_.worker_compute, &sketch_metrics_.cluster_compute},
            {&sketch_metrics_.worker_encode, &sketch_metrics_.cluster_encode},
            {&sketch_metrics_.worker_push, &sketch_metrics_.cluster_push},
        };
        for (const auto& lane : lanes) {
          const std::vector<uint8_t> payload =
              sketches.DrainTail((*lane.workers)[event.worker]);
          if (payload.empty()) continue;
          sketch_metrics_.merges.Increment();
          sketch_metrics_.merge_bytes.Add(static_cast<double>(payload.size()));
          const common::Status merged = sketches.MergeSerialized(
              *lane.cluster, payload.data(), payload.size());
          if (!merged.ok()) {
            SKETCHML_LOG(Warning) << "leave-time telemetry merge failed: "
                                  << merged.ToString();
          }
        }
      }
      break;
    }
  }
}

common::Status DistributedTrainer::ReconfigureShards(EpochStats* stats) {
  const int target =
      ActiveServerCount(cluster_.num_servers,
                        static_cast<int>(directory_.active().size()),
                        initial_workers_);
  if (target == active_servers_) return common::Status::Ok();

  // Serialize a shard's mergeable state exactly as it would cross the
  // wire: KLL value sketch then MinMax key cache, one framed blob.
  const auto serialize_shard = [this](int s) {
    common::ByteWriter writer(shard_values_[s].SerializedSize() +
                              shard_keys_[s].SerializedSize());
    shard_values_[s].Serialize(&writer);
    shard_keys_[s].Serialize(&writer);
    return writer.TakeBuffer();
  };
  // Deserialize a transferred blob back into (values, keys) and merge it
  // into the destination shard — the round-trip is deliberate: the
  // destination only ever sees what survived serialization, exactly like
  // a real shard-to-shard transfer.
  const auto merge_blob = [this](const std::vector<uint8_t>& blob,
                                 int dest) -> common::Status {
    common::ByteReader reader(blob);
    sketch::KllSketch values(/*k=*/256, kShardSketchSeed);
    SKETCHML_RETURN_IF_ERROR(
        sketch::KllSketch::Deserialize(&reader, &values, kShardSketchSeed));
    values.SetInstrumented(false);
    sketch::MinMaxSketch keys(kShardKeyRows, kShardKeyCols, kShardSketchSeed);
    SKETCHML_RETURN_IF_ERROR(sketch::MinMaxSketch::Deserialize(&reader, &keys));
    shard_values_[dest].Merge(values);
    return shard_keys_[dest].Merge(keys);
  };
  const auto charge = [&](size_t bytes) {
    stats->handoff_bytes += bytes;
    stats->network_seconds +=
        cluster_.network.TransferSeconds(static_cast<double>(bytes));
    if (membership_metrics_.churn) {
      membership_metrics_.handoff_bytes.Add(static_cast<double>(bytes));
    }
  };

  if (target < active_servers_) {
    // Scale-down: each retiring shard serializes its state and ships it
    // to a surviving shard, which merges it (mergeability makes this a
    // transfer, not a rebuild). State is conserved: nothing the retiring
    // shards learned is lost.
    for (int s = target; s < active_servers_; ++s) {
      const std::vector<uint8_t> blob = serialize_shard(s);
      charge(blob.size());
      SKETCHML_RETURN_IF_ERROR(merge_blob(blob, s % target));
      // Reset the retired shard so a later scale-up starts it fresh.
      shard_values_[s] = sketch::KllSketch(/*k=*/256, kShardSketchSeed);
      shard_values_[s].SetInstrumented(false);
      shard_keys_[s] =
          sketch::MinMaxSketch(kShardKeyRows, kShardKeyCols, kShardSketchSeed);
    }
  } else {
    // Scale-up: each new shard bootstraps from an existing one (the
    // consistent-hash ring moves only boundary keys to it, so the donor's
    // state is a superset of what the new shard will serve).
    for (int s = active_servers_; s < target; ++s) {
      const std::vector<uint8_t> blob = serialize_shard(s % active_servers_);
      charge(blob.size());
      SKETCHML_RETURN_IF_ERROR(merge_blob(blob, s));
    }
  }
  active_servers_ = target;
  ring_.Rebuild(target);
  ++stats->reconfigurations;
  if (membership_metrics_.churn) {
    membership_metrics_.reconfigurations.Increment();
  }
  return common::Status::Ok();
}

void DistributedTrainer::UpdateShardState(const common::SparseGradient& grad) {
  for (const auto& pair : grad) {
    const int s = ring_.ShardOf(pair.key);
    shard_values_[s].Update(std::abs(pair.value));
    shard_keys_[s].Insert(pair.key, MagnitudeBucket(pair.value));
  }
}

void DistributedTrainer::BuildCheckpointPayload(
    std::vector<uint8_t>* payload) const {
  common::ByteWriter writer;
  writer.WriteVarint(static_cast<uint64_t>(epochs_run_));
  writer.WriteVarint(batches_run_);
  writer.WriteDouble(simulated_seconds_);
  // Optimizer kind byte: restore validates it against this trainer's
  // config instead of mis-parsing an SGD blob as Adam state.
  writer.WriteU8(config_.use_adam ? 1 : 0);
  optimizer_->SaveState(&writer);
  // Codec lanes, each length-prefixed so a lane that saves nothing (a
  // stateless codec) round-trips as an empty blob.
  writer.WriteVarint(static_cast<uint64_t>(worker_codecs_.size()));
  const auto write_lane = [&writer](const compress::GradientCodec& codec) {
    common::ByteWriter lane;
    codec.SaveState(&lane);
    const std::vector<uint8_t> blob = lane.TakeBuffer();
    writer.WriteVarint(static_cast<uint64_t>(blob.size()));
    writer.WriteBytes(blob);
  };
  for (const auto& codec : worker_codecs_) write_lane(*codec);
  write_lane(*codec_);  // Driver/broadcast lane.
  *payload = writer.TakeBuffer();
}

common::Status DistributedTrainer::SaveCheckpoint(
    std::vector<uint8_t>* out) const {
  SKETCHML_RETURN_IF_ERROR(init_status_);
  std::vector<uint8_t> payload;
  BuildCheckpointPayload(&payload);
  SealCheckpoint(payload, out);
  return common::Status::Ok();
}

common::Status DistributedTrainer::RestoreCheckpoint(
    const std::vector<uint8_t>& checkpoint) {
  SKETCHML_RETURN_IF_ERROR(init_status_);
  return RestoreFromBlob(checkpoint, /*for_rollback=*/false);
}

common::Status DistributedTrainer::RestoreFromBlob(
    const std::vector<uint8_t>& checkpoint, bool for_rollback) {
  std::vector<uint8_t> payload;
  SKETCHML_RETURN_IF_ERROR(OpenCheckpoint(checkpoint, &payload));
  common::ByteReader reader(payload);
  uint64_t epochs = 0;
  uint64_t batches = 0;
  double simulated = 0.0;
  uint8_t optimizer_kind = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&epochs));
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&batches));
  SKETCHML_RETURN_IF_ERROR(reader.ReadDouble(&simulated));
  SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&optimizer_kind));
  if ((optimizer_kind != 0) != config_.use_adam) {
    return common::Status::CorruptedData(
        "checkpoint optimizer kind does not match this trainer's config");
  }
  SKETCHML_RETURN_IF_ERROR(optimizer_->RestoreState(&reader));
  uint64_t lanes = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&lanes));
  if (lanes != worker_codecs_.size()) {
    return common::Status::CorruptedData(
        "checkpoint codec lane count (" + std::to_string(lanes) +
        ") does not match this trainer (" +
        std::to_string(worker_codecs_.size()) + ")");
  }
  const auto restore_lane =
      [&reader](compress::GradientCodec* codec) -> common::Status {
    uint64_t size = 0;
    SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&size));
    if (size > reader.remaining()) {
      return common::Status::CorruptedData("checkpoint codec lane truncated");
    }
    std::vector<uint8_t> blob(static_cast<size_t>(size));
    if (size > 0) {
      SKETCHML_RETURN_IF_ERROR(reader.ReadRaw(blob.data(), blob.size()));
    }
    common::ByteReader lane(blob);
    return codec->RestoreState(&lane);
  };
  for (const auto& codec : worker_codecs_) {
    SKETCHML_RETURN_IF_ERROR(restore_lane(codec.get()));
  }
  SKETCHML_RETURN_IF_ERROR(restore_lane(codec_.get()));
  // All sections validated and applied; now the counters. A rollback
  // rewinds the epoch number (the retried epoch keeps its index) but
  // NOT the monotonic batch counter or the accumulated simulated time —
  // the retry must draw fresh fault/membership decisions.
  epochs_run_ = static_cast<int>(epochs);
  if (!for_rollback) {
    batches_run_ = batches;
    simulated_seconds_ = simulated;
  }
  return common::Status::Ok();
}

common::Result<std::vector<EpochStats>> DistributedTrainer::Run(int epochs) {
  std::vector<EpochStats> all;
  all.reserve(epochs);
  for (int e = 0; e < epochs; ++e) {
    SKETCHML_ASSIGN_OR_RETURN(EpochStats stats, RunEpoch());
    all.push_back(stats);
  }
  return all;
}

}  // namespace sketchml::dist
