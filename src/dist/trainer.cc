#include "dist/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>

#include "common/framing.h"
#include "common/logging.h"
#include "common/obs.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "compress/raw_codec.h"
#include "ml/gradient.h"

namespace sketchml::dist {

common::Status ValidateClusterConfig(const ClusterConfig& cluster) {
  if (cluster.num_workers < 1) {
    return common::Status::InvalidArgument(
        "ClusterConfig.num_workers must be >= 1");
  }
  if (cluster.num_servers < 1) {
    return common::Status::InvalidArgument(
        "ClusterConfig.num_servers must be >= 1");
  }
  SKETCHML_RETURN_IF_ERROR(cluster.network.Validate());
  if (!(cluster.compute_scale >= 0.0)) {
    return common::Status::InvalidArgument(
        "ClusterConfig.compute_scale must be >= 0");
  }
  if (!(cluster.codec_scale >= 0.0)) {
    return common::Status::InvalidArgument(
        "ClusterConfig.codec_scale must be >= 0");
  }
  SKETCHML_RETURN_IF_ERROR(ValidateFaultPlan(cluster.faults));
  if (cluster.faults.min_quorum > cluster.num_workers) {
    return common::Status::InvalidArgument(
        "FaultPlan.min_quorum exceeds num_workers: no batch could ever "
        "reach quorum");
  }
  return common::Status::Ok();
}

DistributedTrainer::DistributedTrainer(
    const ml::Dataset* train, const ml::Dataset* test, const ml::Loss* loss,
    std::unique_ptr<compress::GradientCodec> codec,
    const ClusterConfig& cluster, const TrainerConfig& config)
    : train_(train),
      test_(test),
      loss_(loss),
      codec_(std::move(codec)),
      cluster_(cluster),
      config_(config),
      injector_(cluster.faults) {
  SKETCHML_CHECK(train != nullptr);
  SKETCHML_CHECK(loss != nullptr);
  // Recoverable configuration errors surface from RunEpoch/Run (a
  // constructor cannot return a Status); skip the remaining setup so a
  // bad NetworkModel never reaches TransferSeconds.
  init_status_ = ValidateClusterConfig(cluster_);
  if (!init_status_.ok()) return;
  faults_active_ = cluster_.faults.Active();
  if (codec_ == nullptr) {
    codec_ = std::make_unique<compress::RawCodec>();
  }
  if (config_.use_adam) {
    optimizer_ = std::make_unique<ml::AdamOptimizer>(
        train->dim(), config_.learning_rate, 0.9, 0.999,
        config_.adam_epsilon);
  } else {
    optimizer_ = std::make_unique<ml::SgdOptimizer>(train->dim(),
                                                    config_.learning_rate);
  }

  // One forked codec per worker lane. Forking is independent of the
  // thread count so that every thread count replays the same byte
  // streams (worker w always encodes with lane w).
  num_threads_ = config_.num_threads == 0
                     ? common::ThreadPool::DefaultThreadCount()
                     : std::max(1, config_.num_threads);
  worker_codecs_.reserve(cluster_.num_workers);
  for (int w = 0; w < cluster_.num_workers; ++w) {
    auto fork = codec_->Fork(static_cast<uint64_t>(w));
    if (fork == nullptr) {
      // Unforkable codec: all workers must share the one instance, which
      // is only safe serially.
      worker_codecs_.clear();
      num_threads_ = 1;
      break;
    }
    fork->SetMetricLabel("worker", std::to_string(w));
    worker_codecs_.push_back(std::move(fork));
  }
  if (num_threads_ > 1) {
    pool_ = std::make_unique<common::ThreadPool>(num_threads_, "trainer");
    for (auto& codec : worker_codecs_) codec->SetThreadPool(pool_.get());
    codec_->SetThreadPool(pool_.get());
  }

  if (obs::MetricsEnabled()) {
    metrics_.enabled = true;
    auto& registry = obs::MetricsRegistry::Global();
    for (int w = 0; w < cluster_.num_workers; ++w) {
      const std::string ws = std::to_string(w);
      metrics_.worker_compute.push_back(registry.GetCounter(
          "trainer/worker_seconds", {{"worker", ws}, {"phase", "compute"}}));
      metrics_.worker_encode.push_back(registry.GetCounter(
          "trainer/worker_seconds", {{"worker", ws}, {"phase", "encode"}}));
      metrics_.worker_recovery_err.push_back(
          registry.GetCounter("trainer/recovery_error_l1", {{"worker", ws}}));
      metrics_.worker_recovery_ref.push_back(
          registry.GetCounter("trainer/recovery_ref_l1", {{"worker", ws}}));
    }
    for (int s = 0; s < cluster_.num_servers; ++s) {
      const std::string ss = std::to_string(s);
      metrics_.server_decode.push_back(registry.GetCounter(
          "trainer/server_seconds", {{"server", ss}, {"phase", "decode"}}));
      metrics_.server_gather.push_back(registry.GetCounter(
          "trainer/server_seconds", {{"server", ss}, {"phase", "gather"}}));
      metrics_.server_bytes.push_back(
          registry.GetCounter("trainer/gather_bytes", {{"server", ss}}));
    }
    metrics_.driver_encode =
        registry.GetCounter("trainer/driver_seconds", {{"phase", "encode"}});
    metrics_.driver_decode =
        registry.GetCounter("trainer/driver_seconds", {{"phase", "decode"}});
    metrics_.driver_update =
        registry.GetCounter("trainer/driver_seconds", {{"phase", "update"}});
    metrics_.driver_network =
        registry.GetCounter("trainer/driver_seconds", {{"phase", "network"}});

    // Sketch-native latency telemetry: per-worker KLL-backed sketches
    // plus the cluster-wide slots the driver merges them into at every
    // epoch boundary. See SketchTelemetry in the header.
    sketch_metrics_.enabled = true;
    auto& sketches = obs::SketchHistogramRegistry::Global();
    for (int w = 0; w < cluster_.num_workers; ++w) {
      const std::string ws = std::to_string(w);
      sketch_metrics_.worker_compute.push_back(sketches.Get(
          "trainer/compute_latency_seconds", {{"worker", ws}}));
      sketch_metrics_.worker_encode.push_back(
          sketches.Get("trainer/encode_latency_seconds", {{"worker", ws}}));
      sketch_metrics_.worker_push.push_back(
          sketches.Get("trainer/push_modeled_seconds", {{"worker", ws}}));
    }
    sketch_metrics_.cluster_compute =
        sketches.Get("trainer/compute_latency_seconds");
    sketch_metrics_.cluster_encode =
        sketches.Get("trainer/encode_latency_seconds");
    sketch_metrics_.cluster_push = sketches.Get("trainer/push_modeled_seconds");
    sketch_metrics_.merges = registry.GetCounter("telemetry/merges");
    sketch_metrics_.merge_bytes = registry.GetCounter("telemetry/merge_bytes");
  }

  // Fault counters exist only when the plan is active: a fault-free run
  // must register no new metric names, keeping its dump and series files
  // bit-identical to a build without the fault layer.
  if (faults_active_ && obs::MetricsEnabled()) {
    fault_metrics_.enabled = true;
    auto& registry = obs::MetricsRegistry::Global();
    for (int w = 0; w < cluster_.num_workers; ++w) {
      const std::string ws = std::to_string(w);
      fault_metrics_.injected_drop.push_back(registry.GetCounter(
          "fault/injected", {{"kind", "drop"}, {"worker", ws}}));
      fault_metrics_.injected_corrupt.push_back(registry.GetCounter(
          "fault/injected", {{"kind", "corrupt"}, {"worker", ws}}));
      fault_metrics_.injected_straggle.push_back(registry.GetCounter(
          "fault/injected", {{"kind", "straggle"}, {"worker", ws}}));
      fault_metrics_.injected_crash.push_back(registry.GetCounter(
          "fault/injected", {{"kind", "crash"}, {"worker", ws}}));
      fault_metrics_.retries.push_back(
          registry.GetCounter("net/retries", {{"worker", ws}}));
      fault_metrics_.retransmit_bytes.push_back(
          registry.GetCounter("net/retransmit_bytes", {{"worker", ws}}));
    }
    for (int s = 0; s < cluster_.num_servers; ++s) {
      fault_metrics_.injected_stall.push_back(registry.GetCounter(
          "fault/injected",
          {{"kind", "stall"}, {"server", std::to_string(s)}}));
    }
    fault_metrics_.lost_messages = registry.GetCounter("net/lost_messages");
    fault_metrics_.quorum = registry.GetGauge("trainer/quorum");
  }
}

common::Result<EpochStats> DistributedTrainer::RunEpoch() {
  SKETCHML_RETURN_IF_ERROR(init_status_);
  const size_t n = train_->size();
  const size_t batch_size = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n) * config_.batch_ratio));
  const int workers = cluster_.num_workers;
  const int servers = cluster_.num_servers;
  const uint64_t dim = std::max<uint64_t>(1, train_->dim());

  // Key-range shard of a gradient key (identity when servers == 1).
  const auto shard_of = [&](uint64_t key) {
    return static_cast<int>(key * static_cast<uint64_t>(servers) / dim);
  };

  EpochStats stats;
  stats.epoch = ++epochs_run_;
  double total_nnz = 0.0;

  obs::TraceSpan epoch_span("trainer", "epoch");
  epoch_span.Arg("epoch", static_cast<double>(stats.epoch));

  common::Stopwatch watch;
  std::vector<double> shard_gather_seconds(servers);
  for (size_t batch_start = 0; batch_start < n; batch_start += batch_size) {
    const size_t batch_end = std::min(n, batch_start + batch_size);
    const size_t batch_count = batch_end - batch_start;
    const size_t shard =
        std::max<size_t>(1, (batch_count + workers - 1) / workers);

    // Phase 1+2: each executor is an independent task — it computes its
    // mini-gradient, splits it by server shard, encodes one message per
    // shard, and (standing in for the owning server, phase 3a) decodes
    // it. Tasks share no mutable state: worker w's codec is its own
    // forked seed lane, so results are bit-identical at any thread count.
    struct WorkerResult {
      common::Status status;
      common::SparseGradient decoded;   // Decoded pairs, in shard order.
      std::vector<size_t> shard_bytes;  // Message bytes per server shard.
      // Decode seconds attributed to each server shard (sums to
      // decode_seconds); lets the driver publish per-server slices.
      std::vector<double> shard_decode_seconds;
      // Modeled seconds on each server's gather link, including every
      // retransmit attempt and backoff wait. Only filled on the fault
      // path; the fault-free reduce derives link time from shard_bytes.
      std::vector<double> shard_link_seconds;
      uint64_t messages = 0;
      size_t nnz = 0;
      double compute_seconds = 0.0;
      double encode_seconds = 0.0;
      double decode_seconds = 0.0;
      // L1 distance between this worker's sent gradient and what the
      // server decoded, plus the sent gradient's own L1 (the denominator
      // for a relative recovery error). Only filled when metrics are on;
      // read-only over the same values either way, so the byte stream and
      // losses are bit-identical with metrics on or off.
      double recovery_error_l1 = 0.0;
      double recovery_ref_l1 = 0.0;
      // Fault accounting (all zero / contributes=true when the plan is
      // inactive). A worker contributes to the batch aggregate only if it
      // did not crash and every non-empty shard message was delivered.
      bool crashed = false;
      bool straggled = false;
      bool contributes = true;
      uint64_t injected_drops = 0;
      uint64_t injected_corruptions = 0;
      uint64_t retries = 0;
      uint64_t retransmit_bytes = 0;
      uint64_t lost = 0;
      double retry_seconds = 0.0;  // Backoff + retransmit link time.
    };
    const uint64_t gbatch = batches_run_;
    const bool faults = faults_active_;

    // Causal root of this batch. Each worker chain (compute → encode →
    // per-attempt transfer → decode) adopts this context on whatever
    // thread executes it, so the batch reconstructs as one rooted tree
    // even across pool threads. Sampling keys on the *global* batch
    // counter, so the sampled set is deterministic across thread counts;
    // an invalid context simply elides the causal spans below and never
    // touches the measured phases or byte streams.
    std::optional<obs::TraceSpan> batch_span;
    if (obs::TracingEnabled() &&
        (config_.trace_sample_every <= 1 ||
         gbatch % static_cast<uint64_t>(config_.trace_sample_every) == 0)) {
      batch_span.emplace("trainer", "batch");
      batch_span->Arg("batch", static_cast<double>(gbatch));
    }
    const obs::SpanContext batch_ctx =
        batch_span ? batch_span->context() : obs::SpanContext{};

    const auto run_worker = [&, this](int w, size_t lo, size_t hi) {
      WorkerResult r;
      r.shard_bytes.assign(servers, 0);
      r.shard_decode_seconds.assign(servers, 0.0);
      r.shard_link_seconds.assign(servers, 0.0);
      if (faults && injector_.WorkerCrashed(gbatch, w)) {
        // Crash-for-k-batches: the executor is down, computes nothing and
        // sends nothing. It rejoins via the (fault-free) weight broadcast.
        r.crashed = true;
        r.contributes = false;
        return r;
      }
      const double straggle =
          faults ? injector_.StraggleFactor(gbatch, w) : 1.0;
      r.straggled = straggle > 1.0;
      compress::GradientCodec* codec = WorkerCodec(w);
      // Cross-thread hand-off: this task may run on a pool thread, so
      // adopt the batch's context and open this worker's push span under
      // it. Inner spans (compute below, the codec's encode/decode, the
      // modeled transfer attempts) then chain off the push span through
      // the thread-local context stack.
      obs::TraceContextScope batch_scope(batch_ctx);
      std::optional<obs::TraceSpan> push_span;
      if (batch_ctx.valid()) {
        push_span.emplace("trainer", "push");
        push_span->Arg("worker", static_cast<double>(w));
        push_span->Arg("batch", static_cast<double>(gbatch));
      }
      common::Stopwatch task_watch;
      common::SparseGradient grad;
      {
        std::optional<obs::TraceSpan> span;
        if (batch_ctx.valid()) {
          span.emplace("trainer", "compute");
          span->Arg("worker", static_cast<double>(w));
        }
        grad = ml::ComputeBatchGradient(*loss_, optimizer_->weights(), *train_,
                                        lo, hi, config_.lambda);
      }
      r.compute_seconds = task_watch.Restart() * straggle;
      r.nnz = grad.size();

      // Partition by server shard (a single pass: keys are sorted and
      // shard ranges are contiguous).
      std::vector<common::SparseGradient> per_shard(servers);
      if (servers == 1) {
        per_shard[0] = std::move(grad);
      } else {
        const size_t hint = grad.size() / static_cast<size_t>(servers) + 1;
        for (auto& piece : per_shard) piece.reserve(hint);
        for (const auto& pair : grad) {
          const int dest = shard_of(pair.key);
          // A key >= dim would compute a shard past the last server and
          // corrupt the neighbouring vector silently.
          SKETCHML_DCHECK_GE(dest, 0);
          SKETCHML_DCHECK_LT(dest, servers)
              << "gradient key " << pair.key << " outside model dim " << dim;
          per_shard[dest].push_back(pair);
        }
      }

      // Recovery error: codecs keep keys exact, so walk the sorted
      // sent/decoded lists in lockstep and accumulate |sent - got|.
      const auto accumulate_recovery = [&r](
                                           const common::SparseGradient& sent,
                                           const common::SparseGradient& got) {
        size_t j = 0;
        for (const auto& pair : sent) {
          while (j < got.size() && got[j].key < pair.key) ++j;
          const double value = (j < got.size() && got[j].key == pair.key)
                                   ? got[j].value
                                   : 0.0;
          r.recovery_error_l1 += std::abs(value - pair.value);
          r.recovery_ref_l1 += std::abs(pair.value);
        }
      };

      for (int s = 0; s < servers; ++s) {
        if (per_shard[s].empty()) continue;
        task_watch.Restart();
        compress::EncodedGradient msg;
        r.status = codec->Encode(per_shard[s], &msg);
        if (!r.status.ok()) return r;
        r.encode_seconds += task_watch.Restart() * straggle;
        ++r.messages;

        if (!faults) {
          r.shard_bytes[s] = msg.size();
          // Phase 3a: the owning server decodes (serial per server, but
          // servers run in parallel — approximate with the sum / servers).
          common::SparseGradient decoded;
          r.status = codec->Decode(msg, &decoded);
          if (!r.status.ok()) return r;
          const double decode_elapsed = task_watch.Restart() / servers;
          r.decode_seconds += decode_elapsed;
          r.shard_decode_seconds[s] = decode_elapsed;
          if (metrics_.enabled) accumulate_recovery(per_shard[s], decoded);
          r.decoded.insert(r.decoded.end(), decoded.begin(), decoded.end());
          if (batch_ctx.valid()) {
            // Modeled clean transfer of this shard message (single
            // attempt), parented under the push span via the context
            // stack. Emitted outside the decode timing window.
            obs::EmitSpan(
                "network", "transfer", obs::NowNs(),
                static_cast<uint64_t>(
                    cluster_.network.TransferSeconds(msg.size()) * 1e9),
                {{"attempt", 0.0},
                 {"bytes", static_cast<double>(msg.size())}});
          }
          continue;
        }

        // Fault path: CRC-frame the payload — the framed bytes are what
        // crosses the wire — then walk the retransmit loop. Every attempt
        // charges one transfer of the framed message to this shard's
        // gather link; each retry additionally waits out an exponential
        // backoff. Drop/corrupt decisions are pure functions of
        // (seed, batch, worker, server, attempt), so the sequence is
        // replayable and independent of thread interleaving.
        std::vector<uint8_t> framed;
        common::FrameMessage(msg.bytes, &framed);
        r.shard_bytes[s] = framed.size();
        bool delivered = false;
        const int attempts = injector_.plan().max_retries + 1;
        for (int attempt = 0; attempt < attempts; ++attempt) {
          if (attempt > 0) {
            ++r.retries;
            r.retransmit_bytes += framed.size();
            r.retry_seconds += injector_.BackoffSeconds(attempt) +
                               cluster_.network.TransferSeconds(framed.size());
          }
          r.shard_link_seconds[s] +=
              cluster_.network.TransferSeconds(framed.size());
          if (attempt > 0) {
            r.shard_link_seconds[s] += injector_.BackoffSeconds(attempt);
          }
          if (batch_ctx.valid()) {
            // Modeled wire time for this delivery attempt (retries also
            // include the backoff wait that preceded them), one span per
            // attempt so retry amplification is visible in the tree.
            obs::EmitSpan(
                "network", "transfer", obs::NowNs(),
                static_cast<uint64_t>(
                    (cluster_.network.TransferSeconds(framed.size()) +
                     (attempt > 0 ? injector_.BackoffSeconds(attempt) : 0.0)) *
                    1e9),
                {{"attempt", static_cast<double>(attempt)},
                 {"bytes", static_cast<double>(framed.size())}});
          }
          if (injector_.ShouldDrop(gbatch, w, s, attempt)) {
            ++r.injected_drops;
            continue;  // Vanished in flight; the sender times out, resends.
          }
          std::vector<uint8_t> wire = framed;
          if (injector_.ShouldCorrupt(gbatch, w, s, attempt)) {
            ++r.injected_corruptions;
            injector_.Corrupt(&wire, gbatch, w, s, attempt);
          }
          // Server side: validate the frame, then decode the payload. A
          // detected corruption is NACKed and retried; the CPU spent
          // detecting it is charged to decode like any delivered message.
          task_watch.Restart();
          std::vector<uint8_t> payload;
          common::Status receive = common::UnframeMessage(wire, &payload);
          common::SparseGradient decoded;
          if (receive.ok()) {
            compress::EncodedGradient inner;
            inner.bytes = std::move(payload);
            receive = codec->Decode(inner, &decoded);
          }
          const double decode_elapsed = task_watch.Restart() / servers;
          r.decode_seconds += decode_elapsed;
          r.shard_decode_seconds[s] += decode_elapsed;
          if (!receive.ok()) continue;  // Corruption detected: retry.
          delivered = true;
          if (metrics_.enabled) accumulate_recovery(per_shard[s], decoded);
          r.decoded.insert(r.decoded.end(), decoded.begin(), decoded.end());
          break;
        }
        if (!delivered) {
          // Retry budget exhausted: the sender's final timeout closes the
          // exchange and the driver drops this worker from the batch.
          const double timeout = injector_.BackoffSeconds(attempts);
          r.shard_link_seconds[s] += timeout;
          r.retry_seconds += timeout;
          ++r.lost;
          r.contributes = false;
        }
      }
      return r;
    };

    std::vector<std::pair<size_t, size_t>> ranges;
    for (int w = 0; w < workers; ++w) {
      const size_t lo = batch_start + static_cast<size_t>(w) * shard;
      if (lo >= batch_end) break;
      ranges.emplace_back(lo, std::min(batch_end, lo + shard));
    }
    const int active_workers = static_cast<int>(ranges.size());
    if (active_workers == 0) continue;

    std::vector<WorkerResult> results(active_workers);
    if (pool_ != nullptr && active_workers > 1) {
      std::vector<common::TaskFuture<WorkerResult>> futures(active_workers);
      for (int w = 0; w < active_workers; ++w) {
        futures[w] = pool_->Submit([&run_worker, &ranges, w] {
          return run_worker(w, ranges[w].first, ranges[w].second);
        });
      }
      for (int w = 0; w < active_workers; ++w) results[w] = futures[w].Get();
    } else {
      for (int w = 0; w < active_workers; ++w) {
        results[w] = run_worker(w, ranges[w].first, ranges[w].second);
      }
    }

    // Reduce in fixed worker order so every accumulated stat is
    // independent of execution interleaving. Per-entity counters are
    // published here (not from worker threads) with the same scale
    // factors the aggregate stats use, so labeled slices reconcile with
    // EpochStats exactly (see EntityMetrics in trainer.h).
    double compute_sum = 0.0, encode_sum = 0.0, decode_sum = 0.0;
    double batch_retry_seconds = 0.0;
    uint64_t batch_bytes_up = 0;          // This batch's gather traffic.
    uint64_t batch_retransmit_bytes = 0;  // Retry amplification, this batch.
    uint64_t batch_retries = 0;
    int contributing = 0;
    std::fill(shard_gather_seconds.begin(), shard_gather_seconds.end(), 0.0);
    for (int w = 0; w < active_workers; ++w) {
      WorkerResult& r = results[w];
      SKETCHML_RETURN_IF_ERROR(r.status);
      if (r.contributes) ++contributing;
      total_nnz += static_cast<double>(r.nnz);
      compute_sum += r.compute_seconds;
      encode_sum += r.encode_seconds;
      decode_sum += r.decode_seconds;
      stats.messages += r.messages;
      for (int s = 0; s < servers; ++s) {
        if (r.shard_bytes[s] == 0) continue;
        stats.bytes_up += r.shard_bytes[s];
        batch_bytes_up += r.shard_bytes[s];
        // On the fault path the worker already modeled its link time
        // (every retransmit attempt plus backoff waits); fault-free, one
        // clean transfer of the message.
        shard_gather_seconds[s] +=
            faults ? r.shard_link_seconds[s]
                   : cluster_.network.TransferSeconds(r.shard_bytes[s]);
      }
      if (faults) {
        stats.injected_faults += r.injected_drops + r.injected_corruptions +
                                 (r.straggled ? 1 : 0) + (r.crashed ? 1 : 0);
        stats.retries += r.retries;
        stats.retransmit_bytes += r.retransmit_bytes;
        batch_retries += r.retries;
        batch_retransmit_bytes += r.retransmit_bytes;
        stats.lost_messages += r.lost;
        batch_retry_seconds += r.retry_seconds;
        if (fault_metrics_.enabled) {
          if (r.injected_drops > 0) {
            fault_metrics_.injected_drop[w].Add(
                static_cast<double>(r.injected_drops));
          }
          if (r.injected_corruptions > 0) {
            fault_metrics_.injected_corrupt[w].Add(
                static_cast<double>(r.injected_corruptions));
          }
          if (r.straggled) fault_metrics_.injected_straggle[w].Increment();
          if (r.crashed) fault_metrics_.injected_crash[w].Increment();
          if (r.retries > 0) {
            fault_metrics_.retries[w].Add(static_cast<double>(r.retries));
            fault_metrics_.retransmit_bytes[w].Add(
                static_cast<double>(r.retransmit_bytes));
          }
          if (r.lost > 0) {
            fault_metrics_.lost_messages.Add(static_cast<double>(r.lost));
          }
        }
      }
      if (metrics_.enabled) {
        metrics_.worker_compute[w].Add(r.compute_seconds / active_workers *
                                       cluster_.compute_scale);
        metrics_.worker_encode[w].Add(r.encode_seconds / active_workers *
                                      cluster_.codec_scale);
        if (sketch_metrics_.enabled) {
          // Per-batch latency distributions, recorded from this driver
          // thread only (single writer => snapshots identical across
          // --threads). Push is the worker's total modeled link time.
          sketch_metrics_.worker_compute[w].Record(
              r.compute_seconds / active_workers * cluster_.compute_scale);
          sketch_metrics_.worker_encode[w].Record(
              r.encode_seconds / active_workers * cluster_.codec_scale);
          double push_seconds = 0.0;
          for (int s = 0; s < servers; ++s) {
            if (r.shard_bytes[s] == 0) continue;
            push_seconds +=
                faults ? r.shard_link_seconds[s]
                       : cluster_.network.TransferSeconds(r.shard_bytes[s]);
          }
          sketch_metrics_.worker_push[w].Record(push_seconds);
        }
        metrics_.worker_recovery_err[w].Add(r.recovery_error_l1);
        metrics_.worker_recovery_ref[w].Add(r.recovery_ref_l1);
        for (int s = 0; s < servers; ++s) {
          if (r.shard_decode_seconds[s] > 0.0) {
            metrics_.server_decode[s].Add(r.shard_decode_seconds[s] *
                                          cluster_.codec_scale);
          }
          if (r.shard_bytes[s] > 0) {
            metrics_.server_bytes[s].Add(
                static_cast<double>(r.shard_bytes[s]));
          }
        }
      }
    }
    if (faults) {
      // Server-shard stalls: a stalled server delays the gather in flight
      // on its link (no effect on a link with no traffic this batch).
      for (int s = 0; s < servers; ++s) {
        if (shard_gather_seconds[s] > 0.0 &&
            injector_.ServerStalled(gbatch, s)) {
          shard_gather_seconds[s] += cluster_.faults.stall_seconds;
          ++stats.injected_faults;
          if (fault_metrics_.enabled) {
            fault_metrics_.injected_stall[s].Increment();
          }
        }
      }
      // Recovery decision: enough whole gradients survived to apply the
      // batch? Below min_quorum the epoch fails with a typed status; a
      // partial-but-quorate batch is applied degraded (the aggregate is
      // rescaled to the mean of the survivors below).
      if (contributing < cluster_.faults.min_quorum) {
        return common::Status::Unavailable(
            "quorum failure at batch " + std::to_string(gbatch) + ": " +
            std::to_string(contributing) + " of " +
            std::to_string(active_workers) + " workers delivered (min_quorum=" +
            std::to_string(cluster_.faults.min_quorum) + ")");
      }
      if (contributing < active_workers) ++stats.degraded_batches;
      if (fault_metrics_.enabled) {
        fault_metrics_.quorum.Set(static_cast<double>(contributing));
      }
      if (obs::TracingEnabled() && batch_retry_seconds > 0.0) {
        // Modeled recovery time (retransmits + backoff), same convention
        // as the "gather" span below. The batch span is still open on
        // this thread, so the analyzer can charge retry amplification to
        // its batch.
        obs::EmitSpan("network", "retry", obs::NowNs(),
                      static_cast<uint64_t>(batch_retry_seconds * 1e9),
                      {{"attempt", static_cast<double>(batch_retries)},
                       {"bytes", static_cast<double>(batch_retransmit_bytes)}});
      }
    }

    // Gather happens in parallel across server links: the slowest shard
    // bounds the phase.
    const double gather_seconds = *std::max_element(
        shard_gather_seconds.begin(), shard_gather_seconds.end());
    stats.network_seconds += gather_seconds;
    if (metrics_.enabled) {
      for (int s = 0; s < servers; ++s) {
        if (shard_gather_seconds[s] > 0.0) {
          metrics_.server_gather[s].Add(shard_gather_seconds[s]);
        }
      }
      if (gather_seconds > 0.0) metrics_.driver_network.Add(gather_seconds);
    }
    if (obs::TracingEnabled() && gather_seconds > 0.0) {
      // Modeled, not measured: the span's duration is what NetworkModel
      // says the gather would have taken on the simulated links.
      obs::EmitSpan("network", "gather", obs::NowNs(),
                    static_cast<uint64_t>(gather_seconds * 1e9),
                    {{"bytes", static_cast<double>(batch_bytes_up)}});
    }

    // Phase 3b: average and apply the optimizer step. Aggregation is
    // range-partitioned into key slices so it can run on the pool: a key
    // belongs to exactly one slice and its additions always happen in
    // fixed worker order inside that slice, so every float — and the
    // sorted concatenation of the ascending slices — is bit-identical
    // at any slice or thread count.
    watch.Restart();
    common::SparseGradient mean_grad;
    {
      obs::TraceSpan aggregate_span("trainer", "aggregate");
      // K-of-W degradation: a degraded batch averages over the surviving
      // workers only (quorum above guarantees contributing >= 1). Fault
      // free, contributing == active_workers and this is the usual mean.
      const double inv_workers = 1.0 / static_cast<double>(contributing);
      const auto aggregate_slice = [&](uint64_t lo, uint64_t hi) {
        std::unordered_map<uint64_t, double> sums;
        for (int w = 0; w < active_workers; ++w) {
          if (!results[w].contributes) continue;
          for (const auto& pair : results[w].decoded) {
            if (pair.key >= lo && pair.key < hi) sums[pair.key] += pair.value;
          }
        }
        common::SparseGradient slice;
        slice.reserve(sums.size());
        for (const auto& [key, value] : sums) {
          slice.push_back({key, value * inv_workers});
        }
        common::SortByKey(&slice);
        return slice;
      };
      if (pool_ != nullptr) {
        const uint64_t slices =
            std::min(dim, static_cast<uint64_t>(4 * num_threads_));
        std::vector<common::TaskFuture<common::SparseGradient>> slice_tasks;
        slice_tasks.reserve(slices);
        for (uint64_t s = 0; s < slices; ++s) {
          const uint64_t lo = dim * s / slices;
          // The last slice absorbs any stray out-of-range key, exactly as
          // the single-map path would.
          const uint64_t hi = s + 1 == slices
                                  ? std::numeric_limits<uint64_t>::max()
                                  : dim * (s + 1) / slices;
          slice_tasks.push_back(pool_->Submit(
              [&aggregate_slice, lo, hi] { return aggregate_slice(lo, hi); }));
        }
        for (auto& task : slice_tasks) {
          const common::SparseGradient slice = task.Get();
          mean_grad.insert(mean_grad.end(), slice.begin(), slice.end());
        }
      } else {
        mean_grad = aggregate_slice(0, std::numeric_limits<uint64_t>::max());
      }
    }
    {
      obs::TraceSpan update_span("trainer", "update");
      optimizer_->Apply(mean_grad);
    }
    const double update_elapsed = watch.Restart() * cluster_.codec_scale;
    stats.update_seconds += update_elapsed;
    if (metrics_.enabled && update_elapsed > 0.0) {
      metrics_.driver_update.Add(update_elapsed);
    }

    // Phase 4: broadcast the aggregated update, re-encoded with the same
    // codec. With sharding each server broadcasts its key range; shards
    // broadcast in parallel so the slowest bounds the phase.
    double slowest_broadcast = 0.0;
    double driver_encode_seconds = 0.0, driver_decode_seconds = 0.0;
    uint64_t batch_bytes_down = 0;
    {
      obs::TraceSpan broadcast_span("trainer", "broadcast");
      std::vector<common::SparseGradient> update_shards(servers);
      if (servers == 1) {
        update_shards[0] = std::move(mean_grad);
      } else {
        for (const auto& pair : mean_grad) {
          update_shards[shard_of(pair.key)].push_back(pair);
        }
      }
      for (int s = 0; s < servers; ++s) {
        if (update_shards[s].empty()) continue;
        watch.Restart();
        compress::EncodedGradient update_msg;
        SKETCHML_RETURN_IF_ERROR(
            codec_->Encode(update_shards[s], &update_msg));
        const double broadcast_encode = watch.Restart() / servers;
        encode_sum += broadcast_encode;
        driver_encode_seconds += broadcast_encode;

        stats.bytes_down +=
            static_cast<uint64_t>(update_msg.size()) * active_workers;
        batch_bytes_down +=
            static_cast<uint64_t>(update_msg.size()) * active_workers;
        // Spark-style torrent broadcast: the server emits the update once
        // and executors propagate copies peer-to-peer in parallel, so the
        // critical path is ~2 link traversals regardless of W (the gather
        // path above, by contrast, really does serialize W messages
        // through each server's NIC).
        slowest_broadcast = std::max(
            slowest_broadcast,
            2.0 * cluster_.network.TransferSeconds(update_msg.size()));

        watch.Restart();
        common::SparseGradient worker_copy;
        SKETCHML_RETURN_IF_ERROR(codec_->Decode(update_msg, &worker_copy));
        const double broadcast_decode = watch.Restart();
        decode_sum += broadcast_decode;  // One decode: workers parallel.
        driver_decode_seconds += broadcast_decode;
      }
    }
    stats.network_seconds += slowest_broadcast;
    if (metrics_.enabled) {
      // The broadcast encode/decode run on the driver; charge them with
      // the same factors the aggregate stats apply below so
      //   encode = Σ worker{encode} + driver{encode}   (and likewise
      // decode over server + driver slices) reconciles exactly.
      if (driver_encode_seconds > 0.0) {
        metrics_.driver_encode.Add(driver_encode_seconds / active_workers *
                                   cluster_.codec_scale);
      }
      if (driver_decode_seconds > 0.0) {
        metrics_.driver_decode.Add(driver_decode_seconds *
                                   cluster_.codec_scale);
      }
      if (slowest_broadcast > 0.0) {
        metrics_.driver_network.Add(slowest_broadcast);
      }
    }
    if (obs::TracingEnabled() && slowest_broadcast > 0.0) {
      // Modeled torrent-broadcast time, same convention as "gather".
      obs::EmitSpan("network", "broadcast", obs::NowNs(),
                    static_cast<uint64_t>(slowest_broadcast * 1e9),
                    {{"bytes", static_cast<double>(batch_bytes_down)}});
    }

    // Workers compute/encode in parallel: charge the mean per worker.
    stats.compute_seconds +=
        compute_sum / active_workers * cluster_.compute_scale;
    stats.encode_seconds +=
        encode_sum / active_workers * cluster_.codec_scale;
    stats.decode_seconds += decode_sum * cluster_.codec_scale;
    ++stats.num_batches;
    // Global batch index: the injector keys every decision on it, so the
    // fault sequence is a function of (plan seed, lifetime batch number)
    // and replays identically across epochs and thread counts.
    ++batches_run_;
  }

  stats.avg_gradient_nnz =
      stats.messages > 0 ? total_nnz / static_cast<double>(stats.messages)
                         : 0.0;
  stats.train_loss = ml::ComputeMeanLoss(*loss_, optimizer_->weights(),
                                         *train_, config_.lambda);
  if (test_ != nullptr && config_.evaluate_test_loss) {
    stats.test_loss =
        ml::ComputeMeanLoss(*loss_, optimizer_->weights(), *test_, 0.0);
  }
  simulated_seconds_ += stats.TotalSeconds();

  // Epoch-boundary cross-node telemetry aggregation: serialize each
  // worker's window tail, merge it into the cluster-wide slot (KLL
  // mergeability as the aggregation primitive), then retire everyone's
  // window into the ring. Payload sizes are counted in telemetry/*
  // only — never charged to the NetworkModel — so enabling metrics
  // cannot perturb the modeled timings or the training output.
  if (sketch_metrics_.enabled) {
    auto& sketches = obs::SketchHistogramRegistry::Global();
    const struct {
      const std::vector<obs::SketchHistogram>* workers;
      const obs::SketchHistogram* cluster;
    } lanes[] = {
        {&sketch_metrics_.worker_compute, &sketch_metrics_.cluster_compute},
        {&sketch_metrics_.worker_encode, &sketch_metrics_.cluster_encode},
        {&sketch_metrics_.worker_push, &sketch_metrics_.cluster_push},
    };
    for (const auto& lane : lanes) {
      for (const obs::SketchHistogram& worker_sketch : *lane.workers) {
        const std::vector<uint8_t> payload =
            sketches.SerializeTail(worker_sketch);
        if (payload.empty()) continue;
        sketch_metrics_.merges.Increment();
        sketch_metrics_.merge_bytes.Add(static_cast<double>(payload.size()));
        const common::Status merged = sketches.MergeSerialized(
            *lane.cluster, payload.data(), payload.size());
        if (!merged.ok()) {
          SKETCHML_LOG(Warning)
              << "telemetry sketch merge failed: " << merged.ToString();
        }
      }
    }
    sketches.AdvanceWindows();
  }

  PublishEpochStats(stats);
  return stats;
}

common::Result<std::vector<EpochStats>> DistributedTrainer::Run(int epochs) {
  std::vector<EpochStats> all;
  all.reserve(epochs);
  for (int e = 0; e < epochs; ++e) {
    SKETCHML_ASSIGN_OR_RETURN(EpochStats stats, RunEpoch());
    all.push_back(stats);
  }
  return all;
}

}  // namespace sketchml::dist
