#include "dist/trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "compress/raw_codec.h"
#include "ml/gradient.h"

namespace sketchml::dist {

DistributedTrainer::DistributedTrainer(
    const ml::Dataset* train, const ml::Dataset* test, const ml::Loss* loss,
    std::unique_ptr<compress::GradientCodec> codec,
    const ClusterConfig& cluster, const TrainerConfig& config)
    : train_(train),
      test_(test),
      loss_(loss),
      codec_(std::move(codec)),
      cluster_(cluster),
      config_(config) {
  SKETCHML_CHECK(train != nullptr);
  SKETCHML_CHECK(loss != nullptr);
  SKETCHML_CHECK_GT(cluster.num_workers, 0);
  SKETCHML_CHECK_GT(cluster.num_servers, 0);
  if (codec_ == nullptr) {
    codec_ = std::make_unique<compress::RawCodec>();
  }
  if (config_.use_adam) {
    optimizer_ = std::make_unique<ml::AdamOptimizer>(
        train->dim(), config_.learning_rate, 0.9, 0.999,
        config_.adam_epsilon);
  } else {
    optimizer_ = std::make_unique<ml::SgdOptimizer>(train->dim(),
                                                    config_.learning_rate);
  }
}

common::Result<EpochStats> DistributedTrainer::RunEpoch() {
  const size_t n = train_->size();
  const size_t batch_size = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n) * config_.batch_ratio));
  const int workers = cluster_.num_workers;
  const int servers = cluster_.num_servers;
  const uint64_t dim = std::max<uint64_t>(1, train_->dim());

  // Key-range shard of a gradient key (identity when servers == 1).
  const auto shard_of = [&](uint64_t key) {
    return static_cast<int>(key * static_cast<uint64_t>(servers) / dim);
  };

  EpochStats stats;
  stats.epoch = ++epochs_run_;
  double total_nnz = 0.0;

  common::Stopwatch watch;
  std::vector<double> shard_gather_seconds(servers);
  for (size_t batch_start = 0; batch_start < n; batch_start += batch_size) {
    const size_t batch_end = std::min(n, batch_start + batch_size);
    const size_t batch_count = batch_end - batch_start;
    const size_t shard =
        std::max<size_t>(1, (batch_count + workers - 1) / workers);

    // Phase 1+2: each executor computes its mini-gradient, splits it by
    // server shard, and encodes one message per shard.
    std::unordered_map<uint64_t, double> aggregate;
    int active_workers = 0;
    double compute_sum = 0.0, encode_sum = 0.0, decode_sum = 0.0;
    std::fill(shard_gather_seconds.begin(), shard_gather_seconds.end(), 0.0);
    for (int w = 0; w < workers; ++w) {
      const size_t lo = batch_start + static_cast<size_t>(w) * shard;
      if (lo >= batch_end) break;
      const size_t hi = std::min(batch_end, lo + shard);
      ++active_workers;

      watch.Restart();
      common::SparseGradient grad = ml::ComputeBatchGradient(
          *loss_, optimizer_->weights(), *train_, lo, hi, config_.lambda);
      compute_sum += watch.ElapsedSeconds();
      total_nnz += static_cast<double>(grad.size());

      // Partition by server shard (a single pass: keys are sorted and
      // shard ranges are contiguous).
      std::vector<common::SparseGradient> per_shard(servers);
      if (servers == 1) {
        per_shard[0] = std::move(grad);
      } else {
        for (const auto& pair : grad) {
          per_shard[shard_of(pair.key)].push_back(pair);
        }
      }

      for (int s = 0; s < servers; ++s) {
        if (per_shard[s].empty()) continue;
        watch.Restart();
        compress::EncodedGradient msg;
        SKETCHML_RETURN_IF_ERROR(codec_->Encode(per_shard[s], &msg));
        encode_sum += watch.ElapsedSeconds();

        stats.bytes_up += msg.size();
        ++stats.messages;
        shard_gather_seconds[s] +=
            cluster_.network.TransferSeconds(msg.size());

        // Phase 3a: the owning server decodes (serial per server, but
        // servers run in parallel — approximate with the sum / servers).
        watch.Restart();
        common::SparseGradient decoded;
        SKETCHML_RETURN_IF_ERROR(codec_->Decode(msg, &decoded));
        decode_sum += watch.ElapsedSeconds() / servers;

        for (const auto& pair : decoded) aggregate[pair.key] += pair.value;
      }
    }
    if (active_workers == 0) continue;
    // Gather happens in parallel across server links: the slowest shard
    // bounds the phase.
    stats.network_seconds += *std::max_element(shard_gather_seconds.begin(),
                                               shard_gather_seconds.end());

    // Phase 3b: average and apply the optimizer step.
    watch.Restart();
    common::SparseGradient mean_grad;
    mean_grad.reserve(aggregate.size());
    const double inv_workers = 1.0 / static_cast<double>(active_workers);
    for (const auto& [key, value] : aggregate) {
      mean_grad.push_back({key, value * inv_workers});
    }
    common::SortByKey(&mean_grad);
    optimizer_->Apply(mean_grad);
    stats.update_seconds += watch.ElapsedSeconds() * cluster_.codec_scale;

    // Phase 4: broadcast the aggregated update, re-encoded with the same
    // codec. With sharding each server broadcasts its key range; shards
    // broadcast in parallel so the slowest bounds the phase.
    double slowest_broadcast = 0.0;
    std::vector<common::SparseGradient> update_shards(servers);
    if (servers == 1) {
      update_shards[0] = std::move(mean_grad);
    } else {
      for (const auto& pair : mean_grad) {
        update_shards[shard_of(pair.key)].push_back(pair);
      }
    }
    for (int s = 0; s < servers; ++s) {
      if (update_shards[s].empty()) continue;
      watch.Restart();
      compress::EncodedGradient update_msg;
      SKETCHML_RETURN_IF_ERROR(codec_->Encode(update_shards[s], &update_msg));
      encode_sum += watch.ElapsedSeconds() / servers;

      stats.bytes_down +=
          static_cast<uint64_t>(update_msg.size()) * active_workers;
      // Spark-style torrent broadcast: the server emits the update once
      // and executors propagate copies peer-to-peer in parallel, so the
      // critical path is ~2 link traversals regardless of W (the gather
      // path above, by contrast, really does serialize W messages
      // through each server's NIC).
      slowest_broadcast = std::max(
          slowest_broadcast,
          2.0 * cluster_.network.TransferSeconds(update_msg.size()));

      watch.Restart();
      common::SparseGradient worker_copy;
      SKETCHML_RETURN_IF_ERROR(codec_->Decode(update_msg, &worker_copy));
      decode_sum += watch.ElapsedSeconds();  // One decode: workers parallel.
    }
    stats.network_seconds += slowest_broadcast;

    // Workers compute/encode in parallel: charge the mean per worker.
    stats.compute_seconds +=
        compute_sum / active_workers * cluster_.compute_scale;
    stats.encode_seconds +=
        encode_sum / active_workers * cluster_.codec_scale;
    stats.decode_seconds += decode_sum * cluster_.codec_scale;
    ++stats.num_batches;
  }

  stats.avg_gradient_nnz =
      stats.messages > 0 ? total_nnz / static_cast<double>(stats.messages)
                         : 0.0;
  stats.train_loss = ml::ComputeMeanLoss(*loss_, optimizer_->weights(),
                                         *train_, config_.lambda);
  if (test_ != nullptr && config_.evaluate_test_loss) {
    stats.test_loss =
        ml::ComputeMeanLoss(*loss_, optimizer_->weights(), *test_, 0.0);
  }
  simulated_seconds_ += stats.TotalSeconds();
  return stats;
}

common::Result<std::vector<EpochStats>> DistributedTrainer::Run(int epochs) {
  std::vector<EpochStats> all;
  all.reserve(epochs);
  for (int e = 0; e < epochs; ++e) {
    SKETCHML_ASSIGN_OR_RETURN(EpochStats stats, RunEpoch());
    all.push_back(stats);
  }
  return all;
}

}  // namespace sketchml::dist
