#ifndef SKETCHML_DIST_TRACE_ANALYSIS_H_
#define SKETCHML_DIST_TRACE_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sketchml::dist {

/// Causal-trace analysis for `*.trace.json` files written by
/// obs::TraceLog::WriteChromeTrace. The trainer records each batch as one
/// causal tree (epoch → batch → per-worker push → compute / codec /
/// modeled transfer attempts, plus driver-side aggregate / update /
/// broadcast); this module reconstructs those trees, walks the per-epoch
/// critical path, and attributes wall time to phases — the Fig-11-style
/// breakdown the paper uses to argue compression moves the bottleneck
/// from network to compute. See docs/observability.md ("Causal tracing").

/// One "X" (complete) event parsed back from the Chrome trace.
struct TraceSpanRecord {
  std::string category;
  std::string name;
  uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::vector<std::pair<std::string, double>> args;

  double end_us() const { return ts_us + dur_us; }
  double ArgOr(std::string_view key, double default_value) const;
};

/// A fully parsed trace file.
struct ParsedTrace {
  std::vector<TraceSpanRecord> spans;  // "X" events, file order.
  uint64_t dropped_events = 0;         // Footer count (ring wraparound).
};

common::Result<ParsedTrace> ParseChromeTrace(std::string_view json_text);
common::Result<ParsedTrace> LoadChromeTrace(const std::string& path);

/// Wall-clock phase attribution. The critical-path walk partitions each
/// epoch span's duration exactly across these buckets (self-time of
/// structural spans — epoch, batch, push, broadcast — lands in `other`),
/// so their sum equals the summed epoch durations by construction.
struct PhaseAttribution {
  double compute_us = 0.0;    // ("trainer", "compute")
  double encode_us = 0.0;     // ("codec", "encode/*")
  double decode_us = 0.0;     // ("codec", "decode/*")
  double aggregate_us = 0.0;  // ("trainer", "aggregate")
  double update_us = 0.0;     // ("trainer", "update")
  double other_us = 0.0;      // Structural self-time, loss eval, misc.

  double TotalUs() const {
    return compute_us + encode_us + decode_us + aggregate_us + update_us +
           other_us;
  }
};

/// Modeled (simulated-link) time, reported beside the wall attribution:
/// these spans carry NetworkModel durations, not host wall time, so they
/// are excluded from the critical-path walk.
struct ModeledNetwork {
  double gather_us = 0.0;     // ("network", "gather"), max across links.
  double broadcast_us = 0.0;  // ("network", "broadcast").
  double retry_us = 0.0;      // ("network", "retry"): backoff + resends.
};

/// How often each worker's push chain bounded a batch (its push span was
/// the batch's latest-ending child — the straggler of that batch).
struct StragglerRow {
  int worker = -1;
  uint64_t batches_bounded = 0;
};

/// Everything `sketchml_trace` reports. Split into *structural* facts —
/// deterministic for a fixed seed at any thread count, diffed exactly by
/// the golden gate — and *timing* facts, which depend on host wall clock
/// and are ignored by the diff.
struct CriticalPathReport {
  // -- Structural ----------------------------------------------------
  uint64_t epochs = 0;          // ("trainer", "epoch") roots.
  uint64_t batches = 0;         // ("trainer", "batch") under an epoch.
  uint64_t pushes = 0;          // ("trainer", "push") spans.
  uint64_t transfers = 0;       // ("network", "transfer") attempts.
  uint64_t retry_attempts = 0;  // Transfers with attempt >= 1.
  uint64_t retry_spans = 0;     // ("network", "retry") batch summaries.
  uint64_t orphan_spans = 0;    // parent_span_id references a missing span.
  uint64_t multi_root_traces = 0;  // trace_ids with more than one root.
  uint64_t bytes_up = 0;            // Σ gather span "bytes".
  uint64_t bytes_down = 0;          // Σ broadcast span "bytes".
  uint64_t first_attempt_bytes = 0;  // Σ transfer bytes, attempt == 0.
  uint64_t retransmit_bytes = 0;     // Σ transfer bytes, attempt >= 1.
  // Span counts per category, sorted by category name.
  std::vector<std::pair<std::string, uint64_t>> spans_by_category;

  // -- Timing --------------------------------------------------------
  double epoch_total_us = 0.0;  // Σ epoch span durations.
  PhaseAttribution attribution;
  ModeledNetwork modeled;
  std::vector<StragglerRow> stragglers;  // Descending batches_bounded.

  uint64_t dropped_events = 0;

  /// Retransmitted / first-attempt bytes (0 when no retries): how much
  /// extra traffic the fault layer's retries injected.
  double RetryAmplification() const {
    return first_attempt_bytes == 0
               ? 0.0
               : static_cast<double>(retransmit_bytes) /
                     static_cast<double>(first_attempt_bytes);
  }
};

/// Reconstructs the causal trees and builds the report. Fails on a trace
/// with no epoch span (nothing to attribute). A trace with dropped
/// events still analyzes — the caller decides whether that is fatal (the
/// CLI refuses unless --allow-dropped).
common::Result<CriticalPathReport> AnalyzeTrace(const ParsedTrace& trace);

/// Human-readable rendering (the Fig-11-style table the CLI prints).
std::string RenderCriticalPathReport(const CriticalPathReport& report);

/// JSON rendering with separate "structural" / "timing" sections, for
/// golden snapshots and A/B diffing.
std::string CriticalPathReportToJson(const CriticalPathReport& report);

/// Compares the "structural" sections of two report JSON documents
/// (golden vs candidate) field-by-field, exactly; "timing" is ignored.
/// Returns the human-readable mismatch list (empty = structurally
/// identical).
common::Result<std::vector<std::string>> DiffStructuralJson(
    std::string_view golden_json, std::string_view candidate_json);

}  // namespace sketchml::dist

#endif  // SKETCHML_DIST_TRACE_ANALYSIS_H_
