#ifndef SKETCHML_DIST_NETWORK_MODEL_H_
#define SKETCHML_DIST_NETWORK_MODEL_H_

#include <cstddef>

#include "common/logging.h"
#include "common/status.h"

namespace sketchml::dist {

/// Linear cost model for moving bytes over one network link.
///
/// This is the substitution for the paper's physical clusters (§4.1): we
/// serialize real messages and convert their exact byte counts into
/// seconds with `latency + bytes / effective_bandwidth`. A switch- or
/// driver-bottlenecked cluster obeys exactly this model, so relative
/// speedups (who wins, by what factor, where the worker-count crossover
/// falls) carry over even though absolute seconds differ from Tencent's
/// hardware.
struct NetworkModel {
  double bandwidth_gbps = 1.0;     // Raw link speed, gigabits/second.
  double latency_seconds = 5e-4;   // Per-message latency.
  double congestion_factor = 1.0;  // >1: shared cluster eats bandwidth.

  /// Rejects models that would divide by zero (or produce negative
  /// seconds) in `TransferSeconds`: bandwidth and the congestion factor
  /// must be positive, latency non-negative. Checked by the trainer at
  /// construction so a bad config surfaces as InvalidArgument instead of
  /// inf/NaN epoch stats.
  common::Status Validate() const {
    if (!(bandwidth_gbps > 0.0)) {
      return common::Status::InvalidArgument(
          "NetworkModel.bandwidth_gbps must be > 0");
    }
    if (!(latency_seconds >= 0.0)) {
      return common::Status::InvalidArgument(
          "NetworkModel.latency_seconds must be >= 0");
    }
    if (!(congestion_factor > 0.0)) {
      return common::Status::InvalidArgument(
          "NetworkModel.congestion_factor must be > 0");
    }
    return common::Status::Ok();
  }

  /// Seconds to move `bytes` over this link. Precondition: `Validate()`
  /// passed (the trainer checks at construction; ad-hoc users are held to
  /// it in checked builds — a bad model yields inf/NaN seconds here).
  double TransferSeconds(size_t bytes) const {
    SKETCHML_DCHECK(Validate().ok()) << Validate().ToString();
    const double effective_bps =
        bandwidth_gbps * 1e9 / 8.0 / congestion_factor;
    return latency_seconds + static_cast<double>(bytes) / effective_bps;
  }

  /// Cluster-1 (§4.1): dedicated lab cluster, 1 Gbps Ethernet.
  static NetworkModel Lab1Gbps() { return {1.0, 5e-4, 1.0}; }

  /// Cluster-2 (§4.1): 10 Gbps but "more congested than Cluster-1 since
  /// Cluster-2 serves many applications simultaneously"; the paper notes
  /// SketchML runs *slower* there than on Cluster-1's dedicated 1 Gbps.
  /// Model the contention as a 20x effective-bandwidth haircut (~0.5
  /// Gbps), which reproduces that observation.
  static NetworkModel Congested10Gbps() { return {10.0, 1e-3, 20.0}; }

  /// Geo-distributed / WAN (§1.1 Case 3): low bandwidth, high latency.
  static NetworkModel Wan() { return {0.1, 5e-2, 1.0}; }

  /// Rescales `base` for a workload whose messages are `data_scale` times
  /// smaller than the paper's (the benches use ~840: 35 MB raw messages
  /// there vs ~42 KB here). Dividing bandwidth by the same factor keeps
  /// the bytes/bandwidth ratio — and therefore every relative result —
  /// intact while letting the simulation run on laptop-scale data.
  ///
  /// `latency_seconds` is deliberately NOT scaled: per-message latency is
  /// a property of the link, not of the message size, so the invariant
  ///   Scaled(base, s).TransferSeconds(bytes / s)
  ///       == base.TransferSeconds(bytes)        (exactly, in floating
  /// point, whenever bytes/s is integral) holds — a scaled-down message
  /// over the scaled-down link costs the same seconds as the full-size
  /// message over the real link. Scaling latency too would double-charge
  /// the fixed per-message cost. Pinned by NetworkModelScaled tests.
  static NetworkModel Scaled(const NetworkModel& base, double data_scale) {
    NetworkModel scaled = base;
    scaled.bandwidth_gbps = base.bandwidth_gbps / data_scale;
    return scaled;
  }
};

}  // namespace sketchml::dist

#endif  // SKETCHML_DIST_NETWORK_MODEL_H_
