#ifndef SKETCHML_COMPRESS_QSGD_CODEC_H_
#define SKETCHML_COMPRESS_QSGD_CODEC_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "compress/codec.h"

namespace sketchml::compress {

/// QSGD-style randomized quantization (Alistarh et al. [5], cited by the
/// paper as the theory behind lossy gradient quantization).
///
/// Each value v is encoded as sign(v) and a stochastic level
/// l ∈ {0..s} with E[l/s * ||g||_2] = |v|: quantization is unbiased and
/// the variance is bounded by min(d/s^2, sqrt(d)/s) ||g||^2 (the bound
/// Appendix A.1 compares against). Levels concentrate at 0 for small
/// gradients, so they compress well; we store them with Elias-gamma
/// bit codes as the QSGD paper proposes. Keys stay 4-byte ints (QSGD,
/// like ZipML, targets dense vectors).
class QsgdCodec : public GradientCodec {
 public:
  /// `levels` is the paper's s (quantization levels per sign).
  explicit QsgdCodec(int levels = 255, uint64_t seed = 19);

  std::string Name() const override { return "qsgd"; }
  bool IsLossless() const override { return false; }

  /// Fresh instance on a decorrelated seed lane (see common::LaneSeed).
  std::unique_ptr<GradientCodec> Fork(uint64_t lane) const override {
    return std::make_unique<QsgdCodec>(levels_, common::LaneSeed(seed_, lane));
  }

  /// Stream state is the stochastic-rounding RNG's position: restoring
  /// it makes the instance draw the exact levels the original would.
  void SaveState(common::ByteWriter* writer) const override {
    uint64_t state[common::Rng::kStateWords];
    rng_.SaveState(state);
    for (uint64_t word : state) writer->WriteU64(word);
  }
  [[nodiscard]] common::Status RestoreState(
      common::ByteReader* reader) override {
    uint64_t state[common::Rng::kStateWords];
    for (auto& word : state) SKETCHML_RETURN_IF_ERROR(reader->ReadU64(&word));
    rng_.RestoreState(state);
    return common::Status::Ok();
  }

  int levels() const { return levels_; }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            EncodedGradient* out) override;
  common::Status DecodeImpl(const EncodedGradient& in,
                            common::SparseGradient* out) override;

 private:
  int levels_;
  uint64_t seed_;
  common::Rng rng_;
};

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_QSGD_CODEC_H_
