#include "compress/codec.h"

namespace sketchml::compress {

common::Status ValidateEncodable(const common::SparseGradient& grad) {
  if (!common::IsSortedByKey(grad)) {
    return common::Status::InvalidArgument(
        "gradient keys must be strictly increasing; call SortByKey first");
  }
  return common::Status::Ok();
}

}  // namespace sketchml::compress
