#include "compress/codec.h"

#include "common/obs.h"
#include "common/trace.h"

namespace sketchml::compress {

common::Status ValidateEncodable(const common::SparseGradient& grad) {
  if (!common::IsSortedByKey(grad)) {
    return common::Status::InvalidArgument(
        "gradient keys must be strictly increasing; call SortByKey first");
  }
  return common::Status::Ok();
}

GradientCodec::Instruments& GradientCodec::GetInstruments() {
  if (!instruments_.initialized) {
    const std::string name = Name();
    const std::string prefix = "codec/" + name + "/";
    auto& registry = obs::MetricsRegistry::Global();
    instruments_.encode_span_name = "encode/" + name;
    instruments_.decode_span_name = "decode/" + name;
    instruments_.encode_calls = registry.GetCounter(prefix + "encode_calls");
    instruments_.encode_pairs = registry.GetCounter(prefix + "encode_pairs");
    instruments_.encode_bytes = registry.GetCounter(prefix + "encode_bytes");
    instruments_.raw_bytes = registry.GetCounter(prefix + "raw_bytes");
    instruments_.encode_errors = registry.GetCounter(prefix + "encode_errors");
    instruments_.decode_calls = registry.GetCounter(prefix + "decode_calls");
    instruments_.decode_pairs = registry.GetCounter(prefix + "decode_pairs");
    instruments_.decode_bytes = registry.GetCounter(prefix + "decode_bytes");
    instruments_.decode_errors = registry.GetCounter(prefix + "decode_errors");
    instruments_.encode_ns = registry.GetHistogram(prefix + "encode_ns");
    instruments_.decode_ns = registry.GetHistogram(prefix + "decode_ns");
    instruments_.message_bytes =
        registry.GetHistogram(prefix + "message_bytes");
    instruments_.initialized = true;
  }
  return instruments_;
}

common::Status GradientCodec::Encode(const common::SparseGradient& grad,
                                     EncodedGradient* out) {
  SKETCHML_RETURN_IF_ERROR(ValidateEncodable(grad));
  if (!obs::MetricsEnabled() && !obs::TracingEnabled()) {
    return EncodeImpl(grad, out);
  }

  Instruments& ins = GetInstruments();
  obs::TraceSpan span("codec", ins.encode_span_name);
  const uint64_t start_ns = obs::NowNs();
  const common::Status status = EncodeImpl(grad, out);
  const uint64_t elapsed_ns = obs::NowNs() - start_ns;

  span.Arg("pairs", static_cast<double>(grad.size()));
  if (!status.ok()) {
    ins.encode_errors.Increment();
    return status;
  }
  span.Arg("bytes", static_cast<double>(out->size()));
  ins.encode_calls.Increment();
  ins.encode_pairs.Add(static_cast<double>(grad.size()));
  ins.encode_bytes.Add(static_cast<double>(out->size()));
  // Uncompressed size of the same message (16 bytes per key/value pair):
  // raw_bytes / encode_bytes is the codec's measured compression ratio.
  ins.raw_bytes.Add(
      static_cast<double>(grad.size() * sizeof(common::GradientPair)));
  ins.encode_ns.Record(static_cast<double>(elapsed_ns));
  ins.message_bytes.Record(static_cast<double>(out->size()));
  return status;
}

common::Status GradientCodec::Decode(const EncodedGradient& in,
                                     common::SparseGradient* out) {
  if (!obs::MetricsEnabled() && !obs::TracingEnabled()) {
    return DecodeImpl(in, out);
  }

  Instruments& ins = GetInstruments();
  obs::TraceSpan span("codec", ins.decode_span_name);
  const uint64_t start_ns = obs::NowNs();
  const common::Status status = DecodeImpl(in, out);
  const uint64_t elapsed_ns = obs::NowNs() - start_ns;

  span.Arg("bytes", static_cast<double>(in.size()));
  if (!status.ok()) {
    ins.decode_errors.Increment();
    return status;
  }
  span.Arg("pairs", static_cast<double>(out->size()));
  ins.decode_calls.Increment();
  ins.decode_bytes.Add(static_cast<double>(in.size()));
  ins.decode_pairs.Add(static_cast<double>(out->size()));
  ins.decode_ns.Record(static_cast<double>(elapsed_ns));
  return status;
}

}  // namespace sketchml::compress
