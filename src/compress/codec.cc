#include "compress/codec.h"

#include "common/obs.h"
#include "common/trace.h"

namespace sketchml::compress {

common::Status ValidateEncodable(const common::SparseGradient& grad) {
  if (!common::IsSortedByKey(grad)) {
    return common::Status::InvalidArgument(
        "gradient keys must be strictly increasing; call SortByKey first");
  }
  return common::Status::Ok();
}

void GradientCodec::SetMetricLabel(std::string_view key,
                                   std::string_view value) {
  for (auto& [k, v] : metric_labels_) {
    if (k == key) {
      v = std::string(value);
      instruments_.initialized = false;  // Re-resolve on next use.
      return;
    }
  }
  metric_labels_.emplace_back(std::string(key), std::string(value));
  instruments_.initialized = false;
}

GradientCodec::Instruments& GradientCodec::GetInstruments() {
  if (!instruments_.initialized) {
    const std::string name = Name();
    // Identity label first, then any caller-attached labels (worker=w).
    obs::MetricLabels labels{{"codec", name}};
    labels.insert(labels.end(), metric_labels_.begin(), metric_labels_.end());
    auto& registry = obs::MetricsRegistry::Global();
    instruments_.encode_span_name = "encode/" + name;
    instruments_.decode_span_name = "decode/" + name;
    const auto counter = [&](const char* field) {
      return registry.GetCounter(std::string("codec/") + field, labels);
    };
    const auto histogram = [&](const char* field) {
      return registry.GetHistogram(std::string("codec/") + field, labels);
    };
    instruments_.encode_calls = counter("encode_calls");
    instruments_.encode_pairs = counter("encode_pairs");
    instruments_.encode_bytes = counter("encode_bytes");
    instruments_.raw_bytes = counter("raw_bytes");
    instruments_.encode_errors = counter("encode_errors");
    instruments_.decode_calls = counter("decode_calls");
    instruments_.decode_pairs = counter("decode_pairs");
    instruments_.decode_bytes = counter("decode_bytes");
    instruments_.decode_errors = counter("decode_errors");
    instruments_.encode_ns = histogram("encode_ns");
    instruments_.decode_ns = histogram("decode_ns");
    instruments_.message_bytes = histogram("message_bytes");
    instruments_.initialized = true;
  }
  return instruments_;
}

common::Status GradientCodec::Encode(const common::SparseGradient& grad,
                                     EncodedGradient* out) {
  SKETCHML_RETURN_IF_ERROR(ValidateEncodable(grad));
  if (!obs::MetricsEnabled() && !obs::TracingEnabled()) {
    return EncodeImpl(grad, out);
  }

  Instruments& ins = GetInstruments();
  obs::TraceSpan span("codec", ins.encode_span_name);
  const uint64_t start_ns = obs::NowNs();
  const common::Status status = EncodeImpl(grad, out);
  const uint64_t elapsed_ns = obs::NowNs() - start_ns;

  span.Arg("pairs", static_cast<double>(grad.size()));
  if (!status.ok()) {
    ins.encode_errors.Increment();
    return status;
  }
  span.Arg("bytes", static_cast<double>(out->size()));
  ins.encode_calls.Increment();
  ins.encode_pairs.Add(static_cast<double>(grad.size()));
  ins.encode_bytes.Add(static_cast<double>(out->size()));
  // Uncompressed size of the same message (16 bytes per key/value pair):
  // raw_bytes / encode_bytes is the codec's measured compression ratio.
  ins.raw_bytes.Add(
      static_cast<double>(grad.size() * sizeof(common::GradientPair)));
  ins.encode_ns.Record(static_cast<double>(elapsed_ns));
  ins.message_bytes.Record(static_cast<double>(out->size()));
  return status;
}

common::Status GradientCodec::Decode(const EncodedGradient& in,
                                     common::SparseGradient* out) {
  if (!obs::MetricsEnabled() && !obs::TracingEnabled()) {
    return DecodeImpl(in, out);
  }

  Instruments& ins = GetInstruments();
  obs::TraceSpan span("codec", ins.decode_span_name);
  const uint64_t start_ns = obs::NowNs();
  const common::Status status = DecodeImpl(in, out);
  const uint64_t elapsed_ns = obs::NowNs() - start_ns;

  span.Arg("bytes", static_cast<double>(in.size()));
  if (!status.ok()) {
    ins.decode_errors.Increment();
    return status;
  }
  span.Arg("pairs", static_cast<double>(out->size()));
  ins.decode_calls.Increment();
  ins.decode_bytes.Add(static_cast<double>(in.size()));
  ins.decode_pairs.Add(static_cast<double>(out->size()));
  ins.decode_ns.Record(static_cast<double>(elapsed_ns));
  return status;
}

}  // namespace sketchml::compress
