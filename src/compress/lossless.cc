#include "compress/lossless.h"

#include <algorithm>
#include <queue>
#include <tuple>
#include <utility>

#include "common/byte_buffer.h"
#include "compress/raw_codec.h"

namespace sketchml::compress {
namespace {

constexpr int kAlphabet = 256;
// Max depth of a Huffman tree over N bytes is ~1.44 log2(N); 57 covers
// any realistic buffer and keeps the 64-bit encode accumulator safe.
constexpr int kMaxCodeLength = 57;

/// Computes Huffman code lengths for the byte frequencies in `freq`.
/// Symbols with zero frequency get length 0 (no code).
std::vector<uint8_t> CodeLengths(const std::vector<uint64_t>& freq) {
  struct Node {
    uint64_t weight;
    int index;  // < kAlphabet: leaf symbol; otherwise internal.
    int left = -1, right = -1;
  };
  std::vector<Node> nodes;
  using Entry = std::pair<uint64_t, int>;  // (weight, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int s = 0; s < kAlphabet; ++s) {
    if (freq[s] > 0) {
      nodes.push_back({freq[s], s});
      heap.emplace(freq[s], static_cast<int>(nodes.size()) - 1);
    }
  }
  std::vector<uint8_t> lengths(kAlphabet, 0);
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    lengths[nodes[0].index] = 1;  // Degenerate: one distinct byte.
    return lengths;
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, kAlphabet, a, b});
    heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
  }
  // Depth-first assignment of depths to leaves.
  std::vector<std::pair<int, int>> stack = {{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[idx];
    if (node.index < kAlphabet) {
      lengths[node.index] =
          static_cast<uint8_t>(std::min(depth, kMaxCodeLength));
      continue;
    }
    stack.emplace_back(node.left, depth + 1);
    stack.emplace_back(node.right, depth + 1);
  }
  return lengths;
}

/// Canonical codes from lengths: symbols sorted by (length, value).
void CanonicalCodes(const std::vector<uint8_t>& lengths,
                    std::vector<uint64_t>* codes) {
  codes->assign(kAlphabet, 0);
  std::vector<int> symbols;
  for (int s = 0; s < kAlphabet; ++s) {
    if (lengths[s] > 0) symbols.push_back(s);
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    return std::tie(lengths[a], a) < std::tie(lengths[b], b);
  });
  uint64_t code = 0;
  int previous_length = 0;
  for (int s : symbols) {
    code <<= (lengths[s] - previous_length);
    (*codes)[s] = code;
    ++code;
    previous_length = lengths[s];
  }
}

}  // namespace

void HuffmanByteCoder::Encode(const std::vector<uint8_t>& input,
                              std::vector<uint8_t>* out) {
  common::ByteWriter writer(input.size() + kAlphabet + 16);
  writer.WriteVarint(input.size());

  std::vector<uint64_t> freq(kAlphabet, 0);
  for (uint8_t b : input) ++freq[b];
  const std::vector<uint8_t> lengths = CodeLengths(freq);
  for (int s = 0; s < kAlphabet; ++s) writer.WriteU8(lengths[s]);

  std::vector<uint64_t> codes;
  CanonicalCodes(lengths, &codes);

  // MSB-first bit packing.
  uint64_t bit_buffer = 0;
  int bit_count = 0;
  for (uint8_t b : input) {
    bit_buffer = (bit_buffer << lengths[b]) | codes[b];
    bit_count += lengths[b];
    while (bit_count >= 8) {
      bit_count -= 8;
      writer.WriteU8(static_cast<uint8_t>(bit_buffer >> bit_count));
    }
  }
  if (bit_count > 0) {
    writer.WriteU8(static_cast<uint8_t>(bit_buffer << (8 - bit_count)));
  }
  *out = writer.TakeBuffer();
}

common::Status HuffmanByteCoder::Decode(const std::vector<uint8_t>& input,
                                        std::vector<uint8_t>* out) {
  common::ByteReader reader(input);
  uint64_t original_size = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&original_size));
  // A Huffman code emits at least 1 bit per symbol.
  if (original_size / 8 > input.size()) {
    return common::Status::CorruptedData("implausible decoded size");
  }
  std::vector<uint8_t> lengths(kAlphabet);
  SKETCHML_RETURN_IF_ERROR(reader.ReadRaw(lengths.data(), kAlphabet));
  for (uint8_t len : lengths) {
    if (len > kMaxCodeLength) {
      return common::Status::CorruptedData("code length too large");
    }
  }
  std::vector<uint64_t> codes;
  CanonicalCodes(lengths, &codes);

  // Slow-but-simple canonical decoding: grow the candidate code bit by
  // bit and match (code, length) pairs via a per-length lookup.
  struct LengthGroup {
    uint64_t first_code = 0;
    std::vector<int> symbols;  // In canonical order within this length.
  };
  std::vector<LengthGroup> groups(kMaxCodeLength + 1);
  {
    std::vector<int> symbols;
    for (int s = 0; s < kAlphabet; ++s) {
      if (lengths[s] > 0) symbols.push_back(s);
    }
    std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
      return std::tie(lengths[a], a) < std::tie(lengths[b], b);
    });
    for (int s : symbols) {
      auto& group = groups[lengths[s]];
      if (group.symbols.empty()) group.first_code = codes[s];
      group.symbols.push_back(s);
    }
  }

  out->clear();
  out->reserve(original_size);
  uint64_t code = 0;
  int code_length = 0;
  uint8_t byte = 0;
  int bits_left = 0;
  while (out->size() < original_size) {
    if (bits_left == 0) {
      SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&byte));
      bits_left = 8;
    }
    code = (code << 1) | ((byte >> (bits_left - 1)) & 1);
    --bits_left;
    ++code_length;
    if (code_length > kMaxCodeLength) {
      return common::Status::CorruptedData("invalid Huffman stream");
    }
    const auto& group = groups[code_length];
    if (!group.symbols.empty() && code >= group.first_code &&
        code < group.first_code + group.symbols.size()) {
      out->push_back(
          static_cast<uint8_t>(group.symbols[code - group.first_code]));
      code = 0;
      code_length = 0;
    }
  }
  return common::Status::Ok();
}

void RunLengthByteCoder::Encode(const std::vector<uint8_t>& input,
                                std::vector<uint8_t>* out) {
  common::ByteWriter writer(input.size() * 2 + 16);
  writer.WriteVarint(input.size());
  size_t i = 0;
  while (i < input.size()) {
    const uint8_t value = input[i];
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == value && run < 255) {
      ++run;
    }
    writer.WriteU8(static_cast<uint8_t>(run));
    writer.WriteU8(value);
    i += run;
  }
  *out = writer.TakeBuffer();
}

common::Status RunLengthByteCoder::Decode(const std::vector<uint8_t>& input,
                                          std::vector<uint8_t>* out) {
  common::ByteReader reader(input);
  uint64_t original_size = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&original_size));
  // Each (run, value) pair encodes at least one byte in two.
  if (original_size > reader.remaining() * 255) {
    return common::Status::CorruptedData("implausible decoded size");
  }
  out->clear();
  out->reserve(original_size);
  while (out->size() < original_size) {
    uint8_t run = 0, value = 0;
    SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&run));
    SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&value));
    if (run == 0) return common::Status::CorruptedData("zero run length");
    if (out->size() + run > original_size) {
      return common::Status::CorruptedData("run overflows declared size");
    }
    out->insert(out->end(), run, value);
  }
  return common::Status::Ok();
}

template <typename ByteCoder>
common::Status LosslessGradientCodec<ByteCoder>::EncodeImpl(
    const common::SparseGradient& grad, EncodedGradient* out) {
  RawCodec raw(ValueType::kDouble);
  EncodedGradient raw_msg;
  SKETCHML_RETURN_IF_ERROR(raw.Encode(grad, &raw_msg));
  ByteCoder::Encode(raw_msg.bytes, &out->bytes);
  return common::Status::Ok();
}

template <typename ByteCoder>
common::Status LosslessGradientCodec<ByteCoder>::DecodeImpl(
    const EncodedGradient& in, common::SparseGradient* out) {
  EncodedGradient raw_msg;
  SKETCHML_RETURN_IF_ERROR(ByteCoder::Decode(in.bytes, &raw_msg.bytes));
  RawCodec raw(ValueType::kDouble);
  return raw.Decode(raw_msg, out);
}

template class LosslessGradientCodec<HuffmanByteCoder>;
template class LosslessGradientCodec<RunLengthByteCoder>;

}  // namespace sketchml::compress
