#include "compress/checksummed_codec.h"

#include "common/byte_buffer.h"
#include "common/crc32.h"

namespace sketchml::compress {

common::Status ChecksummedCodec::EncodeImpl(const common::SparseGradient& grad,
                                            EncodedGradient* out) {
  EncodedGradient inner_msg;
  SKETCHML_RETURN_IF_ERROR(inner_->Encode(grad, &inner_msg));
  const uint32_t crc = common::Crc32(inner_msg.bytes);
  const uint32_t length = static_cast<uint32_t>(inner_msg.bytes.size());
  common::ByteWriter writer(inner_msg.bytes.size() + 8);
  writer.WriteBytes(inner_msg.bytes);
  writer.WriteU32(length);
  writer.WriteU32(crc);
  out->bytes = writer.TakeBuffer();
  return common::Status::Ok();
}

common::Status ChecksummedCodec::DecodeImpl(const EncodedGradient& in,
                                            common::SparseGradient* out) {
  if (in.bytes.size() < 8) {
    return common::Status::CorruptedData("message shorter than CRC frame");
  }
  const size_t payload_len = in.bytes.size() - 8;
  common::ByteReader footer(in.bytes.data() + payload_len, 8);
  uint32_t length = 0, crc = 0;
  SKETCHML_RETURN_IF_ERROR(footer.ReadU32(&length));
  SKETCHML_RETURN_IF_ERROR(footer.ReadU32(&crc));
  if (length != payload_len) {
    return common::Status::CorruptedData("CRC frame length mismatch");
  }
  if (common::Crc32(in.bytes.data(), payload_len) != crc) {
    return common::Status::CorruptedData("CRC mismatch");
  }
  EncodedGradient inner_msg;
  inner_msg.bytes.assign(in.bytes.begin(), in.bytes.begin() + payload_len);
  return inner_->Decode(inner_msg, out);
}

}  // namespace sketchml::compress
