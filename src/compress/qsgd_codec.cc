#include "compress/qsgd_codec.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/bit_util.h"
#include "common/byte_buffer.h"
#include "common/logging.h"

namespace sketchml::compress {
namespace {

/// Minimal MSB-first bit writer for the Elias-gamma level stream.
class BitWriter {
 public:
  void WriteBit(int bit) {
    if (used_ == 0) bytes_.push_back(0);
    bytes_.back() |= static_cast<uint8_t>(bit << (7 - used_));
    used_ = (used_ + 1) % 8;
  }

  /// Elias gamma for x >= 1: floor(log2 x) zero bits, then x in binary.
  void WriteEliasGamma(uint64_t x) {
    SKETCHML_CHECK_GE(x, 1u);
    const int bits = 64 - __builtin_clzll(x);
    for (int i = 0; i < bits - 1; ++i) WriteBit(0);
    for (int i = bits - 1; i >= 0; --i) WriteBit((x >> i) & 1);
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
  int used_ = 0;
};

class BitReader {
 public:
  BitReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  common::Status ReadBit(int* bit) {
    const size_t byte = pos_ / 8;
    if (byte >= len_) return common::Status::CorruptedData("bit underflow");
    *bit = (data_[byte] >> (7 - pos_ % 8)) & 1;
    ++pos_;
    return common::Status::Ok();
  }

  common::Status ReadEliasGamma(uint64_t* x) {
    int zeros = 0;
    int bit = 0;
    SKETCHML_RETURN_IF_ERROR(ReadBit(&bit));
    while (bit == 0) {
      if (++zeros > 63) return common::Status::CorruptedData("bad gamma");
      SKETCHML_RETURN_IF_ERROR(ReadBit(&bit));
    }
    uint64_t value = 1;
    for (int i = 0; i < zeros; ++i) {
      SKETCHML_RETURN_IF_ERROR(ReadBit(&bit));
      value = (value << 1) | static_cast<uint64_t>(bit);
    }
    *x = value;
    return common::Status::Ok();
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace

QsgdCodec::QsgdCodec(int levels, uint64_t seed)
    : levels_(levels), seed_(seed), rng_(seed) {
  SKETCHML_CHECK_GT(levels, 0);
}

common::Status QsgdCodec::EncodeImpl(const common::SparseGradient& grad,
                                 EncodedGradient* out) {
  common::ByteWriter writer(grad.size() * 6 + 32);
  writer.WriteVarint(grad.size());
  writer.WriteVarint(static_cast<uint64_t>(levels_));

  double norm_sq = 0.0;
  for (const auto& p : grad) norm_sq += p.value * p.value;
  const double norm = std::sqrt(norm_sq);
  writer.WriteDouble(norm);

  for (const auto& p : grad) {
    if (p.key > std::numeric_limits<uint32_t>::max()) {
      return common::Status::OutOfRange("key exceeds 32 bits");
    }
    writer.WriteU32(static_cast<uint32_t>(p.key));
  }

  // Signs, one bit per pair.
  std::vector<uint8_t> signs(common::CeilDiv(grad.size(), 8), 0);
  for (size_t i = 0; i < grad.size(); ++i) {
    if (grad[i].value >= 0) signs[i / 8] |= static_cast<uint8_t>(1 << (i % 8));
  }
  writer.WriteBytes(signs);

  // Stochastic levels, Elias-gamma coded as (level + 1).
  BitWriter bits;
  for (const auto& p : grad) {
    uint64_t level = 0;
    if (norm > 0.0) {
      const double exact = std::abs(p.value) / norm * levels_;
      const double floor_level = std::floor(exact);
      level = static_cast<uint64_t>(floor_level);
      if (rng_.NextBernoulli(exact - floor_level)) ++level;
    }
    bits.WriteEliasGamma(level + 1);
  }
  writer.WriteVarint(bits.bytes().size());
  writer.WriteBytes(bits.bytes());
  out->bytes = writer.TakeBuffer();
  return common::Status::Ok();
}

common::Status QsgdCodec::DecodeImpl(const EncodedGradient& in,
                                 common::SparseGradient* out) {
  common::ByteReader reader(in.bytes);
  uint64_t count = 0, levels = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&count));
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&levels));
  if (levels == 0 || count > in.bytes.size() / 4) {
    return common::Status::CorruptedData("implausible QSGD header");
  }
  double norm = 0.0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadDouble(&norm));

  out->assign(count, {});
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t key = 0;
    SKETCHML_RETURN_IF_ERROR(reader.ReadU32(&key));
    (*out)[i].key = key;
  }
  std::vector<uint8_t> signs(common::CeilDiv(count, 8));
  SKETCHML_RETURN_IF_ERROR(reader.ReadRaw(signs.data(), signs.size()));

  uint64_t bit_bytes = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&bit_bytes));
  if (bit_bytes > reader.remaining()) {
    return common::Status::CorruptedData("truncated QSGD level stream");
  }
  std::vector<uint8_t> bit_data(bit_bytes);
  SKETCHML_RETURN_IF_ERROR(reader.ReadRaw(bit_data.data(), bit_bytes));
  BitReader bits(bit_data.data(), bit_data.size());
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gamma = 0;
    SKETCHML_RETURN_IF_ERROR(bits.ReadEliasGamma(&gamma));
    const uint64_t level = gamma - 1;
    const double magnitude =
        norm * static_cast<double>(level) / static_cast<double>(levels);
    const bool positive = (signs[i / 8] >> (i % 8)) & 1;
    (*out)[i].value = positive ? magnitude : -magnitude;
  }
  return common::Status::Ok();
}

}  // namespace sketchml::compress
