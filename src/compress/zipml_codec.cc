#include "compress/zipml_codec.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/byte_buffer.h"
#include "common/logging.h"

namespace sketchml::compress {

ZipMlCodec::ZipMlCodec(int bits, uint64_t seed, bool stochastic_rounding)
    : bits_(bits),
      seed_(seed),
      rng_(seed),
      stochastic_rounding_(stochastic_rounding) {
  SKETCHML_CHECK(bits == 8 || bits == 16) << "ZipML supports 8 or 16 bits";
}

common::Status ZipMlCodec::EncodeImpl(const common::SparseGradient& grad,
                                  EncodedGradient* out) {
  const int value_bytes = bits_ / 8;
  common::ByteWriter writer(grad.size() * (4 + value_bytes) + 32);
  writer.WriteU8(static_cast<uint8_t>(bits_));
  writer.WriteVarint(grad.size());

  double lo = 0.0, hi = 0.0;
  if (!grad.empty()) {
    lo = hi = grad.front().value;
    for (const auto& p : grad) {
      lo = std::min(lo, p.value);
      hi = std::max(hi, p.value);
    }
  }
  writer.WriteDouble(lo);
  writer.WriteDouble(hi);

  for (const auto& p : grad) {
    if (p.key > std::numeric_limits<uint32_t>::max()) {
      return common::Status::OutOfRange("key exceeds 32 bits");
    }
    writer.WriteU32(static_cast<uint32_t>(p.key));
  }

  const uint64_t levels = (1ULL << bits_) - 1;
  const double width = hi > lo ? (hi - lo) / static_cast<double>(levels) : 0.0;
  for (const auto& p : grad) {
    uint64_t level = 0;
    if (width > 0.0) {
      const double exact = (p.value - lo) / width;
      const double floor_level = std::floor(exact);
      double chosen = floor_level;
      if (stochastic_rounding_) {
        // Round up with probability equal to the fractional part, so the
        // expected decoded value equals the input (unbiased quantizer).
        const double frac = exact - floor_level;
        if (rng_.NextBernoulli(frac)) chosen += 1.0;
      } else {
        chosen = std::round(exact);
      }
      level = static_cast<uint64_t>(
          std::clamp(chosen, 0.0, static_cast<double>(levels)));
    }
    writer.WriteUintN(level, value_bytes);
  }
  out->bytes = writer.TakeBuffer();
  return common::Status::Ok();
}

common::Status ZipMlCodec::DecodeImpl(const EncodedGradient& in,
                                  common::SparseGradient* out) {
  common::ByteReader reader(in.bytes);
  uint8_t bits = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&bits));
  if (bits != 8 && bits != 16) {
    return common::Status::CorruptedData("bad ZipML bit width");
  }
  uint64_t count = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&count));
  // Each pair takes at least 5 bytes (4-byte key + 1-byte level).
  if (count > in.bytes.size() / 5) {
    return common::Status::CorruptedData("implausible pair count");
  }
  double lo = 0.0, hi = 0.0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadDouble(&lo));
  SKETCHML_RETURN_IF_ERROR(reader.ReadDouble(&hi));

  out->assign(count, {});
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t key = 0;
    SKETCHML_RETURN_IF_ERROR(reader.ReadU32(&key));
    (*out)[i].key = key;
  }
  const uint64_t levels = (1ULL << bits) - 1;
  const double width = hi > lo ? (hi - lo) / static_cast<double>(levels) : 0.0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t level = 0;
    SKETCHML_RETURN_IF_ERROR(reader.ReadUintN(bits / 8, &level));
    (*out)[i].value = lo + static_cast<double>(level) * width;
  }
  return common::Status::Ok();
}

}  // namespace sketchml::compress
