#ifndef SKETCHML_COMPRESS_ZIPML_CODEC_H_
#define SKETCHML_COMPRESS_ZIPML_CODEC_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "compress/codec.h"

namespace sketchml::compress {

/// ZipML-style uniform fixed-point quantization [45] — the paper's main
/// lossy baseline.
///
/// The value range [min, max] of each gradient is divided into 2^bits - 1
/// equal *width* steps and every value maps to a grid level (stochastic
/// rounding keeps the quantizer unbiased, as QSGD/ZipML do). Keys are not
/// compressed (4-byte ints): ZipML was designed for dense vectors.
///
/// The failure mode SketchML exploits (§4.3): gradients concentrate near
/// zero, so with a uniform grid most values collapse onto the level
/// nearest zero, stalling convergence close to the optimum.
class ZipMlCodec : public GradientCodec {
 public:
  /// `bits` per value, 8 or 16 (Table 4 evaluates both). `seed` drives
  /// stochastic rounding; fixed seed => deterministic encoding.
  explicit ZipMlCodec(int bits = 16, uint64_t seed = 11,
                      bool stochastic_rounding = true);

  std::string Name() const override {
    return "zipml-" + std::to_string(bits_) + "bit";
  }
  bool IsLossless() const override { return false; }

  /// Fresh instance on a decorrelated seed lane (see common::LaneSeed).
  std::unique_ptr<GradientCodec> Fork(uint64_t lane) const override {
    return std::make_unique<ZipMlCodec>(bits_, common::LaneSeed(seed_, lane),
                                        stochastic_rounding_);
  }

  /// Stream state is the stochastic-rounding RNG's position (see
  /// QsgdCodec::SaveState).
  void SaveState(common::ByteWriter* writer) const override {
    uint64_t state[common::Rng::kStateWords];
    rng_.SaveState(state);
    for (uint64_t word : state) writer->WriteU64(word);
  }
  [[nodiscard]] common::Status RestoreState(
      common::ByteReader* reader) override {
    uint64_t state[common::Rng::kStateWords];
    for (auto& word : state) SKETCHML_RETURN_IF_ERROR(reader->ReadU64(&word));
    rng_.RestoreState(state);
    return common::Status::Ok();
  }

  int bits() const { return bits_; }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            EncodedGradient* out) override;
  common::Status DecodeImpl(const EncodedGradient& in,
                            common::SparseGradient* out) override;

 private:
  int bits_;
  uint64_t seed_;
  common::Rng rng_;
  bool stochastic_rounding_;
};

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_ZIPML_CODEC_H_
