#ifndef SKETCHML_COMPRESS_ONE_BIT_CODEC_H_
#define SKETCHML_COMPRESS_ONE_BIT_CODEC_H_

#include <string>

#include "compress/codec.h"

namespace sketchml::compress {

/// 1-bit SGD / threshold truncation baseline (Seide et al. [39]).
///
/// Each value is reduced to its sign bit; the decoder reconstructs
/// sign * (mean magnitude of that sign's values). The paper dismisses this
/// family as "too aggressive ... to get converged" (§1.1, §5); it is here
/// so that claim can be measured (see `theory_validation`).
class OneBitCodec : public GradientCodec {
 public:
  std::string Name() const override { return "onebit"; }
  bool IsLossless() const override { return false; }

  /// Stateless: a fork is a plain copy.
  std::unique_ptr<GradientCodec> Fork(uint64_t /*lane*/) const override {
    return std::make_unique<OneBitCodec>();
  }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            EncodedGradient* out) override;
  common::Status DecodeImpl(const EncodedGradient& in,
                            common::SparseGradient* out) override;
};

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_ONE_BIT_CODEC_H_
