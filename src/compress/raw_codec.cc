#include "compress/raw_codec.h"

#include <limits>

#include "common/byte_buffer.h"

namespace sketchml::compress {

common::Status RawCodec::EncodeImpl(const common::SparseGradient& grad,
                                EncodedGradient* out) {
  const bool is_double = value_type_ == ValueType::kDouble;
  common::ByteWriter writer(grad.size() * (is_double ? 12 : 8) + 16);
  writer.WriteU8(is_double ? 1 : 0);
  writer.WriteVarint(grad.size());
  for (const auto& pair : grad) {
    if (pair.key > std::numeric_limits<uint32_t>::max()) {
      return common::Status::OutOfRange("key exceeds 32 bits");
    }
    writer.WriteU32(static_cast<uint32_t>(pair.key));
  }
  for (const auto& pair : grad) {
    if (is_double) {
      writer.WriteDouble(pair.value);
    } else {
      writer.WriteFloat(static_cast<float>(pair.value));
    }
  }
  out->bytes = writer.TakeBuffer();
  return common::Status::Ok();
}

common::Status RawCodec::DecodeImpl(const EncodedGradient& in,
                                common::SparseGradient* out) {
  common::ByteReader reader(in.bytes);
  uint8_t is_double = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadU8(&is_double));
  uint64_t count = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&count));
  // Each pair takes at least 8 bytes on the wire; reject counts that
  // cannot fit before allocating.
  if (count > in.bytes.size() / 8) {
    return common::Status::CorruptedData("implausible pair count");
  }
  out->assign(count, {});
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t key = 0;
    SKETCHML_RETURN_IF_ERROR(reader.ReadU32(&key));
    (*out)[i].key = key;
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (is_double) {
      double v = 0;
      SKETCHML_RETURN_IF_ERROR(reader.ReadDouble(&v));
      (*out)[i].value = v;
    } else {
      float v = 0;
      SKETCHML_RETURN_IF_ERROR(reader.ReadFloat(&v));
      (*out)[i].value = v;
    }
  }
  return common::Status::Ok();
}

}  // namespace sketchml::compress
