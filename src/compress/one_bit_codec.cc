#include "compress/one_bit_codec.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/bit_util.h"
#include "common/byte_buffer.h"

namespace sketchml::compress {

common::Status OneBitCodec::EncodeImpl(const common::SparseGradient& grad,
                                   EncodedGradient* out) {
  common::ByteWriter writer(grad.size() * 5 + 32);
  writer.WriteVarint(grad.size());

  double pos_sum = 0.0, neg_sum = 0.0;
  uint64_t pos_count = 0, neg_count = 0;
  for (const auto& p : grad) {
    if (p.value >= 0) {
      pos_sum += p.value;
      ++pos_count;
    } else {
      neg_sum += -p.value;
      ++neg_count;
    }
  }
  writer.WriteDouble(pos_count > 0 ? pos_sum / pos_count : 0.0);
  writer.WriteDouble(neg_count > 0 ? neg_sum / neg_count : 0.0);

  for (const auto& p : grad) {
    if (p.key > std::numeric_limits<uint32_t>::max()) {
      return common::Status::OutOfRange("key exceeds 32 bits");
    }
    writer.WriteU32(static_cast<uint32_t>(p.key));
  }
  std::vector<uint8_t> bits(common::CeilDiv(grad.size(), 8), 0);
  for (size_t i = 0; i < grad.size(); ++i) {
    if (grad[i].value >= 0) bits[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  writer.WriteBytes(bits);
  out->bytes = writer.TakeBuffer();
  return common::Status::Ok();
}

common::Status OneBitCodec::DecodeImpl(const EncodedGradient& in,
                                   common::SparseGradient* out) {
  common::ByteReader reader(in.bytes);
  uint64_t count = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadVarint(&count));
  // Each pair takes at least 4 key bytes plus a sign bit.
  if (count > in.bytes.size() / 4) {
    return common::Status::CorruptedData("implausible pair count");
  }
  double pos_mean = 0.0, neg_mean = 0.0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadDouble(&pos_mean));
  SKETCHML_RETURN_IF_ERROR(reader.ReadDouble(&neg_mean));

  out->assign(count, {});
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t key = 0;
    SKETCHML_RETURN_IF_ERROR(reader.ReadU32(&key));
    (*out)[i].key = key;
  }
  std::vector<uint8_t> bits(common::CeilDiv(count, 8));
  SKETCHML_RETURN_IF_ERROR(reader.ReadRaw(bits.data(), bits.size()));
  for (uint64_t i = 0; i < count; ++i) {
    const bool positive = (bits[i / 8] >> (i % 8)) & 1;
    (*out)[i].value = positive ? pos_mean : -neg_mean;
  }
  return common::Status::Ok();
}

}  // namespace sketchml::compress
