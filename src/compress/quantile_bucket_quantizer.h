#ifndef SKETCHML_COMPRESS_QUANTILE_BUCKET_QUANTIZER_H_
#define SKETCHML_COMPRESS_QUANTILE_BUCKET_QUANTIZER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace sketchml::compress {

/// Quantile-bucket quantification of gradient values (§3.2, Figure 3).
///
/// Unlike uniform quantization, which divides the value *range* equally
/// and wastes resolution on the empty tails of the near-zero-concentrated
/// gradient distribution (Figure 4), this quantizer divides the values by
/// *population*: a quantile sketch produces q+1 equal-depth splits, every
/// bucket holds ~d/q values, and each value is replaced by its bucket's
/// mean (the average of the two enclosing splits). The bucket index (< q,
/// one byte when q <= 256) is what travels on the wire.
///
/// Theorem A.2: the quantization variance is bounded by
/// d/(4q) * (phi_min^2 + phi_max^2).
class QuantileBucketQuantizer {
 public:
  /// Which streaming quantile sketch supplies the splits.
  enum class Backend {
    kKll,  // Randomized merging sketch (DataSketches-style; default).
    kGk,   // Deterministic Greenwald-Khanna [16].
  };

  /// Builds splits for `values` using a quantile sketch of size
  /// `sketch_k` (the paper defaults to 128) and `num_buckets` equal-depth
  /// buckets (paper's q, <= 256 so indexes fit one byte). `values` must be
  /// non-empty. For `kGk`, `sketch_k` maps to epsilon = 1 / (2 k).
  static QuantileBucketQuantizer Build(const std::vector<double>& values,
                                       int num_buckets, int sketch_k = 128,
                                       uint64_t seed = 1,
                                       Backend backend = Backend::kKll);

  /// Builds directly from precomputed splits (num_buckets = splits-1).
  explicit QuantileBucketQuantizer(std::vector<double> splits);

  /// Bucket index of `value` in [0, num_buckets).
  int BucketOf(double value) const;

  /// Batch BucketOf: fills `out[i]` with the bucket index of `values[i]`
  /// for the whole span in one dispatched kernel call (simd::BucketSearch;
  /// a branchless predicated scan on AVX2 hosts). Result and metric
  /// effects are bit-identical to calling BucketOf per element. `out`
  /// must hold `values.size()` entries (caller-owned so the encode hot
  /// path reuses one scratch buffer across calls); requires
  /// num_buckets() <= 65536 so indexes fit uint16.
  void BucketsOf(std::span<const double> values, uint16_t* out) const;

  /// Representative (mean) value of `bucket`.
  double MeanOf(int bucket) const { return means_[bucket]; }

  /// Quantizes in one step: MeanOf(BucketOf(value)).
  double Quantize(double value) const { return MeanOf(BucketOf(value)); }

  int num_buckets() const { return static_cast<int>(means_.size()); }
  const std::vector<double>& splits() const { return splits_; }
  const std::vector<double>& means() const { return means_; }

  /// Serializes only what decoding needs: the bucket means (8q bytes,
  /// §3.5 space analysis).
  void SerializeMeans(common::ByteWriter* writer) const;

  /// Reads back a means-only quantizer usable for MeanOf (not BucketOf).
  static common::Status DeserializeMeans(common::ByteReader* reader,
                                         QuantileBucketQuantizer* out);

 private:
  QuantileBucketQuantizer() = default;

  std::vector<double> splits_;  // Ascending, size num_buckets + 1 (encoder).
  std::vector<double> means_;   // Size num_buckets.
};

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_QUANTILE_BUCKET_QUANTIZER_H_
