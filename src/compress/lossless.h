#ifndef SKETCHML_COMPRESS_LOSSLESS_H_
#define SKETCHML_COMPRESS_LOSSLESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "compress/codec.h"

namespace sketchml::compress {

/// Canonical byte-level Huffman coding (Knuth [28]) — one of the lossless
/// methods §5 examines and rejects for gradient data: floating-point
/// bytes are near-uniformly distributed, so entropy coding buys little.
///
/// Wire format: varint original length | 256 code lengths (one byte
/// each) | packed MSB-first bitstream.
class HuffmanByteCoder {
 public:
  /// Compresses `input`; output appended to `out` (replaced, not
  /// appended). Empty input yields a minimal valid block.
  static void Encode(const std::vector<uint8_t>& input,
                     std::vector<uint8_t>* out);

  /// Inverse of Encode. Returns kCorruptedData on malformed blocks.
  static common::Status Decode(const std::vector<uint8_t>& input,
                               std::vector<uint8_t>* out);
};

/// Byte run-length encoding (RLE [18]): `(run length, value)` pairs.
/// Effective only when equal bytes repeat consecutively, which gradient
/// key/value bytes essentially never do — the other §5 negative result.
class RunLengthByteCoder {
 public:
  static void Encode(const std::vector<uint8_t>& input,
                     std::vector<uint8_t>* out);
  static common::Status Decode(const std::vector<uint8_t>& input,
                               std::vector<uint8_t>* out);
};

/// Gradient codec wrapping the raw 12d-byte serialization in a generic
/// lossless byte coder, so the paper's related-work comparison can be
/// measured end to end.
template <typename ByteCoder>
class LosslessGradientCodec : public GradientCodec {
 public:
  explicit LosslessGradientCodec(std::string name) : name_(std::move(name)) {}

  std::string Name() const override { return name_; }
  bool IsLossless() const override { return true; }

  /// Stateless: a fork is a plain copy.
  std::unique_ptr<GradientCodec> Fork(uint64_t /*lane*/) const override {
    return std::make_unique<LosslessGradientCodec<ByteCoder>>(name_);
  }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            EncodedGradient* out) override;
  common::Status DecodeImpl(const EncodedGradient& in,
                            common::SparseGradient* out) override;

 private:
  std::string name_;
};

using HuffmanGradientCodec = LosslessGradientCodec<HuffmanByteCoder>;
using RleGradientCodec = LosslessGradientCodec<RunLengthByteCoder>;

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_LOSSLESS_H_
