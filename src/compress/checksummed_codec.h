#ifndef SKETCHML_COMPRESS_CHECKSUMMED_CODEC_H_
#define SKETCHML_COMPRESS_CHECKSUMMED_CODEC_H_

#include <memory>
#include <string>
#include <utility>

#include "compress/codec.h"

namespace sketchml::compress {

/// Decorator that frames any codec's message with a length + CRC-32
/// footer, turning silent wire corruption into a kCorruptedData status
/// before the inner decoder ever parses the bytes.
///
/// Wire format: inner message | u32 length | u32 crc32(inner message).
class ChecksummedCodec : public GradientCodec {
 public:
  explicit ChecksummedCodec(std::unique_ptr<GradientCodec> inner)
      : inner_(std::move(inner)) {}

  std::string Name() const override { return inner_->Name() + "+crc"; }
  bool IsLossless() const override { return inner_->IsLossless(); }

  /// Forkable iff the wrapped codec is.
  std::unique_ptr<GradientCodec> Fork(uint64_t lane) const override {
    auto inner_fork = inner_->Fork(lane);
    if (inner_fork == nullptr) return nullptr;
    return std::make_unique<ChecksummedCodec>(std::move(inner_fork));
  }

  void SetThreadPool(common::ThreadPool* pool) override {
    inner_->SetThreadPool(pool);
  }

  /// The framing itself is stateless; checkpoint state is the inner
  /// codec's.
  void SaveState(common::ByteWriter* writer) const override {
    inner_->SaveState(writer);
  }
  [[nodiscard]] common::Status RestoreState(
      common::ByteReader* reader) override {
    return inner_->RestoreState(reader);
  }

  const GradientCodec& inner() const { return *inner_; }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            EncodedGradient* out) override;
  common::Status DecodeImpl(const EncodedGradient& in,
                            common::SparseGradient* out) override;

 private:
  std::unique_ptr<GradientCodec> inner_;
};

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_CHECKSUMMED_CODEC_H_
