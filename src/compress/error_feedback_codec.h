#ifndef SKETCHML_COMPRESS_ERROR_FEEDBACK_CODEC_H_
#define SKETCHML_COMPRESS_ERROR_FEEDBACK_CODEC_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "compress/codec.h"

namespace sketchml::compress {

/// Error-feedback (residual compensation) wrapper around a lossy codec —
/// the mechanism 1-bit SGD [39] relies on to converge despite its
/// extreme quantization, and a standard companion to any biased
/// compressor (such as MinMaxSketch's systematic decay).
///
/// On every Encode the sender adds its accumulated residual to the
/// gradient, compresses the sum, and keeps the part the codec lost:
///
///   compensated = gradient + residual
///   message     = Encode(compensated)
///   residual    = compensated - Decode(message)
///
/// Over time every coordinate's error is eventually transmitted, so the
/// *accumulated* applied update is unbiased even when each message is
/// not. The wrapper is stateful per sender: use one instance per worker.
class ErrorFeedbackCodec : public GradientCodec {
 public:
  explicit ErrorFeedbackCodec(std::unique_ptr<GradientCodec> inner)
      : inner_(std::move(inner)) {}

  std::string Name() const override { return inner_->Name() + "+ef"; }
  bool IsLossless() const override { return inner_->IsLossless(); }

  /// Forks start with an empty residual — exactly the per-sender state a
  /// fresh worker would hold. Forkable iff the wrapped codec is.
  std::unique_ptr<GradientCodec> Fork(uint64_t lane) const override {
    auto inner_fork = inner_->Fork(lane);
    if (inner_fork == nullptr) return nullptr;
    return std::make_unique<ErrorFeedbackCodec>(std::move(inner_fork));
  }

  void SetThreadPool(common::ThreadPool* pool) override {
    inner_->SetThreadPool(pool);
  }

  /// Chains the inner codec's state, then the residual map as a count
  /// plus key-sorted (varint key, double value) pairs — sorted so the
  /// blob is a pure function of the residual multiset (the map's
  /// iteration order is not deterministic). This blob doubles as the
  /// warm-start handoff a joining worker adopts from a leaver: restoring
  /// it transfers the leaver's unsent error-feedback mass.
  void SaveState(common::ByteWriter* writer) const override;
  [[nodiscard]] common::Status RestoreState(
      common::ByteReader* reader) override;

  /// Current residual L1 mass (diagnostic / tests).
  double ResidualL1() const;

  /// Number of dimensions currently carrying residual.
  size_t ResidualSize() const { return residual_.size(); }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            EncodedGradient* out) override;

  /// Decoding is stateless and simply forwards to the inner codec.
  common::Status DecodeImpl(const EncodedGradient& in,
                            common::SparseGradient* out) override;

 private:
  std::unique_ptr<GradientCodec> inner_;
  std::unordered_map<uint64_t, double> residual_;

  // Lazily bound error-feedback magnitude metrics (registered under the
  // wrapped codec's name on the first instrumented Encode).
  bool obs_init_ = false;
  obs::Counter residual_l1_counter_;
  obs::Gauge residual_keys_gauge_;
};

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_ERROR_FEEDBACK_CODEC_H_
