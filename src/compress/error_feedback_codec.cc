#include "compress/error_feedback_codec.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/obs.h"

namespace sketchml::compress {
namespace {

/// Residual entries below this magnitude are dropped: they are smaller
/// than any gradient the optimizer would act on and would otherwise
/// accumulate without bound across epochs.
constexpr double kResidualFloor = 1e-12;

}  // namespace

common::Status ErrorFeedbackCodec::EncodeImpl(
    const common::SparseGradient& grad,
                                          EncodedGradient* out) {

  // compensated = gradient + residual (union of keys, sorted).
  common::SparseGradient compensated;
  compensated.reserve(grad.size() + residual_.size());
  for (const auto& pair : grad) {
    const auto it = residual_.find(pair.key);
    if (it != residual_.end()) {
      compensated.push_back({pair.key, pair.value + it->second});
    } else {
      compensated.push_back(pair);
    }
  }
  for (const auto& [key, value] : residual_) {
    // Keys carrying residual but absent from this gradient still get
    // their debt transmitted.
    bool in_grad = false;
    // grad is sorted: binary search.
    size_t lo = 0, hi = grad.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (grad[mid].key < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    in_grad = lo < grad.size() && grad[lo].key == key;
    if (!in_grad && std::abs(value) > kResidualFloor) {
      compensated.push_back({key, value});
    }
  }
  common::SortByKey(&compensated);

  SKETCHML_RETURN_IF_ERROR(inner_->Encode(compensated, out));

  // residual = compensated - Decode(message).
  common::SparseGradient decoded;
  SKETCHML_RETURN_IF_ERROR(inner_->Decode(*out, &decoded));
  residual_.clear();
  // Both lists are sorted over the same key set (codecs keep keys exact).
  size_t j = 0;
  for (const auto& pair : compensated) {
    while (j < decoded.size() && decoded[j].key < pair.key) ++j;
    const double transmitted =
        (j < decoded.size() && decoded[j].key == pair.key)
            ? decoded[j].value
            : 0.0;
    const double leftover = pair.value - transmitted;
    if (std::abs(leftover) > kResidualFloor) {
      residual_[pair.key] = leftover;
    }
  }

  if (obs::MetricsEnabled()) {
    if (!obs_init_) {
      auto& registry = obs::MetricsRegistry::Global();
      obs::MetricLabels labels{{"codec", Name()}};
      labels.insert(labels.end(), metric_labels().begin(),
                    metric_labels().end());
      residual_l1_counter_ =
          registry.GetCounter("codec/residual_l1", labels);
      residual_keys_gauge_ =
          registry.GetGauge("codec/residual_keys", labels);
      obs_init_ = true;
    }
    residual_l1_counter_.Add(ResidualL1());
    residual_keys_gauge_.Set(static_cast<double>(residual_.size()));
  }
  return common::Status::Ok();
}

common::Status ErrorFeedbackCodec::DecodeImpl(const EncodedGradient& in,
                                          common::SparseGradient* out) {
  return inner_->Decode(in, out);
}

void ErrorFeedbackCodec::SaveState(common::ByteWriter* writer) const {
  inner_->SaveState(writer);
  std::vector<std::pair<uint64_t, double>> pairs(residual_.begin(),
                                                 residual_.end());
  std::sort(pairs.begin(), pairs.end());
  writer->WriteVarint(pairs.size());
  for (const auto& [key, value] : pairs) {
    writer->WriteVarint(key);
    writer->WriteDouble(value);
  }
}

common::Status ErrorFeedbackCodec::RestoreState(common::ByteReader* reader) {
  // Cleared up front so a failed restore leaves a fresh-equivalent
  // instance rather than a half-written residual.
  residual_.clear();
  SKETCHML_RETURN_IF_ERROR(inner_->RestoreState(reader));
  uint64_t count = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&count));
  // Each entry takes at least one key byte + eight value bytes; a larger
  // declared count means a corrupted blob — reject before reserving.
  if (count > reader->remaining() / 9) {
    return common::Status::CorruptedData(
        "error-feedback residual count exceeds payload");
  }
  residual_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    double value = 0.0;
    common::Status read = reader->ReadVarint(&key);
    if (read.ok()) read = reader->ReadDouble(&value);
    if (!read.ok()) {
      residual_.clear();
      return read;
    }
    residual_[key] = value;
  }
  return common::Status::Ok();
}

double ErrorFeedbackCodec::ResidualL1() const {
  double total = 0.0;
  for (const auto& [key, value] : residual_) total += std::abs(value);
  return total;
}

}  // namespace sketchml::compress
