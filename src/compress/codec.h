#ifndef SKETCHML_COMPRESS_CODEC_H_
#define SKETCHML_COMPRESS_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/byte_buffer.h"
#include "common/metrics_registry.h"
#include "common/sparse.h"
#include "common/status.h"

namespace sketchml::common {
class ThreadPool;
}  // namespace sketchml::common

namespace sketchml::compress {

/// A serialized gradient message as it would travel over the network.
struct EncodedGradient {
  std::vector<uint8_t> bytes;

  size_t size() const { return bytes.size(); }
};

/// Interface for gradient compression schemes.
///
/// A codec turns a sparse gradient (key-value pairs sorted by key) into a
/// byte message and back. Keys must round-trip exactly — decoding a wrong
/// dimension corrupts the model (§3.4 Motivation) — while values may be
/// lossy, trading precision for bytes.
///
/// `Encode`/`Decode` are non-virtual wrappers (NVI): they validate the
/// shared precondition and, when observability is on, record per-codec
/// labeled metrics ("codec/encode_bytes{codec=<name>}", plus any labels
/// attached with `SetMetricLabel`, e.g. worker=3 on per-worker forks)
/// and trace spans around the virtual `EncodeImpl`/`DecodeImpl` that
/// implementations provide. With observability off the wrappers cost one
/// branch.
class GradientCodec {
 public:
  virtual ~GradientCodec() = default;

  /// Human-readable codec name (e.g. "sketchml", "zipml-16bit").
  virtual std::string Name() const = 0;

  /// True when `Decode(Encode(g)) == g` bit-exactly.
  virtual bool IsLossless() const = 0;

  /// Serializes `grad` into `out`. `grad` must be sorted by key with
  /// strictly increasing keys; returns InvalidArgument otherwise.
  [[nodiscard]] common::Status Encode(const common::SparseGradient& grad,
                                      EncodedGradient* out);

  /// Reconstructs a gradient from `in`. Keys are exact; values are exact
  /// iff `IsLossless()`.
  ///
  /// Hardening contract: `in` may be arbitrary bytes off the wire
  /// (truncated, bit-flipped, pure garbage). Implementations must bounds-
  /// check every read and validate declared counts *before* allocating,
  /// returning a non-OK Status (typically kCorruptedData) on malformed
  /// input — never crashing, hanging, or attempting huge allocations.
  /// Undetectably corrupted input may decode to wrong values; wrap
  /// messages with "+crc" (ChecksummedCodec) or `common::FrameMessage`
  /// when detection is required. Pinned by tests/fuzz_decode_test.cc for
  /// every registered codec.
  [[nodiscard]] common::Status Decode(const EncodedGradient& in,
                                      common::SparseGradient* out);

  /// Returns an independent codec instance for seed lane `lane`, suitable
  /// for concurrent use next to `this` (e.g. one instance per simulated
  /// worker). Seeded codecs derive the lane's seed with
  /// `common::LaneSeed`, so a fork's message stream is deterministic and
  /// never depends on how calls interleave across lanes. Stateless codecs
  /// return a plain copy. Returns nullptr when the codec cannot be forked;
  /// callers must then serialize access to the original instance.
  virtual std::unique_ptr<GradientCodec> Fork(uint64_t lane) const {
    (void)lane;
    return nullptr;
  }

  /// Serializes this instance's mutable stream state (RNG lane position,
  /// error-feedback residuals, call counters — whatever makes the *next*
  /// Encode depend on history) into `writer`. Stateless codecs write
  /// nothing. Together with `RestoreState` this is the checkpoint seam:
  /// restoring a saved state into an identically-configured instance
  /// makes it emit the same byte stream the original would have from the
  /// save point. Configuration (seed, levels, inner codec shape) is NOT
  /// captured — the caller reconstructs the codec and replays state into
  /// it, mirroring how KllSketch::Deserialize takes the seed externally.
  virtual void SaveState(common::ByteWriter* writer) const { (void)writer; }

  /// Restores state written by `SaveState` on an identically-configured
  /// instance. Input may be arbitrary bytes off a corrupted checkpoint:
  /// implementations must bounds-check and return kCorruptedData rather
  /// than crash, leaving the instance usable (fresh-equivalent) on error.
  [[nodiscard]] virtual common::Status RestoreState(
      common::ByteReader* reader) {
    (void)reader;
    return common::Status::Ok();
  }

  /// Offers a thread pool for intra-message parallelism (e.g. encoding
  /// sign streams concurrently). Optional: the default ignores it, and a
  /// codec must produce byte-identical output with or without a pool.
  /// The pool must outlive the codec or be cleared with nullptr.
  virtual void SetThreadPool(common::ThreadPool* pool) { (void)pool; }

  /// Attaches an extra metric label to this instance's "codec/..."
  /// metrics and spans (the trainer tags each per-worker fork with
  /// worker=<w>). Re-setting an existing key overwrites its value.
  /// Labels affect metric identity only, never the byte stream. Calls
  /// after the first instrumented Encode/Decode re-resolve the handles.
  void SetMetricLabel(std::string_view key, std::string_view value);

  /// Labels attached via SetMetricLabel (not including the implicit
  /// codec=<Name()> label).
  const obs::MetricLabels& metric_labels() const { return metric_labels_; }

 protected:
  /// The actual codec work. Input is already validated (strictly
  /// increasing keys); implementations must not re-enter their own
  /// public Encode/Decode (calling *another* codec's, as the decorator
  /// codecs do, is fine and yields nested spans).
  virtual common::Status EncodeImpl(const common::SparseGradient& grad,
                                    EncodedGradient* out) = 0;
  virtual common::Status DecodeImpl(const EncodedGradient& in,
                                    common::SparseGradient* out) = 0;

 private:
  /// Per-instance cache of the codec's metric handles and span names,
  /// filled lazily on the first instrumented call (so the Name() virtual
  /// is safe to use — the object is fully constructed by then).
  struct Instruments {
    bool initialized = false;
    std::string encode_span_name;  // "encode/<name>"
    std::string decode_span_name;  // "decode/<name>"
    obs::Counter encode_calls, encode_pairs, encode_bytes, raw_bytes,
        encode_errors;
    obs::Counter decode_calls, decode_pairs, decode_bytes, decode_errors;
    obs::Histogram encode_ns, decode_ns, message_bytes;
  };

  Instruments& GetInstruments();
  Instruments instruments_;
  obs::MetricLabels metric_labels_;
};

/// Validates the shared Encode precondition; used by all implementations.
[[nodiscard]] common::Status ValidateEncodable(
    const common::SparseGradient& grad);

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_CODEC_H_
