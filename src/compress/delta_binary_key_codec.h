#ifndef SKETCHML_COMPRESS_DELTA_BINARY_KEY_CODEC_H_
#define SKETCHML_COMPRESS_DELTA_BINARY_KEY_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"
#include "common/status.h"

namespace sketchml::compress {

/// Dynamic delta-binary encoding of sorted gradient keys (§3.4, Figure 7).
///
/// Keys are non-repetitive and ascending, so only the increments between
/// neighbors are stored. Each delta takes the least number of whole bytes
/// that holds it (1..4), recorded in a separate 2-bit "byte flag" stream:
/// flag 00 = 1 byte (delta in [0, 255]), 01 = 2 bytes, 10 = 3 bytes,
/// 11 = 4 bytes. Lossless by construction. The paper measures ~1.27 bytes
/// per key including the flag, vs 4 bytes for raw int keys.
///
/// Wire format: varint count | packed 2-bit flags (ceil(count/4) bytes) |
/// delta bytes (little-endian, variable width per flag).
class DeltaBinaryKeyCodec {
 public:
  /// Caller-owned scratch for Encode, reused across calls so the hot
  /// path allocates nothing (5 bytes/key vs the 16 the old staged
  /// `vector<pair<uint64_t,int>>` cost per key).
  struct EncodeScratch {
    std::vector<uint32_t> deltas;
    std::vector<uint8_t> widths;
  };

  /// Appends the encoding of `keys` (strictly increasing, each delta and
  /// the first key < 2^32) to `writer`. Single pass: one dispatched
  /// simd::DeltaScan computes deltas and branchless widths, then flags
  /// and deltas are written directly into the framed output.
  static common::Status Encode(const std::vector<uint64_t>& keys,
                               common::ByteWriter* writer,
                               EncodeScratch* scratch);

  /// Encode with a throwaway scratch, for callers off the hot path.
  static common::Status Encode(const std::vector<uint64_t>& keys,
                               common::ByteWriter* writer) {
    EncodeScratch scratch;
    return Encode(keys, writer, &scratch);
  }

  /// Decodes one key block written by `Encode`.
  static common::Status Decode(common::ByteReader* reader,
                               std::vector<uint64_t>* keys);

  /// Exact encoded size in bytes for `keys` without materializing it.
  static size_t EncodedSize(const std::vector<uint64_t>& keys);
};

/// Bitmap key encoding, the alternative §A.3 weighs and rejects: one bit
/// per dimension in [0, dim). Costs ceil(dim / 8) bytes regardless of how
/// few keys are present, so it only wins for very dense gradients.
class BitmapKeyCodec {
 public:
  /// Encodes `keys` (strictly increasing, all < dim) as a dim-bit bitmap.
  static common::Status Encode(const std::vector<uint64_t>& keys,
                               uint64_t dim, common::ByteWriter* writer);

  /// Decodes a bitmap block back into the ascending key list.
  static common::Status Decode(common::ByteReader* reader,
                               std::vector<uint64_t>* keys);

  static size_t EncodedSize(uint64_t dim);
};

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_DELTA_BINARY_KEY_CODEC_H_
