#include "compress/delta_binary_key_codec.h"

#include <cstring>
#include <limits>

#include "common/bit_util.h"
#include "common/simd.h"

namespace sketchml::compress {

common::Status DeltaBinaryKeyCodec::Encode(const std::vector<uint64_t>& keys,
                                           common::ByteWriter* writer,
                                           EncodeScratch* scratch) {
  writer->WriteVarint(keys.size());
  if (keys.empty()) return common::Status::Ok();

  const size_t count = keys.size();
  scratch->deltas.resize(count);
  scratch->widths.resize(count);
  size_t total_delta_bytes = 0;
  switch (common::simd::DeltaScan(keys.data(), count, scratch->deltas.data(),
                                  scratch->widths.data(),
                                  &total_delta_bytes)) {
    case common::simd::DeltaScanStatus::kOk:
      break;
    case common::simd::DeltaScanStatus::kNotIncreasing:
      return common::Status::InvalidArgument(
          "keys must be strictly increasing");
    case common::simd::DeltaScanStatus::kDeltaTooWide:
      return common::Status::OutOfRange("key delta exceeds 4 bytes");
  }

  // Scatter the 2-bit flags into the zero-initialized flag region, then
  // lay the variable-width deltas down with full 8-byte stores running
  // into Extend slack — same wire bytes as the old TwoBitWriter +
  // WriteUintN loops, without the staging vector or per-byte appends.
  const size_t flags_offset = writer->Extend(common::CeilDiv(count, 4));
  uint8_t* flags = writer->MutableData() + flags_offset;
  for (size_t i = 0; i < count; ++i) {
    flags[i >> 2] |= static_cast<uint8_t>((scratch->widths[i] - 1)
                                          << ((i & 3) * 2));
  }
  const size_t delta_offset =
      writer->Extend(total_delta_bytes + sizeof(uint64_t) - 1);
  uint8_t* cursor = writer->MutableData() + delta_offset;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t delta = scratch->deltas[i];
    std::memcpy(cursor, &delta, sizeof(delta));  // Little-endian host.
    cursor += scratch->widths[i];
  }
  writer->Truncate(delta_offset + total_delta_bytes);
  return common::Status::Ok();
}

common::Status DeltaBinaryKeyCodec::Decode(common::ByteReader* reader,
                                           std::vector<uint64_t>* keys) {
  uint64_t count = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&count));
  keys->clear();
  if (count == 0) return common::Status::Ok();
  // Every key costs at least 1 delta byte *plus* a quarter byte of flag
  // stream; a count that cannot fit in the remaining buffer is
  // corruption, and checking before reserve() prevents adversarial giant
  // allocations. (The first clause keeps the arithmetic overflow-free.)
  if (count > reader->remaining() ||
      count + common::CeilDiv(count, 4) > reader->remaining()) {
    return common::Status::CorruptedData("implausible key count");
  }
  keys->reserve(count);

  const size_t flag_bytes = common::CeilDiv(count, 4);
  std::vector<uint8_t> flags(flag_bytes);
  SKETCHML_RETURN_IF_ERROR(reader->ReadRaw(flags.data(), flag_bytes));
  common::TwoBitReader flag_reader(flags.data(), flag_bytes, count);

  // Two passes over the flag stream would need it buffered anyway, so we
  // decode flag-then-delta per key in one pass: but the wire layout stores
  // all flags before all deltas, so read flags first, then deltas.
  std::vector<uint8_t> widths(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t symbol = 0;
    SKETCHML_RETURN_IF_ERROR(flag_reader.Next(&symbol));
    widths[i] = static_cast<uint8_t>(symbol + 1);
  }

  uint64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    SKETCHML_RETURN_IF_ERROR(reader->ReadUintN(widths[i], &delta));
    if (i > 0 && delta == 0) {
      return common::Status::CorruptedData("zero delta for non-first key");
    }
    previous += delta;
    keys->push_back(previous);
  }
  return common::Status::Ok();
}

size_t DeltaBinaryKeyCodec::EncodedSize(const std::vector<uint64_t>& keys) {
  size_t total = static_cast<size_t>(common::VarintSize(keys.size())) +
                 common::CeilDiv(keys.size(), 4);
  uint64_t previous = 0;
  for (uint64_t key : keys) {
    total += static_cast<size_t>(common::BytesNeeded(key - previous));
    previous = key;
  }
  return keys.empty() ? common::VarintSize(0) : total;
}

common::Status BitmapKeyCodec::Encode(const std::vector<uint64_t>& keys,
                                      uint64_t dim,
                                      common::ByteWriter* writer) {
  writer->WriteVarint(dim);
  std::vector<uint8_t> bits(common::CeilDiv(dim, 8), 0);
  uint64_t previous = 0;
  bool first = true;
  for (uint64_t key : keys) {
    if (!first && key <= previous) {
      return common::Status::InvalidArgument(
          "keys must be strictly increasing");
    }
    if (key >= dim) {
      return common::Status::OutOfRange("key exceeds bitmap dimension");
    }
    bits[key / 8] |= static_cast<uint8_t>(1u << (key % 8));
    previous = key;
    first = false;
  }
  writer->WriteBytes(bits);
  return common::Status::Ok();
}

common::Status BitmapKeyCodec::Decode(common::ByteReader* reader,
                                      std::vector<uint64_t>* keys) {
  uint64_t dim = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&dim));
  // The bitmap itself must fit in what remains of the buffer; checking
  // first prevents adversarial giant allocations.
  if (common::CeilDiv(dim, 8) > reader->remaining()) {
    return common::Status::CorruptedData("implausible bitmap dimension");
  }
  const size_t nbytes = common::CeilDiv(dim, 8);
  std::vector<uint8_t> bits(nbytes);
  SKETCHML_RETURN_IF_ERROR(reader->ReadRaw(bits.data(), nbytes));
  keys->clear();
  for (uint64_t byte = 0; byte < nbytes; ++byte) {
    uint8_t b = bits[byte];
    while (b != 0) {
      const int bit = __builtin_ctz(b);
      const uint64_t key = byte * 8 + static_cast<uint64_t>(bit);
      if (key < dim) keys->push_back(key);
      b = static_cast<uint8_t>(b & (b - 1));
    }
  }
  return common::Status::Ok();
}

size_t BitmapKeyCodec::EncodedSize(uint64_t dim) {
  return static_cast<size_t>(common::VarintSize(dim)) +
         common::CeilDiv(dim, 8);
}

}  // namespace sketchml::compress
