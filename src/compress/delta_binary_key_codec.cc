#include "compress/delta_binary_key_codec.h"

#include <limits>

#include "common/bit_util.h"

namespace sketchml::compress {

common::Status DeltaBinaryKeyCodec::Encode(const std::vector<uint64_t>& keys,
                                           common::ByteWriter* writer) {
  writer->WriteVarint(keys.size());
  if (keys.empty()) return common::Status::Ok();

  common::TwoBitWriter flags;
  std::vector<std::pair<uint64_t, int>> deltas;  // (delta, nbytes)
  deltas.reserve(keys.size());
  uint64_t previous = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0 && keys[i] <= previous) {
      return common::Status::InvalidArgument(
          "keys must be strictly increasing");
    }
    const uint64_t delta = keys[i] - previous;
    if (delta > std::numeric_limits<uint32_t>::max()) {
      return common::Status::OutOfRange("key delta exceeds 4 bytes");
    }
    const int nbytes = common::BytesNeeded(delta);
    flags.Append(static_cast<uint8_t>(nbytes - 1));
    deltas.emplace_back(delta, nbytes);
    previous = keys[i];
  }
  writer->WriteBytes(flags.bytes());
  for (const auto& [delta, nbytes] : deltas) {
    writer->WriteUintN(delta, nbytes);
  }
  return common::Status::Ok();
}

common::Status DeltaBinaryKeyCodec::Decode(common::ByteReader* reader,
                                           std::vector<uint64_t>* keys) {
  uint64_t count = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&count));
  keys->clear();
  if (count == 0) return common::Status::Ok();
  // Every key costs at least 1 delta byte plus its flag bits; a count
  // that cannot fit in the remaining buffer is corruption, and checking
  // before reserve() prevents adversarial giant allocations.
  if (count > reader->remaining()) {
    return common::Status::CorruptedData("implausible key count");
  }
  keys->reserve(count);

  const size_t flag_bytes = common::CeilDiv(count, 4);
  std::vector<uint8_t> flags(flag_bytes);
  SKETCHML_RETURN_IF_ERROR(reader->ReadRaw(flags.data(), flag_bytes));
  common::TwoBitReader flag_reader(flags.data(), flag_bytes, count);

  // Two passes over the flag stream would need it buffered anyway, so we
  // decode flag-then-delta per key in one pass: but the wire layout stores
  // all flags before all deltas, so read flags first, then deltas.
  std::vector<uint8_t> widths(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t symbol = 0;
    SKETCHML_RETURN_IF_ERROR(flag_reader.Next(&symbol));
    widths[i] = static_cast<uint8_t>(symbol + 1);
  }

  uint64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    SKETCHML_RETURN_IF_ERROR(reader->ReadUintN(widths[i], &delta));
    if (i > 0 && delta == 0) {
      return common::Status::CorruptedData("zero delta for non-first key");
    }
    previous += delta;
    keys->push_back(previous);
  }
  return common::Status::Ok();
}

size_t DeltaBinaryKeyCodec::EncodedSize(const std::vector<uint64_t>& keys) {
  common::ByteWriter probe;
  probe.WriteVarint(keys.size());
  size_t total = probe.size() + common::CeilDiv(keys.size(), 4);
  uint64_t previous = 0;
  for (uint64_t key : keys) {
    total += common::BytesNeeded(key - previous);
    previous = key;
  }
  return keys.empty() ? probe.size() : total;
}

common::Status BitmapKeyCodec::Encode(const std::vector<uint64_t>& keys,
                                      uint64_t dim,
                                      common::ByteWriter* writer) {
  writer->WriteVarint(dim);
  std::vector<uint8_t> bits(common::CeilDiv(dim, 8), 0);
  uint64_t previous = 0;
  bool first = true;
  for (uint64_t key : keys) {
    if (!first && key <= previous) {
      return common::Status::InvalidArgument(
          "keys must be strictly increasing");
    }
    if (key >= dim) {
      return common::Status::OutOfRange("key exceeds bitmap dimension");
    }
    bits[key / 8] |= static_cast<uint8_t>(1u << (key % 8));
    previous = key;
    first = false;
  }
  writer->WriteBytes(bits);
  return common::Status::Ok();
}

common::Status BitmapKeyCodec::Decode(common::ByteReader* reader,
                                      std::vector<uint64_t>* keys) {
  uint64_t dim = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&dim));
  // The bitmap itself must fit in what remains of the buffer; checking
  // first prevents adversarial giant allocations.
  if (common::CeilDiv(dim, 8) > reader->remaining()) {
    return common::Status::CorruptedData("implausible bitmap dimension");
  }
  const size_t nbytes = common::CeilDiv(dim, 8);
  std::vector<uint8_t> bits(nbytes);
  SKETCHML_RETURN_IF_ERROR(reader->ReadRaw(bits.data(), nbytes));
  keys->clear();
  for (uint64_t byte = 0; byte < nbytes; ++byte) {
    uint8_t b = bits[byte];
    while (b != 0) {
      const int bit = __builtin_ctz(b);
      const uint64_t key = byte * 8 + static_cast<uint64_t>(bit);
      if (key < dim) keys->push_back(key);
      b = static_cast<uint8_t>(b & (b - 1));
    }
  }
  return common::Status::Ok();
}

size_t BitmapKeyCodec::EncodedSize(uint64_t dim) {
  common::ByteWriter probe;
  probe.WriteVarint(dim);
  return probe.size() + common::CeilDiv(dim, 8);
}

}  // namespace sketchml::compress
