#ifndef SKETCHML_COMPRESS_RAW_CODEC_H_
#define SKETCHML_COMPRESS_RAW_CODEC_H_

#include <string>

#include "compress/codec.h"

namespace sketchml::compress {

/// Width of the transmitted value (Table 4's "weight type").
enum class ValueType { kDouble, kFloat };

/// The no-compression baseline ("Adam" in the paper's plots): 4-byte keys
/// plus 8-byte double (or 4-byte float) values, 12d (or 8d) bytes total.
///
/// With kFloat, values round-trip through IEEE float, which is the only
/// loss this codec introduces.
class RawCodec : public GradientCodec {
 public:
  explicit RawCodec(ValueType value_type = ValueType::kDouble)
      : value_type_(value_type) {}

  std::string Name() const override {
    return value_type_ == ValueType::kDouble ? "adam-double" : "adam-float";
  }
  bool IsLossless() const override { return value_type_ == ValueType::kDouble; }

  /// Stateless: a fork is a plain copy.
  std::unique_ptr<GradientCodec> Fork(uint64_t /*lane*/) const override {
    return std::make_unique<RawCodec>(value_type_);
  }

 protected:
  common::Status EncodeImpl(const common::SparseGradient& grad,
                            EncodedGradient* out) override;
  common::Status DecodeImpl(const EncodedGradient& in,
                            common::SparseGradient* out) override;

 private:
  ValueType value_type_;
};

}  // namespace sketchml::compress

#endif  // SKETCHML_COMPRESS_RAW_CODEC_H_
