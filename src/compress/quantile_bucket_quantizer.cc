#include "compress/quantile_bucket_quantizer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/obs.h"
#include "common/simd.h"
#include "sketch/gk_sketch.h"
#include "sketch/kll_sketch.h"

namespace sketchml::compress {

QuantileBucketQuantizer QuantileBucketQuantizer::Build(
    const std::vector<double>& values, int num_buckets, int sketch_k,
    uint64_t seed, Backend backend) {
  SKETCHML_CHECK(!values.empty());
  SKETCHML_CHECK_GT(num_buckets, 0);
  if (backend == Backend::kGk) {
    sketch::GkSketch sketch(
        std::min(0.4, 1.0 / (2.0 * static_cast<double>(sketch_k))));
    sketch.UpdateAll(values);
    return QuantileBucketQuantizer(sketch.EqualDepthSplits(num_buckets));
  }
  sketch::KllSketch sketch(sketch_k, seed);
  sketch.UpdateAll(values);
  return QuantileBucketQuantizer(sketch.EqualDepthSplits(num_buckets));
}

QuantileBucketQuantizer::QuantileBucketQuantizer(std::vector<double> splits)
    : splits_(std::move(splits)) {
  SKETCHML_CHECK_GE(splits_.size(), 2u);
  SKETCHML_CHECK(std::is_sorted(splits_.begin(), splits_.end()));
  means_.reserve(splits_.size() - 1);
  for (size_t i = 0; i + 1 < splits_.size(); ++i) {
    means_.push_back(0.5 * (splits_[i] + splits_[i + 1]));
  }
  // Midpoints of sorted split intervals must themselves be monotone;
  // a violation means the split computation produced a non-bucket.
  SKETCHML_DCHECK(std::is_sorted(means_.begin(), means_.end()));
}

int QuantileBucketQuantizer::BucketOf(double value) const {
  SKETCHML_CHECK(!splits_.empty()) << "means-only quantizer cannot bucket";
  // Bucket i covers [splits_[i], splits_[i+1]); the last bucket is closed
  // above so the maximum lands in bucket num_buckets-1.
  const auto it = std::upper_bound(splits_.begin(), splits_.end(), value);
  int idx = static_cast<int>(it - splits_.begin()) - 1;
  const int clamped = std::clamp(idx, 0, num_buckets() - 1);
  // Bucket-interval contract: value sits in [splits[i], splits[i+1])
  // whenever it was not clamped to an extreme bucket.
  SKETCHML_DCHECK(clamped != idx || (splits_[clamped] <= value &&
                                     (clamped + 1 == num_buckets() ||
                                      value < splits_[clamped + 1])));
  if (clamped != idx && obs::MetricsEnabled()) {
    // A clamp means the value fell outside the sketch's learned range —
    // the bucket-overflow event the paper's §3.2 error analysis assumes
    // is rare. Counting it makes that assumption checkable.
    static const obs::Counter overflow =
        obs::MetricsRegistry::Global().GetCounter("quantizer/bucket_overflow");
    overflow.Increment();
  }
  return clamped;
}

void QuantileBucketQuantizer::BucketsOf(std::span<const double> values,
                                        uint16_t* out) const {
  SKETCHML_CHECK(!splits_.empty()) << "means-only quantizer cannot bucket";
  SKETCHML_CHECK_LE(means_.size(), size_t{1} << 16)
      << "batch bucket indexes must fit uint16";
  if (values.empty()) return;
  const size_t clamped = common::simd::BucketSearch(
      splits_.data(), splits_.size(), values.data(), values.size(), out);
#if SKETCHML_DCHECK_ENABLED
  // Batch/scalar equivalence: every index must match the metrics-free
  // per-element search BucketOf is defined by (the counter stays
  // untouched here so checked and release runs publish identical counts).
  for (size_t i = 0; i < values.size(); ++i) {
    const auto it =
        std::upper_bound(splits_.begin(), splits_.end(), values[i]);
    const int idx = static_cast<int>(it - splits_.begin()) - 1;
    SKETCHML_DCHECK_EQ(static_cast<int>(out[i]),
                       std::clamp(idx, 0, num_buckets() - 1));
  }
#endif
  if (clamped > 0 && obs::MetricsEnabled()) {
    // Same lazily-created counter, same total as per-element BucketOf:
    // one overflow event per clamped value (§3.2 rarity assumption).
    static const obs::Counter overflow =
        obs::MetricsRegistry::Global().GetCounter("quantizer/bucket_overflow");
    overflow.Add(static_cast<double>(clamped));
  }
}

void QuantileBucketQuantizer::SerializeMeans(
    common::ByteWriter* writer) const {
  writer->WriteVarint(means_.size());
  // float32 is plenty: the quantization error of the bucket itself is
  // orders of magnitude above float precision, and it halves the fixed
  // per-message header (the paper's 8q term becomes 4q).
  for (double m : means_) writer->WriteFloat(static_cast<float>(m));
}

common::Status QuantileBucketQuantizer::DeserializeMeans(
    common::ByteReader* reader, QuantileBucketQuantizer* out) {
  uint64_t count = 0;
  SKETCHML_RETURN_IF_ERROR(reader->ReadVarint(&count));
  if (count == 0 || count > reader->remaining() / sizeof(float)) {
    return common::Status::CorruptedData("implausible bucket count");
  }
  QuantileBucketQuantizer q;
  q.means_.resize(count);
  for (auto& m : q.means_) {
    float f = 0.0f;
    SKETCHML_RETURN_IF_ERROR(reader->ReadFloat(&f));
    m = f;
  }
  *out = std::move(q);
  return common::Status::Ok();
}

}  // namespace sketchml::compress
