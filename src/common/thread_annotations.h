#ifndef SKETCHML_COMMON_THREAD_ANNOTATIONS_H_
#define SKETCHML_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotation macros (no-ops on every other compiler).
//
// The annotations document which mutex guards which member and which
// functions require a lock to already be held, and clang's
// -Wthread-safety analysis proves the claims at compile time: reading a
// SKETCHML_GUARDED_BY member without holding its mutex, or calling a
// SKETCHML_REQUIRES function unlocked, is a compile error under the
// thread-safety CI job (cmake -DSKETCHML_THREAD_SAFETY=ON, clang only).
// On gcc the macros expand to nothing, so annotated code builds
// everywhere; the analysis only runs where the attribute exists.
//
// std::mutex in libstdc++ carries no capability attributes, so the
// analysis cannot track it. Annotated code locks through the
// common::Mutex / common::MutexLock wrappers in common/mutex.h instead.
//
// Conventions (see docs/static_analysis.md, "Thread-safety annotations"):
//   - every member written under a lock is SKETCHML_GUARDED_BY(mutex_)
//   - private helpers named *Locked take SKETCHML_REQUIRES(mutex_)
//   - public entry points that must not be called with the lock held
//     (they lock it themselves) take SKETCHML_EXCLUDES(mutex_)

#if defined(__clang__)
#define SKETCHML_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SKETCHML_THREAD_ANNOTATION__(x)
#endif

// Declares a class to be a lockable capability ("mutex" in diagnostics).
#define SKETCHML_CAPABILITY(x) SKETCHML_THREAD_ANNOTATION__(capability(x))

// Declares an RAII class that acquires a capability in its constructor
// and releases it in its destructor.
#define SKETCHML_SCOPED_CAPABILITY \
  SKETCHML_THREAD_ANNOTATION__(scoped_lockable)

// A data member that may only be accessed while holding `x`.
#define SKETCHML_GUARDED_BY(x) SKETCHML_THREAD_ANNOTATION__(guarded_by(x))

// A pointer member whose *pointee* may only be accessed while holding `x`.
#define SKETCHML_PT_GUARDED_BY(x) \
  SKETCHML_THREAD_ANNOTATION__(pt_guarded_by(x))

// The function may only be called while already holding the listed
// capabilities (it does not acquire them itself).
#define SKETCHML_REQUIRES(...) \
  SKETCHML_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

// The function must NOT be called while holding the listed capabilities
// (it acquires them itself; calling locked would deadlock).
#define SKETCHML_EXCLUDES(...) \
  SKETCHML_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// The function acquires / releases the listed capabilities.
#define SKETCHML_ACQUIRE(...) \
  SKETCHML_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define SKETCHML_RELEASE(...) \
  SKETCHML_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

// The function acquires the capability when it returns `ret`.
#define SKETCHML_TRY_ACQUIRE(ret, ...) \
  SKETCHML_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

// The function returns a reference to the capability guarding its result.
#define SKETCHML_RETURN_CAPABILITY(x) \
  SKETCHML_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch: the function's locking cannot be expressed to the
// analysis (lock juggling across objects). Use sparingly, with a comment.
#define SKETCHML_NO_THREAD_SAFETY_ANALYSIS \
  SKETCHML_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SKETCHML_COMMON_THREAD_ANNOTATIONS_H_
