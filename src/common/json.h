#ifndef SKETCHML_COMMON_JSON_H_
#define SKETCHML_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sketchml::common {

/// Minimal immutable JSON document model, sized for the observability
/// pipeline's own dumps (metrics JSONL, run time-series, Chrome traces).
/// Strict parser: rejects trailing commas, bare words, unterminated
/// strings, and NaN/Inf — exactly what our writers must never emit.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON value spanning all of `text`.
  static Result<JsonValue> Parse(std::string_view text);

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool bool_value() const { return number_ != 0.0; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }

  /// Object members in document order (JSONL metric dumps rely on it).
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  /// First member named `key`, or nullptr (also for non-objects).
  const JsonValue* Find(std::string_view key) const;

  /// Typed lookups with defaults; the default also covers wrong types.
  double NumberOr(std::string_view key, double default_value) const;
  std::string StringOr(std::string_view key,
                       std::string_view default_value) const;

 private:
  Type type_ = Type::kNull;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_JSON_H_
