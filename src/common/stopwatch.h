#ifndef SKETCHML_COMMON_STOPWATCH_H_
#define SKETCHML_COMMON_STOPWATCH_H_

#include <cassert>
#include <chrono>

namespace sketchml::common {

/// Monotonic wall-clock stopwatch used to measure compute/encode/decode
/// phases in the distributed-training simulator.
class Stopwatch {
 public:
  Stopwatch() { start_ = Clock::now(); }

  /// Resets the start point to now and returns the lap — the seconds
  /// elapsed since construction or the previous Restart(). Timing
  /// consecutive phases is then one call per boundary:
  ///   watch.Restart(); DoA(); a += watch.Restart(); DoB(); b += ...
  double Restart() {
    const Clock::time_point now = Clock::now();
    const double lap = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return lap;
  }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start_).count();
    // steady_clock is monotonic by contract; a negative reading means the
    // platform clock is broken and every phase stat would be garbage.
    assert(elapsed >= 0.0);
    return elapsed;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the total of several timed spans (start/stop pairs).
class Accumulator {
 public:
  void Start() { watch_.Restart(); }
  void Stop() { total_ += watch_.ElapsedSeconds(); }
  void Add(double seconds) { total_ += seconds; }
  void Reset() { total_ = 0.0; }
  double total_seconds() const { return total_; }

 private:
  Stopwatch watch_;
  double total_ = 0.0;
};

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_STOPWATCH_H_
