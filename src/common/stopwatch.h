#ifndef SKETCHML_COMMON_STOPWATCH_H_
#define SKETCHML_COMMON_STOPWATCH_H_

#include <chrono>

namespace sketchml::common {

/// Monotonic wall-clock stopwatch used to measure compute/encode/decode
/// phases in the distributed-training simulator.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the total of several timed spans (start/stop pairs).
class Accumulator {
 public:
  void Start() { watch_.Restart(); }
  void Stop() { total_ += watch_.ElapsedSeconds(); }
  void Add(double seconds) { total_ += seconds; }
  void Reset() { total_ = 0.0; }
  double total_seconds() const { return total_; }

 private:
  Stopwatch watch_;
  double total_ = 0.0;
};

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_STOPWATCH_H_
