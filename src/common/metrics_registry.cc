#include "common/metrics_registry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/logging.h"

namespace sketchml::obs {
namespace {

// Fixed shard capacities: per-thread slots are allocated once, so the
// hot path never resizes (and never takes a lock). Exhausting a table
// logs once and hands back an inert handle instead of aborting.
constexpr int kMaxCounters = 512;
constexpr int kMaxGauges = 128;
constexpr int kMaxHistograms = 128;

int BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // Also catches NaN.
  if (value >= 9.2e18) return kHistogramBuckets - 1;
  const uint64_t v = static_cast<uint64_t>(value);
  int width = 0;
  for (uint64_t x = v; x != 0; x >>= 1) ++width;  // bit_width.
  return std::min(width, kHistogramBuckets - 1);
}

struct HistogramShard {
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<uint32_t>, kHistogramBuckets> buckets{};
};

/// One thread's private slots. The owning thread is the only writer and
/// uses relaxed atomics so the snapshot reader can load concurrently
/// without locks or torn values.
struct Shard {
  std::array<std::atomic<double>, kMaxCounters> counters{};
  std::array<HistogramShard, kMaxHistograms> histograms{};
};

/// Totals carried over from threads that have exited.
struct RetiredTotals {
  std::array<double, kMaxCounters> counters{};
  struct Hist {
    uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::array<uint64_t, kHistogramBuckets> buckets{};
  };
  std::array<Hist, kMaxHistograms> histograms{};
};

struct Impl {
  mutable std::mutex mutex;
  std::map<std::string, int, std::less<>> counter_ids;
  std::map<std::string, int, std::less<>> gauge_ids;
  std::map<std::string, int, std::less<>> histogram_ids;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::array<std::atomic<double>, kMaxGauges> gauges{};
  std::vector<Shard*> live_shards;
  RetiredTotals retired;
};

Impl& GetImpl() {
  static Impl* impl = new Impl;  // Leaked: outlives thread-local dtors.
  return *impl;
}

void RetireShard(Shard* shard) {
  Impl& impl = GetImpl();
  std::lock_guard<std::mutex> lock(impl.mutex);
  for (int i = 0; i < kMaxCounters; ++i) {
    impl.retired.counters[i] +=
        shard->counters[i].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kMaxHistograms; ++i) {
    const HistogramShard& h = shard->histograms[i];
    RetiredTotals::Hist& r = impl.retired.histograms[i];
    r.count += h.count.load(std::memory_order_relaxed);
    r.sum += h.sum.load(std::memory_order_relaxed);
    r.min = std::min(r.min, h.min.load(std::memory_order_relaxed));
    r.max = std::max(r.max, h.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kHistogramBuckets; ++b) {
      r.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
    }
  }
  impl.live_shards.erase(
      std::find(impl.live_shards.begin(), impl.live_shards.end(), shard));
  delete shard;
}

struct TlsShard {
  Shard* shard = nullptr;
  ~TlsShard() {
    if (shard != nullptr) RetireShard(shard);
  }
};

Shard* ThisShard() {
  thread_local TlsShard tls;
  if (tls.shard == nullptr) {
    auto* shard = new Shard;
    Impl& impl = GetImpl();
    std::lock_guard<std::mutex> lock(impl.mutex);
    impl.live_shards.push_back(shard);
    tls.shard = shard;
  }
  return tls.shard;
}

/// Single-writer relaxed accumulate: the owning thread is the only
/// mutator, so load+store (no CAS) is race-free yet never torn for the
/// concurrent snapshot reader.
void RelaxedAdd(std::atomic<double>* slot, double delta) {
  slot->store(slot->load(std::memory_order_relaxed) + delta,
              std::memory_order_relaxed);
}

int Register(std::map<std::string, int, std::less<>>* ids,
             std::vector<std::string>* names, int capacity,
             std::string_view name) {
  Impl& impl = GetImpl();
  std::lock_guard<std::mutex> lock(impl.mutex);
  const auto it = ids->find(name);
  if (it != ids->end()) return it->second;
  if (static_cast<int>(names->size()) >= capacity) {
    SKETCHML_LOG(Warning) << "metrics registry full; dropping metric "
                          << std::string(name);
    return -1;
  }
  const int id = static_cast<int>(names->size());
  names->emplace_back(name);
  ids->emplace(std::string(name), id);
  return id;
}

void AppendJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

void AppendJsonNumber(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  // Integers (the common case: counts, bytes) print without exponent.
  if (v == std::floor(v) && std::abs(v) < 9e15) {
    out << static_cast<long long>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  }
}

}  // namespace

void Counter::Add(double value) const {
  if (id_ < 0 || !MetricsEnabled()) return;
  RelaxedAdd(&ThisShard()->counters[id_], value);
}

void Gauge::Set(double value) const {
  if (id_ < 0 || !MetricsEnabled()) return;
  GetImpl().gauges[id_].store(value, std::memory_order_relaxed);
}

void Gauge::Add(double delta) const {
  if (id_ < 0 || !MetricsEnabled()) return;
  std::atomic<double>& slot = GetImpl().gauges[id_];
  double current = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Record(double value) const {
  if (id_ < 0 || !MetricsEnabled()) return;
  HistogramShard& h = ThisShard()->histograms[id_];
  h.count.store(h.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  RelaxedAdd(&h.sum, value);
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
  std::atomic<uint32_t>& bucket = h.buckets[BucketIndex(value)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter MetricsRegistry::GetCounter(std::string_view name) {
  Impl& impl = GetImpl();
  return Counter(
      Register(&impl.counter_ids, &impl.counter_names, kMaxCounters, name));
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  Impl& impl = GetImpl();
  return Gauge(
      Register(&impl.gauge_ids, &impl.gauge_names, kMaxGauges, name));
}

Histogram MetricsRegistry::GetHistogram(std::string_view name) {
  Impl& impl = GetImpl();
  return Histogram(Register(&impl.histogram_ids, &impl.histogram_names,
                            kMaxHistograms, name));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& impl = GetImpl();
  std::lock_guard<std::mutex> lock(impl.mutex);
  MetricsSnapshot snap;

  snap.counters.resize(impl.counter_names.size());
  for (size_t i = 0; i < impl.counter_names.size(); ++i) {
    snap.counters[i].name = impl.counter_names[i];
    double total = impl.retired.counters[i];
    for (const Shard* shard : impl.live_shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters[i].value = total;
  }

  snap.gauges.resize(impl.gauge_names.size());
  for (size_t i = 0; i < impl.gauge_names.size(); ++i) {
    snap.gauges[i].name = impl.gauge_names[i];
    snap.gauges[i].value = impl.gauges[i].load(std::memory_order_relaxed);
  }

  snap.histograms.resize(impl.histogram_names.size());
  for (size_t i = 0; i < impl.histogram_names.size(); ++i) {
    MetricsSnapshot::HistogramValue& out = snap.histograms[i];
    out.name = impl.histogram_names[i];
    const RetiredTotals::Hist& r = impl.retired.histograms[i];
    out.count = r.count;
    out.sum = r.sum;
    double min = r.min;
    double max = r.max;
    out.buckets = r.buckets;
    for (const Shard* shard : impl.live_shards) {
      const HistogramShard& h = shard->histograms[i];
      out.count += h.count.load(std::memory_order_relaxed);
      out.sum += h.sum.load(std::memory_order_relaxed);
      min = std::min(min, h.min.load(std::memory_order_relaxed));
      max = std::max(max, h.max.load(std::memory_order_relaxed));
      for (int b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
    out.min = out.count > 0 ? min : 0.0;
    out.max = out.count > 0 ? max : 0.0;
  }
  return snap;
}

void MetricsRegistry::Reset() {
  Impl& impl = GetImpl();
  std::lock_guard<std::mutex> lock(impl.mutex);
  impl.retired = RetiredTotals();
  for (auto& gauge : impl.gauges) {
    gauge.store(0.0, std::memory_order_relaxed);
  }
  for (Shard* shard : impl.live_shards) {
    for (auto& counter : shard->counters) {
      counter.store(0.0, std::memory_order_relaxed);
    }
    for (HistogramShard& h : shard->histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      h.max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      for (auto& bucket : h.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
}

double MetricsSnapshot::CounterValueOf(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0.0;
}

double MetricsSnapshot::GaugeValueOf(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void MetricsSnapshot::WriteJsonl(std::ostream& out) const {
  for (const auto& c : counters) {
    if (c.value == 0.0) continue;
    out << "{\"type\":\"counter\",\"name\":";
    AppendJsonString(out, c.name);
    out << ",\"value\":";
    AppendJsonNumber(out, c.value);
    out << "}\n";
  }
  for (const auto& g : gauges) {
    out << "{\"type\":\"gauge\",\"name\":";
    AppendJsonString(out, g.name);
    out << ",\"value\":";
    AppendJsonNumber(out, g.value);
    out << "}\n";
  }
  for (const auto& h : histograms) {
    if (h.count == 0) continue;
    out << "{\"type\":\"histogram\",\"name\":";
    AppendJsonString(out, h.name);
    out << ",\"count\":" << h.count << ",\"sum\":";
    AppendJsonNumber(out, h.sum);
    out << ",\"min\":";
    AppendJsonNumber(out, h.min);
    out << ",\"max\":";
    AppendJsonNumber(out, h.max);
    out << ",\"buckets\":[";
    bool first = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out << ',';
      first = false;
      // `le` is the bucket's exclusive upper bound 2^b.
      out << "{\"le\":";
      AppendJsonNumber(out, std::ldexp(1.0, b));
      out << ",\"count\":" << h.buckets[b] << '}';
    }
    out << "]}\n";
  }
}

}  // namespace sketchml::obs
