#include "common/metrics_registry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <ostream>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sketchml::obs {
namespace {

// Fixed shard capacities: per-thread slots are allocated once, so the
// hot path never resizes (and never takes a lock). Exhausting a table
// logs once and hands back an inert handle instead of aborting. Sized
// for labeled per-entity metrics: a 100-worker simulated cluster emits
// a few counters per worker plus per-codec-per-worker families.
constexpr int kMaxCounters = 4096;
constexpr int kMaxGauges = 256;
constexpr int kMaxHistograms = 512;

int BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // Also catches NaN.
  if (value >= 9.2e18) return kHistogramBuckets - 1;
  const uint64_t v = static_cast<uint64_t>(value);
  int width = 0;
  for (uint64_t x = v; x != 0; x >>= 1) ++width;  // bit_width.
  return std::min(width, kHistogramBuckets - 1);
}

struct HistogramShard {
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<uint32_t>, kHistogramBuckets> buckets{};
};

/// One thread's private slots. The owning thread is the only writer and
/// uses relaxed atomics so the snapshot reader can load concurrently
/// without locks or torn values.
struct Shard {
  std::array<std::atomic<double>, kMaxCounters> counters{};
  std::array<HistogramShard, kMaxHistograms> histograms{};
};

/// Totals carried over from threads that have exited.
struct RetiredTotals {
  std::array<double, kMaxCounters> counters{};
  struct Hist {
    uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::array<uint64_t, kHistogramBuckets> buckets{};
  };
  std::array<Hist, kMaxHistograms> histograms{};
};

struct Impl {
  mutable common::Mutex mutex;
  std::map<std::string, int, std::less<>> counter_ids
      SKETCHML_GUARDED_BY(mutex);
  std::map<std::string, int, std::less<>> gauge_ids SKETCHML_GUARDED_BY(mutex);
  std::map<std::string, int, std::less<>> histogram_ids
      SKETCHML_GUARDED_BY(mutex);
  std::vector<std::string> counter_names SKETCHML_GUARDED_BY(mutex);
  std::vector<std::string> gauge_names SKETCHML_GUARDED_BY(mutex);
  std::vector<std::string> histogram_names SKETCHML_GUARDED_BY(mutex);
  // Atomic slots written by single-writer handles; reads are lock-free.
  std::array<std::atomic<double>, kMaxGauges> gauges{};
  std::vector<Shard*> live_shards SKETCHML_GUARDED_BY(mutex);
  RetiredTotals retired SKETCHML_GUARDED_BY(mutex);
};

Impl& GetImpl() {
  // NOLINTNEXTLINE(sketchml-naked-new): leaked on purpose.
  static Impl* impl = new Impl;  // Leaked: outlives thread-local dtors.
  return *impl;
}

void RetireShard(Shard* shard) {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  for (int i = 0; i < kMaxCounters; ++i) {
    impl.retired.counters[i] +=
        shard->counters[i].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kMaxHistograms; ++i) {
    const HistogramShard& h = shard->histograms[i];
    RetiredTotals::Hist& r = impl.retired.histograms[i];
    r.count += h.count.load(std::memory_order_relaxed);
    r.sum += h.sum.load(std::memory_order_relaxed);
    r.min = std::min(r.min, h.min.load(std::memory_order_relaxed));
    r.max = std::max(r.max, h.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kHistogramBuckets; ++b) {
      r.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
    }
  }
  impl.live_shards.erase(
      std::find(impl.live_shards.begin(), impl.live_shards.end(), shard));
  delete shard;  // NOLINT(sketchml-naked-new): end of TLS retire cycle.
}

struct TlsShard {
  Shard* shard = nullptr;
  ~TlsShard() {
    if (shard != nullptr) RetireShard(shard);
  }
};

Shard* ThisShard() {
  thread_local TlsShard tls;
  if (tls.shard == nullptr) {
    // NOLINTNEXTLINE(sketchml-naked-new): owned by the TLS retire cycle.
    auto* shard = new Shard;
    Impl& impl = GetImpl();
    common::MutexLock lock(impl.mutex);
    impl.live_shards.push_back(shard);
    tls.shard = shard;
  }
  return tls.shard;
}

/// Single-writer relaxed accumulate: the owning thread is the only
/// mutator, so load+store (no CAS) is race-free yet never torn for the
/// concurrent snapshot reader.
void RelaxedAdd(std::atomic<double>* slot, double delta) {
  slot->store(slot->load(std::memory_order_relaxed) + delta,
              std::memory_order_relaxed);
}

int Register(std::map<std::string, int, std::less<>>* ids,
             std::vector<std::string>* names, int capacity,
             std::string_view name) {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  const auto it = ids->find(name);
  if (it != ids->end()) return it->second;
  if (static_cast<int>(names->size()) >= capacity) {
    SKETCHML_LOG(Warning) << "metrics registry full; dropping metric "
                          << std::string(name);
    return -1;
  }
  const int id = static_cast<int>(names->size());
  names->emplace_back(name);
  ids->emplace(std::string(name), id);
  return id;
}

void AppendJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

void AppendJsonNumber(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  // Integers (the common case: counts, bytes) print without exponent.
  if (v == std::floor(v) && std::abs(v) < 9e15) {
    out << static_cast<long long>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  }
}

}  // namespace

std::string LabeledName(std::string_view base, const MetricLabels& labels) {
  if (labels.empty()) return std::string(base);
  std::string out(base);
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += '=';
    out += value;
  }
  out += '}';
  return out;
}

ParsedMetricName ParseMetricName(std::string_view full_name) {
  ParsedMetricName parsed;
  const size_t open = full_name.find('{');
  if (open == std::string_view::npos || full_name.back() != '}') {
    parsed.base = std::string(full_name);
    return parsed;
  }
  parsed.base = std::string(full_name.substr(0, open));
  std::string_view block = full_name.substr(open + 1);
  block.remove_suffix(1);  // '}'
  while (!block.empty()) {
    const size_t comma = block.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? block : block.substr(0, comma);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos) {
      parsed.labels.emplace_back(std::string(pair.substr(0, eq)),
                                 std::string(pair.substr(eq + 1)));
    }
    if (comma == std::string_view::npos) break;
    block.remove_prefix(comma + 1);
  }
  return parsed;
}

std::string_view LabelValue(const MetricLabels& labels, std::string_view key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return {};
}

bool LabelsMatch(const MetricLabels& have, const MetricLabels& want) {
  for (const auto& [key, value] : want) {
    if (LabelValue(have, key) != value) return false;
  }
  return true;
}

void Counter::Add(double value) const {
  if (id_ < 0 || !MetricsEnabled()) return;
  RelaxedAdd(&ThisShard()->counters[id_], value);
}

void Gauge::Set(double value) const {
  if (id_ < 0 || !MetricsEnabled()) return;
  GetImpl().gauges[id_].store(value, std::memory_order_relaxed);
}

void Gauge::Add(double delta) const {
  if (id_ < 0 || !MetricsEnabled()) return;
  std::atomic<double>& slot = GetImpl().gauges[id_];
  double current = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Record(double value) const {
  if (id_ < 0 || !MetricsEnabled()) return;
  HistogramShard& h = ThisShard()->histograms[id_];
  h.count.store(h.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  RelaxedAdd(&h.sum, value);
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
  std::atomic<uint32_t>& bucket = h.buckets[BucketIndex(value)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // NOLINTNEXTLINE(sketchml-naked-new): leaked singleton, safe at exit.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter MetricsRegistry::GetCounter(std::string_view name) {
  Impl& impl = GetImpl();
  return Counter(
      Register(&impl.counter_ids, &impl.counter_names, kMaxCounters, name));
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  Impl& impl = GetImpl();
  return Gauge(
      Register(&impl.gauge_ids, &impl.gauge_names, kMaxGauges, name));
}

Histogram MetricsRegistry::GetHistogram(std::string_view name) {
  Impl& impl = GetImpl();
  return Histogram(Register(&impl.histogram_ids, &impl.histogram_names,
                            kMaxHistograms, name));
}

Counter MetricsRegistry::GetCounter(std::string_view base,
                                    const MetricLabels& labels) {
  return GetCounter(LabeledName(base, labels));
}

Gauge MetricsRegistry::GetGauge(std::string_view base,
                                const MetricLabels& labels) {
  return GetGauge(LabeledName(base, labels));
}

Histogram MetricsRegistry::GetHistogram(std::string_view base,
                                        const MetricLabels& labels) {
  return GetHistogram(LabeledName(base, labels));
}

namespace {
// Seam to the sketch library (see metrics_registry.h). Plain atomics so
// installation from the sketch registry's first-use path needs no lock.
std::atomic<SketchSummarySource> g_sketch_summary_source{nullptr};
std::atomic<SketchResetHook> g_sketch_reset_hook{nullptr};
}  // namespace

void SetSketchSummarySource(SketchSummarySource source) {
  g_sketch_summary_source.store(source, std::memory_order_release);
}

std::vector<SketchHistogramSummary> CollectSketchSummaries() {
  const SketchSummarySource source =
      g_sketch_summary_source.load(std::memory_order_acquire);
  if (source == nullptr) return {};
  return source();
}

void SetSketchResetHook(SketchResetHook hook) {
  g_sketch_reset_hook.store(hook, std::memory_order_release);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& impl = GetImpl();
  MetricsSnapshot snap;
  // The sketch registry has its own lock; collect outside ours so the two
  // never nest.
  snap.sketches = CollectSketchSummaries();
  common::MutexLock lock(impl.mutex);

  snap.counters.resize(impl.counter_names.size());
  for (size_t i = 0; i < impl.counter_names.size(); ++i) {
    snap.counters[i].name = impl.counter_names[i];
    double total = impl.retired.counters[i];
    for (const Shard* shard : impl.live_shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters[i].value = total;
  }

  snap.gauges.resize(impl.gauge_names.size());
  for (size_t i = 0; i < impl.gauge_names.size(); ++i) {
    snap.gauges[i].name = impl.gauge_names[i];
    snap.gauges[i].value = impl.gauges[i].load(std::memory_order_relaxed);
  }

  snap.histograms.resize(impl.histogram_names.size());
  for (size_t i = 0; i < impl.histogram_names.size(); ++i) {
    MetricsSnapshot::HistogramValue& out = snap.histograms[i];
    out.name = impl.histogram_names[i];
    const RetiredTotals::Hist& r = impl.retired.histograms[i];
    out.count = r.count;
    out.sum = r.sum;
    double min = r.min;
    double max = r.max;
    out.buckets = r.buckets;
    for (const Shard* shard : impl.live_shards) {
      const HistogramShard& h = shard->histograms[i];
      out.count += h.count.load(std::memory_order_relaxed);
      out.sum += h.sum.load(std::memory_order_relaxed);
      min = std::min(min, h.min.load(std::memory_order_relaxed));
      max = std::max(max, h.max.load(std::memory_order_relaxed));
      for (int b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
    out.min = out.count > 0 ? min : 0.0;
    out.max = out.count > 0 ? max : 0.0;
  }
  return snap;
}

void MetricsRegistry::Reset() {
  Impl& impl = GetImpl();
  // Clear sketch slots first, outside our lock (the hook takes the sketch
  // registry's own lock and must never nest with ours).
  if (const SketchResetHook hook =
          g_sketch_reset_hook.load(std::memory_order_acquire)) {
    hook();
  }
  common::MutexLock lock(impl.mutex);
  impl.retired = RetiredTotals();
  for (auto& gauge : impl.gauges) {
    gauge.store(0.0, std::memory_order_relaxed);
  }
  for (Shard* shard : impl.live_shards) {
    for (auto& counter : shard->counters) {
      counter.store(0.0, std::memory_order_relaxed);
    }
    for (HistogramShard& h : shard->histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      h.max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      for (auto& bucket : h.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
  }
}

double MetricsSnapshot::CounterValueOf(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0.0;
}

double MetricsSnapshot::GaugeValueOf(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

double MetricsSnapshot::HistogramValue::ValueAtQuantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[b]);
    if (cumulative + in_bucket >= target) {
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      const double hi = std::ldexp(1.0, b);
      const double frac = (target - cumulative) / in_bucket;
      return std::clamp(lo + (hi - lo) * frac, min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

double MetricsSnapshot::SumCounters(std::string_view base,
                                    const MetricLabels& want) const {
  double total = 0.0;
  for (const auto& c : counters) {
    // Cheap pre-filter: a matching name starts with `base` followed by
    // either end-of-string or a '{' label block.
    if (c.name.size() < base.size() ||
        std::string_view(c.name).substr(0, base.size()) != base) {
      continue;
    }
    if (c.name.size() > base.size() && c.name[base.size()] != '{') continue;
    const ParsedMetricName parsed = ParseMetricName(c.name);
    if (parsed.base == base && LabelsMatch(parsed.labels, want)) {
      total += c.value;
    }
  }
  return total;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const SketchHistogramSummary* MetricsSnapshot::FindSketch(
    std::string_view name) const {
  for (const auto& s : sketches) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

namespace {

/// Emits `,"labels":{...}` for canonical labeled names, nothing for
/// plain ones.
void AppendParsedLabels(std::ostream& out, const std::string& name) {
  const ParsedMetricName parsed = ParseMetricName(name);
  if (parsed.labels.empty()) return;
  out << ",\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : parsed.labels) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, key);
    out << ':';
    AppendJsonString(out, value);
  }
  out << '}';
}

}  // namespace

void MetricsSnapshot::WriteJsonl(std::ostream& out) const {
  for (const auto& c : counters) {
    if (c.value == 0.0) continue;
    out << "{\"type\":\"counter\",\"name\":";
    AppendJsonString(out, c.name);
    out << ",\"value\":";
    AppendJsonNumber(out, c.value);
    AppendParsedLabels(out, c.name);
    out << "}\n";
  }
  for (const auto& g : gauges) {
    out << "{\"type\":\"gauge\",\"name\":";
    AppendJsonString(out, g.name);
    out << ",\"value\":";
    AppendJsonNumber(out, g.value);
    AppendParsedLabels(out, g.name);
    out << "}\n";
  }
  for (const auto& h : histograms) {
    if (h.count == 0) continue;
    out << "{\"type\":\"histogram\",\"name\":";
    AppendJsonString(out, h.name);
    out << ",\"count\":" << h.count << ",\"sum\":";
    AppendJsonNumber(out, h.sum);
    out << ",\"min\":";
    AppendJsonNumber(out, h.min);
    out << ",\"max\":";
    AppendJsonNumber(out, h.max);
    out << ",\"buckets\":[";
    bool first = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out << ',';
      first = false;
      // `le` is the bucket's exclusive upper bound 2^b.
      out << "{\"le\":";
      AppendJsonNumber(out, std::ldexp(1.0, b));
      out << ",\"count\":" << h.buckets[b] << '}';
    }
    out << "]";
    AppendParsedLabels(out, h.name);
    out << "}\n";
  }
  for (const auto& s : sketches) {
    if (s.count == 0) continue;
    out << "{\"type\":\"sketch_histogram\",\"name\":";
    AppendJsonString(out, s.name);
    out << ",\"count\":" << s.count << ",\"min\":";
    AppendJsonNumber(out, s.min);
    out << ",\"max\":";
    AppendJsonNumber(out, s.max);
    out << ",\"eps\":";
    AppendJsonNumber(out, s.eps);
    const struct {
      const char* key;
      const SketchQuantile& q;
    } grid[] = {{"p50", s.p50}, {"p90", s.p90}, {"p99", s.p99},
                {"p999", s.p999}, {"wp50", s.wp50}, {"wp99", s.wp99}};
    for (const auto& [key, q] : grid) {
      out << ",\"" << key << "\":";
      AppendJsonNumber(out, q.value);
      out << ",\"" << key << "_lo\":";
      AppendJsonNumber(out, q.lo);
      out << ",\"" << key << "_hi\":";
      AppendJsonNumber(out, q.hi);
    }
    out << ",\"window_count\":" << s.window_count
        << ",\"windows\":" << s.windows;
    AppendParsedLabels(out, s.name);
    out << "}\n";
  }
}

}  // namespace sketchml::obs
