#include "common/simd.h"

// AVX2 implementations of the batch codec kernels. This translation unit
// is the only place (together with the other src/common/simd* files) where
// raw intrinsics are allowed — the `sketchml-raw-simd` lint rule keeps the
// dispatch seam the repo's single SIMD surface.
//
// The file is compiled with `-mavx2` only when CMake detects compiler
// support (SKETCHML_SIMD_AVX2_COMPILED); otherwise it degrades to a stub
// whose Avx2Kernels() returns nullptr and the dispatcher never leaves the
// scalar path. Every kernel here must be bit-identical to its scalar
// reference in simd.cc — pinned by tests/simd_differential_test.cc.

#if defined(SKETCHML_SIMD_AVX2_COMPILED)

#include <immintrin.h>

#include <cstring>
#include <limits>

#include "common/bit_util.h"

namespace sketchml::common::simd {
namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Bucket search: branchless predicated search over the sorted split array.
//
// pos(v) := #splits s with !(v < s)  ==  upper_bound(splits, v) - splits
// (the predicate is monotone over a sorted array, and NaN v yields pos ==
// num_splits, exactly like upper_bound's comparator).
//
// Two-level scheme: splits are padded to chunks of 8 (+inf padding) and
// each chunk's maximum becomes a pivot. Stage 1 counts satisfied pivots
// for 4 values at once (cf = number of fully-satisfied chunks); stage 2
// resolves the one partial chunk with two compares and a popcount. The
// predicated compare-and-accumulate never branches on the data, so the
// ~50%-mispredict binary search this replaces is the only victim.
// ---------------------------------------------------------------------------

constexpr size_t kChunk = 8;
// Covers every wire configuration (<= 257 splits) with a stack buffer;
// larger split arrays (possible through the public quantizer API) fall
// back to the scalar kernel.
constexpr size_t kMaxSplits = 2048;
constexpr size_t kMaxChunks = kMaxSplits / kChunk + 1;

size_t BucketSearchAvx2(const double* splits, size_t num_splits,
                        const double* values, size_t count, uint16_t* out) {
  if (num_splits < 2 || num_splits > kMaxSplits) {
    return kScalarKernels.bucket_search(splits, num_splits, values, count,
                                        out);
  }
  const size_t num_chunks = (num_splits + kChunk - 1) / kChunk;
  alignas(32) double padded[kMaxChunks * kChunk];
  alignas(32) double pivots[kMaxChunks];
  std::memcpy(padded, splits, num_splits * sizeof(double));
  for (size_t i = num_splits; i < num_chunks * kChunk; ++i) {
    padded[i] = std::numeric_limits<double>::infinity();
  }
  for (size_t j = 0; j < num_chunks; ++j) {
    pivots[j] = padded[j * kChunk + kChunk - 1];
  }

  const int top = static_cast<int>(num_splits) - 2;  // num_buckets - 1
  size_t clamped_count = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    // Stage 1: per-lane count of pivots with !(v < pivot). An all-ones
    // compare mask is -1 as an integer, so subtracting it accumulates.
    __m256i full_chunks = _mm256_setzero_si256();
    for (size_t j = 0; j < num_chunks; ++j) {
      const __m256d pivot = _mm256_broadcast_sd(&pivots[j]);
      const __m256d mask = _mm256_cmp_pd(v, pivot, _CMP_NLT_UQ);
      full_chunks =
          _mm256_sub_epi64(full_chunks, _mm256_castpd_si256(mask));
    }
    alignas(32) int64_t cf[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(cf), full_chunks);
    // Stage 2: resolve each lane's partial chunk.
    for (int lane = 0; lane < 4; ++lane) {
      const size_t chunk = static_cast<size_t>(cf[lane]);
      size_t pos;
      if (chunk >= num_chunks) {
        // Every pivot satisfied: only possible for NaN (or a +inf value
        // meeting the +inf pad pivot) — upper_bound lands at the end.
        pos = num_splits;
      } else {
        const __m256d vv = _mm256_broadcast_sd(values + i + lane);
        const __m256d lo = _mm256_load_pd(padded + chunk * kChunk);
        const __m256d hi = _mm256_load_pd(padded + chunk * kChunk + 4);
        const int mask =
            _mm256_movemask_pd(_mm256_cmp_pd(vv, lo, _CMP_NLT_UQ)) |
            (_mm256_movemask_pd(_mm256_cmp_pd(vv, hi, _CMP_NLT_UQ)) << 4);
        pos = chunk * kChunk +
              static_cast<size_t>(__builtin_popcount(
                  static_cast<unsigned>(mask)));
      }
      const int idx = static_cast<int>(pos) - 1;
      const int clamped = idx < 0 ? 0 : (idx > top ? top : idx);
      clamped_count += static_cast<size_t>(clamped != idx);
      out[i + lane] = static_cast<uint16_t>(clamped);
    }
  }
  if (i < count) {
    clamped_count += kScalarKernels.bucket_search(
        splits, num_splits, values + i, count - i, out + i);
  }
  return clamped_count;
}

// ---------------------------------------------------------------------------
// Sketch hashing: 4-lane MurmurMix64 plus an exact division-free modulo.
// ---------------------------------------------------------------------------

// Low 64 bits of a 64x64 multiply per lane (AVX2 has only 32x32->64).
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i hi = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

inline __m256i XorShift33(__m256i h) {
  return _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
}

// Exact n % d without the hardware divider: q_hat = floor(n * magic /
// 2^(64+shift)) with magic = floor(2^(64+shift) / d) underestimates
// floor(n/d) by at most a couple, so a subtract-correct loop lands the
// exact remainder. Bit-identical to `%` for every n (differential-tested).
struct InvariantDivisor {
  uint64_t d;
  uint64_t magic = 0;
  int shift = 0;
  bool pow2;

  explicit InvariantDivisor(uint64_t divisor)
      : d(divisor), pow2((divisor & (divisor - 1)) == 0) {
    if (!pow2) {
      shift = 63 - __builtin_clzll(d);
      magic = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(1) << (64 + shift)) / d);
    }
  }

  uint64_t Mod(uint64_t n) const {
    if (pow2) return n & (d - 1);
    const uint64_t q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(n) * magic) >> 64) >> shift;
    uint64_t r = n - q * d;
    while (r >= d) r -= d;
    return r;
  }
};

void HashBucketsAvx2(const uint64_t* keys, size_t count, uint64_t seed,
                     uint64_t num_buckets, uint32_t* out) {
  const InvariantDivisor div(num_buckets);
  const __m256i seed_mix =
      _mm256_set1_epi64x(static_cast<int64_t>(seed * 0x9e3779b97f4a7c15ULL));
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<int64_t>(0xff51afd7ed558ccdULL));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<int64_t>(0xc4ceb9fe1a85ec53ULL));
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    h = _mm256_xor_si256(h, seed_mix);
    h = XorShift33(h);
    h = MulLo64(h, c1);
    h = XorShift33(h);
    h = MulLo64(h, c2);
    h = XorShift33(h);
    alignas(32) uint64_t hashed[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(hashed), h);
    out[i + 0] = static_cast<uint32_t>(div.Mod(hashed[0]));
    out[i + 1] = static_cast<uint32_t>(div.Mod(hashed[1]));
    out[i + 2] = static_cast<uint32_t>(div.Mod(hashed[2]));
    out[i + 3] = static_cast<uint32_t>(div.Mod(hashed[3]));
  }
  if (i < count) {
    kScalarKernels.hash_buckets(keys + i, count - i, seed, num_buckets,
                                out + i);
  }
}

// ---------------------------------------------------------------------------
// Delta scan: vector deltas, branchless widths via three unsigned
// threshold compares (1 + [d>0xff] + [d>0xffff] + [d>0xffffff] bytes).
// ---------------------------------------------------------------------------

DeltaScanStatus DeltaScanAvx2(const uint64_t* keys, size_t count,
                              uint32_t* deltas, uint8_t* widths,
                              size_t* total_delta_bytes) {
  if (count == 0) {
    *total_delta_bytes = 0;
    return DeltaScanStatus::kOk;
  }
  // First element scalar (its "previous" is the implicit 0).
  if (keys[0] > 0xffffffffULL) return DeltaScanStatus::kDeltaTooWide;
  deltas[0] = static_cast<uint32_t>(keys[0]);
  widths[0] = static_cast<uint8_t>(BytesNeeded(keys[0]));
  size_t total = widths[0];

  const __m256i sign = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000000000000000ULL));
  const __m256i wide_bias = _mm256_set1_epi64x(
      static_cast<int64_t>(0xffffffffULL ^ 0x8000000000000000ULL));
  const __m256i t1 = _mm256_set1_epi64x(0xff);
  const __m256i t2 = _mm256_set1_epi64x(0xffff);
  const __m256i t3 = _mm256_set1_epi64x(0xffffff);
  const __m256i one = _mm256_set1_epi64x(1);
  __m256i violation = _mm256_setzero_si256();

  size_t i = 1;
  for (; i + 4 <= count; i += 4) {
    const __m256i cur = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    const __m256i prev = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i - 1));
    const __m256i d = _mm256_sub_epi64(cur, prev);
    // Unsigned compares via the sign-flip trick. Not strictly
    // increasing, or a delta wider than 4 bytes, poisons `violation`;
    // the scalar kernel then re-derives the precise error kind.
    const __m256i cur_b = _mm256_xor_si256(cur, sign);
    const __m256i prev_b = _mm256_xor_si256(prev, sign);
    const __m256i increasing = _mm256_cmpgt_epi64(cur_b, prev_b);
    const __m256i too_wide =
        _mm256_cmpgt_epi64(_mm256_xor_si256(d, sign), wide_bias);
    violation = _mm256_or_si256(
        violation,
        _mm256_or_si256(too_wide, _mm256_andnot_si256(increasing,
                                                      _mm256_set1_epi64x(-1))));
    // Valid deltas fit 32 bits, so the signed threshold compares are safe
    // (garbage lanes only occur on the violation path, which discards
    // every output).
    __m256i w = one;
    w = _mm256_sub_epi64(w, _mm256_cmpgt_epi64(d, t1));
    w = _mm256_sub_epi64(w, _mm256_cmpgt_epi64(d, t2));
    w = _mm256_sub_epi64(w, _mm256_cmpgt_epi64(d, t3));
    alignas(32) uint64_t dd[4];
    alignas(32) uint64_t ww[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(dd), d);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ww), w);
    for (int lane = 0; lane < 4; ++lane) {
      deltas[i + lane] = static_cast<uint32_t>(dd[lane]);
      widths[i + lane] = static_cast<uint8_t>(ww[lane]);
      total += static_cast<size_t>(ww[lane]);
    }
  }
  if (_mm256_movemask_epi8(violation) != 0) {
    // Rare error path: rerun the scalar kernel for the exact error kind
    // (and its first-offender semantics).
    return kScalarKernels.delta_scan(keys, count, deltas, widths,
                                     total_delta_bytes);
  }
  uint64_t previous = keys[i - 1];
  for (; i < count; ++i) {
    const uint64_t key = keys[i];
    if (key <= previous) return DeltaScanStatus::kNotIncreasing;
    const uint64_t delta = key - previous;
    if (delta > 0xffffffffULL) return DeltaScanStatus::kDeltaTooWide;
    const int nbytes = BytesNeeded(delta);
    deltas[i] = static_cast<uint32_t>(delta);
    widths[i] = static_cast<uint8_t>(nbytes);
    total += static_cast<size_t>(nbytes);
    previous = key;
  }
  *total_delta_bytes = total;
  return DeltaScanStatus::kOk;
}

const Kernels kAvx2Kernels = {
    &BucketSearchAvx2,
    &HashBucketsAvx2,
    &DeltaScanAvx2,
};

}  // namespace

const Kernels* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace internal
}  // namespace sketchml::common::simd

#else  // !SKETCHML_SIMD_AVX2_COMPILED

namespace sketchml::common::simd::internal {

const Kernels* Avx2Kernels() { return nullptr; }

}  // namespace sketchml::common::simd::internal

#endif  // SKETCHML_SIMD_AVX2_COMPILED
