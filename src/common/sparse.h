#ifndef SKETCHML_COMMON_SPARSE_H_
#define SKETCHML_COMMON_SPARSE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sketchml::common {

/// One nonzero element of a sparse gradient: dimension index and value.
/// This is the `(k_j, v_j)` pair of the paper's data model (§2.2).
struct GradientPair {
  uint64_t key = 0;
  double value = 0.0;

  friend bool operator==(const GradientPair& a, const GradientPair& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// A sparse gradient vector: nonzero entries sorted by ascending key.
/// Codecs require (and preserve) the sort order; `SortByKey` restores it.
using SparseGradient = std::vector<GradientPair>;

/// Sorts `grad` by ascending key.
inline void SortByKey(SparseGradient* grad) {
  std::sort(grad->begin(), grad->end(),
            [](const GradientPair& a, const GradientPair& b) {
              return a.key < b.key;
            });
}

/// True if keys are strictly increasing (the codec precondition).
inline bool IsSortedByKey(const SparseGradient& grad) {
  for (size_t i = 1; i < grad.size(); ++i) {
    if (grad[i - 1].key >= grad[i].key) return false;
  }
  return true;
}

/// Extracts just the values.
inline std::vector<double> Values(const SparseGradient& grad) {
  std::vector<double> out;
  out.reserve(grad.size());
  for (const auto& p : grad) out.push_back(p.value);
  return out;
}

/// Extracts just the keys.
inline std::vector<uint64_t> Keys(const SparseGradient& grad) {
  std::vector<uint64_t> out;
  out.reserve(grad.size());
  for (const auto& p : grad) out.push_back(p.key);
  return out;
}

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_SPARSE_H_
