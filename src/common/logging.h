#ifndef SKETCHML_COMMON_LOGGING_H_
#define SKETCHML_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace sketchml::common {

/// Severity of a log line. `kFatal` aborts the process after logging.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4
};

/// Sets the minimum severity that is emitted to stderr. Defaults to kInfo.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal {

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement whose severity is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace sketchml::common

#define SKETCHML_LOG(level)                                      \
  ::sketchml::common::internal::LogMessage(                      \
      ::sketchml::common::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Guards programmer
/// errors (broken invariants), not recoverable failures.
#define SKETCHML_CHECK(condition)                                       \
  (condition) ? (void)0                                                 \
              : ::sketchml::common::internal::Voidify() &               \
                    SKETCHML_LOG(Fatal) << "Check failed: " #condition " "

#define SKETCHML_CHECK_EQ(a, b) SKETCHML_CHECK((a) == (b))
#define SKETCHML_CHECK_NE(a, b) SKETCHML_CHECK((a) != (b))
#define SKETCHML_CHECK_LT(a, b) SKETCHML_CHECK((a) < (b))
#define SKETCHML_CHECK_LE(a, b) SKETCHML_CHECK((a) <= (b))
#define SKETCHML_CHECK_GT(a, b) SKETCHML_CHECK((a) > (b))
#define SKETCHML_CHECK_GE(a, b) SKETCHML_CHECK((a) >= (b))

/// Debug-only contract assertion for structural invariants that are too
/// expensive (or too hot) to verify on every release-mode call: GK band
/// bounds after compress, KLL level-weight conservation, byte-cursor
/// accounting, thread-pool task counts.
///
/// Enabled by building with -DSKETCHML_DCHECK=ON (the `checked` CMake
/// preset). In release builds the condition is type-checked but NEVER
/// evaluated — zero overhead, and runs stay bit-identical to a build
/// without the macro (pinned by tests/dcheck_test.cc and the golden
/// regression gate). Conditions must therefore be side-effect free.
///
/// Use SKETCHML_CHECK for cheap preconditions that must also hold in
/// production; use SKETCHML_DCHECK for O(n) invariant walks and
/// redundant-by-construction consistency checks.
#ifndef SKETCHML_DCHECK_ENABLED
#define SKETCHML_DCHECK_ENABLED 0
#endif

#if SKETCHML_DCHECK_ENABLED
#define SKETCHML_DCHECK(condition)                                      \
  (condition) ? (void)0                                                 \
              : ::sketchml::common::internal::Voidify() &               \
                    SKETCHML_LOG(Fatal) << "DCheck failed: " #condition " "
#else
// Dead `while (false)` keeps the condition (and any streamed operands)
// type-checked so disabled DCHECKs cannot bit-rot, while guaranteeing the
// expression is never evaluated.
#define SKETCHML_DCHECK(condition) \
  while (false) SKETCHML_CHECK(condition)
#endif

#define SKETCHML_DCHECK_EQ(a, b) SKETCHML_DCHECK((a) == (b))
#define SKETCHML_DCHECK_NE(a, b) SKETCHML_DCHECK((a) != (b))
#define SKETCHML_DCHECK_LT(a, b) SKETCHML_DCHECK((a) < (b))
#define SKETCHML_DCHECK_LE(a, b) SKETCHML_DCHECK((a) <= (b))
#define SKETCHML_DCHECK_GT(a, b) SKETCHML_DCHECK((a) > (b))
#define SKETCHML_DCHECK_GE(a, b) SKETCHML_DCHECK((a) >= (b))

namespace sketchml::common::internal {

/// Lets SKETCHML_CHECK discard the LogMessage expression's value so the
/// ternary above type-checks.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace sketchml::common::internal

#endif  // SKETCHML_COMMON_LOGGING_H_
