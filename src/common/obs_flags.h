#ifndef SKETCHML_COMMON_OBS_FLAGS_H_
#define SKETCHML_COMMON_OBS_FLAGS_H_

#include <string>

#include "common/flags.h"
#include "common/result.h"
#include "common/status.h"

namespace sketchml::obs {

/// Resolved observability configuration for a tool run.
struct ObsConfig {
  bool metrics = false;
  bool tracing = false;
  std::string trace_out;    // Chrome-trace JSON path ("" = no file).
  std::string metrics_out;  // Metrics JSONL path ("" = no file).
};

/// Reads the shared observability flags and applies them process-wide:
///
///   --obs=auto|on|off  auto (default) enables observability iff an
///                      output path is given; on forces recording even
///                      without outputs; off disables everything (output
///                      flags are then ignored with a warning).
///   --trace-out=PATH   write a Chrome trace_event JSON (*.trace.json)
///   --metrics-out=PATH write a metrics dump (*.metrics.jsonl)
///
/// Tracing is enabled only when a trace is actually requested; metrics
/// are enabled for any of the three opt-ins.
common::Result<ObsConfig> ConfigureFromFlags(const common::FlagParser& flags);

/// Writes the files requested by `config` (no-ops for empty paths).
common::Status WriteObsOutputs(const ObsConfig& config);

}  // namespace sketchml::obs

#endif  // SKETCHML_COMMON_OBS_FLAGS_H_
