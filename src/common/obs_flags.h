#ifndef SKETCHML_COMMON_OBS_FLAGS_H_
#define SKETCHML_COMMON_OBS_FLAGS_H_

#include <memory>
#include <string>

#include "common/flags.h"
#include "common/metrics_sampler.h"
#include "common/result.h"
#include "common/status.h"

namespace sketchml::obs {

/// Resolved observability configuration for a tool run.
struct ObsConfig {
  bool metrics = false;
  bool tracing = false;
  std::string trace_out;    // Chrome-trace JSON path ("" = no file).
  std::string metrics_out;  // Metrics JSONL path ("" = no file).
  std::string series_out;   // Time-series JSONL path ("" = no sampler).
  double sample_interval = 0.0;  // Seconds between periodic samples
                                 // (0 = epoch-boundary samples only).
  std::string trace_categories;  // CSV span-category filter ("" = all).
  int trace_sample_every = 1;    // Causal batch-tree sampling stride.
  std::string metrics_format = "jsonl";  // --metrics-out format:
                                         // "jsonl" or "prom".

  /// Compact description of what this config records ("metrics,trace",
  /// "metrics", or "off") — written into sampler run headers so report
  /// diffs can see which obs features were live.
  std::string FlagSet() const;
};

/// Reads the shared observability flags and applies them process-wide:
///
///   --obs=auto|on|off    auto (default) enables observability iff an
///                        output path is given; on forces recording even
///                        without outputs; off disables everything
///                        (output flags are then ignored with a warning).
///   --trace-out=PATH     write a Chrome trace_event JSON (*.trace.json)
///   --metrics-out=PATH   write a metrics dump (*.metrics.jsonl)
///   --series-out=PATH    stream a metrics time-series (*.series.jsonl)
///                        via MetricsSampler
///   --sample-interval=S  periodic sample cadence in seconds (default 0:
///                        only epoch-boundary samples)
///   --trace-categories=CSV  record only the listed span categories
///                        (e.g. "trainer,network"; default: all). Applied
///                        process-wide via SetTraceCategories.
///   --trace-sample-every=N  record the per-batch causal tree only for
///                        every Nth global batch (default 1: all batches;
///                        see TrainerConfig::trace_sample_every). Parsed
///                        here, applied by the tool's trainer config.
///   --metrics-format=jsonl|prom  format of the --metrics-out dump:
///                        JSONL (default) or Prometheus text exposition.
///
/// Tracing is enabled only when a trace is actually requested; metrics
/// are enabled for any of the opt-ins (including --series-out).
common::Result<ObsConfig> ConfigureFromFlags(const common::FlagParser& flags);

/// Starts the time-series sampler requested by `config` (null, OK result
/// when `series_out` is empty). `metadata` is written into the run
/// header; callers typically record their parsed flags in it.
common::Result<std::unique_ptr<MetricsSampler>> StartSamplerFromConfig(
    const ObsConfig& config, RunMetadata metadata);

/// Writes the files requested by `config` (no-ops for empty paths).
common::Status WriteObsOutputs(const ObsConfig& config);

}  // namespace sketchml::obs

#endif  // SKETCHML_COMMON_OBS_FLAGS_H_
