#ifndef SKETCHML_COMMON_MURMUR_HASH_H_
#define SKETCHML_COMMON_MURMUR_HASH_H_

#include <cstddef>
#include <cstdint>

namespace sketchml::common {

/// MurmurHash3 x86_32 over an arbitrary byte buffer.
uint32_t MurmurHash3_32(const void* data, size_t len, uint32_t seed);

/// MurmurHash3 finalizer applied to a 64-bit key. Cheap, well-mixed hash
/// for integer gradient keys; distinct `seed`s give (empirically)
/// independent hash functions.
uint64_t MurmurMix64(uint64_t key, uint64_t seed);

/// A seeded hash function mapping 64-bit keys onto `[0, buckets)`.
///
/// This is the hash family used by all sketches (Count-Min, MinMaxSketch).
/// Two `HashFunction`s with different seeds behave as independent members
/// of the family.
class HashFunction {
 public:
  HashFunction() : seed_(0) {}
  explicit HashFunction(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// Returns a well-mixed 64-bit hash of `key`.
  uint64_t Hash(uint64_t key) const { return MurmurMix64(key, seed_); }

  /// Returns a bucket index in `[0, buckets)`. `buckets` must be positive.
  uint64_t Bucket(uint64_t key, uint64_t buckets) const {
    return Hash(key) % buckets;
  }

 private:
  uint64_t seed_;
};

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_MURMUR_HASH_H_
