#ifndef SKETCHML_COMMON_METRICS_REGISTRY_H_
#define SKETCHML_COMMON_METRICS_REGISTRY_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/obs.h"

namespace sketchml::obs {

/// Number of power-of-two histogram buckets. Bucket `i` counts values in
/// [2^(i-1), 2^i) (bucket 0 holds everything < 1). Nanosecond latencies
/// and message byte sizes both fit comfortably in 64 buckets.
inline constexpr int kHistogramBuckets = 64;

/// Handle to a named monotonically increasing sum. Cheap to copy; `Add`
/// is a no-op until the handle has been obtained from the registry and
/// while `MetricsEnabled()` is false. Values are doubles so byte counts
/// and second sums share one type (integers stay exact below 2^53).
class Counter {
 public:
  Counter() = default;
  void Add(double value) const;
  void Increment() const { Add(1.0); }

 private:
  friend class MetricsRegistry;
  explicit Counter(int id) : id_(id) {}
  int id_ = -1;
};

/// Handle to a named last-value metric with atomic add (for level-style
/// series such as the thread-pool queue depth).
class Gauge {
 public:
  Gauge() = default;
  void Set(double value) const;
  void Add(double delta) const;

 private:
  friend class MetricsRegistry;
  explicit Gauge(int id) : id_(id) {}
  int id_ = -1;
};

/// Handle to a named fixed-bucket (power-of-two) histogram tracking
/// count/sum/min/max plus the bucket counts.
class Histogram {
 public:
  Histogram() = default;
  void Record(double value) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(int id) : id_(id) {}
  int id_ = -1;
};

/// Point-in-time aggregation of every registered metric (all thread
/// shards summed). Plain data: safe to copy, diff, and serialize.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    double value = 0.0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // Meaningful only when count > 0.
    double max = 0.0;
    std::array<uint64_t, kHistogramBuckets> buckets{};
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of the named counter/gauge, 0 when absent.
  double CounterValueOf(std::string_view name) const;
  double GaugeValueOf(std::string_view name) const;
  const HistogramValue* FindHistogram(std::string_view name) const;

  /// Writes one JSON object per line ("*.metrics.jsonl"); zero-valued
  /// counters and empty histograms are skipped to keep dumps short.
  void WriteJsonl(std::ostream& out) const;
};

/// Process-wide registry of named counters, gauges, and histograms.
///
/// Writes go to per-thread shards (relaxed atomics, no locks on the hot
/// path); `Snapshot()` locks the registry and sums live shards plus the
/// retained totals of exited threads. Metric registration is idempotent:
/// the same name always yields a handle to the same slot.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  Histogram GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (names stay registered). Callers must ensure no
  /// concurrent recording — intended for test setup and between bench
  /// repetitions, not for steady-state use.
  void Reset();
};

}  // namespace sketchml::obs

#endif  // SKETCHML_COMMON_METRICS_REGISTRY_H_
