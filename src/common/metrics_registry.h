#ifndef SKETCHML_COMMON_METRICS_REGISTRY_H_
#define SKETCHML_COMMON_METRICS_REGISTRY_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/obs.h"

namespace sketchml::obs {

/// Number of power-of-two histogram buckets. Bucket `i` counts values in
/// [2^(i-1), 2^i) (bucket 0 holds everything < 1). Nanosecond latencies
/// and message byte sizes both fit comfortably in 64 buckets.
inline constexpr int kHistogramBuckets = 64;

/// Ordered key=value label pairs attributing a metric to an entity
/// (worker=3, server=0, codec=sketchml, phase=encode). Labels are part
/// of the metric's identity: each distinct label combination is its own
/// independently sharded slot, so the cardinality must stay small and
/// fixed (entities of the simulated cluster, not per-request values).
/// Keys and values must not contain '{', '}', '=', or ','.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical labeled metric name: "base{k1=v1,k2=v2}" with labels in the
/// given order (an empty list returns `base` unchanged). This string is
/// the registry key, what snapshots carry, and what dumps print.
std::string LabeledName(std::string_view base, const MetricLabels& labels);

/// Splits a canonical labeled name back into its base and labels. Names
/// without a label block parse as {name, {}}.
struct ParsedMetricName {
  std::string base;
  MetricLabels labels;
};
ParsedMetricName ParseMetricName(std::string_view full_name);

/// Value of `key` within `labels`, or "" when absent.
std::string_view LabelValue(const MetricLabels& labels, std::string_view key);

/// True when every pair of `want` appears in `have` (subset match).
bool LabelsMatch(const MetricLabels& have, const MetricLabels& want);

/// Handle to a named monotonically increasing sum. Cheap to copy; `Add`
/// is a no-op until the handle has been obtained from the registry and
/// while `MetricsEnabled()` is false. Values are doubles so byte counts
/// and second sums share one type (integers stay exact below 2^53).
class Counter {
 public:
  Counter() = default;
  void Add(double value) const;
  void Increment() const { Add(1.0); }

 private:
  friend class MetricsRegistry;
  explicit Counter(int id) : id_(id) {}
  int id_ = -1;
};

/// Handle to a named last-value metric with atomic add (for level-style
/// series such as the thread-pool queue depth).
class Gauge {
 public:
  Gauge() = default;
  void Set(double value) const;
  void Add(double delta) const;

 private:
  friend class MetricsRegistry;
  explicit Gauge(int id) : id_(id) {}
  int id_ = -1;
};

/// Handle to a named fixed-bucket (power-of-two) histogram tracking
/// count/sum/min/max plus the bucket counts.
class Histogram {
 public:
  Histogram() = default;
  void Record(double value) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(int id) : id_(id) {}
  int id_ = -1;
};

/// One estimated quantile from a sketch-backed histogram together with
/// its sketch-error window: the true order statistic at rank `q` lies in
/// [value at q-2ε, value at q+2ε] with high confidence, so `lo`/`hi` are
/// the values a consumer may legally compare against without exceeding
/// the sketch's accuracy (the SLO diff in sketchml_report flags a
/// regression only when candidate `lo` exceeds baseline `hi`).
struct SketchQuantile {
  double value = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// JSON-ready summary of one `obs::SketchHistogram` (KLL-backed) slot.
/// Defined here — not in the sketch library — so the sampler and report
/// layers can carry these without a link-time dependency on
/// `sketchml_sketch`; the sketch library fills them in via the
/// `SetSketchSummarySource` seam below.
struct SketchHistogramSummary {
  std::string name;  // Canonical labeled name, same scheme as counters.
  uint64_t count = 0;
  double min = 0.0;  // Meaningful only when count > 0.
  double max = 0.0;
  double eps = 0.0;  // Normalized rank-error bound of the backing sketch.
  SketchQuantile p50, p90, p99, p999;  // Lifetime quantiles.
  // Windowed view: quantiles over the last `windows` retired epochs plus
  // the not-yet-retired tail — "p99 over the last N batches".
  uint64_t window_count = 0;
  int windows = 0;
  SketchQuantile wp50, wp99;
};

/// Seam through which the sketch library publishes sketch-histogram
/// summaries into snapshots. `sketchml_common` cannot link against
/// `sketchml_sketch` (the dependency runs the other way), so the
/// KLL-backed registry installs these hooks when it is first used; until
/// then `CollectSketchSummaries` returns empty and snapshots simply have
/// no `sketches` section.
using SketchSummarySource = std::vector<SketchHistogramSummary> (*)();
void SetSketchSummarySource(SketchSummarySource source);
std::vector<SketchHistogramSummary> CollectSketchSummaries();

/// Companion hook: `MetricsRegistry::Reset()` also clears sketch slots so
/// tests and benches that reset metrics get a clean telemetry state.
using SketchResetHook = void (*)();
void SetSketchResetHook(SketchResetHook hook);

/// Point-in-time aggregation of every registered metric (all thread
/// shards summed). Plain data: safe to copy, diff, and serialize.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    double value = 0.0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // Meaningful only when count > 0.
    double max = 0.0;
    std::array<uint64_t, kHistogramBuckets> buckets{};

    /// Quantile estimate interpolated linearly within the pow2 bucket
    /// containing rank q*count, clamped to the observed [min, max]
    /// (q outside [0, 1] is clamped; returns 0 when the histogram is
    /// empty). Bucket resolution bounds the error: the estimate is
    /// within a factor of 2 of the true order statistic.
    double ValueAtQuantile(double q) const;
    double P50() const { return ValueAtQuantile(0.50); }
    double P95() const { return ValueAtQuantile(0.95); }
    double P99() const { return ValueAtQuantile(0.99); }

    /// Mean recorded value (0 when empty).
    double Mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SketchHistogramSummary> sketches;

  /// Value of the named counter/gauge, 0 when absent. `name` is the full
  /// canonical name (use `LabeledName` for labeled metrics).
  double CounterValueOf(std::string_view name) const;
  double GaugeValueOf(std::string_view name) const;
  const HistogramValue* FindHistogram(std::string_view name) const;
  const SketchHistogramSummary* FindSketch(std::string_view name) const;

  /// Sum of every counter whose base name is `base` and whose labels
  /// contain all of `want` (subset match; `{}` matches every instance of
  /// `base`, labeled or not). This is how per-entity slices roll back up:
  /// SumCounters("trainer/worker_seconds", {{"phase", "compute"}}) is the
  /// cluster-wide compute total across workers.
  double SumCounters(std::string_view base, const MetricLabels& want) const;

  /// Writes one JSON object per line ("*.metrics.jsonl"); zero-valued
  /// counters and empty histograms are skipped to keep dumps short.
  /// Labeled metrics keep the canonical "base{k=v}" string in "name" and
  /// additionally carry a parsed "labels" object.
  void WriteJsonl(std::ostream& out) const;
};

/// Process-wide registry of named counters, gauges, and histograms.
///
/// Writes go to per-thread shards (relaxed atomics, no locks on the hot
/// path); `Snapshot()` locks the registry and sums live shards plus the
/// retained totals of exited threads. Metric registration is idempotent:
/// the same name always yields a handle to the same slot.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  Histogram GetHistogram(std::string_view name);

  /// Labeled variants: the handle is bound to the slot named
  /// `LabeledName(base, labels)`. Same sharded single-writer design and
  /// identical hot-path cost — the label resolution happens once here,
  /// never on Add/Set/Record.
  Counter GetCounter(std::string_view base, const MetricLabels& labels);
  Gauge GetGauge(std::string_view base, const MetricLabels& labels);
  Histogram GetHistogram(std::string_view base, const MetricLabels& labels);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (names stay registered). Callers must ensure no
  /// concurrent recording — intended for test setup and between bench
  /// repetitions, not for steady-state use.
  void Reset();
};

}  // namespace sketchml::obs

#endif  // SKETCHML_COMMON_METRICS_REGISTRY_H_
