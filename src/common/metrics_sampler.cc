#include "common/metrics_sampler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/obs.h"
#include "common/trace.h"

#ifndef SKETCHML_GIT_SHA
#define SKETCHML_GIT_SHA "unknown"
#endif

namespace sketchml::obs {

namespace {

void AppendJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

void AppendJsonNumber(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9e15) {
    out << static_cast<long long>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  }
}

/// Prom metric-name charset: [a-zA-Z0-9_:]. Slashes (our namespace
/// separator) and anything else become '_'; a "sketchml_" prefix
/// namespaces the exporter.
std::string PromName(std::string_view base) {
  std::string out = "sketchml_";
  out.reserve(out.size() + base.size());
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// `{k1="v1",k2="v2"}` label block (empty string when no labels), with
/// prom escaping of label values. `extra` appends one more pair, used
/// for `le`/`quantile`.
std::string PromLabels(const MetricLabels& labels, std::string_view extra_key,
                       std::string_view extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  const auto append = [&](std::string_view key, std::string_view value) {
    if (!first) out += ',';
    first = false;
    out.append(key);
    out += "=\"";
    for (char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      out += c;
    }
    out += '"';
  };
  for (const auto& [key, value] : labels) append(key, value);
  if (!extra_key.empty()) append(extra_key, extra_value);
  out += '}';
  return out;
}

std::string PromNumber(double v) {
  if (!std::isfinite(v)) {
    return v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
  }
  if (v == std::floor(v) && std::abs(v) < 9e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Emits the `# TYPE` line once per metric family (several labeled
/// instances share one family).
void PromTypeLine(std::ostream& out, std::vector<std::string>* seen,
                  const std::string& family, std::string_view type) {
  if (std::find(seen->begin(), seen->end(), family) != seen->end()) return;
  seen->push_back(family);
  out << "# TYPE " << family << ' ' << type << '\n';
}

}  // namespace

void WritePromExposition(const MetricsSnapshot& snapshot, std::ostream& out) {
  std::vector<std::string> seen;
  for (const auto& c : snapshot.counters) {
    if (c.value == 0.0) continue;
    const ParsedMetricName parsed = ParseMetricName(c.name);
    const std::string family = PromName(parsed.base);
    PromTypeLine(out, &seen, family, "counter");
    out << family << PromLabels(parsed.labels, "", "") << ' '
        << PromNumber(c.value) << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    const ParsedMetricName parsed = ParseMetricName(g.name);
    const std::string family = PromName(parsed.base);
    PromTypeLine(out, &seen, family, "gauge");
    out << family << PromLabels(parsed.labels, "", "") << ' '
        << PromNumber(g.value) << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    if (h.count == 0) continue;
    const ParsedMetricName parsed = ParseMetricName(h.name);
    const std::string family = PromName(parsed.base);
    PromTypeLine(out, &seen, family, "histogram");
    uint64_t cumulative = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      out << family << "_bucket"
          << PromLabels(parsed.labels, "le", PromNumber(std::ldexp(1.0, b)))
          << ' ' << cumulative << '\n';
    }
    out << family << "_bucket" << PromLabels(parsed.labels, "le", "+Inf")
        << ' ' << h.count << '\n';
    out << family << "_sum" << PromLabels(parsed.labels, "", "") << ' '
        << PromNumber(h.sum) << '\n';
    out << family << "_count" << PromLabels(parsed.labels, "", "") << ' '
        << h.count << '\n';
  }
  for (const auto& s : snapshot.sketches) {
    if (s.count == 0) continue;
    const ParsedMetricName parsed = ParseMetricName(s.name);
    const std::string family = PromName(parsed.base);
    PromTypeLine(out, &seen, family, "summary");
    const struct {
      const char* q;
      double value;
    } grid[] = {{"0.5", s.p50.value},
                {"0.9", s.p90.value},
                {"0.99", s.p99.value},
                {"0.999", s.p999.value}};
    for (const auto& [q, value] : grid) {
      out << family << PromLabels(parsed.labels, "quantile", q) << ' '
          << PromNumber(value) << '\n';
    }
    out << family << "_count" << PromLabels(parsed.labels, "", "") << ' '
        << s.count << '\n';
  }
}

void RunMetadata::Add(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  entries.emplace_back(std::string(key), buf);
}

void RunMetadata::Add(std::string_view key, long long value) {
  entries.emplace_back(std::string(key), std::to_string(value));
}

std::string BuildGitSha() { return SKETCHML_GIT_SHA; }

common::Result<std::unique_ptr<MetricsSampler>> MetricsSampler::Start(
    Options options) {
  if (options.out_path.empty()) {
    return common::Status::InvalidArgument("sampler needs an output path");
  }
  std::unique_ptr<MetricsSampler> sampler(
      // NOLINTNEXTLINE(sketchml-naked-new): make_unique needs a public ctor.
      new MetricsSampler(std::move(options)));
  {
    // No other thread exists yet; the lock just satisfies the
    // guarded-by contract on out_.
    common::MutexLock lock(sampler->mutex_);
    if (!sampler->out_) {
      return common::Status::IoError("cannot open " +
                                     sampler->options_.out_path);
    }
  }
  sampler->WriteHeader();
  if (sampler->options_.interval_seconds > 0.0) {
    sampler->periodic_ = std::thread([s = sampler.get()] {
      s->PeriodicLoop();
    });
  }
  return sampler;
}

MetricsSampler::MetricsSampler(Options options)
    : options_(std::move(options)), out_(options_.out_path) {}

MetricsSampler::~MetricsSampler() {
  // A destructor cannot propagate the flush failure; surface it in the
  // log instead of dropping it (callers wanting the Status call Stop()).
  const common::Status status = Stop();
  if (!status.ok()) {
    SKETCHML_LOG(Warning) << "MetricsSampler final flush failed: "
                          << status.ToString();
  }
}

void MetricsSampler::WriteHeader() {
  common::MutexLock lock(mutex_);
  out_ << "{\"type\":\"run\",\"schema\":1,\"git_sha\":";
  AppendJsonString(out_, BuildGitSha());
  out_ << ",\"start_unix_ms\":"
       // Wall-clock on purpose: the run header records when the run
       // happened for humans; nothing downstream computes with it.
       << std::chrono::duration_cast<std::chrono::milliseconds>(
              // NOLINTNEXTLINE(sketchml-wallclock): run header, humans only.
              std::chrono::system_clock::now().time_since_epoch())
              .count();
  out_ << ",\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : options_.metadata.entries) {
    if (!first) out_ << ',';
    first = false;
    AppendJsonString(out_, key);
    out_ << ':';
    AppendJsonString(out_, value);
  }
  out_ << "}}\n";
}

void MetricsSampler::SampleNow(std::string_view reason) {
  common::MutexLock lock(mutex_);
  if (stopped_) return;
  WriteSampleLocked(reason);
}

void MetricsSampler::WriteSampleLocked(std::string_view reason) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  out_ << "{\"type\":\"sample\",\"t_ns\":" << NowNs() << ",\"reason\":";
  AppendJsonString(out_, reason);
  out_ << ",\"dropped_trace_events\":" << TraceLog::Global().DroppedEvents();

  out_ << ",\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (c.value == 0.0) continue;
    if (!first) out_ << ',';
    first = false;
    AppendJsonString(out_, c.name);
    out_ << ':';
    AppendJsonNumber(out_, c.value);
  }
  out_ << "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (g.value == 0.0) continue;
    if (!first) out_ << ',';
    first = false;
    AppendJsonString(out_, g.name);
    out_ << ':';
    AppendJsonNumber(out_, g.value);
  }
  out_ << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    if (!first) out_ << ',';
    first = false;
    AppendJsonString(out_, h.name);
    out_ << ":{\"count\":" << h.count << ",\"sum\":";
    AppendJsonNumber(out_, h.sum);
    out_ << ",\"min\":";
    AppendJsonNumber(out_, h.min);
    out_ << ",\"max\":";
    AppendJsonNumber(out_, h.max);
    out_ << ",\"p50\":";
    AppendJsonNumber(out_, h.P50());
    out_ << ",\"p95\":";
    AppendJsonNumber(out_, h.P95());
    out_ << ",\"p99\":";
    AppendJsonNumber(out_, h.P99());
    out_ << '}';
  }
  out_ << "},\"sketches\":{";
  first = true;
  for (const auto& s : snap.sketches) {
    if (s.count == 0) continue;
    if (!first) out_ << ',';
    first = false;
    AppendJsonString(out_, s.name);
    out_ << ":{\"count\":" << s.count << ",\"min\":";
    AppendJsonNumber(out_, s.min);
    out_ << ",\"max\":";
    AppendJsonNumber(out_, s.max);
    out_ << ",\"eps\":";
    AppendJsonNumber(out_, s.eps);
    const struct {
      const char* key;
      const SketchQuantile& q;
    } grid[] = {{"p50", s.p50},   {"p90", s.p90},   {"p99", s.p99},
                {"p999", s.p999}, {"wp50", s.wp50}, {"wp99", s.wp99}};
    for (const auto& [key, q] : grid) {
      out_ << ",\"" << key << "\":";
      AppendJsonNumber(out_, q.value);
      out_ << ",\"" << key << "_lo\":";
      AppendJsonNumber(out_, q.lo);
      out_ << ",\"" << key << "_hi\":";
      AppendJsonNumber(out_, q.hi);
    }
    out_ << ",\"window_count\":" << s.window_count
         << ",\"windows\":" << s.windows << '}';
  }
  out_ << "}}\n";
  out_.flush();
  ++samples_written_;
}

void MetricsSampler::PeriodicLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds);
  common::MutexLock lock(mutex_);
  for (;;) {
    if (stopping_) return;
    // Plain timed wait instead of the predicate overload (the analysis
    // cannot see through a predicate lambda). A spurious wakeup at worst
    // writes one sample early; Stop() always sets stopping_ first.
    cv_.WaitFor(mutex_, interval);
    if (stopping_) return;
    WriteSampleLocked("interval");
  }
}

common::Status MetricsSampler::Stop() {
  {
    common::MutexLock lock(mutex_);
    if (stopped_) return common::Status::Ok();
    stopping_ = true;
  }
  cv_.NotifyAll();
  if (periodic_.joinable()) periodic_.join();
  common::MutexLock lock(mutex_);
  stopped_ = true;
  WriteSampleLocked("final");
  out_.flush();
  if (!out_) {
    return common::Status::IoError("failed writing " + options_.out_path);
  }
  return common::Status::Ok();
}

size_t MetricsSampler::samples_written() const {
  common::MutexLock lock(mutex_);
  return samples_written_;
}

}  // namespace sketchml::obs
