#include "common/metrics_sampler.h"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/obs.h"
#include "common/trace.h"

#ifndef SKETCHML_GIT_SHA
#define SKETCHML_GIT_SHA "unknown"
#endif

namespace sketchml::obs {

namespace {

void AppendJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

void AppendJsonNumber(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9e15) {
    out << static_cast<long long>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
  }
}

}  // namespace

void RunMetadata::Add(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  entries.emplace_back(std::string(key), buf);
}

void RunMetadata::Add(std::string_view key, long long value) {
  entries.emplace_back(std::string(key), std::to_string(value));
}

std::string BuildGitSha() { return SKETCHML_GIT_SHA; }

common::Result<std::unique_ptr<MetricsSampler>> MetricsSampler::Start(
    Options options) {
  if (options.out_path.empty()) {
    return common::Status::InvalidArgument("sampler needs an output path");
  }
  std::unique_ptr<MetricsSampler> sampler(
      // NOLINTNEXTLINE(sketchml-naked-new): make_unique needs a public ctor.
      new MetricsSampler(std::move(options)));
  if (!sampler->out_) {
    return common::Status::IoError("cannot open " +
                                   sampler->options_.out_path);
  }
  sampler->WriteHeader();
  if (sampler->options_.interval_seconds > 0.0) {
    sampler->periodic_ = std::thread([s = sampler.get()] {
      s->PeriodicLoop();
    });
  }
  return sampler;
}

MetricsSampler::MetricsSampler(Options options)
    : options_(std::move(options)), out_(options_.out_path) {}

MetricsSampler::~MetricsSampler() {
  // A destructor cannot propagate the flush failure; surface it in the
  // log instead of dropping it (callers wanting the Status call Stop()).
  const common::Status status = Stop();
  if (!status.ok()) {
    SKETCHML_LOG(Warning) << "MetricsSampler final flush failed: "
                          << status.ToString();
  }
}

void MetricsSampler::WriteHeader() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << "{\"type\":\"run\",\"schema\":1,\"git_sha\":";
  AppendJsonString(out_, BuildGitSha());
  out_ << ",\"start_unix_ms\":"
       // Wall-clock on purpose: the run header records when the run
       // happened for humans; nothing downstream computes with it.
       << std::chrono::duration_cast<std::chrono::milliseconds>(
              // NOLINTNEXTLINE(sketchml-wallclock)
              std::chrono::system_clock::now().time_since_epoch())
              .count();
  out_ << ",\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : options_.metadata.entries) {
    if (!first) out_ << ',';
    first = false;
    AppendJsonString(out_, key);
    out_ << ':';
    AppendJsonString(out_, value);
  }
  out_ << "}}\n";
}

void MetricsSampler::SampleNow(std::string_view reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_) return;
  WriteSampleLocked(reason);
}

void MetricsSampler::WriteSampleLocked(std::string_view reason) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  out_ << "{\"type\":\"sample\",\"t_ns\":" << NowNs() << ",\"reason\":";
  AppendJsonString(out_, reason);
  out_ << ",\"dropped_trace_events\":" << TraceLog::Global().DroppedEvents();

  out_ << ",\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (c.value == 0.0) continue;
    if (!first) out_ << ',';
    first = false;
    AppendJsonString(out_, c.name);
    out_ << ':';
    AppendJsonNumber(out_, c.value);
  }
  out_ << "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (g.value == 0.0) continue;
    if (!first) out_ << ',';
    first = false;
    AppendJsonString(out_, g.name);
    out_ << ':';
    AppendJsonNumber(out_, g.value);
  }
  out_ << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    if (!first) out_ << ',';
    first = false;
    AppendJsonString(out_, h.name);
    out_ << ":{\"count\":" << h.count << ",\"sum\":";
    AppendJsonNumber(out_, h.sum);
    out_ << ",\"min\":";
    AppendJsonNumber(out_, h.min);
    out_ << ",\"max\":";
    AppendJsonNumber(out_, h.max);
    out_ << ",\"p50\":";
    AppendJsonNumber(out_, h.P50());
    out_ << ",\"p95\":";
    AppendJsonNumber(out_, h.P95());
    out_ << ",\"p99\":";
    AppendJsonNumber(out_, h.P99());
    out_ << '}';
  }
  out_ << "}}\n";
  out_.flush();
  ++samples_written_;
}

void MetricsSampler::PeriodicLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) return;
    WriteSampleLocked("interval");
  }
}

common::Status MetricsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return common::Status::Ok();
    stopping_ = true;
  }
  cv_.notify_all();
  if (periodic_.joinable()) periodic_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  WriteSampleLocked("final");
  out_.flush();
  if (!out_) {
    return common::Status::IoError("failed writing " + options_.out_path);
  }
  return common::Status::Ok();
}

size_t MetricsSampler::samples_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_written_;
}

}  // namespace sketchml::obs
