// Intentionally empty: Stopwatch and Accumulator are header-only. This
// translation unit exists so the target always has at least one object
// file and to catch header self-containment regressions at compile time.
#include "common/stopwatch.h"
