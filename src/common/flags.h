#ifndef SKETCHML_COMMON_FLAGS_H_
#define SKETCHML_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sketchml::common {

/// Minimal command-line flag parser for the tools and examples.
///
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean
/// true). Everything not starting with `--` is a positional argument.
class FlagParser {
 public:
  /// Parses argv; fails on malformed flags (e.g. `--=x`).
  static Result<FlagParser> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  /// Typed getters with defaults. Numeric getters fail the process via
  /// CHECK on non-numeric input only when the flag is present; use
  /// `GetIntOr` variants below for recoverable handling.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  Result<int64_t> GetInt(const std::string& name,
                         int64_t default_value) const;
  Result<double> GetDouble(const std::string& name,
                           double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags seen but never read by any getter — typo detection for tools.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

/// Reads the conventional `--threads` flag shared by the tools and bench
/// harnesses: absent or 0 means one thread per hardware core, N >= 1 is
/// used as-is, and anything else is an InvalidArgument. The resolved
/// count feeds `dist::TrainerConfig::num_threads` (results are
/// bit-identical at any value; see DESIGN.md "Threading model").
Result<int> GetThreadsFlag(const FlagParser& flags);

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_FLAGS_H_
