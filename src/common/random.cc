#include "common/random.h"

#include <cmath>

#include "common/logging.h"
#include "common/murmur_hash.h"

namespace sketchml::common {
namespace {

inline uint64_t Rotl64(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed into four non-zero words.
  uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    word = z ^ (z >> 31);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl64(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl64(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SKETCHML_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box–Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfSampler::ZipfSampler(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  SKETCHML_CHECK_GT(n, 0u);
  SKETCHML_CHECK_GT(alpha, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first CDF entry >= u.
  uint64_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace sketchml::common
