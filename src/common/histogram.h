#ifndef SKETCHML_COMMON_HISTOGRAM_H_
#define SKETCHML_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sketchml::common {

/// Fixed-width histogram over a closed value range.
///
/// Used by the Figure 4 reproduction to show the nonuniform distribution of
/// gradient values, and by tests to sanity-check samplers.
class Histogram {
 public:
  /// Buckets `[lo, hi]` into `bins` equal-width bins. `bins` must be
  /// positive and `lo < hi`.
  Histogram(double lo, double hi, int bins);

  /// Adds one observation. Values outside [lo, hi] clamp to the edge bins.
  void Add(double value);

  /// Adds every element of `values`.
  void AddAll(const std::vector<double>& values);

  int bins() const { return static_cast<int>(counts_.size()); }
  uint64_t count(int bin) const { return counts_[bin]; }
  uint64_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Lower edge of `bin`.
  double BinLow(int bin) const;
  /// Upper edge of `bin`.
  double BinHigh(int bin) const;

  /// Renders an ASCII bar chart, one bin per row, `width` columns max.
  std::string ToAscii(int width = 60) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_HISTOGRAM_H_
