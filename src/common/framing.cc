#include "common/framing.h"

#include "common/byte_buffer.h"
#include "common/crc32.h"

namespace sketchml::common {

void FrameMessage(const std::vector<uint8_t>& payload,
                  std::vector<uint8_t>* out) {
  ByteWriter writer(kFrameHeaderBytes + payload.size());
  writer.WriteU32(static_cast<uint32_t>(payload.size()));
  writer.WriteU32(Crc32(payload));
  writer.WriteBytes(payload);
  *out = writer.TakeBuffer();
}

Status UnframeMessage(const std::vector<uint8_t>& framed,
                      std::vector<uint8_t>* payload) {
  if (framed.size() < kFrameHeaderBytes) {
    return Status::CorruptedData("framed message shorter than its header");
  }
  ByteReader reader(framed);
  uint32_t length = 0, crc = 0;
  SKETCHML_RETURN_IF_ERROR(reader.ReadU32(&length));
  SKETCHML_RETURN_IF_ERROR(reader.ReadU32(&crc));
  if (length != framed.size() - kFrameHeaderBytes) {
    return Status::CorruptedData("frame length mismatch");
  }
  if (Crc32(framed.data() + kFrameHeaderBytes, length) != crc) {
    return Status::CorruptedData("frame CRC mismatch");
  }
  payload->assign(framed.begin() + kFrameHeaderBytes, framed.end());
  return Status::Ok();
}

}  // namespace sketchml::common
