#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace sketchml::common {

namespace {

std::string TruncateForError(std::string_view text, size_t pos) {
  const std::string_view window = text.substr(pos, 24);
  return "at offset " + std::to_string(pos) + " near '" +
         std::string(window) + "'";
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    SkipSpace();
    JsonValue value;
    SKETCHML_RETURN_IF_ERROR(ParseValue(&value));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing data after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " " +
                                   TruncateForError(text_, pos_));
  }

  Status ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        out->type_ = JsonValue::Type::kBool;
        out->number_ = 1.0;
        return Literal("true");
      case 'f':
        out->type_ = JsonValue::Type::kBool;
        out->number_ = 0.0;
        return Literal("false");
      case 'n':
        out->type_ = JsonValue::Type::kNull;
        return Literal("null");
      default:
        out->type_ = JsonValue::Type::kNumber;
        return ParseNumber(&out->number_);
    }
  }

  Status ParseObject(JsonValue* out) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    for (;;) {
      SkipSpace();
      std::string key;
      SKETCHML_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (Peek() != ':') return Error("expected ':' in object");
      ++pos_;
      SkipSpace();
      JsonValue value;
      SKETCHML_RETURN_IF_ERROR(ParseValue(&value));
      out->object_.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::Ok();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    for (;;) {
      SkipSpace();
      JsonValue value;
      SKETCHML_RETURN_IF_ERROR(ParseValue(&value));
      out->array_.push_back(std::move(value));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::Ok();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (Peek() != '"') return Error("expected string");
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        switch (text_[pos_]) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // Our writers never emit \u, but accept it: decode the code
            // point as UTF-8 (surrogate pairs collapse to '?').
            if (pos_ + 4 >= text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return Error("bad \\u escape");
            }
            pos_ += 5;
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else if (code >= 0xD800 && code <= 0xDFFF) {
              out->push_back('?');
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            continue;
          }
          default: return Error("unknown escape");
        }
      }
      out->push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // Closing quote.
    return Status::Ok();
  }

  Status ParseNumber(double* out) {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    return Status::Ok();
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("expected '" + std::string(word) + "'");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Run();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double default_value) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number_
                                                : default_value;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view default_value) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string()
             ? value->string_
             : std::string(default_value);
}

}  // namespace sketchml::common
