#ifndef SKETCHML_COMMON_RESULT_H_
#define SKETCHML_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace sketchml::common {

/// Either a value of type `T` or a non-OK `Status` explaining its absence.
///
/// Mirrors `arrow::Result` / `absl::StatusOr`: functions that produce a
/// value but may fail return `Result<T>` instead of taking an out-param.
///
/// `[[nodiscard]]` like `Status`: dropping a `Result` discards both the
/// value and the error explaining its absence, so the compiler flags it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  // NOLINTNEXTLINE(runtime/explicit): implicit `return value;` is the API.
  Result(T value) : value_(std::move(value)) {}

  /// Constructs a failed result. `status` must be non-OK.
  // NOLINTNEXTLINE(runtime/explicit): implicit `return status;` is the API.
  Result(Status status)
      : status_(std::move(status)) {
    SKETCHML_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; the result must be OK.
  const T& value() const& {
    SKETCHML_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SKETCHML_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SKETCHML_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a `Result` expression to `lhs`, or propagates its
/// error status to the caller.
#define SKETCHML_ASSIGN_OR_RETURN(lhs, expr)                 \
  SKETCHML_ASSIGN_OR_RETURN_IMPL_(                           \
      SKETCHML_CONCAT_(_result_, __LINE__), lhs, expr)

#define SKETCHML_CONCAT_INNER_(a, b) a##b
#define SKETCHML_CONCAT_(a, b) SKETCHML_CONCAT_INNER_(a, b)
#define SKETCHML_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_RESULT_H_
