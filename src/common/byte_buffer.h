#ifndef SKETCHML_COMMON_BYTE_BUFFER_H_
#define SKETCHML_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace sketchml::common {

/// Append-only little-endian byte sink used to define codec wire formats.
///
/// All message sizes reported by the benchmark harnesses are the exact
/// `size()` of a `ByteWriter` buffer — never an estimate.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Pre-allocates `capacity` bytes.
  explicit ByteWriter(size_t capacity) { buffer_.reserve(capacity); }

  void WriteU8(uint8_t v) { buffer_.push_back(v); }
  void WriteU16(uint16_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  /// Writes exactly the low `nbytes` bytes of `v` (1..8), little-endian.
  /// This is how delta-binary key encoding stores variable-width deltas.
  void WriteUintN(uint64_t v, int nbytes);

  /// LEB128 variable-length encoding (7 bits per byte).
  void WriteVarint(uint64_t v);

  /// Encoded length of `WriteVarint(v)` in bytes — lets SerializedSize
  /// implementations stay exact without writing anything.
  static size_t VarintSize(uint64_t v) {
    size_t n = 1;
    while (v >= 0x80) {
      v >>= 7;
      ++n;
    }
    return n;
  }

  void WriteRaw(const void* data, size_t len) {
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + len);
  }

  void WriteBytes(const std::vector<uint8_t>& bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  void WriteSpan(std::span<const uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Grows capacity to at least `capacity` total bytes. Callers that can
  /// size a message exactly (EncodedSize / SerializedSize) reserve once so
  /// the whole wire buffer is a single allocation.
  void Reserve(size_t capacity) { buffer_.reserve(capacity); }

  /// Appends `n` zero bytes and returns the offset of the first one.
  /// Together with `MutableData` this lets batch encoders frame a region
  /// and fill it in place (e.g. scatter 2-bit flags, write variable-width
  /// deltas with 8-byte stores into over-allocated slack) instead of
  /// pushing byte-at-a-time.
  size_t Extend(size_t n) {
    const size_t offset = buffer_.size();
    buffer_.resize(offset + n);
    return offset;
  }

  /// Mutable view of the bytes written so far. Invalidated by any
  /// subsequent write/Extend (the buffer may reallocate).
  uint8_t* MutableData() { return buffer_.data(); }

  /// Drops bytes past `new_size` (trims Extend slack). Never grows.
  void Truncate(size_t new_size) {
    SKETCHML_DCHECK_LE(new_size, buffer_.size());
    buffer_.resize(new_size);
  }

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Bounds-checked little-endian reader over a byte span.
///
/// All reads return a `Status`; a truncated or corrupted message yields
/// `kCorruptedData` instead of undefined behaviour.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<uint8_t>& buffer)
      : data_(buffer.data()), len_(buffer.size()) {}

  Status ReadU8(uint8_t* out);
  Status ReadU16(uint16_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU32(uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI32(int32_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadFloat(float* out) { return ReadRaw(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }

  /// Reads `nbytes` (1..8) little-endian bytes into a uint64.
  Status ReadUintN(int nbytes, uint64_t* out);

  /// Reads a LEB128 varint.
  Status ReadVarint(uint64_t* out);

  Status ReadRaw(void* out, size_t len);

  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Appends `count` bits (values 0/1 packed MSB-first per byte are not
/// required here; we pack LSB-first) of 2-bit symbols. Used for the
/// delta-binary "byte flag" stream (2 bits per key, §3.4).
class TwoBitWriter {
 public:
  /// Appends a symbol in [0, 3].
  void Append(uint8_t symbol);

  /// Number of symbols appended so far.
  size_t size() const { return count_; }

  /// Serialized packed bytes (ceil(count/4) bytes).
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t count_ = 0;
};

/// Reads back 2-bit symbols written by `TwoBitWriter`.
class TwoBitReader {
 public:
  TwoBitReader(const uint8_t* data, size_t nbytes, size_t count)
      : data_(data), nbytes_(nbytes), count_(count) {}

  /// Reads the next symbol; fails with kCorruptedData past the end.
  Status Next(uint8_t* out);

  size_t remaining() const { return count_ - pos_; }

 private:
  const uint8_t* data_;
  size_t nbytes_;
  size_t count_;
  size_t pos_ = 0;
};

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_BYTE_BUFFER_H_
