#include "common/status.h"

namespace sketchml::common {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kCorruptedData:
      return "corrupted data";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sketchml::common
