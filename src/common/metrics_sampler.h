#ifndef SKETCHML_COMMON_METRICS_SAMPLER_H_
#define SKETCHML_COMMON_METRICS_SAMPLER_H_

#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sketchml::obs {

struct MetricsSnapshot;

/// Key/value run description written into the time-series header so a
/// dump is self-describing (flags, seed, cluster shape, git sha). Order
/// is preserved.
struct RunMetadata {
  std::vector<std::pair<std::string, std::string>> entries;

  void Add(std::string_view key, std::string_view value) {
    entries.emplace_back(std::string(key), std::string(value));
  }
  void Add(std::string_view key, double value);
  void Add(std::string_view key, long long value);
};

/// Compile-time git revision (CMake bakes it in at configure time;
/// "unknown" when the source tree had no git metadata).
std::string BuildGitSha();

/// Prometheus text-exposition writer for a metrics snapshot
/// (`--metrics-format=prom`). Metric names are mangled to the prom
/// charset (`trainer/worker_seconds{worker=3}` becomes
/// `sketchml_trainer_worker_seconds{worker="3"}`), pow2 histograms become
/// classic `_bucket{le=...}/_sum/_count` families, and sketch histograms
/// become summaries with `quantile` labels. Zero counters and empty
/// histograms are skipped, matching the JSONL dumps.
void WritePromExposition(const MetricsSnapshot& snapshot, std::ostream& out);

/// Background registry sampler: appends point-in-time snapshots of every
/// metric to a JSONL time-series ("*.series.jsonl").
///
/// File layout — line 1 is a run header:
///   {"type":"run","schema":1,"git_sha":...,"meta":{...}}
/// followed by one sample object per snapshot:
///   {"type":"sample","t_ns":...,"reason":"interval"|"epoch"|"final",
///    "dropped_trace_events":N,
///    "counters":{name:value,...},"gauges":{...},
///    "histograms":{name:{"count":..,"sum":..,"min":..,"max":..,
///                        "p50":..,"p95":..,"p99":..},...},
///    "sketches":{name:{"count":..,"min":..,"max":..,"eps":..,
///                      "p50":..,"p50_lo":..,"p50_hi":..,...,"p999_hi":..,
///                      "wp50":..,...,"wp99_hi":..,
///                      "window_count":..,"windows":..},...}}
/// Counter values are cumulative-since-start (consumers diff successive
/// samples for rates); zero counters and empty histograms/sketches are
/// skipped. Sketch quantiles carry their error window: the true rank-q
/// value lies in [q_lo, q_hi] up to the KLL bound `eps` (see
/// SketchHistogramSummary).
///
/// The sampler only *reads* the registry (snapshot + serialize on its own
/// thread), so training results are bit-identical with it on or off.
class MetricsSampler {
 public:
  struct Options {
    std::string out_path;            // Required.
    double interval_seconds = 0.0;   // <= 0: no periodic thread; samples
                                     // happen only via SampleNow().
    RunMetadata metadata;
  };

  /// Opens the output, writes the header, and (when interval_seconds > 0)
  /// starts the periodic thread.
  static common::Result<std::unique_ptr<MetricsSampler>> Start(
      Options options);

  /// Stops and flushes (same as Stop, ignoring the status).
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Appends one sample immediately, tagged with `reason` (the trainer
  /// calls this at every epoch boundary with "epoch"). Thread-safe.
  void SampleNow(std::string_view reason) SKETCHML_EXCLUDES(mutex_);

  /// Writes a last "final" sample, joins the periodic thread, flushes,
  /// and reports any write error. Idempotent.
  common::Status Stop() SKETCHML_EXCLUDES(mutex_);

  size_t samples_written() const SKETCHML_EXCLUDES(mutex_);

 private:
  explicit MetricsSampler(Options options);

  void WriteHeader() SKETCHML_EXCLUDES(mutex_);
  void WriteSampleLocked(std::string_view reason) SKETCHML_REQUIRES(mutex_);
  void PeriodicLoop() SKETCHML_EXCLUDES(mutex_);

  Options options_;
  std::ofstream out_ SKETCHML_GUARDED_BY(mutex_);
  mutable common::Mutex mutex_;
  common::CondVar cv_;
  bool stopping_ SKETCHML_GUARDED_BY(mutex_) = false;
  bool stopped_ SKETCHML_GUARDED_BY(mutex_) = false;
  size_t samples_written_ SKETCHML_GUARDED_BY(mutex_) = 0;
  std::thread periodic_;
};

}  // namespace sketchml::obs

#endif  // SKETCHML_COMMON_METRICS_SAMPLER_H_
