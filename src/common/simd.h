#ifndef SKETCHML_COMMON_SIMD_H_
#define SKETCHML_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace sketchml::common::simd {

/// The runtime-dispatch seam for the codec pipeline's batch kernels
/// (docs/perf.md).
///
/// Every kernel below has a scalar implementation (always compiled, the
/// reference semantics) and optionally an AVX2 implementation (compiled
/// only when the toolchain supports `-mavx2`, selected only when the CPU
/// reports AVX2). The two paths are required to be *bit-identical*: same
/// outputs, same wire bytes, same metric counts — pinned by
/// tests/simd_differential_test.cc and the golden regression gate.
///
/// Selection order:
///   1. `SKETCHML_SIMD` environment variable, read once at first use:
///      "off"/"scalar" pin the scalar path, "avx2" requests AVX2
///      (falling back to scalar with a warning if unavailable),
///      "auto"/"on"/unset pick the best detected level.
///   2. `SetActiveLevel` / `SetActiveLevelFromString` override at runtime
///      (the tools' `--simd=` flag, and tests pinning both paths).
///
/// Raw intrinsics are allowed only in `src/common/simd*` translation
/// units (enforced by the `sketchml-raw-simd` lint rule) so this seam
/// stays the single SIMD surface of the repo.
enum class Level {
  kScalar = 0,  // Portable reference path; always available.
  kAvx2 = 1,    // 256-bit x86 path; requires CPU + build support.
};

/// Human-readable name ("scalar", "avx2").
const char* LevelName(Level level);

/// Best level supported by this CPU *and* this build (cpuid-checked).
Level DetectedLevel();

/// True when `level` can be activated on this host.
bool LevelSupported(Level level);

/// The level the dispatched kernels currently run at.
Level ActiveLevel();

/// Pins the dispatch to `level`. CHECK-fails if unsupported; use
/// `LevelSupported` (or `SetActiveLevelFromString`) for recoverable
/// handling. Thread-safe, but callers should not flip it while encodes
/// are in flight on other threads.
void SetActiveLevel(Level level);

/// Parses "auto" | "on" | "off" | "scalar" | "avx2" (the `--simd=` flag
/// vocabulary) and activates the result. "avx2" on a host without AVX2
/// is an InvalidArgument; "auto"/"on" select `DetectedLevel()`.
Status SetActiveLevelFromString(const std::string& name);

// ---------------------------------------------------------------------------
// Batch kernels. All of them dispatch on ActiveLevel().
// ---------------------------------------------------------------------------

/// Predicated bucket search over a sorted split array (§3.2 quantizer).
/// For each value: out[i] = clamp(upper_bound(splits, value) - splits - 1,
/// 0, num_splits - 2) — exactly QuantileBucketQuantizer::BucketOf.
/// Returns the number of clamped (out-of-range) values, which feeds the
/// `quantizer/bucket_overflow` metric. `num_splits >= 2`; `out` holds
/// `count` entries. NaN values land in the top bucket (and count as
/// clamped), matching upper_bound's comparator semantics.
size_t BucketSearch(const double* splits, size_t num_splits,
                    const double* values, size_t count, uint16_t* out);

/// Batch sketch hashing: out[i] = MurmurMix64(keys[i], seed) % num_buckets
/// — exactly common::HashFunction::Bucket for every key. `num_buckets`
/// must be in [1, 2^32) so indexes fit uint32.
void HashBuckets(const uint64_t* keys, size_t count, uint64_t seed,
                 uint64_t num_buckets, uint32_t* out);

/// Result of a delta-key scan (mirrors the DeltaBinaryKeyCodec::Encode
/// error contract).
enum class DeltaScanStatus {
  kOk = 0,
  kNotIncreasing,  // keys[i] <= keys[i-1]
  kDeltaTooWide,   // a delta (or the first key) exceeds 4 bytes
};

/// Single-pass delta/width scan for §3.4 key coding: deltas[i] =
/// keys[i] - keys[i-1] (keys[-1] = 0), widths[i] = BytesNeeded(delta)
/// computed branchlessly, *total_delta_bytes = sum of widths. On error
/// the scratch contents are unspecified. `deltas`/`widths` hold `count`
/// entries.
DeltaScanStatus DeltaScan(const uint64_t* keys, size_t count,
                          uint32_t* deltas, uint8_t* widths,
                          size_t* total_delta_bytes);

namespace internal {

/// One kernel table per level. The scalar table is the reference; the
/// AVX2 table must match it bit for bit.
struct Kernels {
  size_t (*bucket_search)(const double*, size_t, const double*, size_t,
                          uint16_t*);
  void (*hash_buckets)(const uint64_t*, size_t, uint64_t, uint64_t,
                       uint32_t*);
  DeltaScanStatus (*delta_scan)(const uint64_t*, size_t, uint32_t*, uint8_t*,
                                size_t*);
};

extern const Kernels kScalarKernels;

/// The AVX2 table, or nullptr when this build lacks `-mavx2` support.
/// Only call after `__builtin_cpu_supports("avx2")` has confirmed the
/// CPU (the defining TU is compiled with AVX2 codegen enabled).
const Kernels* Avx2Kernels();

}  // namespace internal

}  // namespace sketchml::common::simd

#endif  // SKETCHML_COMMON_SIMD_H_
