#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <unordered_map>

#include "common/metrics_registry.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sketchml::obs {
namespace {

constexpr size_t kDefaultRingCapacity = 1 << 14;  // Events per thread.

/// One thread's event ring. Only the owning thread appends; the short
/// per-ring mutex exists so the collector (and TSan) see consistent
/// events — in steady state it is uncontended and stays in the owner's
/// cache line.
struct Ring {
  explicit Ring(size_t capacity, uint32_t tid_in)
      : events(capacity), tid(tid_in) {}

  // Mutable so the collector can lock through the const pointers it
  // iterates (locking is not logical mutation).
  mutable common::Mutex mutex;
  std::vector<TraceEvent> events SKETCHML_GUARDED_BY(mutex);
  size_t next SKETCHML_GUARDED_BY(mutex) = 0;   // Append slot.
  size_t count SKETCHML_GUARDED_BY(mutex) = 0;  // Valid events (<= capacity).
  uint64_t dropped SKETCHML_GUARDED_BY(mutex) = 0;  // Lost to wraparound.
  uint32_t tid;

  void Append(const TraceEvent& event) SKETCHML_EXCLUDES(mutex) {
    common::MutexLock lock(mutex);
    if (count == events.size()) {
      ++dropped;
    } else {
      ++count;
    }
    events[next] = event;
    events[next].tid = tid;
    next = (next + 1) % events.size();
  }

  /// Oldest-first copy of the retained events.
  void CopyTo(std::vector<TraceEvent>* out) const SKETCHML_REQUIRES(mutex) {
    const size_t start = (next + events.size() - count) % events.size();
    for (size_t i = 0; i < count; ++i) {
      out->push_back(events[(start + i) % events.size()]);
    }
  }
};

struct Impl {
  mutable common::Mutex mutex;
  std::vector<Ring*> live SKETCHML_GUARDED_BY(mutex);
  std::vector<TraceEvent> retired_events SKETCHML_GUARDED_BY(mutex);
  uint64_t retired_dropped SKETCHML_GUARDED_BY(mutex) = 0;
  // Per-thread drop counts of retired rings (nonzero entries only), so
  // DroppedEventsByThread survives thread exit.
  std::vector<ThreadDroppedEvents> retired_dropped_by_tid
      SKETCHML_GUARDED_BY(mutex);
  uint32_t next_tid SKETCHML_GUARDED_BY(mutex) = 1;
  std::atomic<size_t> ring_capacity{kDefaultRingCapacity};
};

Impl& GetImpl() {
  // NOLINTNEXTLINE(sketchml-naked-new): leaked on purpose.
  static Impl* impl = new Impl;  // Leaked: outlives thread-local dtors.
  return *impl;
}

void RetireRing(Ring* ring) {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  {
    common::MutexLock ring_lock(ring->mutex);
    ring->CopyTo(&impl.retired_events);
    impl.retired_dropped += ring->dropped;
    if (ring->dropped > 0) {
      impl.retired_dropped_by_tid.push_back({ring->tid, ring->dropped});
    }
  }
  impl.live.erase(std::find(impl.live.begin(), impl.live.end(), ring));
  delete ring;  // NOLINT(sketchml-naked-new): end of TLS retire cycle.
}

struct TlsRing {
  Ring* ring = nullptr;
  ~TlsRing() {
    if (ring != nullptr) RetireRing(ring);
  }
};

Ring* ThisRing() {
  thread_local TlsRing tls;
  if (tls.ring == nullptr) {
    Impl& impl = GetImpl();
    common::MutexLock lock(impl.mutex);
    // NOLINTNEXTLINE(sketchml-naked-new): owned by the TLS retire cycle.
    auto* ring = new Ring(impl.ring_capacity.load(std::memory_order_relaxed),
                          impl.next_tid++);
    impl.live.push_back(ring);
    tls.ring = ring;
  }
  return tls.ring;
}

// ---------------------------------------------------------------------------
// Causal context: a global id counter, a per-thread stack of open span
// contexts (RAII-disciplined, so push/pop is strictly LIFO per thread),
// and an optional category filter.
// ---------------------------------------------------------------------------

std::atomic<uint64_t> g_next_id{1};

uint64_t NextId() { return g_next_id.fetch_add(1, std::memory_order_relaxed); }

std::vector<SpanContext>& ThisContextStack() {
  thread_local std::vector<SpanContext> stack;
  return stack;
}

void PushContext(SpanContext ctx) { ThisContextStack().push_back(ctx); }

void PopContext() {
  std::vector<SpanContext>& stack = ThisContextStack();
  if (!stack.empty()) stack.pop_back();
}

/// Category filter. `active` is the hot-path gate (one relaxed load);
/// the list itself is only touched under the mutex, on the slow path.
struct CategoryFilter {
  std::atomic<bool> active{false};
  common::Mutex mutex;
  std::vector<std::string> allowed SKETCHML_GUARDED_BY(mutex);
};

CategoryFilter& GetCategoryFilter() {
  // NOLINTNEXTLINE(sketchml-naked-new): leaked on purpose (see Impl).
  static CategoryFilter* filter = new CategoryFilter;
  return *filter;
}

/// Fills the shared event fields and assigns causal identity: parent is
/// the thread's current context (or `parent` when explicitly provided),
/// and a parentless span roots a fresh trace.
void InitEvent(TraceEvent* event, const char* category, std::string_view name,
               SpanContext parent) {
  event->category = category;
  std::memcpy(event->name, name.data(),
              std::min<size_t>(name.size(), TraceEvent::kNameCapacity));
  event->span_id = NextId();
  if (parent.valid()) {
    event->trace_id = parent.trace_id;
    event->parent_span_id = parent.span_id;
  } else {
    event->trace_id = NextId();
    event->parent_span_id = 0;
  }
}

void AppendJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

/// The event's args object, merging the stored key/value args with the
/// causal id triple (when present). Writes nothing for id-less events
/// with no args.
void AppendArgsObject(std::ostream& out, const TraceEvent& event) {
  if (event.num_args == 0 && event.trace_id == 0) return;
  char buf[96];
  out << ",\"args\":{";
  bool first = true;
  for (int i = 0; i < event.num_args; ++i) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, event.args[i].key);
    const double v =
        std::isfinite(event.args[i].value) ? event.args[i].value : 0.0;
    std::snprintf(buf, sizeof(buf), ":%.17g", v);
    out << buf;
  }
  if (event.trace_id != 0) {
    if (!first) out << ',';
    std::snprintf(buf, sizeof(buf),
                  "\"trace_id\":%llu,\"span_id\":%llu,\"parent_span_id\":%llu",
                  static_cast<unsigned long long>(event.trace_id),
                  static_cast<unsigned long long>(event.span_id),
                  static_cast<unsigned long long>(event.parent_span_id));
    out << buf;
  }
  out << '}';
}

}  // namespace

SpanContext CurrentSpanContext() {
  const std::vector<SpanContext>& stack = ThisContextStack();
  return stack.empty() ? SpanContext{} : stack.back();
}

TraceContextScope::TraceContextScope(SpanContext ctx) {
  if (!TracingEnabled() || !ctx.valid()) return;
  PushContext(ctx);
  pushed_ = true;
}

TraceContextScope::~TraceContextScope() {
  if (pushed_) PopContext();
}

void SetTraceCategories(std::string_view csv) {
  CategoryFilter& filter = GetCategoryFilter();
  common::MutexLock lock(filter.mutex);
  filter.allowed.clear();
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string_view::npos) comma = csv.size();
    std::string_view item = csv.substr(pos, comma - pos);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (!item.empty()) filter.allowed.emplace_back(item);
    pos = comma + 1;
  }
  filter.active.store(!filter.allowed.empty(), std::memory_order_relaxed);
}

bool TraceCategoryEnabled(const char* category) {
  CategoryFilter& filter = GetCategoryFilter();
  if (!filter.active.load(std::memory_order_relaxed)) return true;
  common::MutexLock lock(filter.mutex);
  for (const std::string& allowed : filter.allowed) {
    if (allowed == category) return true;
  }
  return false;
}

void TraceSpan::Begin(const char* category, std::string_view name) {
  active_ = true;
  InitEvent(&event_, category, name, CurrentSpanContext());
  PushContext(SpanContext{event_.trace_id, event_.span_id});
  event_.ts_ns = NowNs();
}

void TraceSpan::End() {
  event_.dur_ns = NowNs() - event_.ts_ns;
  PopContext();
  ThisRing()->Append(event_);
}

SpanContext EmitSpan(const char* category, std::string_view name,
                     uint64_t ts_ns, uint64_t dur_ns,
                     std::initializer_list<SpanArg> args) {
  return EmitSpanWithParent(category, name, ts_ns, dur_ns,
                            CurrentSpanContext(), args);
}

SpanContext EmitSpanWithParent(const char* category, std::string_view name,
                               uint64_t ts_ns, uint64_t dur_ns,
                               SpanContext parent,
                               std::initializer_list<SpanArg> args) {
  if (!TracingEnabled() || !TraceCategoryEnabled(category)) {
    return SpanContext{};
  }
  TraceEvent event;
  InitEvent(&event, category, name, parent);
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  for (const SpanArg& arg : args) {
    if (event.num_args >= TraceEvent::kMaxArgs) break;
    TraceEvent::Arg& slot = event.args[event.num_args++];
    std::strncpy(slot.key, arg.key, TraceEvent::kArgKeyCapacity);
    slot.value = arg.value;
  }
  ThisRing()->Append(event);
  return SpanContext{event.trace_id, event.span_id};
}

TraceLog& TraceLog::Global() {
  // NOLINTNEXTLINE(sketchml-naked-new): leaked singleton, safe at exit.
  static TraceLog* log = new TraceLog;
  return *log;
}

void TraceLog::SetRingCapacity(size_t events) {
  GetImpl().ring_capacity.store(std::max<size_t>(events, 16),
                                std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceLog::CollectEvents() const {
  Impl& impl = GetImpl();
  std::vector<TraceEvent> events;
  {
    common::MutexLock lock(impl.mutex);
    events = impl.retired_events;
    for (const Ring* ring : impl.live) {
      common::MutexLock ring_lock(ring->mutex);
      ring->CopyTo(&events);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

uint64_t TraceLog::DroppedEvents() const {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  uint64_t dropped = impl.retired_dropped;
  for (const Ring* ring : impl.live) {
    common::MutexLock ring_lock(ring->mutex);
    dropped += ring->dropped;
  }
  return dropped;
}

std::vector<ThreadDroppedEvents> TraceLog::DroppedEventsByThread() const {
  Impl& impl = GetImpl();
  std::vector<ThreadDroppedEvents> dropped;
  {
    common::MutexLock lock(impl.mutex);
    dropped = impl.retired_dropped_by_tid;
    for (const Ring* ring : impl.live) {
      common::MutexLock ring_lock(ring->mutex);
      if (ring->dropped > 0) dropped.push_back({ring->tid, ring->dropped});
    }
  }
  std::sort(dropped.begin(), dropped.end(),
            [](const ThreadDroppedEvents& a, const ThreadDroppedEvents& b) {
              return a.tid < b.tid;
            });
  return dropped;
}

void TraceLog::PublishDroppedEvents() const {
  static const Gauge gauge =
      MetricsRegistry::Global().GetGauge("trace/dropped_events");
  gauge.Set(static_cast<double>(DroppedEvents()));
  // Per-thread slices, registered lazily and only for threads that
  // actually dropped, so a clean run's metric dump carries no new slots.
  for (const ThreadDroppedEvents& entry : DroppedEventsByThread()) {
    MetricsRegistry::Global()
        .GetGauge("trace/dropped_events",
                  {{"thread", std::to_string(entry.tid)}})
        .Set(static_cast<double>(entry.dropped));
  }
}

void TraceLog::Reset() {
  Impl& impl = GetImpl();
  common::MutexLock lock(impl.mutex);
  impl.retired_events.clear();
  impl.retired_dropped = 0;
  impl.retired_dropped_by_tid.clear();
  for (Ring* ring : impl.live) {
    common::MutexLock ring_lock(ring->mutex);
    ring->next = 0;
    ring->count = 0;
    ring->dropped = 0;
  }
}

void TraceLog::WriteChromeTrace(std::ostream& out) const {
  const std::vector<TraceEvent> events = CollectEvents();
  const uint64_t dropped = DroppedEvents();
  // Span index for cross-thread parent lookups (flow arrows).
  std::unordered_map<uint64_t, const TraceEvent*> by_span_id;
  by_span_id.reserve(events.size());
  for (const TraceEvent& event : events) {
    if (event.span_id != 0) by_span_id.emplace(event.span_id, &event);
  }
  out << "{\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"sketchml\"}}";
  char buf[64];
  const auto append_ts_dur = [&](uint64_t ts_ns, uint64_t dur_ns) {
    // Chrome trace timestamps are microseconds; print with ns precision.
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(ts_ns) / 1e3,
                  static_cast<double>(dur_ns) / 1e3);
    out << buf;
  };
  for (const TraceEvent& event : events) {
    out << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid;
    append_ts_dur(event.ts_ns, event.dur_ns);
    out << ",\"cat\":";
    AppendJsonString(out, event.category);
    out << ",\"name\":";
    AppendJsonString(out, event.name);
    AppendArgsObject(out, event);
    out << '}';
    // Parent on another thread: a flow pair draws the causal arrow from
    // the parent's slice to this span's begin in Perfetto. The start
    // point is this span's begin time clamped into the parent's slice
    // (flow starts may not precede their slice or follow their finish).
    if (event.parent_span_id != 0) {
      const auto parent_it = by_span_id.find(event.parent_span_id);
      if (parent_it != by_span_id.end() &&
          parent_it->second->tid != event.tid) {
        const TraceEvent& parent = *parent_it->second;
        uint64_t flow_ts =
            std::clamp(event.ts_ns, parent.ts_ns, parent.ts_ns + parent.dur_ns);
        flow_ts = std::min(flow_ts, event.ts_ns);
        out << ",\n{\"ph\":\"s\",\"pid\":1,\"tid\":" << parent.tid;
        append_ts_dur(flow_ts, 0);
        out << ",\"id\":" << event.span_id << ",\"cat\":";
        AppendJsonString(out, event.category);
        out << ",\"name\":";
        AppendJsonString(out, event.name);
        out << '}';
        out << ",\n{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" << event.tid;
        append_ts_dur(event.ts_ns, 0);
        out << ",\"id\":" << event.span_id << ",\"cat\":";
        AppendJsonString(out, event.category);
        out << ",\"name\":";
        AppendJsonString(out, event.name);
        out << '}';
      }
    }
  }
  // Footer: how many spans the per-thread rings overwrote. A nonzero
  // count means the timeline is truncated — raise SetRingCapacity.
  out << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"dropped_events\","
         "\"args\":{\"count\":"
      << dropped << "}}";
  out << "\n],\"displayTimeUnit\":\"ms\",\"droppedEvents\":" << dropped
      << "}\n";
}

}  // namespace sketchml::obs
