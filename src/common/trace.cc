#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <ostream>

#include "common/metrics_registry.h"

namespace sketchml::obs {
namespace {

constexpr size_t kDefaultRingCapacity = 1 << 14;  // Events per thread.

/// One thread's event ring. Only the owning thread appends; the short
/// per-ring mutex exists so the collector (and TSan) see consistent
/// events — in steady state it is uncontended and stays in the owner's
/// cache line.
struct Ring {
  explicit Ring(size_t capacity, uint32_t tid_in)
      : events(capacity), tid(tid_in) {}

  std::mutex mutex;
  std::vector<TraceEvent> events;
  size_t next = 0;       // Append slot.
  size_t count = 0;      // Valid events (<= capacity).
  uint64_t dropped = 0;  // Overwritten by wraparound.
  uint32_t tid;

  void Append(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mutex);
    if (count == events.size()) {
      ++dropped;
    } else {
      ++count;
    }
    events[next] = event;
    events[next].tid = tid;
    next = (next + 1) % events.size();
  }

  /// Oldest-first copy of the retained events.
  void CopyTo(std::vector<TraceEvent>* out) const {
    const size_t start = (next + events.size() - count) % events.size();
    for (size_t i = 0; i < count; ++i) {
      out->push_back(events[(start + i) % events.size()]);
    }
  }
};

struct Impl {
  mutable std::mutex mutex;
  std::vector<Ring*> live;
  std::vector<TraceEvent> retired_events;
  uint64_t retired_dropped = 0;
  uint32_t next_tid = 1;
  std::atomic<size_t> ring_capacity{kDefaultRingCapacity};
};

Impl& GetImpl() {
  // NOLINTNEXTLINE(sketchml-naked-new): leaked on purpose.
  static Impl* impl = new Impl;  // Leaked: outlives thread-local dtors.
  return *impl;
}

void RetireRing(Ring* ring) {
  Impl& impl = GetImpl();
  std::lock_guard<std::mutex> lock(impl.mutex);
  {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->CopyTo(&impl.retired_events);
    impl.retired_dropped += ring->dropped;
  }
  impl.live.erase(std::find(impl.live.begin(), impl.live.end(), ring));
  delete ring;  // NOLINT(sketchml-naked-new): end of TLS retire cycle.
}

struct TlsRing {
  Ring* ring = nullptr;
  ~TlsRing() {
    if (ring != nullptr) RetireRing(ring);
  }
};

Ring* ThisRing() {
  thread_local TlsRing tls;
  if (tls.ring == nullptr) {
    Impl& impl = GetImpl();
    std::lock_guard<std::mutex> lock(impl.mutex);
    // NOLINTNEXTLINE(sketchml-naked-new): owned by the TLS retire cycle.
    auto* ring = new Ring(impl.ring_capacity.load(std::memory_order_relaxed),
                          impl.next_tid++);
    impl.live.push_back(ring);
    tls.ring = ring;
  }
  return tls.ring;
}

void AppendJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

void TraceSpan::Begin(const char* category, std::string_view name) {
  active_ = true;
  event_.category = category;
  std::memcpy(event_.name, name.data(),
              std::min<size_t>(name.size(), TraceEvent::kNameCapacity));
  event_.ts_ns = NowNs();
}

void TraceSpan::End() {
  event_.dur_ns = NowNs() - event_.ts_ns;
  ThisRing()->Append(event_);
}

void EmitSpan(const char* category, std::string_view name, uint64_t ts_ns,
              uint64_t dur_ns, std::string_view arg_key, double arg_value) {
  if (!TracingEnabled()) return;
  TraceEvent event;
  event.category = category;
  std::memcpy(event.name, name.data(),
              std::min<size_t>(name.size(), TraceEvent::kNameCapacity));
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  if (!arg_key.empty()) {
    std::memcpy(event.args[0].key, arg_key.data(),
                std::min<size_t>(arg_key.size(), TraceEvent::kArgKeyCapacity));
    event.args[0].value = arg_value;
    event.num_args = 1;
  }
  ThisRing()->Append(event);
}

TraceLog& TraceLog::Global() {
  // NOLINTNEXTLINE(sketchml-naked-new): leaked singleton, safe at exit.
  static TraceLog* log = new TraceLog;
  return *log;
}

void TraceLog::SetRingCapacity(size_t events) {
  GetImpl().ring_capacity.store(std::max<size_t>(events, 16),
                                std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceLog::CollectEvents() const {
  Impl& impl = GetImpl();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    events = impl.retired_events;
    for (const Ring* ring : impl.live) {
      std::lock_guard<std::mutex> ring_lock(
          const_cast<Ring*>(ring)->mutex);
      ring->CopyTo(&events);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

uint64_t TraceLog::DroppedEvents() const {
  Impl& impl = GetImpl();
  std::lock_guard<std::mutex> lock(impl.mutex);
  uint64_t dropped = impl.retired_dropped;
  for (const Ring* ring : impl.live) {
    std::lock_guard<std::mutex> ring_lock(const_cast<Ring*>(ring)->mutex);
    dropped += ring->dropped;
  }
  return dropped;
}

void TraceLog::PublishDroppedEvents() const {
  static const Gauge gauge =
      MetricsRegistry::Global().GetGauge("trace/dropped_events");
  gauge.Set(static_cast<double>(DroppedEvents()));
}

void TraceLog::Reset() {
  Impl& impl = GetImpl();
  std::lock_guard<std::mutex> lock(impl.mutex);
  impl.retired_events.clear();
  impl.retired_dropped = 0;
  for (Ring* ring : impl.live) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->next = 0;
    ring->count = 0;
    ring->dropped = 0;
  }
}

void TraceLog::WriteChromeTrace(std::ostream& out) const {
  const std::vector<TraceEvent> events = CollectEvents();
  const uint64_t dropped = DroppedEvents();
  out << "{\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"sketchml\"}}";
  char buf[64];
  for (const TraceEvent& event : events) {
    out << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << event.tid;
    // Chrome trace timestamps are microseconds; print with ns precision.
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(event.ts_ns) / 1e3,
                  static_cast<double>(event.dur_ns) / 1e3);
    out << buf << ",\"cat\":";
    AppendJsonString(out, event.category);
    out << ",\"name\":";
    AppendJsonString(out, event.name);
    if (event.num_args > 0) {
      out << ",\"args\":{";
      for (int i = 0; i < event.num_args; ++i) {
        if (i > 0) out << ',';
        AppendJsonString(out, event.args[i].key);
        const double v =
            std::isfinite(event.args[i].value) ? event.args[i].value : 0.0;
        std::snprintf(buf, sizeof(buf), ":%.17g", v);
        out << buf;
      }
      out << '}';
    }
    out << '}';
  }
  // Footer: how many spans the per-thread rings overwrote. A nonzero
  // count means the timeline is truncated — raise SetRingCapacity.
  out << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"dropped_events\","
         "\"args\":{\"count\":"
      << dropped << "}}";
  out << "\n],\"displayTimeUnit\":\"ms\",\"droppedEvents\":" << dropped
      << "}\n";
}

}  // namespace sketchml::obs
