#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace sketchml::common {

namespace internal {

const PoolObs& PoolObs::Get() {
  // Leaked: task lambdas may outlive static destruction.
  static const PoolObs* obs = [] {
    auto* p = new PoolObs;  // NOLINT(sketchml-naked-new): leaked singleton.
    auto& registry = obs::MetricsRegistry::Global();
    p->tasks = registry.GetCounter("threadpool/tasks");
    p->task_wait_ns = registry.GetHistogram("threadpool/task_wait_ns");
    p->task_run_ns = registry.GetHistogram("threadpool/task_run_ns");
    p->queue_depth = registry.GetGauge("threadpool/queue_depth");
    return p;
  }();
  return *obs;
}

PoolObs PoolObs::Labeled(std::string_view pool_name) {
  const obs::MetricLabels labels{{"pool", std::string(pool_name)}};
  auto& registry = obs::MetricsRegistry::Global();
  PoolObs p;
  p.tasks = registry.GetCounter("threadpool/tasks", labels);
  p.task_wait_ns = registry.GetHistogram("threadpool/task_wait_ns", labels);
  p.task_run_ns = registry.GetHistogram("threadpool/task_run_ns", labels);
  p.queue_depth = registry.GetGauge("threadpool/queue_depth", labels);
  return p;
}

}  // namespace internal

ThreadPool::ThreadPool(int num_threads, std::string_view obs_pool)
    : obs_(obs_pool.empty() ? internal::PoolObs::Get()
                            : internal::PoolObs::Labeled(obs_pool)) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // Workers drain the queue before exiting, so after the joins every
  // submitted task node must have been handed to a worker (the claim
  // race with TaskFuture::Get is downstream of the hand-off). All
  // workers are joined, but the lock still satisfies the guarded-by
  // contract on the members the DCHECKs read.
  MutexLock lock(mutex_);
  SKETCHML_DCHECK(queue_.empty())
      << queue_.size() << " tasks still queued at pool shutdown";
  SKETCHML_DCHECK_EQ(debug_enqueued_, debug_dequeued_);
}

void ThreadPool::Enqueue(std::shared_ptr<internal::TaskNode> node) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(node));
    if constexpr (SKETCHML_DCHECK_ENABLED) ++debug_enqueued_;
    if (obs::MetricsEnabled()) {
      obs_.queue_depth.Set(static_cast<double>(queue_.size()));
    }
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<internal::TaskNode> node;
    {
      MutexLock lock(mutex_);
      // Explicit wait loop instead of the predicate overload: the
      // analysis cannot see through a predicate lambda, but it tracks
      // the guarded reads in this loop directly.
      while (!stopping_ && queue_.empty()) cv_.Wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained.
      node = std::move(queue_.front());
      queue_.pop_front();
      if constexpr (SKETCHML_DCHECK_ENABLED) ++debug_dequeued_;
      if (obs::MetricsEnabled()) {
        obs_.queue_depth.Set(static_cast<double>(queue_.size()));
      }
    }
    // A submitter may have already reclaimed the task via Get(); only the
    // winner of the claim runs it.
    if (node->TryClaim()) node->run();
  }
}

}  // namespace sketchml::common
