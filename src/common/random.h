#ifndef SKETCHML_COMMON_RANDOM_H_
#define SKETCHML_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace sketchml::common {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All randomness in the library flows through seeded `Rng` instances so
/// that tests and benchmark harnesses are reproducible run-to-run.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x5EED5EED5EED5EEDULL);

  /// Returns a uniformly distributed 64-bit value.
  uint64_t NextUint64();

  /// Returns a uniform integer in `[0, bound)`. `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in `[0, 1)`.
  double NextDouble();

  /// Returns a uniform double in `[lo, hi)`.
  double NextUniform(double lo, double hi);

  /// Returns a standard-normal sample (Box–Muller).
  double NextGaussian();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// The full generator state is the four xoshiro256** words (Box–Muller
  /// discards its spare variate, so nothing else persists between calls).
  /// Save/Restore let checkpoints capture a codec's RNG lane exactly:
  /// restoring replays the same stream from the saved point.
  static constexpr int kStateWords = 4;
  void SaveState(uint64_t out[kStateWords]) const {
    for (int i = 0; i < kStateWords; ++i) out[i] = state_[i];
  }
  void RestoreState(const uint64_t in[kStateWords]) {
    for (int i = 0; i < kStateWords; ++i) state_[i] = in[i];
  }

 private:
  uint64_t state_[4];
};

/// Derives a decorrelated seed for parallel lane `lane` from `base`.
///
/// Parallel components (e.g. one gradient codec per simulated worker)
/// each get their own lane so their per-message seed sequences never
/// depend on cross-lane execution order — the property that makes
/// multi-threaded simulation bit-identical to serial. SplitMix64-style
/// finalizer: every (base, lane) pair maps to a well-mixed 64-bit seed.
inline uint64_t LaneSeed(uint64_t base, uint64_t lane) {
  uint64_t z = base + (lane + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Samples from a Zipf distribution over `{0, ..., n-1}` with exponent
/// `alpha` (> 0). Item 0 is the most popular. Used to synthesize the
/// power-law feature popularity of KDD-style sparse datasets.
class ZipfSampler {
 public:
  /// Precomputes the CDF; O(n) memory. `n` must be positive.
  ZipfSampler(uint64_t n, double alpha);

  /// Draws one sample using `rng`.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  uint64_t n_;
  double alpha_;
  std::vector<double> cdf_;
};

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_RANDOM_H_
