#include "common/flags.h"

#include <cstdlib>

#include "common/thread_pool.h"

namespace sketchml::common {

Result<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      parser.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a flag");
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("flag with empty name: " + arg);
      }
      parser.values_[name] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag;
    // otherwise boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      parser.values_[body] = argv[++i];
    } else {
      parser.values_[body] = "true";
    }
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  read_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

Result<int64_t> FlagParser::GetInt(const std::string& name,
                                   int64_t default_value) const {
  read_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " is not an integer: " + it->second);
  }
  return static_cast<int64_t>(v);
}

Result<double> FlagParser::GetDouble(const std::string& name,
                                     double default_value) const {
  read_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " is not a number: " + it->second);
  }
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  read_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Result<int> GetThreadsFlag(const FlagParser& flags) {
  SKETCHML_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 0));
  if (threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0 (0 = auto)");
  }
  if (threads == 0) return ThreadPool::DefaultThreadCount();
  return static_cast<int>(threads);
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    if (!read_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace sketchml::common
