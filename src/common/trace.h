#ifndef SKETCHML_COMMON_TRACE_H_
#define SKETCHML_COMMON_TRACE_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/obs.h"

namespace sketchml::obs {

/// One completed phase, recorded at span end. Fixed-size (no heap) so a
/// thread's ring buffer is a flat array and appending never allocates.
struct TraceEvent {
  static constexpr int kNameCapacity = 47;
  static constexpr int kArgKeyCapacity = 15;
  static constexpr int kMaxArgs = 2;

  uint64_t ts_ns = 0;   // Span begin, NowNs() clock.
  uint64_t dur_ns = 0;  // Span duration (0 for instant/synthetic marks).
  uint32_t tid = 0;     // Registration-order thread id (main thread = 1).
  const char* category = "";        // Must point at a string literal.
  char name[kNameCapacity + 1] = {};
  struct Arg {
    char key[kArgKeyCapacity + 1] = {};
    double value = 0.0;
  };
  Arg args[kMaxArgs];
  uint8_t num_args = 0;

  // Causal identity. trace_id groups one causal tree (e.g. one epoch);
  // parent_span_id == 0 marks the tree root. All three are 0 on events
  // recorded without causal context (pre-causal callers, filtered spans).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// Identity of a live (or completed) span, used to parent other spans:
/// either implicitly via the calling thread's context stack, or
/// explicitly handed across threads / simulated nodes (capture it on the
/// sending side, adopt it with TraceContextScope on the receiving side).
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// The calling thread's innermost active span (invalid when the thread
/// has no open span and no adopted context).
SpanContext CurrentSpanContext();

/// RAII cross-thread / cross-node context hand-off: makes `ctx` the
/// calling thread's current span for the scope's lifetime, so spans
/// opened inside (on a pool thread, say) become causal children of a
/// span that lives on another thread. No-op for an invalid context or
/// while tracing is off.
class TraceContextScope {
 public:
  explicit TraceContextScope(SpanContext ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  bool pushed_ = false;
};

/// One key/value argument attached to an emitted span. `key` must be a
/// short string literal (truncated to TraceEvent::kArgKeyCapacity).
struct SpanArg {
  const char* key;
  double value;
};

/// Restricts span recording to the listed categories (comma-separated,
/// e.g. "trainer,network"). An empty filter (the default) records every
/// category. Applies to spans that *begin* after the call; category
/// checks compare the literal's text, not its address. Like
/// SetTracingEnabled, not meant to race with recording threads.
void SetTraceCategories(std::string_view csv);

/// True when `category` passes the current filter (always true when no
/// filter is set). One relaxed atomic load in the no-filter case.
bool TraceCategoryEnabled(const char* category);

/// RAII phase marker: records begin on construction and appends one
/// completed event to the calling thread's ring buffer on destruction.
/// Inactive (and free apart from one branch) when `TracingEnabled()` is
/// false at construction time, or when the category is filtered out.
/// Spans nest naturally — inner spans simply complete (and are appended)
/// first — and the nesting *is* the causal tree: an active span is
/// pushed on its thread's context stack, so inner spans (and spans on
/// threads that adopted this span via TraceContextScope) record it as
/// their parent. A span that begins with no current context roots a new
/// trace.
class TraceSpan {
 public:
  /// `category` must be a string literal (stored by pointer); `name` is
  /// copied (truncated to TraceEvent::kNameCapacity).
  TraceSpan(const char* category, std::string_view name) {
    if (!TracingEnabled() || !TraceCategoryEnabled(category)) return;
    Begin(category, name);
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (shown in the trace viewer). At most
  /// TraceEvent::kMaxArgs stick; extras are dropped. `key` must be a
  /// short string literal.
  void Arg(const char* key, double value) {
    if (!active_ || event_.num_args >= TraceEvent::kMaxArgs) return;
    TraceEvent::Arg& arg = event_.args[event_.num_args++];
    std::strncpy(arg.key, key, TraceEvent::kArgKeyCapacity);
    arg.value = value;
  }

  /// This span's causal identity, for parenting work handed to another
  /// thread (capture before the hand-off, adopt with TraceContextScope).
  /// Invalid while the span is inactive.
  SpanContext context() const {
    if (!active_) return SpanContext{};
    return SpanContext{event_.trace_id, event_.span_id};
  }

 private:
  void Begin(const char* category, std::string_view name);
  void End();

  bool active_ = false;
  TraceEvent event_;
};

/// Appends an already-timed span (e.g. the trainer's *modeled* network
/// transfers, whose durations come from NetworkModel rather than a
/// clock). `ts_ns`/`dur_ns` are on the NowNs() timeline. The span is
/// parented under the calling thread's current context and the returned
/// SpanContext identifies it, so further synthetic spans can chain off
/// it. Up to TraceEvent::kMaxArgs key/value arguments stick; extras are
/// dropped. Returns an invalid context when tracing is off or the
/// category is filtered.
SpanContext EmitSpan(const char* category, std::string_view name,
                     uint64_t ts_ns, uint64_t dur_ns,
                     std::initializer_list<SpanArg> args = {});

/// EmitSpan with an explicit parent (instead of the thread's current
/// context) — for synthetic spans emitted on a thread other than the one
/// that owns their causal parent.
SpanContext EmitSpanWithParent(const char* category, std::string_view name,
                               uint64_t ts_ns, uint64_t dur_ns,
                               SpanContext parent,
                               std::initializer_list<SpanArg> args = {});

/// Per-thread drop accounting, exposed for collection-time publication.
struct ThreadDroppedEvents {
  uint32_t tid = 0;
  uint64_t dropped = 0;
};

/// Process-wide collector of per-thread trace rings.
class TraceLog {
 public:
  static TraceLog& Global();

  /// Ring capacity (events) for threads that record their first event
  /// after the call. When a ring is full the oldest events are
  /// overwritten and `DroppedEvents()` grows.
  void SetRingCapacity(size_t events);

  /// All retained events (live threads + exited ones), ordered by begin
  /// timestamp.
  std::vector<TraceEvent> CollectEvents() const;

  /// Serializes every retained event as Chrome `trace_event` JSON
  /// (load via chrome://tracing or https://ui.perfetto.dev). Spans with
  /// causal ids carry trace_id/span_id/parent_span_id args, and every
  /// parent→child edge that crosses threads additionally emits a flow
  /// event pair (ph "s"/"f") so the viewer draws the cross-node arrows.
  void WriteChromeTrace(std::ostream& out) const;

  /// Events lost to ring wraparound since the last Reset.
  uint64_t DroppedEvents() const;

  /// Same accounting per thread (live rings + retired ones), sorted by
  /// tid; threads that dropped nothing are omitted.
  std::vector<ThreadDroppedEvents> DroppedEventsByThread() const;

  /// Publishes `DroppedEvents()` into the metrics registry as the
  /// `trace/dropped_events` gauge — plus one `trace/dropped_events
  /// {thread=N}` gauge per thread that actually dropped — so silent span
  /// loss shows up in metric dumps and time-series, not just in the
  /// trace file footer. Called by the obs output writers and the
  /// sampler; no-op while metrics are disabled.
  void PublishDroppedEvents() const;

  /// Discards all retained events. Like MetricsRegistry::Reset, callers
  /// must ensure no thread is concurrently recording.
  void Reset();
};

}  // namespace sketchml::obs

#endif  // SKETCHML_COMMON_TRACE_H_
