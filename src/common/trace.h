#ifndef SKETCHML_COMMON_TRACE_H_
#define SKETCHML_COMMON_TRACE_H_

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/obs.h"

namespace sketchml::obs {

/// One completed phase, recorded at span end. Fixed-size (no heap) so a
/// thread's ring buffer is a flat array and appending never allocates.
struct TraceEvent {
  static constexpr int kNameCapacity = 47;
  static constexpr int kArgKeyCapacity = 15;
  static constexpr int kMaxArgs = 2;

  uint64_t ts_ns = 0;   // Span begin, NowNs() clock.
  uint64_t dur_ns = 0;  // Span duration (0 for instant/synthetic marks).
  uint32_t tid = 0;     // Registration-order thread id (main thread = 1).
  const char* category = "";        // Must point at a string literal.
  char name[kNameCapacity + 1] = {};
  struct Arg {
    char key[kArgKeyCapacity + 1] = {};
    double value = 0.0;
  };
  Arg args[kMaxArgs];
  uint8_t num_args = 0;
};

/// RAII phase marker: records begin on construction and appends one
/// completed event to the calling thread's ring buffer on destruction.
/// Inactive (and free apart from one branch) when `TracingEnabled()` is
/// false at construction time. Spans nest naturally — inner spans simply
/// complete (and are appended) first.
class TraceSpan {
 public:
  /// `category` must be a string literal (stored by pointer); `name` is
  /// copied (truncated to TraceEvent::kNameCapacity).
  TraceSpan(const char* category, std::string_view name) {
    if (!TracingEnabled()) return;
    Begin(category, name);
  }
  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (shown in the trace viewer). At most
  /// TraceEvent::kMaxArgs stick; extras are dropped. `key` must be a
  /// short string literal.
  void Arg(const char* key, double value) {
    if (!active_ || event_.num_args >= TraceEvent::kMaxArgs) return;
    TraceEvent::Arg& arg = event_.args[event_.num_args++];
    std::strncpy(arg.key, key, TraceEvent::kArgKeyCapacity);
    arg.value = value;
  }

 private:
  void Begin(const char* category, std::string_view name);
  void End();

  bool active_ = false;
  TraceEvent event_;
};

/// Appends an already-timed span (e.g. the trainer's *modeled* network
/// transfers, whose durations come from NetworkModel rather than a
/// clock). `ts_ns`/`dur_ns` are on the NowNs() timeline.
void EmitSpan(const char* category, std::string_view name, uint64_t ts_ns,
              uint64_t dur_ns, std::string_view arg_key = {},
              double arg_value = 0.0);

/// Process-wide collector of per-thread trace rings.
class TraceLog {
 public:
  static TraceLog& Global();

  /// Ring capacity (events) for threads that record their first event
  /// after the call. When a ring is full the oldest events are
  /// overwritten and `DroppedEvents()` grows.
  void SetRingCapacity(size_t events);

  /// All retained events (live threads + exited ones), ordered by begin
  /// timestamp.
  std::vector<TraceEvent> CollectEvents() const;

  /// Serializes every retained event as Chrome `trace_event` JSON
  /// (load via chrome://tracing or https://ui.perfetto.dev).
  void WriteChromeTrace(std::ostream& out) const;

  /// Events lost to ring wraparound since the last Reset.
  uint64_t DroppedEvents() const;

  /// Publishes `DroppedEvents()` into the metrics registry as the
  /// `trace/dropped_events` gauge so silent span loss shows up in metric
  /// dumps and time-series, not just in the trace file footer. Called by
  /// the obs output writers and the sampler; no-op while metrics are
  /// disabled.
  void PublishDroppedEvents() const;

  /// Discards all retained events. Like MetricsRegistry::Reset, callers
  /// must ensure no thread is concurrently recording.
  void Reset();
};

}  // namespace sketchml::obs

#endif  // SKETCHML_COMMON_TRACE_H_
