#ifndef SKETCHML_COMMON_STATUS_H_
#define SKETCHML_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace sketchml::common {

/// Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kCorruptedData = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  /// A required peer or quorum is (possibly transiently) unreachable —
  /// e.g. too few simulated workers survived a batch's retry budget.
  kUnavailable = 9,
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid argument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail without crashing the process.
///
/// The library does not use exceptions; recoverable failures (bad user
/// input, corrupted wire data, missing files) surface as a non-OK `Status`.
/// Programmer errors use `SKETCHML_CHECK` instead.
///
/// The class is `[[nodiscard]]`: every function returning a `Status` by
/// value warns (errors under -Werror) if the caller drops the result, so
/// a swallowed decode/validate failure cannot compile silently. A caller
/// that genuinely cannot act on the error must say so explicitly via a
/// `(void)` cast plus a `// NOLINT(sketchml-discarded-status)` comment
/// justifying it (enforced by tools/sketchml_lint).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a human-readable `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CorruptedData(std::string msg) {
    return Status(StatusCode::kCorruptedData, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "code: message" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define SKETCHML_RETURN_IF_ERROR(expr)                        \
  do {                                                        \
    ::sketchml::common::Status _status = (expr);              \
    if (!_status.ok()) return _status;                        \
  } while (false)

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_STATUS_H_
