#include "common/obs.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace sketchml::obs {
namespace internal {

std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_tracing_enabled{false};

namespace {

// The obs layer is itself timing infrastructure: NowNs() is the
// sanctioned monotonic clock everything else is told to use.
// NOLINTNEXTLINE(sketchml-wallclock): NowNs is the sanctioned clock.
using Clock = std::chrono::steady_clock;

Clock::time_point ProcessEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Applies SKETCHML_OBS before main() so test binaries (which never parse
/// --obs flags) can be driven from ctest presets.
bool ApplyEnvironment() {
  ProcessEpoch();  // Pin the trace zero point as early as possible.
  const char* env = std::getenv("SKETCHML_OBS");
  if (env == nullptr || std::strcmp(env, "off") == 0 || env[0] == '\0') {
    return false;
  }
  if (std::strcmp(env, "metrics") == 0) {
    g_metrics_enabled.store(true, std::memory_order_relaxed);
  } else if (std::strcmp(env, "trace") == 0) {
    g_metrics_enabled.store(true, std::memory_order_relaxed);
    g_tracing_enabled.store(true, std::memory_order_relaxed);
  }
  // Unknown values are ignored (observability stays off) rather than
  // aborting a binary that merely inherited a stray environment.
  return true;
}

const bool g_env_applied = ApplyEnvironment();

}  // namespace
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          internal::Clock::now() - internal::ProcessEpoch())
          .count());
}

}  // namespace sketchml::obs
