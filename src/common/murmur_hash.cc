#include "common/murmur_hash.h"

#include <cstring>

namespace sketchml::common {
namespace {

inline uint32_t Rotl32(uint32_t x, int8_t r) {
  return (x << r) | (x >> (32 - r));
}

inline uint32_t FMix32(uint32_t h) {
  h ^= h >> 16;
  h *= 0x85ebca6b;
  h ^= h >> 13;
  h *= 0xc2b2ae35;
  h ^= h >> 16;
  return h;
}

}  // namespace

uint32_t MurmurHash3_32(const void* data, size_t len, uint32_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const size_t nblocks = len / 4;

  uint32_t h1 = seed;
  const uint32_t c1 = 0xcc9e2d51;
  const uint32_t c2 = 0x1b873593;

  for (size_t i = 0; i < nblocks; ++i) {
    uint32_t k1;
    std::memcpy(&k1, bytes + i * 4, sizeof(k1));
    k1 *= c1;
    k1 = Rotl32(k1, 15);
    k1 *= c2;
    h1 ^= k1;
    h1 = Rotl32(h1, 13);
    h1 = h1 * 5 + 0xe6546b64;
  }

  const uint8_t* tail = bytes + nblocks * 4;
  uint32_t k1 = 0;
  switch (len & 3) {
    case 3:
      k1 ^= static_cast<uint32_t>(tail[2]) << 16;
      [[fallthrough]];
    case 2:
      k1 ^= static_cast<uint32_t>(tail[1]) << 8;
      [[fallthrough]];
    case 1:
      k1 ^= tail[0];
      k1 *= c1;
      k1 = Rotl32(k1, 15);
      k1 *= c2;
      h1 ^= k1;
  }

  h1 ^= static_cast<uint32_t>(len);
  return FMix32(h1);
}

uint64_t MurmurMix64(uint64_t key, uint64_t seed) {
  uint64_t h = key ^ (seed * 0x9e3779b97f4a7c15ULL);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace sketchml::common
