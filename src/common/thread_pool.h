#ifndef SKETCHML_COMMON_THREAD_POOL_H_
#define SKETCHML_COMMON_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"
#include "common/mutex.h"
#include "common/obs.h"
#include "common/thread_annotations.h"

namespace sketchml::common {

namespace internal {

/// One queued unit of work. The `claimed` flag arbitrates between a pool
/// worker popping the node and the submitter reclaiming it via
/// `TaskFuture::Get` (help-first scheduling): exactly one side wins, so a
/// task body runs exactly once and `Get` can never deadlock waiting for a
/// saturated pool.
struct TaskNode {
  std::function<void()> run;
  std::atomic<bool> claimed{false};

  /// Submission timestamp, captured only when metrics were enabled at
  /// submit time (0 otherwise); lets the run wrapper record queue wait.
  uint64_t enqueue_ns = 0;

  /// Returns true for exactly one caller.
  bool TryClaim() { return !claimed.exchange(true, std::memory_order_acq_rel); }
};

/// Metric handles for one pool. Unnamed pools share the process-wide
/// unlabeled `threadpool/*` slots; named pools get their own
/// `threadpool/*{pool=<name>}` slice so per-executor queue depth and
/// task latency are attributable (the trainer names its pool "trainer").
struct PoolObs {
  obs::Counter tasks;
  obs::Histogram task_wait_ns;
  obs::Histogram task_run_ns;
  obs::Gauge queue_depth;

  /// Shared unlabeled handles.
  static const PoolObs& Get();

  /// Handles labeled {pool=<pool_name>} (registration is idempotent, so
  /// two pools with the same name share a slice).
  static PoolObs Labeled(std::string_view pool_name);
};

}  // namespace internal

/// Handle to a submitted task. `Get()` returns the task's result,
/// rethrowing any exception the task body threw.
///
/// If no pool worker has started the task yet, `Get()` claims it and runs
/// it inline on the calling thread. This makes nested submission safe:
/// a task running on a pool thread may submit subtasks to the same pool
/// and `Get()` them without risking deadlock, because waiting degrades to
/// running.
template <typename T>
class TaskFuture {
 public:
  TaskFuture() = default;
  TaskFuture(std::shared_ptr<internal::TaskNode> node, std::future<T> future)
      : node_(std::move(node)), future_(std::move(future)) {}

  bool valid() const { return future_.valid(); }

  /// Blocks until the task completes (running it inline if still queued)
  /// and returns its result. Call at most once.
  T Get() {
    if (node_ != nullptr && node_->TryClaim()) node_->run();
    return future_.get();
  }

 private:
  std::shared_ptr<internal::TaskNode> node_;
  std::future<T> future_;
};

/// Fixed-size thread pool with future-returning submission and exception
/// propagation. Tasks start in FIFO order. Used by the distributed-
/// training simulator to run simulated executors concurrently and by
/// `SketchMlCodec` to encode its two sign streams in parallel.
///
/// Thread-safe: any thread (including pool workers) may `Submit`.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). A non-empty
  /// `obs_pool` name labels this pool's metrics {pool=<obs_pool>};
  /// unnamed pools record into the shared unlabeled slots.
  explicit ThreadPool(int num_threads, std::string_view obs_pool = {});

  /// Joins all workers. Outstanding tasks are completed before shutdown;
  /// callers should `Get()` every future they care about first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// `hardware_concurrency()`, never less than 1.
  static int DefaultThreadCount() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }

  /// Schedules `fn` and returns a future for its result. `fn` must be
  /// invocable with no arguments.
  template <typename F, typename T = std::invoke_result_t<std::decay_t<F>>>
  TaskFuture<T> Submit(F&& fn) {
    auto node = std::make_shared<internal::TaskNode>();
    auto promise = std::make_shared<std::promise<T>>();
    std::future<T> future = promise->get_future();
    if (obs::MetricsEnabled()) node->enqueue_ns = obs::NowNs();
    // Raw pointer: capturing the shared_ptr would cycle node -> run -> node.
    internal::TaskNode* raw_node = node.get();
    // Copy the handles (4 ints) into the task: a claimed task may run
    // inline via TaskFuture::Get after the pool itself is gone.
    node->run = [fn = std::forward<F>(fn), promise, raw_node,
                 pool_obs = obs_]() mutable {
      const bool instrumented = raw_node->enqueue_ns != 0;
      uint64_t start_ns = 0;
      if (instrumented) {
        start_ns = obs::NowNs();
        pool_obs.task_wait_ns.Record(
            static_cast<double>(start_ns - raw_node->enqueue_ns));
      }
      try {
        if constexpr (std::is_void_v<T>) {
          fn();
          promise->set_value();
        } else {
          promise->set_value(fn());
        }
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
      if (instrumented) {
        pool_obs.task_run_ns.Record(
            static_cast<double>(obs::NowNs() - start_ns));
        pool_obs.tasks.Increment();
      }
    };
    Enqueue(node);
    return TaskFuture<T>(std::move(node), std::move(future));
  }

 private:
  void Enqueue(std::shared_ptr<internal::TaskNode> node)
      SKETCHML_EXCLUDES(mutex_);
  void WorkerLoop() SKETCHML_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar cv_;
  std::deque<std::shared_ptr<internal::TaskNode>> queue_
      SKETCHML_GUARDED_BY(mutex_);
  bool stopping_ SKETCHML_GUARDED_BY(mutex_) = false;
  internal::PoolObs obs_;  // This pool's (possibly labeled) handles.
  std::vector<std::thread> workers_;

  // Task-count accounting for the shutdown DCHECK (maintained only in
  // checked builds): every enqueued node must be dequeued by a worker
  // before the pool dies, or a submitted task was silently dropped.
  size_t debug_enqueued_ SKETCHML_GUARDED_BY(mutex_) = 0;
  size_t debug_dequeued_ SKETCHML_GUARDED_BY(mutex_) = 0;
};

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_THREAD_POOL_H_
