#ifndef SKETCHML_COMMON_FRAMING_H_
#define SKETCHML_COMMON_FRAMING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace sketchml::common {

/// Checksummed message framing for the distributed simulator's fault
/// path: an 8-byte header in front of the payload so the receiver can
/// *detect* wire corruption instead of feeding garbage bytes to a codec.
///
/// Wire format (little-endian):
///   u32 length          payload byte count
///   u32 crc32(payload)  IEEE CRC-32 over the payload bytes
///   payload
///
/// The length field catches truncation and trailing garbage; the CRC
/// catches bit flips. `UnframeMessage` returns kCorruptedData on any
/// mismatch and never reads past the framed buffer. (The codec-level
/// `compress::ChecksummedCodec` offers the same guarantee as a trailing
/// footer inside one codec's message; this helper frames *any* payload
/// and is what `dist::DistributedTrainer` applies to every message when
/// a FaultPlan is active.)

/// Bytes the frame adds in front of the payload.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Wraps `payload` in a length + CRC header. `out` is overwritten.
void FrameMessage(const std::vector<uint8_t>& payload,
                  std::vector<uint8_t>* out);

/// Validates and strips the frame header, writing the payload bytes into
/// `payload` (overwritten). Returns kCorruptedData when the buffer is
/// shorter than a header, the length disagrees with the buffer size, or
/// the CRC does not match.
Status UnframeMessage(const std::vector<uint8_t>& framed,
                      std::vector<uint8_t>* payload);

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_FRAMING_H_
