#ifndef SKETCHML_COMMON_OBS_H_
#define SKETCHML_COMMON_OBS_H_

#include <atomic>
#include <cstdint>

/// `sketchml::obs` — always-compiled-in observability for the SketchML
/// reproduction (metrics + phase tracing; see docs/observability.md).
///
/// Everything in this namespace is gated on two process-wide switches so
/// that the instrumented hot paths (codec Encode/Decode, sketch inserts,
/// thread-pool tasks) pay only one relaxed atomic load and a predictable
/// branch when observability is off. The switches start from the
/// `SKETCHML_OBS` environment variable ("off" | "metrics" | "trace",
/// default off) and can be overridden at runtime (`--obs` in the tools,
/// Set*Enabled in tests).
namespace sketchml::obs {

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// True when metric recording (counters/gauges/histograms) is on.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// True when trace-span recording is on.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled);

/// Tracing implies metrics-style clock reads but not metric recording;
/// the two switches are independent.
void SetTracingEnabled(bool enabled);

/// Monotonic nanoseconds since process start (steady clock). The zero
/// point is captured at static-initialization time so every recorded
/// timestamp is small and positive.
uint64_t NowNs();

}  // namespace sketchml::obs

#endif  // SKETCHML_COMMON_OBS_H_
