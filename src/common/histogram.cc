#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace sketchml::common {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  SKETCHML_CHECK_GT(bins, 0);
  SKETCHML_CHECK_LT(lo, hi);
  bin_width_ = (hi - lo) / bins;
  counts_.assign(bins, 0);
}

void Histogram::Add(double value) {
  int bin = static_cast<int>((value - lo_) / bin_width_);
  bin = std::clamp(bin, 0, bins() - 1);
  ++counts_[bin];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

double Histogram::BinLow(int bin) const { return lo_ + bin * bin_width_; }
double Histogram::BinHigh(int bin) const {
  return lo_ + (bin + 1) * bin_width_;
}

std::string Histogram::ToAscii(int width) const {
  uint64_t max_count = 1;
  for (uint64_t c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char line[256];
  for (int b = 0; b < bins(); ++b) {
    const int bar =
        static_cast<int>(static_cast<double>(counts_[b]) / max_count * width);
    std::snprintf(line, sizeof(line), "[%+9.4f, %+9.4f) %10llu |", BinLow(b),
                  BinHigh(b), static_cast<unsigned long long>(counts_[b]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace sketchml::common
