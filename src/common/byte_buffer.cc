#include "common/byte_buffer.h"

#include "common/logging.h"

namespace sketchml::common {

void ByteWriter::WriteUintN(uint64_t v, int nbytes) {
  SKETCHML_CHECK(nbytes >= 1 && nbytes <= 8);
  // A value wider than the declared width would be silently truncated on
  // the wire and decode to a *different key* — exactly the corruption
  // class §3.4 forbids. Callers size nbytes from the value; hold them to it.
  SKETCHML_DCHECK(nbytes == 8 || (v >> (8 * nbytes)) == 0)
      << "WriteUintN(" << v << ", " << nbytes << ") would truncate";
  for (int i = 0; i < nbytes; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

Status ByteReader::ReadU8(uint8_t* out) {
  if (pos_ + 1 > len_) return Status::CorruptedData("read past end of buffer");
  *out = data_[pos_++];
  SKETCHML_DCHECK_LE(pos_, len_);
  return Status::Ok();
}

Status ByteReader::ReadUintN(int nbytes, uint64_t* out) {
  if (nbytes < 1 || nbytes > 8) {
    return Status::InvalidArgument("ReadUintN width must be in [1, 8]");
  }
  if (pos_ + static_cast<size_t>(nbytes) > len_) {
    return Status::CorruptedData("read past end of buffer");
  }
  uint64_t v = 0;
  for (int i = 0; i < nbytes; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += nbytes;
  SKETCHML_DCHECK_LE(pos_, len_);
  *out = v;
  return Status::Ok();
}

Status ByteReader::ReadVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= len_) return Status::CorruptedData("truncated varint");
    if (shift >= 64) return Status::CorruptedData("varint overflows 64 bits");
    const uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::Ok();
}

Status ByteReader::ReadRaw(void* out, size_t len) {
  if (pos_ + len > len_) {
    return Status::CorruptedData("read past end of buffer");
  }
  if (len == 0) return Status::Ok();  // out may be null (empty vector data()).
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
  SKETCHML_DCHECK_LE(pos_, len_);
  return Status::Ok();
}

void TwoBitWriter::Append(uint8_t symbol) {
  SKETCHML_CHECK_LE(symbol, 3);
  const size_t bit_offset = (count_ % 4) * 2;
  if (bit_offset == 0) bytes_.push_back(0);
  bytes_.back() |= static_cast<uint8_t>(symbol << bit_offset);
  ++count_;
}

Status TwoBitReader::Next(uint8_t* out) {
  if (pos_ >= count_) return Status::CorruptedData("two-bit stream exhausted");
  const size_t byte_index = pos_ / 4;
  if (byte_index >= nbytes_) {
    return Status::CorruptedData("two-bit stream shorter than declared count");
  }
  const size_t bit_offset = (pos_ % 4) * 2;
  *out = (data_[byte_index] >> bit_offset) & 0x3;
  ++pos_;
  SKETCHML_DCHECK_LE(pos_, count_);
  return Status::Ok();
}

}  // namespace sketchml::common
