#include "common/obs_flags.h"

#include <cstdio>
#include <fstream>

#include "common/metrics_registry.h"
#include "common/obs.h"
#include "common/trace.h"

namespace sketchml::obs {

common::Result<ObsConfig> ConfigureFromFlags(const common::FlagParser& flags) {
  ObsConfig config;
  config.trace_out = flags.GetString("trace-out", "");
  config.metrics_out = flags.GetString("metrics-out", "");
  const std::string mode = flags.GetString("obs", "auto");

  if (mode == "off") {
    if (!config.trace_out.empty() || !config.metrics_out.empty()) {
      std::fprintf(stderr,
                   "warning: --obs=off; ignoring --trace-out/--metrics-out\n");
    }
    config.trace_out.clear();
    config.metrics_out.clear();
  } else if (mode == "on") {
    config.metrics = true;
    config.tracing = !config.trace_out.empty();
  } else if (mode == "auto") {
    // Auto adds to whatever the SKETCHML_OBS environment already enabled
    // rather than overriding it.
    config.metrics = !config.trace_out.empty() ||
                     !config.metrics_out.empty() || MetricsEnabled();
    config.tracing = !config.trace_out.empty() || TracingEnabled();
  } else {
    return common::Status::InvalidArgument(
        "--obs must be auto, on, or off; got " + mode);
  }

  SetMetricsEnabled(config.metrics);
  SetTracingEnabled(config.tracing);
  return config;
}

common::Status WriteObsOutputs(const ObsConfig& config) {
  if (!config.trace_out.empty()) {
    std::ofstream out(config.trace_out);
    if (!out) {
      return common::Status::IoError("cannot open " + config.trace_out);
    }
    TraceLog::Global().WriteChromeTrace(out);
    if (!out) {
      return common::Status::IoError("failed writing " + config.trace_out);
    }
  }
  if (!config.metrics_out.empty()) {
    std::ofstream out(config.metrics_out);
    if (!out) {
      return common::Status::IoError("cannot open " + config.metrics_out);
    }
    MetricsRegistry::Global().Snapshot().WriteJsonl(out);
    if (!out) {
      return common::Status::IoError("failed writing " + config.metrics_out);
    }
  }
  return common::Status::Ok();
}

}  // namespace sketchml::obs
