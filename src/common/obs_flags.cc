#include "common/obs_flags.h"

#include <cstdio>
#include <fstream>

#include "common/metrics_registry.h"
#include "common/obs.h"
#include "common/trace.h"

namespace sketchml::obs {

common::Result<ObsConfig> ConfigureFromFlags(const common::FlagParser& flags) {
  ObsConfig config;
  config.trace_out = flags.GetString("trace-out", "");
  config.metrics_out = flags.GetString("metrics-out", "");
  config.series_out = flags.GetString("series-out", "");
  auto interval = flags.GetDouble("sample-interval", 0.0);
  if (!interval.ok()) return interval.status();
  if (*interval < 0.0) {
    return common::Status::InvalidArgument(
        "--sample-interval must be >= 0 seconds");
  }
  config.sample_interval = *interval;
  config.trace_categories = flags.GetString("trace-categories", "");
  auto sample_every = flags.GetInt("trace-sample-every", 1);
  if (!sample_every.ok()) return sample_every.status();
  if (*sample_every < 1) {
    return common::Status::InvalidArgument(
        "--trace-sample-every must be >= 1");
  }
  config.trace_sample_every = static_cast<int>(*sample_every);
  config.metrics_format = flags.GetString("metrics-format", "jsonl");
  if (config.metrics_format != "jsonl" && config.metrics_format != "prom") {
    return common::Status::InvalidArgument(
        "--metrics-format must be jsonl or prom; got " +
        config.metrics_format);
  }
  const std::string mode = flags.GetString("obs", "auto");

  const bool any_output = !config.trace_out.empty() ||
                          !config.metrics_out.empty() ||
                          !config.series_out.empty();
  if (mode == "off") {
    if (any_output) {
      std::fprintf(stderr,
                   "warning: --obs=off; ignoring "
                   "--trace-out/--metrics-out/--series-out\n");
    }
    config.trace_out.clear();
    config.metrics_out.clear();
    config.series_out.clear();
  } else if (mode == "on") {
    config.metrics = true;
    config.tracing = !config.trace_out.empty();
  } else if (mode == "auto") {
    // Auto adds to whatever the SKETCHML_OBS environment already enabled
    // rather than overriding it.
    config.metrics = any_output || MetricsEnabled();
    config.tracing = !config.trace_out.empty() || TracingEnabled();
  } else {
    return common::Status::InvalidArgument(
        "--obs must be auto, on, or off; got " + mode);
  }

  SetMetricsEnabled(config.metrics);
  SetTracingEnabled(config.tracing);
  SetTraceCategories(config.trace_categories);
  return config;
}

common::Result<std::unique_ptr<MetricsSampler>> StartSamplerFromConfig(
    const ObsConfig& config, RunMetadata metadata) {
  if (config.series_out.empty()) {
    return std::unique_ptr<MetricsSampler>();
  }
  MetricsSampler::Options options;
  options.out_path = config.series_out;
  options.interval_seconds = config.sample_interval;
  options.metadata = std::move(metadata);
  return MetricsSampler::Start(std::move(options));
}

std::string ObsConfig::FlagSet() const {
  if (!metrics && !tracing) return "off";
  std::string out;
  if (metrics) out += "metrics";
  if (tracing) out += out.empty() ? "trace" : ",trace";
  return out;
}

common::Status WriteObsOutputs(const ObsConfig& config) {
  // Surface trace-ring overflow in the registry before any dump or
  // snapshot is taken, so truncated timelines are visible in metrics too.
  TraceLog::Global().PublishDroppedEvents();
  if (!config.trace_out.empty()) {
    std::ofstream out(config.trace_out);
    if (!out) {
      return common::Status::IoError("cannot open " + config.trace_out);
    }
    TraceLog::Global().WriteChromeTrace(out);
    if (!out) {
      return common::Status::IoError("failed writing " + config.trace_out);
    }
  }
  if (!config.metrics_out.empty()) {
    std::ofstream out(config.metrics_out);
    if (!out) {
      return common::Status::IoError("cannot open " + config.metrics_out);
    }
    const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    if (config.metrics_format == "prom") {
      WritePromExposition(snap, out);
    } else {
      snap.WriteJsonl(out);
    }
    if (!out) {
      return common::Status::IoError("failed writing " + config.metrics_out);
    }
  }
  return common::Status::Ok();
}

}  // namespace sketchml::obs
