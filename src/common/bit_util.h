#ifndef SKETCHML_COMMON_BIT_UTIL_H_
#define SKETCHML_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace sketchml::common {

/// Number of whole bytes needed to store `v` (at least 1, at most 8).
/// A delta of 0..255 needs 1 byte, 256..65535 needs 2 bytes, etc. (§3.4).
/// Branchless (lzcnt) — this runs once per key in the delta-binary hot
/// loop, where the shift-loop version mispredicts on mixed-width deltas.
constexpr int BytesNeeded(uint64_t v) {
  return (std::bit_width(v | 1) + 7) / 8;
}

/// Exact LEB128-encoded size of `v` in bytes (1..10): one byte per
/// started 7-bit group. Replaces the "write to a probe ByteWriter and
/// measure" idiom in EncodedSize computations.
constexpr int VarintSize(uint64_t v) {
  return (std::bit_width(v | 1) + 6) / 7;
}

/// Number of bits needed to represent values in [0, n); at least 1.
inline int BitsForRange(uint64_t n) {
  int bits = 1;
  uint64_t capacity = 2;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

/// Rounds `x` up to the next multiple of `align` (align > 0).
inline uint64_t RoundUp(uint64_t x, uint64_t align) {
  return (x + align - 1) / align * align;
}

/// Integer ceiling division for non-negative operands.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_BIT_UTIL_H_
