#ifndef SKETCHML_COMMON_MUTEX_H_
#define SKETCHML_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace sketchml::common {

/// A std::mutex with clang thread-safety capability annotations.
///
/// libstdc++'s std::mutex carries no capability attributes, so clang's
/// -Wthread-safety analysis cannot see it being locked or unlocked.
/// Every mutex-holding class in the repo uses this wrapper (and
/// MutexLock / CondVar below) so SKETCHML_GUARDED_BY members are
/// actually checked by the thread-safety CI job.
class SKETCHML_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SKETCHML_ACQUIRE() { mu_.lock(); }
  void Unlock() SKETCHML_RELEASE() { mu_.unlock(); }
  bool TryLock() SKETCHML_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable surface for condition_variable_any (whose internal
  // unlock-guard calls these from a libstdc++ header), deliberately
  // *without* annotations: the wait protocol (unlock, block, relock)
  // nets out to "still held" and must be invisible to the analysis.
  // Annotated code locks through Lock/Unlock/MutexLock, never these.
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated as a scoped capability so the analysis
/// knows the mutex is held for the lifetime of the lock object.
class SKETCHML_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SKETCHML_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SKETCHML_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() must be called with the
/// mutex held (a MutexLock in scope); it returns with the mutex held
/// again, which is exactly what the SKETCHML_REQUIRES annotation states.
class CondVar {
 public:
  void Wait(Mutex& mu) SKETCHML_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait; returns std::cv_status::timeout when `timeout` elapsed.
  /// No predicate overloads: the analysis cannot see through a predicate
  /// lambda, so callers write the guarded-read wait loop themselves.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      SKETCHML_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_MUTEX_H_
