#ifndef SKETCHML_COMMON_CRC32_H_
#define SKETCHML_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sketchml::common {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte buffer.
///
/// Gradient messages crossing a real network can arrive corrupted; the
/// framed codec wrapper (`compress::ChecksummedCodec`) uses this to turn
/// silent corruption into a kCorruptedData status.
uint32_t Crc32(const void* data, size_t len);

inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace sketchml::common

#endif  // SKETCHML_COMMON_CRC32_H_
