#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/murmur_hash.h"

namespace sketchml::common::simd {
namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These define the semantics: the element-at-a-
// time logic the pre-batch code paths used, so `--simd=off` reproduces the
// historical behavior (and performance) exactly.
// ---------------------------------------------------------------------------

size_t BucketSearchScalar(const double* splits, size_t num_splits,
                          const double* values, size_t count, uint16_t* out) {
  const int top = static_cast<int>(num_splits) - 2;  // num_buckets - 1
  size_t clamped_count = 0;
  for (size_t i = 0; i < count; ++i) {
    const double* it =
        std::upper_bound(splits, splits + num_splits, values[i]);
    const int idx = static_cast<int>(it - splits) - 1;
    const int clamped = std::clamp(idx, 0, top);
    clamped_count += static_cast<size_t>(clamped != idx);
    out[i] = static_cast<uint16_t>(clamped);
  }
  return clamped_count;
}

void HashBucketsScalar(const uint64_t* keys, size_t count, uint64_t seed,
                       uint64_t num_buckets, uint32_t* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<uint32_t>(MurmurMix64(keys[i], seed) % num_buckets);
  }
}

DeltaScanStatus DeltaScanScalar(const uint64_t* keys, size_t count,
                                uint32_t* deltas, uint8_t* widths,
                                size_t* total_delta_bytes) {
  uint64_t previous = 0;
  size_t total = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t key = keys[i];
    if (i > 0 && key <= previous) return DeltaScanStatus::kNotIncreasing;
    const uint64_t delta = key - previous;
    if (delta > 0xffffffffULL) return DeltaScanStatus::kDeltaTooWide;
    const int nbytes = BytesNeeded(delta);
    deltas[i] = static_cast<uint32_t>(delta);
    widths[i] = static_cast<uint8_t>(nbytes);
    total += static_cast<size_t>(nbytes);
    previous = key;
  }
  *total_delta_bytes = total;
  return DeltaScanStatus::kOk;
}

}  // namespace

const Kernels kScalarKernels = {
    &BucketSearchScalar,
    &HashBucketsScalar,
    &DeltaScanScalar,
};

}  // namespace internal

namespace {

// -1 = not initialized yet; otherwise a Level. Initialization from the
// environment is idempotent, so a benign first-use race just repeats it.
std::atomic<int> g_active_level{-1};

Level LevelFromEnv() {
  const char* env = std::getenv("SKETCHML_SIMD");
  if (env == nullptr || *env == '\0') return DetectedLevel();
  const std::string value(env);
  if (value == "off" || value == "scalar" || value == "0") {
    return Level::kScalar;
  }
  if (value == "avx2") {
    if (LevelSupported(Level::kAvx2)) return Level::kAvx2;
    SKETCHML_LOG(Warning) << "SKETCHML_SIMD=avx2 but AVX2 is unavailable "
                             "on this host/build; using scalar";
    return Level::kScalar;
  }
  if (value != "auto" && value != "on" && value != "1") {
    SKETCHML_LOG(Warning) << "unknown SKETCHML_SIMD value '" << value
                          << "' (expected auto|on|off|scalar|avx2); "
                             "auto-detecting";
  }
  return DetectedLevel();
}

const internal::Kernels& ActiveKernels() {
  return ActiveLevel() == Level::kAvx2 ? *internal::Avx2Kernels()
                                       : internal::kScalarKernels;
}

}  // namespace

const char* LevelName(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

Level DetectedLevel() {
  // Checking cpuid *before* touching the AVX2 TU matters: that TU is
  // compiled with AVX2 codegen enabled, so even its accessor must only
  // run on CPUs that have the instructions.
  static const Level detected = [] {
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2") &&
        internal::Avx2Kernels() != nullptr) {
      return Level::kAvx2;
    }
#endif
    return Level::kScalar;
  }();
  return detected;
}

bool LevelSupported(Level level) {
  return level == Level::kScalar || DetectedLevel() == Level::kAvx2;
}

Level ActiveLevel() {
  int level = g_active_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(LevelFromEnv());
    g_active_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<Level>(level);
}

void SetActiveLevel(Level level) {
  SKETCHML_CHECK(LevelSupported(level))
      << LevelName(level) << " is not supported on this host/build";
  g_active_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Status SetActiveLevelFromString(const std::string& name) {
  if (name == "auto" || name == "on" || name == "" || name == "1") {
    SetActiveLevel(DetectedLevel());
    return Status::Ok();
  }
  if (name == "off" || name == "scalar" || name == "0") {
    SetActiveLevel(Level::kScalar);
    return Status::Ok();
  }
  if (name == "avx2") {
    if (!LevelSupported(Level::kAvx2)) {
      return Status::InvalidArgument(
          "--simd=avx2 requested but AVX2 is unavailable on this "
          "host/build");
    }
    SetActiveLevel(Level::kAvx2);
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown simd level '" + name +
                                 "' (expected auto|on|off|scalar|avx2)");
}

size_t BucketSearch(const double* splits, size_t num_splits,
                    const double* values, size_t count, uint16_t* out) {
  SKETCHML_DCHECK_GE(num_splits, 2u);
  return ActiveKernels().bucket_search(splits, num_splits, values, count,
                                       out);
}

void HashBuckets(const uint64_t* keys, size_t count, uint64_t seed,
                 uint64_t num_buckets, uint32_t* out) {
  SKETCHML_DCHECK_GE(num_buckets, 1u);
  SKETCHML_DCHECK_LE(num_buckets, uint64_t{1} << 32);
  ActiveKernels().hash_buckets(keys, count, seed, num_buckets, out);
}

DeltaScanStatus DeltaScan(const uint64_t* keys, size_t count,
                          uint32_t* deltas, uint8_t* widths,
                          size_t* total_delta_bytes) {
  return ActiveKernels().delta_scan(keys, count, deltas, widths,
                                    total_delta_bytes);
}

}  // namespace sketchml::common::simd
