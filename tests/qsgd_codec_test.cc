#include "compress/qsgd_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "common/sparse.h"

namespace sketchml::compress {
namespace {

common::SparseGradient MakeGradient(size_t count, uint64_t seed) {
  common::Rng rng(seed);
  std::set<uint64_t> keys;
  while (keys.size() < count) keys.insert(rng.NextBounded(1 << 22));
  common::SparseGradient grad;
  for (uint64_t k : keys) {
    grad.push_back({k, rng.NextBernoulli(0.9) ? rng.NextGaussian() * 0.01
                                              : rng.NextGaussian() * 0.3});
  }
  return grad;
}

TEST(QsgdCodecTest, KeysAndSignsExact) {
  QsgdCodec codec(255);
  const auto grad = MakeGradient(3000, 331);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  ASSERT_EQ(decoded.size(), grad.size());
  for (size_t i = 0; i < grad.size(); ++i) {
    ASSERT_EQ(decoded[i].key, grad[i].key);
    // Sign flips only possible for level 0 (decoded exactly 0).
    if (decoded[i].value != 0.0) {
      EXPECT_EQ(decoded[i].value >= 0, grad[i].value >= 0);
    }
  }
}

TEST(QsgdCodecTest, QuantizationIsUnbiased) {
  // E[decoded] == original, by stochastic level selection.
  QsgdCodec codec(8, /*seed=*/5);  // Few levels: visible randomness.
  common::SparseGradient grad;
  for (uint64_t i = 0; i < 8192; ++i) grad.push_back({i, 0.3});
  grad.push_back({100000, 1.0});  // Norm anchor.
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  double sum = 0.0;
  for (size_t i = 0; i + 1 < decoded.size(); ++i) sum += decoded[i].value;
  EXPECT_NEAR(sum / 8192, 0.3, 0.02);
}

TEST(QsgdCodecTest, VarianceBoundHolds) {
  // QSGD bound: E||g~ - g||^2 <= min(d/s^2, sqrt(d)/s) ||g||^2.
  const auto grad = MakeGradient(10000, 337);
  double norm_sq = 0.0;
  for (const auto& p : grad) norm_sq += p.value * p.value;
  for (int levels : {16, 64, 255}) {
    QsgdCodec codec(levels, 7);
    EncodedGradient msg;
    ASSERT_TRUE(codec.Encode(grad, &msg).ok());
    common::SparseGradient decoded;
    ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
    double err = 0.0;
    for (size_t i = 0; i < grad.size(); ++i) {
      err += std::pow(grad[i].value - decoded[i].value, 2);
    }
    const double d = static_cast<double>(grad.size());
    const double s = levels;
    const double bound = std::min(d / (s * s), std::sqrt(d) / s) * norm_sq;
    EXPECT_LE(err, bound * 1.05) << "levels " << levels;
  }
}

TEST(QsgdCodecTest, SmallGradientsYieldShortCodes) {
  // Near-zero values map to level 0 -> 1-bit Elias codes, so skewed
  // gradients compress well below the 2-byte-per-value of ZipML-16.
  const auto grad = MakeGradient(20000, 347);
  QsgdCodec codec(255);
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  // 4 key bytes + sign bit + short level code: comfortably < 6 B/pair.
  EXPECT_LT(msg.size(), grad.size() * 6);
}

TEST(QsgdCodecTest, EmptyGradient) {
  QsgdCodec codec;
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode({}, &msg).ok());
  common::SparseGradient decoded = {{1, 1.0}};
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(QsgdCodecTest, AllZeroValues) {
  QsgdCodec codec;
  common::SparseGradient grad = {{1, 0.0}, {5, 0.0}};
  EncodedGradient msg;
  ASSERT_TRUE(codec.Encode(grad, &msg).ok());
  common::SparseGradient decoded;
  ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
  for (const auto& p : decoded) EXPECT_EQ(p.value, 0.0);
}

TEST(QsgdCodecTest, RejectsBadLevels) {
  EXPECT_DEATH(QsgdCodec(0), "");
}

}  // namespace
}  // namespace sketchml::compress
