#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/codec_factory.h"
#include "dist/fault.h"
#include "dist/trainer.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::dist {
namespace {

struct Fixture {
  Fixture() {
    ml::SyntheticConfig config;
    config.num_instances = 2000;
    config.dim = 1 << 14;
    config.avg_nnz = 30;
    config.seed = 17;
    ml::Dataset all = ml::GenerateSynthetic(config);
    auto [tr, te] = all.Split(0.25);
    train = std::make_unique<ml::Dataset>(std::move(tr));
    test = std::make_unique<ml::Dataset>(std::move(te));
    loss = ml::MakeLoss("lr");
  }

  std::unique_ptr<compress::GradientCodec> Codec(const std::string& name) {
    return std::move(core::MakeCodec(name)).value();
  }

  common::Result<std::vector<EpochStats>> Run(const ClusterConfig& cluster,
                                              int epochs,
                                              const std::string& codec,
                                              int num_threads = 1) {
    TrainerConfig config;
    config.learning_rate = 0.05;
    config.adam_epsilon = 0.01;
    config.num_threads = num_threads;
    DistributedTrainer trainer(train.get(), test.get(), loss.get(),
                               Codec(codec), cluster, config);
    return trainer.Run(epochs);
  }

  std::unique_ptr<ml::Dataset> train, test;
  std::unique_ptr<ml::Loss> loss;
};

/// The deterministic subset of EpochStats: everything except measured CPU
/// seconds (wall time varies run to run; byte counts, losses, and fault
/// accounting must not).
void ExpectDeterministicFieldsEqual(const EpochStats& a, const EpochStats& b) {
  EXPECT_EQ(a.bytes_up, b.bytes_up);
  EXPECT_EQ(a.bytes_down, b.bytes_down);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retransmit_bytes, b.retransmit_bytes);
  EXPECT_EQ(a.lost_messages, b.lost_messages);
  EXPECT_EQ(a.degraded_batches, b.degraded_batches);
  EXPECT_EQ(a.avg_gradient_nnz, b.avg_gradient_nnz);  // Bit-exact.
  EXPECT_EQ(a.train_loss, b.train_loss);
  EXPECT_EQ(a.test_loss, b.test_loss);
}

// ---------------------------------------------------------------------------
// FaultPlan / FaultInjector units.

TEST(FaultPlanTest, DefaultPlanIsInactiveAndValid) {
  FaultPlan plan;
  EXPECT_FALSE(plan.Active());
  EXPECT_TRUE(ValidateFaultPlan(plan).ok());
}

TEST(FaultPlanTest, AnyPositiveProbabilityActivates) {
  FaultPlan plan;
  plan.corrupt_prob = 0.01;
  EXPECT_TRUE(plan.Active());
}

TEST(FaultPlanTest, RejectsOutOfRangeProbability) {
  FaultPlan plan;
  plan.drop_prob = 1.5;
  EXPECT_EQ(ValidateFaultPlan(plan).code(),
            common::StatusCode::kInvalidArgument);
  plan.drop_prob = -0.1;
  EXPECT_FALSE(ValidateFaultPlan(plan).ok());
}

TEST(FaultPlanTest, RejectsBadRecoveryBudgets) {
  FaultPlan plan;
  plan.max_retries = 63;  // Backoff doubling would overflow the shift.
  EXPECT_FALSE(ValidateFaultPlan(plan).ok());
  plan = FaultPlan();
  plan.min_quorum = 0;
  EXPECT_FALSE(ValidateFaultPlan(plan).ok());
  plan = FaultPlan();
  plan.straggle_factor = 0.5;
  EXPECT_FALSE(ValidateFaultPlan(plan).ok());
}

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_prob = 0.3;
  plan.corrupt_prob = 0.3;
  FaultInjector a(plan), b(plan);
  int fired = 0;
  for (uint64_t batch = 0; batch < 50; ++batch) {
    for (int w = 0; w < 4; ++w) {
      EXPECT_EQ(a.ShouldDrop(batch, w, 0, 0), b.ShouldDrop(batch, w, 0, 0));
      EXPECT_EQ(a.ShouldCorrupt(batch, w, 0, 0),
                b.ShouldCorrupt(batch, w, 0, 0));
      if (a.ShouldDrop(batch, w, 0, 0)) ++fired;
    }
  }
  // ~30% of 200 decisions should fire; a degenerate oracle (always /
  // never) would fail both bounds.
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 140);
}

TEST(FaultInjectorTest, SeedChangesTheSequence) {
  FaultPlan plan;
  plan.drop_prob = 0.5;
  plan.seed = 1;
  FaultInjector a(plan);
  plan.seed = 2;
  FaultInjector b(plan);
  int differ = 0;
  for (uint64_t batch = 0; batch < 100; ++batch) {
    if (a.ShouldDrop(batch, 0, 0, 0) != b.ShouldDrop(batch, 0, 0, 0)) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjectorTest, AttemptsDrawIndependently) {
  // A retry must not deterministically share its predecessor's fate,
  // otherwise a dropped message could never be re-delivered.
  FaultPlan plan;
  plan.drop_prob = 0.5;
  FaultInjector inj(plan);
  int differ = 0;
  for (uint64_t batch = 0; batch < 100; ++batch) {
    if (inj.ShouldDrop(batch, 0, 0, 0) != inj.ShouldDrop(batch, 0, 0, 1)) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 10);
}

TEST(FaultInjectorTest, CorruptMutatesBytesDeterministically) {
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  FaultInjector inj(plan);
  const std::vector<uint8_t> original(100, 0x5A);
  int changed = 0;
  for (uint64_t batch = 0; batch < 20; ++batch) {
    std::vector<uint8_t> once = original, twice = original;
    inj.Corrupt(&once, batch, 0, 0, 0);
    inj.Corrupt(&twice, batch, 0, 0, 0);
    EXPECT_EQ(once, twice);
    if (once != original) ++changed;
  }
  EXPECT_EQ(changed, 20);  // Corruption must actually damage the bytes.
}

TEST(FaultInjectorTest, BackoffDoublesPerAttempt) {
  FaultPlan plan;
  plan.backoff_seconds = 1e-3;
  FaultInjector inj(plan);
  EXPECT_DOUBLE_EQ(inj.BackoffSeconds(1), 1e-3);
  EXPECT_DOUBLE_EQ(inj.BackoffSeconds(2), 2e-3);
  EXPECT_DOUBLE_EQ(inj.BackoffSeconds(5), 16e-3);
}

TEST(FaultInjectorTest, CrashKeepsWorkerDownForWindow) {
  FaultPlan plan;
  plan.crash_prob = 0.1;
  plan.crash_batches = 3;
  FaultInjector inj(plan);
  // Find a crash onset and check the worker stays down exactly 3 batches.
  for (int w = 0; w < 4; ++w) {
    for (uint64_t b = 1; b < 200; ++b) {
      if (!inj.WorkerCrashed(b - 1, w) && inj.WorkerCrashed(b, w) &&
          b + 3 < 200) {
        EXPECT_TRUE(inj.WorkerCrashed(b + 1, w));
        EXPECT_TRUE(inj.WorkerCrashed(b + 2, w));
        return;  // Found and verified one onset; that's enough.
      }
    }
  }
  FAIL() << "no crash onset found in 200 batches at p=0.1";
}

// ---------------------------------------------------------------------------
// Trainer integration.

TEST(FaultToleranceTest, InactivePlanVariantsAreBitIdentical) {
  // Changing inactive-plan knobs (seed, retry budget) must not perturb
  // training at all: the fault-free path never consults them.
  Fixture f;
  ClusterConfig plain;
  plain.num_workers = 4;
  ClusterConfig tweaked = plain;
  tweaked.faults.seed = 999;
  tweaked.faults.max_retries = 7;
  tweaked.faults.backoff_seconds = 0.5;
  auto a = f.Run(plain, 2, "sketchml");
  auto b = f.Run(tweaked, 2, "sketchml");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t e = 0; e < a->size(); ++e) {
    ExpectDeterministicFieldsEqual((*a)[e], (*b)[e]);
    EXPECT_EQ((*a)[e].injected_faults, 0u);
    EXPECT_EQ((*a)[e].retries, 0u);
    EXPECT_EQ((*a)[e].degraded_batches, 0u);
  }
}

TEST(FaultToleranceTest, SameSeedReplaysIdenticalFaultSequence) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.faults.seed = 7;
  cluster.faults.drop_prob = 0.10;
  cluster.faults.corrupt_prob = 0.10;
  cluster.faults.straggle_prob = 0.10;
  auto a = f.Run(cluster, 2, "sketchml");
  auto b = f.Run(cluster, 2, "sketchml");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  uint64_t injected = 0;
  for (size_t e = 0; e < a->size(); ++e) {
    ExpectDeterministicFieldsEqual((*a)[e], (*b)[e]);
    injected += (*a)[e].injected_faults;
  }
  EXPECT_GT(injected, 0u);  // The plan must have actually fired.
}

TEST(FaultToleranceTest, FaultSequenceIsThreadCountInvariant) {
  // Injection decisions are keyed on (batch, worker, server, attempt),
  // never on execution order, so a threaded run replays the serial run.
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.num_servers = 2;
  cluster.faults.seed = 11;
  cluster.faults.drop_prob = 0.10;
  cluster.faults.corrupt_prob = 0.10;
  auto serial = f.Run(cluster, 2, "sketchml", /*num_threads=*/1);
  auto threaded = f.Run(cluster, 2, "sketchml", /*num_threads=*/3);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(threaded.ok());
  for (size_t e = 0; e < serial->size(); ++e) {
    ExpectDeterministicFieldsEqual((*serial)[e], (*threaded)[e]);
  }
}

TEST(FaultToleranceTest, RetriesRecoverCorruptionAndDrops) {
  // The acceptance scenario: 5% corruption + 5% drop. With a retry
  // budget of 3 virtually every message is eventually delivered intact,
  // so training converges to (here: exactly) the fault-free loss while
  // paying for the faults in retries and retransmitted bytes.
  Fixture f;
  ClusterConfig clean;
  clean.num_workers = 4;
  ClusterConfig faulty = clean;
  faulty.faults.seed = 3;
  faulty.faults.drop_prob = 0.05;
  faulty.faults.corrupt_prob = 0.05;
  faulty.faults.max_retries = 3;
  auto base = f.Run(clean, 3, "sketchml");
  auto run = f.Run(faulty, 3, "sketchml");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const EpochStats total = Aggregate(*run);
  EXPECT_GT(total.injected_faults, 0u);
  EXPECT_GT(total.retries, 0u);
  EXPECT_GT(total.retransmit_bytes, 0u);
  const double clean_loss = base->back().test_loss;
  const double faulty_loss = run->back().test_loss;
  EXPECT_LE(std::abs(faulty_loss - clean_loss), 0.10 * clean_loss);
  // Retransmits and backoff must show up in the modeled network time.
  EXPECT_GT(Aggregate(*run).network_seconds,
            Aggregate(*base).network_seconds);
}

TEST(FaultToleranceTest, ExhaustedRetriesDegradeToQuorum) {
  // Heavy drops against a small retry budget: some messages exhaust it
  // and get lost, batches apply with a subset of workers, training still
  // completes and converges.
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.faults.seed = 5;
  cluster.faults.drop_prob = 0.5;
  cluster.faults.max_retries = 1;
  cluster.faults.min_quorum = 1;
  auto run = f.Run(cluster, 3, "sketchml");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const EpochStats total = Aggregate(*run);
  EXPECT_GT(total.lost_messages, 0u);
  EXPECT_GT(total.degraded_batches, 0u);
  EXPECT_LT(run->back().train_loss, run->front().train_loss * 1.05);
}

TEST(FaultToleranceTest, QuorumFailureReturnsUnavailable) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.faults.drop_prob = 1.0;  // Every attempt lost.
  cluster.faults.max_retries = 1;
  cluster.faults.min_quorum = 2;
  TrainerConfig config;
  DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                             f.Codec("adam-double"), cluster, config);
  auto result = trainer.RunEpoch();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kUnavailable);
}

TEST(FaultToleranceTest, CrashedWorkersDegradeButTrainingContinues) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.faults.seed = 2;
  cluster.faults.crash_prob = 0.05;
  cluster.faults.crash_batches = 2;
  auto run = f.Run(cluster, 3, "adam-double");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const EpochStats total = Aggregate(*run);
  EXPECT_GT(total.injected_faults, 0u);
  EXPECT_GT(total.degraded_batches, 0u);
  // A crashed worker sends nothing that batch.
  EXPECT_LT(total.messages, 4u * total.num_batches);
}

TEST(FaultToleranceTest, StragglersSlowTheEpochDown) {
  Fixture f;
  ClusterConfig clean;
  clean.num_workers = 4;
  ClusterConfig slow = clean;
  slow.faults.seed = 13;
  slow.faults.straggle_prob = 0.5;
  // The comparison below is between *measured* wall times of two separate
  // runs, so scheduling noise (e.g. a loaded CI host) can inflate either
  // side severalfold; a huge factor keeps the straggle signal dominant.
  slow.faults.straggle_factor = 1000.0;
  auto base = f.Run(clean, 1, "adam-double");
  auto run = f.Run(slow, 1, "adam-double");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(run.ok());
  // Stragglers multiply measured compute time but never change message
  // payloads (the active plan adds only the 8-byte frame header) or the
  // learned model.
  EXPECT_GT(run->back().compute_seconds, base->back().compute_seconds);
  EXPECT_EQ(run->back().bytes_up,
            base->back().bytes_up + 8u * base->back().messages);
  EXPECT_EQ(run->back().train_loss, base->back().train_loss);
  EXPECT_GT(run->back().injected_faults, 0u);
}

TEST(FaultToleranceTest, ServerStallsInflateNetworkTime) {
  Fixture f;
  ClusterConfig clean;
  clean.num_workers = 4;
  ClusterConfig stalled = clean;
  stalled.faults.seed = 19;
  stalled.faults.stall_prob = 0.5;
  stalled.faults.stall_seconds = 0.25;
  auto base = f.Run(clean, 1, "adam-double");
  auto run = f.Run(stalled, 1, "adam-double");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->back().network_seconds, base->back().network_seconds);
  EXPECT_GT(run->back().injected_faults, 0u);
  EXPECT_EQ(run->back().train_loss, base->back().train_loss);
}

TEST(FaultToleranceTest, FramingChargesEightBytesPerMessage) {
  // An active-but-quiet plan (probability too small for any draw to fire
  // in this run) isolates the framing cost: byte counts grow by exactly
  // the 8-byte header per gather message, and nothing else changes.
  Fixture f;
  ClusterConfig clean;
  clean.num_workers = 4;
  ClusterConfig framed = clean;
  framed.faults.drop_prob = 1e-15;
  auto base = f.Run(clean, 1, "adam-double");
  auto run = f.Run(framed, 1, "adam-double");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->back().injected_faults, 0u);  // Plan active, never fired.
  EXPECT_EQ(run->back().messages, base->back().messages);
  EXPECT_EQ(run->back().bytes_up,
            base->back().bytes_up + 8u * base->back().messages);
  EXPECT_EQ(run->back().train_loss, base->back().train_loss);
}

// ---------------------------------------------------------------------------
// Configuration validation (satellite: InvalidArgument, not div-by-zero).

TEST(ClusterValidationTest, RejectsNonPositiveWorkerOrServerCounts) {
  ClusterConfig cluster;
  cluster.num_workers = 0;
  EXPECT_EQ(ValidateClusterConfig(cluster).code(),
            common::StatusCode::kInvalidArgument);
  cluster = ClusterConfig();
  cluster.num_servers = -1;
  EXPECT_FALSE(ValidateClusterConfig(cluster).ok());
}

TEST(ClusterValidationTest, RejectsUnusableNetworkModel) {
  ClusterConfig cluster;
  cluster.network.bandwidth_gbps = 0.0;
  EXPECT_EQ(ValidateClusterConfig(cluster).code(),
            common::StatusCode::kInvalidArgument);
  cluster = ClusterConfig();
  cluster.network.latency_seconds = -1.0;
  EXPECT_FALSE(ValidateClusterConfig(cluster).ok());
  cluster = ClusterConfig();
  cluster.network.congestion_factor = 0.0;
  EXPECT_FALSE(ValidateClusterConfig(cluster).ok());
}

TEST(ClusterValidationTest, RejectsQuorumLargerThanCluster) {
  ClusterConfig cluster;
  cluster.num_workers = 2;
  cluster.faults.min_quorum = 3;
  EXPECT_FALSE(ValidateClusterConfig(cluster).ok());
}

TEST(ClusterValidationTest, TrainerSurfacesValidationFromRunEpoch) {
  Fixture f;
  ClusterConfig cluster;
  cluster.network.bandwidth_gbps = -1.0;
  DistributedTrainer trainer(f.train.get(), nullptr, f.loss.get(),
                             f.Codec("adam-double"), cluster,
                             TrainerConfig());
  auto result = trainer.RunEpoch();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  // Run() must refuse too, not just RunEpoch.
  EXPECT_FALSE(trainer.Run(2).ok());
}

}  // namespace
}  // namespace sketchml::dist
