#include "common/sparse.h"

#include <gtest/gtest.h>

#include "common/bit_util.h"

namespace sketchml::common {
namespace {

TEST(SparseGradientTest, SortByKey) {
  SparseGradient grad = {{5, 1.0}, {1, 2.0}, {3, 3.0}};
  SortByKey(&grad);
  EXPECT_EQ(grad[0].key, 1u);
  EXPECT_EQ(grad[1].key, 3u);
  EXPECT_EQ(grad[2].key, 5u);
  EXPECT_DOUBLE_EQ(grad[0].value, 2.0);
}

TEST(SparseGradientTest, IsSortedByKey) {
  EXPECT_TRUE(IsSortedByKey({}));
  EXPECT_TRUE(IsSortedByKey({{1, 0.0}}));
  EXPECT_TRUE(IsSortedByKey({{1, 0.0}, {2, 0.0}}));
  EXPECT_FALSE(IsSortedByKey({{2, 0.0}, {1, 0.0}}));
  EXPECT_FALSE(IsSortedByKey({{1, 0.0}, {1, 0.0}}));  // Duplicates illegal.
}

TEST(SparseGradientTest, KeysAndValuesExtraction) {
  SparseGradient grad = {{1, 0.5}, {9, -2.0}};
  EXPECT_EQ(Keys(grad), (std::vector<uint64_t>{1, 9}));
  EXPECT_EQ(Values(grad), (std::vector<double>{0.5, -2.0}));
}

TEST(SparseGradientTest, PairEquality) {
  EXPECT_EQ((GradientPair{1, 2.0}), (GradientPair{1, 2.0}));
  EXPECT_FALSE((GradientPair{1, 2.0}) == (GradientPair{1, 2.5}));
  EXPECT_FALSE((GradientPair{2, 2.0}) == (GradientPair{1, 2.0}));
}

TEST(BitUtilTest, BytesNeeded) {
  EXPECT_EQ(BytesNeeded(0), 1);
  EXPECT_EQ(BytesNeeded(255), 1);
  EXPECT_EQ(BytesNeeded(256), 2);
  EXPECT_EQ(BytesNeeded(65535), 2);
  EXPECT_EQ(BytesNeeded(65536), 3);
  EXPECT_EQ(BytesNeeded(16777215), 3);
  EXPECT_EQ(BytesNeeded(16777216), 4);
  EXPECT_EQ(BytesNeeded(0xFFFFFFFFull), 4);
  EXPECT_EQ(BytesNeeded(0x100000000ull), 5);
  EXPECT_EQ(BytesNeeded(~0ull), 8);
}

TEST(BitUtilTest, BitsForRange) {
  EXPECT_EQ(BitsForRange(1), 1);
  EXPECT_EQ(BitsForRange(2), 1);
  EXPECT_EQ(BitsForRange(3), 2);
  EXPECT_EQ(BitsForRange(4), 2);
  EXPECT_EQ(BitsForRange(256), 8);
  EXPECT_EQ(BitsForRange(257), 9);
}

TEST(BitUtilTest, RoundUpAndCeilDiv) {
  EXPECT_EQ(RoundUp(0, 8), 0u);
  EXPECT_EQ(RoundUp(1, 8), 8u);
  EXPECT_EQ(RoundUp(8, 8), 8u);
  EXPECT_EQ(RoundUp(9, 8), 16u);
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
}

}  // namespace
}  // namespace sketchml::common
