#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace sketchml::common {
namespace {

TEST(ThreadPoolTest, ReturnsTaskResults) {
  ThreadPool pool(4);
  auto a = pool.Submit([] { return 6 * 7; });
  auto b = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(a.Get(), 42);
  EXPECT_EQ(b.Get(), "ok");
}

TEST(ThreadPoolTest, VoidTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto task = pool.Submit([&counter] { ++counter; });
  task.Get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto task =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(task.Get(), std::runtime_error);

  // The pool survives a throwing task and keeps serving.
  auto after = pool.Submit([] { return 7; });
  EXPECT_EQ(after.Get(), 7);
}

TEST(ThreadPoolTest, SingleThreadRunsTasksInSubmissionOrder) {
  // With one worker, task *starts* are FIFO; record the order bodies run.
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mu;
  std::vector<TaskFuture<void>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back(pool.Submit([i, &order, &mu] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  // Get in reverse so inline help-running (claiming from the back of the
  // logical dependency order) would be detectable as a reordering only if
  // the worker had not yet started the task; either way every task runs
  // exactly once.
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) it->Get();
  ASSERT_EQ(order.size(), 16u);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ThreadPoolTest, GetRunsUnstartedTaskInline) {
  // A pool whose only worker is blocked cannot start the second task; Get
  // must claim and run it on the calling thread instead of deadlocking.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocker = pool.Submit([gate] { gate.wait(); });
  const auto caller_id = std::this_thread::get_id();
  auto inline_task =
      pool.Submit([caller_id] { return std::this_thread::get_id() == caller_id; });
  EXPECT_TRUE(inline_task.Get());  // Ran inline on this thread.
  release.set_value();
  blocker.Get();
}

TEST(ThreadPoolTest, NestedSubmissionDoesNotDeadlock) {
  // Every task submits a subtask to the same (saturated) pool and waits
  // for it — the pattern SketchMlCodec::Encode uses from inside trainer
  // worker tasks. Help-first Get keeps this deadlock-free.
  ThreadPool pool(2);
  std::vector<TaskFuture<int>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back(pool.Submit([&pool, i] {
      auto sub = pool.Submit([i] { return i * 2; });
      return sub.Get() + 1;
    }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(tasks[static_cast<size_t>(i)].Get(), i * 2 + 1);
}

TEST(ThreadPoolTest, StressManyTasksRunExactlyOnce) {
  ThreadPool pool(8);
  constexpr int kTasks = 2000;
  std::atomic<int> executions{0};
  std::vector<TaskFuture<int>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(pool.Submit([i, &executions] {
      ++executions;
      return i;
    }));
  }
  long long sum = 0;
  for (auto& task : tasks) sum += task.Get();
  EXPECT_EQ(executions.load(), kTasks);
  EXPECT_EQ(sum, static_cast<long long>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace sketchml::common
