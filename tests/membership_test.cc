#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/codec_factory.h"
#include "dist/membership.h"
#include "dist/trainer.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::dist {
namespace {

struct Fixture {
  Fixture() {
    ml::SyntheticConfig config;
    config.num_instances = 2000;
    config.dim = 1 << 14;
    config.avg_nnz = 30;
    config.seed = 17;
    ml::Dataset all = ml::GenerateSynthetic(config);
    auto [tr, te] = all.Split(0.25);
    train = std::make_unique<ml::Dataset>(std::move(tr));
    test = std::make_unique<ml::Dataset>(std::move(te));
    loss = ml::MakeLoss("lr");
  }

  std::unique_ptr<compress::GradientCodec> Codec(const std::string& name) {
    return std::move(core::MakeCodec(name)).value();
  }

  common::Result<std::vector<EpochStats>> Run(const ClusterConfig& cluster,
                                              int epochs,
                                              const std::string& codec,
                                              int num_threads = 1) {
    TrainerConfig config;
    config.learning_rate = 0.05;
    config.adam_epsilon = 0.01;
    config.num_threads = num_threads;
    DistributedTrainer trainer(train.get(), test.get(), loss.get(),
                               Codec(codec), cluster, config);
    return trainer.Run(epochs);
  }

  std::unique_ptr<ml::Dataset> train, test;
  std::unique_ptr<ml::Loss> loss;
};

/// The deterministic subset of EpochStats, extended with the membership
/// accounting fields (everything except measured CPU seconds).
void ExpectDeterministicFieldsEqual(const EpochStats& a, const EpochStats& b) {
  EXPECT_EQ(a.bytes_up, b.bytes_up);
  EXPECT_EQ(a.bytes_down, b.bytes_down);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.num_batches, b.num_batches);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.departs, b.departs);
  EXPECT_EQ(a.handoff_bytes, b.handoff_bytes);
  EXPECT_EQ(a.sync_bytes, b.sync_bytes);
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.avg_gradient_nnz, b.avg_gradient_nnz);  // Bit-exact.
  EXPECT_EQ(a.train_loss, b.train_loss);
  EXPECT_EQ(a.test_loss, b.test_loss);
}

// ---------------------------------------------------------------------------
// MembershipPlan validation.

TEST(MembershipPlanTest, DefaultPlanIsInactiveAndValid) {
  MembershipPlan plan;
  EXPECT_FALSE(plan.Active());
  EXPECT_FALSE(plan.CheckpointsEnabled());
  EXPECT_FALSE(plan.CanShrink());
  EXPECT_TRUE(ValidateMembershipPlan(plan).ok());
}

TEST(MembershipPlanTest, AnyPositiveChurnProbabilityActivates) {
  MembershipPlan plan;
  plan.join_prob = 0.01;
  EXPECT_TRUE(plan.Active());
  EXPECT_FALSE(plan.CanShrink());  // Joins alone never shrink the fleet.
  plan = MembershipPlan();
  plan.leave_prob = 0.01;
  EXPECT_TRUE(plan.Active());
  EXPECT_TRUE(plan.CanShrink());
  plan = MembershipPlan();
  plan.depart_prob = 0.01;
  EXPECT_TRUE(plan.Active());
  EXPECT_TRUE(plan.CanShrink());
}

TEST(MembershipPlanTest, CheckpointsAreIndependentOfChurn) {
  MembershipPlan plan;
  plan.checkpoint_every = 2;
  EXPECT_TRUE(plan.CheckpointsEnabled());
  EXPECT_FALSE(plan.Active());
  EXPECT_TRUE(ValidateMembershipPlan(plan).ok());
}

TEST(MembershipPlanTest, RejectsOutOfRangeProbabilities) {
  MembershipPlan plan;
  plan.join_prob = 1.5;
  EXPECT_EQ(ValidateMembershipPlan(plan).code(),
            common::StatusCode::kInvalidArgument);
  plan = MembershipPlan();
  plan.leave_prob = -0.1;
  EXPECT_FALSE(ValidateMembershipPlan(plan).ok());
  plan = MembershipPlan();
  plan.depart_prob = 2.0;
  EXPECT_FALSE(ValidateMembershipPlan(plan).ok());
}

TEST(MembershipPlanTest, RejectsBadEnvelopesAndBudgets) {
  MembershipPlan plan;
  plan.max_workers = -1;
  EXPECT_FALSE(ValidateMembershipPlan(plan).ok());
  plan = MembershipPlan();
  plan.min_workers = 0;
  EXPECT_FALSE(ValidateMembershipPlan(plan).ok());
  plan = MembershipPlan();
  plan.max_workers = 2;
  plan.min_workers = 3;  // Empty fleet envelope.
  EXPECT_FALSE(ValidateMembershipPlan(plan).ok());
  plan = MembershipPlan();
  plan.checkpoint_every = -1;
  EXPECT_FALSE(ValidateMembershipPlan(plan).ok());
  plan = MembershipPlan();
  plan.max_rollbacks = -1;
  EXPECT_FALSE(ValidateMembershipPlan(plan).ok());
}

TEST(MembershipPlanTest, ResolvedMaxWorkersDefaultsToClusterSize) {
  MembershipPlan plan;
  EXPECT_EQ(ResolvedMaxWorkers(plan, 6), 6);
  plan.max_workers = 9;
  EXPECT_EQ(ResolvedMaxWorkers(plan, 6), 9);
}

// ---------------------------------------------------------------------------
// Cross-validation against the FaultPlan (satellite: the quorum/scale-down
// interaction must be rejected up front, with an actionable message).

TEST(ClusterMembershipValidationTest, RejectsQuorumUnreachableAfterScaleDown) {
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.faults.min_quorum = 3;
  cluster.membership.depart_prob = 0.1;
  cluster.membership.min_workers = 1;  // Churn may leave 1 < quorum of 3.
  const common::Status status = ValidateClusterConfig(cluster);
  ASSERT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(
                "can never be met after the maximum scheduled scale-down"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("min_quorum (3)"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("leaves only 1 active"), std::string::npos)
      << status.ToString();
}

TEST(ClusterMembershipValidationTest, AcceptsQuorumCoveredByTheFloor) {
  // min_workers >= min_quorum: even the deepest scale-down keeps quorum.
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.faults.min_quorum = 2;
  cluster.membership.leave_prob = 0.1;
  cluster.membership.min_workers = 2;
  EXPECT_TRUE(ValidateClusterConfig(cluster).ok());
  // A grow-only plan cannot shrink the fleet, so any quorum that the
  // starting fleet meets stays valid.
  cluster = ClusterConfig();
  cluster.num_workers = 4;
  cluster.faults.min_quorum = 4;
  cluster.membership.join_prob = 0.1;
  cluster.membership.max_workers = 8;
  EXPECT_TRUE(ValidateClusterConfig(cluster).ok());
}

TEST(ClusterMembershipValidationTest, RejectsBadFleetEnvelopes) {
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.membership.max_workers = 2;  // Ceiling below the starting fleet.
  const common::Status ceiling = ValidateClusterConfig(cluster);
  ASSERT_FALSE(ceiling.ok());
  EXPECT_NE(ceiling.message().find("max_workers is below num_workers"),
            std::string::npos);
  cluster = ClusterConfig();
  cluster.num_workers = 4;
  cluster.membership.min_workers = 5;  // Floor above the starting fleet.
  const common::Status floor = ValidateClusterConfig(cluster);
  ASSERT_FALSE(floor.ok());
  EXPECT_NE(floor.message().find("min_workers exceeds num_workers"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// MembershipOracle / MembershipDirectory units.

TEST(MembershipOracleTest, DecisionsAreDeterministic) {
  MembershipPlan plan;
  plan.seed = 42;
  plan.join_prob = 0.3;
  plan.leave_prob = 0.3;
  MembershipOracle a(plan), b(plan);
  int fired = 0;
  for (uint64_t batch = 0; batch < 50; ++batch) {
    for (int w = 0; w < 4; ++w) {
      EXPECT_EQ(a.ShouldJoin(batch, w), b.ShouldJoin(batch, w));
      EXPECT_EQ(a.ShouldLeave(batch, w), b.ShouldLeave(batch, w));
      EXPECT_EQ(a.ShouldDepart(batch, w), b.ShouldDepart(batch, w));
      if (a.ShouldJoin(batch, w)) ++fired;
    }
  }
  // ~30% of 200 draws; a degenerate oracle would fail both bounds.
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 140);
}

TEST(MembershipOracleTest, SeedChangesTheSchedule) {
  MembershipPlan plan;
  plan.leave_prob = 0.5;
  plan.seed = 1;
  MembershipOracle a(plan);
  plan.seed = 2;
  MembershipOracle b(plan);
  int differ = 0;
  for (uint64_t batch = 0; batch < 100; ++batch) {
    if (a.ShouldLeave(batch, 0) != b.ShouldLeave(batch, 0)) ++differ;
  }
  EXPECT_GT(differ, 0);
}

TEST(MembershipOracleTest, EventKindsDrawIndependently) {
  // Join/leave/depart hash distinct kinds, so one probability never
  // mirrors another's schedule even at the same (batch, worker).
  MembershipPlan plan;
  plan.join_prob = 0.5;
  plan.leave_prob = 0.5;
  MembershipOracle oracle(plan);
  int differ = 0;
  for (uint64_t batch = 0; batch < 100; ++batch) {
    if (oracle.ShouldJoin(batch, 0) != oracle.ShouldLeave(batch, 0)) ++differ;
  }
  EXPECT_GT(differ, 10);
}

TEST(MembershipDirectoryTest, InactivePlanPinsTheIdentityFleet) {
  MembershipDirectory dir(MembershipPlan{}, 4);
  std::vector<MembershipEvent> events;
  for (uint64_t batch = 0; batch < 50; ++batch) dir.ApplyBatch(batch, &events);
  EXPECT_TRUE(events.empty());
  ASSERT_EQ(dir.active().size(), 4u);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(dir.active()[w], w);
}

TEST(MembershipDirectoryTest, ReplaysIdenticalEventSequence) {
  MembershipPlan plan;
  plan.seed = 7;
  plan.join_prob = 0.05;
  plan.leave_prob = 0.05;
  plan.depart_prob = 0.02;
  plan.max_workers = 8;
  plan.min_workers = 2;
  MembershipDirectory a(plan, 4), b(plan, 4);
  std::vector<MembershipEvent> ea, eb;
  for (uint64_t batch = 0; batch < 200; ++batch) {
    a.ApplyBatch(batch, &ea);
    b.ApplyBatch(batch, &eb);
    ASSERT_EQ(a.active(), b.active());
  }
  ASSERT_EQ(ea.size(), eb.size());
  EXPECT_GT(ea.size(), 0u);  // The plan must actually have fired.
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_EQ(ea[i].worker, eb[i].worker);
    EXPECT_EQ(ea[i].batch, eb[i].batch);
  }
}

TEST(MembershipDirectoryTest, FloorAndCeilingAreNeverViolated) {
  MembershipPlan plan;
  plan.seed = 3;
  plan.join_prob = 0.2;
  plan.leave_prob = 0.4;  // Aggressive churn to stress the floor.
  plan.depart_prob = 0.1;
  plan.max_workers = 6;
  plan.min_workers = 2;
  MembershipDirectory dir(plan, 4);
  std::vector<MembershipEvent> events;
  for (uint64_t batch = 0; batch < 500; ++batch) {
    dir.ApplyBatch(batch, &events);
    EXPECT_GE(dir.active().size(), 2u);
    EXPECT_LE(dir.active().size(), 6u);
  }
}

TEST(MembershipDirectoryTest, DepartedWorkersNeverReturn) {
  MembershipPlan plan;
  plan.seed = 5;
  plan.join_prob = 0.3;  // High join pressure: a buggy directory would
                         // resurrect departed ids within 300 batches.
  plan.depart_prob = 0.05;
  plan.min_workers = 1;
  MembershipDirectory dir(plan, 4);
  std::vector<MembershipEvent> events;
  std::set<int> departed;
  for (uint64_t batch = 0; batch < 300; ++batch) {
    const size_t before = events.size();
    dir.ApplyBatch(batch, &events);
    for (size_t i = before; i < events.size(); ++i) {
      if (events[i].kind == MembershipEvent::kDepart) {
        departed.insert(events[i].worker);
      } else if (events[i].kind == MembershipEvent::kJoin) {
        EXPECT_EQ(departed.count(events[i].worker), 0u)
            << "departed worker " << events[i].worker << " rejoined at batch "
            << batch;
      }
    }
    for (int w : departed) {
      EXPECT_EQ(dir.state(w), WorkerState::kDeparted);
    }
  }
  EXPECT_GT(departed.size(), 0u);
}

// ---------------------------------------------------------------------------
// ShardRing / ActiveServerCount.

TEST(ShardRingTest, ShardOfIsInRangeAndCoversAllShards) {
  ShardRing ring;
  ring.Rebuild(4);
  std::set<int> seen;
  for (uint64_t key = 0; key < 4000; ++key) {
    const int s = ring.ShardOf(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u);  // No shard starves at 16 vnodes each.
}

TEST(ShardRingTest, ResizeMovesOnlyAFractionOfKeys) {
  // The consistent-hashing property that makes re-partitioning an
  // O(moved keys) handoff: shrinking 4 -> 3 shards must relocate roughly
  // the removed shard's share (~1/4), never reshuffle everything.
  ShardRing big, small;
  big.Rebuild(4);
  small.Rebuild(3);
  int moved = 0;
  const int kKeys = 10000;
  for (uint64_t key = 0; key < kKeys; ++key) {
    const int before = big.ShardOf(key);
    const int after = small.ShardOf(key);
    if (before != after) ++moved;
    // Keys that stayed on a surviving shard must not have moved between
    // surviving shards: only shard 3's keys relocate.
    if (before < 3) {
      EXPECT_EQ(after, before) << "key " << key;
    }
  }
  EXPECT_GT(moved, kKeys / 10);  // Shard 3 owned a real share...
  EXPECT_LT(moved, kKeys / 2);   // ...but nowhere near everything moved.
}

TEST(ShardRingTest, SingleShardOwnsEverything) {
  ShardRing ring;
  ring.Rebuild(1);
  for (uint64_t key = 0; key < 100; ++key) EXPECT_EQ(ring.ShardOf(key), 0);
}

TEST(ActiveServerCountTest, ScalesProportionallyAndClamps) {
  // Full fleet keeps every shard; half fleet halves them; the count
  // never leaves [1, num_servers].
  EXPECT_EQ(ActiveServerCount(4, 8, 8), 4);
  EXPECT_EQ(ActiveServerCount(4, 4, 8), 2);
  EXPECT_EQ(ActiveServerCount(4, 1, 8), 1);
  EXPECT_EQ(ActiveServerCount(4, 16, 8), 4);  // Clamped at num_servers.
  EXPECT_EQ(ActiveServerCount(1, 1, 8), 1);   // Single server: always 1.
  EXPECT_EQ(ActiveServerCount(0, 4, 8), 1);   // Degenerate input clamps.
}

// ---------------------------------------------------------------------------
// Trainer integration.

TEST(ElasticMembershipTest, InactivePlanVariantsAreBitIdentical) {
  // Churn-off bit-identity: tweaking inactive-plan knobs (seed, envelope,
  // rollback budget) must not perturb training at all.
  Fixture f;
  ClusterConfig plain;
  plain.num_workers = 4;
  ClusterConfig tweaked = plain;
  tweaked.membership.seed = 999;
  tweaked.membership.min_workers = 3;
  tweaked.membership.max_rollbacks = 7;
  auto a = f.Run(plain, 2, "sketchml");
  auto b = f.Run(tweaked, 2, "sketchml");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t e = 0; e < a->size(); ++e) {
    ExpectDeterministicFieldsEqual((*a)[e], (*b)[e]);
    EXPECT_EQ((*a)[e].joins, 0u);
    EXPECT_EQ((*a)[e].leaves, 0u);
    EXPECT_EQ((*a)[e].departs, 0u);
    EXPECT_EQ((*a)[e].reconfigurations, 0u);
  }
}

TEST(ElasticMembershipTest, SameSeedReplaysIdenticalChurnSchedule) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.membership.seed = 7;
  cluster.membership.join_prob = 0.05;
  cluster.membership.leave_prob = 0.05;
  cluster.membership.min_workers = 2;
  auto a = f.Run(cluster, 2, "sketchml");
  auto b = f.Run(cluster, 2, "sketchml");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  uint64_t churn = 0;
  for (size_t e = 0; e < a->size(); ++e) {
    ExpectDeterministicFieldsEqual((*a)[e], (*b)[e]);
    churn += (*a)[e].joins + (*a)[e].leaves;
  }
  EXPECT_GT(churn, 0u);  // The plan must actually have fired.
}

TEST(ElasticMembershipTest, ChurnScheduleIsThreadCountInvariant) {
  // Membership decisions are keyed on (seed, kind, batch, worker) and
  // applied in a serial driver pass, so a threaded run replays the
  // serial run event for event.
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.num_servers = 2;
  cluster.membership.seed = 11;
  cluster.membership.leave_prob = 0.04;
  cluster.membership.join_prob = 0.08;
  cluster.membership.depart_prob = 0.01;
  cluster.membership.min_workers = 2;
  auto serial = f.Run(cluster, 2, "sketchml", /*num_threads=*/1);
  auto threaded = f.Run(cluster, 2, "sketchml", /*num_threads=*/3);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(threaded.ok());
  ASSERT_EQ(serial->size(), threaded->size());
  uint64_t churn = 0;
  for (size_t e = 0; e < serial->size(); ++e) {
    ExpectDeterministicFieldsEqual((*serial)[e], (*threaded)[e]);
    churn += (*serial)[e].joins + (*serial)[e].leaves + (*serial)[e].departs;
  }
  EXPECT_GT(churn, 0u);
}

TEST(ElasticMembershipTest, ScaleDownRepartitionsServerShards) {
  // Permanent departures shrink the fleet; the proportional shard count
  // drops, and the re-partition shows up as reconfigurations with
  // shard-state handoff bytes charged to the epoch.
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 4;
  cluster.num_servers = 4;
  cluster.membership.seed = 1;
  cluster.membership.depart_prob = 0.03;
  cluster.membership.min_workers = 1;
  TrainerConfig config;
  config.learning_rate = 0.05;
  config.adam_epsilon = 0.01;
  DistributedTrainer trainer(f.train.get(), f.test.get(), f.loss.get(),
                             f.Codec("sketchml"), cluster, config);
  auto run = trainer.Run(4);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const EpochStats total = Aggregate(*run);
  ASSERT_GT(total.departs, 0u) << "seed 1 must shrink the fleet";
  EXPECT_LT(trainer.active_workers(), 4);
  EXPECT_GT(total.reconfigurations, 0u);
  EXPECT_GT(total.handoff_bytes, 0u);
}

TEST(ElasticMembershipTest, JoinersPayWeightSyncBytes) {
  Fixture f;
  ClusterConfig cluster;
  cluster.num_workers = 2;
  cluster.membership.seed = 7;
  cluster.membership.join_prob = 0.05;
  cluster.membership.leave_prob = 0.05;
  cluster.membership.max_workers = 4;
  cluster.membership.min_workers = 1;
  auto run = f.Run(cluster, 2, "sketchml");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const EpochStats total = Aggregate(*run);
  ASSERT_GT(total.joins, 0u);
  // Every join syncs the current dense weights (8 bytes per dimension).
  EXPECT_GE(total.sync_bytes, total.joins * 8u * (1u << 14));
}

}  // namespace
}  // namespace sketchml::dist
