// Golden-fixture tests for tools/sketchml_lint.
//
// Each rule has a pair of fixtures under tests/lint_fixtures/src/: a
// `bad_<rule>.cc` that must produce exactly the expected diagnostics and
// a `good_<rule>.cc` that must lint clean (including justified
// suppression escape hatches and near-miss identifiers). The tests
// shell out to the real binary so exit codes and the file:line output
// format are pinned, not just the rule logic.
//
// Paths are injected by CMake: SKETCHML_LINT_BINARY points at the built
// tool, SKETCHML_LINT_FIXTURE_DIR at tests/lint_fixtures/src.

#include <array>
#include <cstdio>
#include <string>

#include "gtest/gtest.h"

#ifndef SKETCHML_LINT_BINARY
#error "build must define SKETCHML_LINT_BINARY"
#endif
#ifndef SKETCHML_LINT_FIXTURE_DIR
#error "build must define SKETCHML_LINT_FIXTURE_DIR"
#endif

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout (diagnostics + summary line).
};

LintRun RunLint(const std::string& args) {
  const std::string cmd =
      std::string(SKETCHML_LINT_BINARY) + " " + args + " 2>/dev/null";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), n);
  }
  const int raw = pclose(pipe);
  run.exit_code = raw >= 0 ? WEXITSTATUS(raw) : -1;
  return run;
}

std::string Fixture(const std::string& name) {
  return std::string(SKETCHML_LINT_FIXTURE_DIR) + "/" + name;
}

// A bad fixture must exit 1 and report each expected (line, rule) pair.
struct ExpectedDiag {
  int line;
  const char* rule;
};

void ExpectViolations(const std::string& fixture,
                      std::initializer_list<ExpectedDiag> expected) {
  const LintRun run = RunLint(Fixture(fixture));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  for (const ExpectedDiag& diag : expected) {
    const std::string needle = fixture + ":" + std::to_string(diag.line) +
                               ": [" + diag.rule + "]";
    EXPECT_NE(run.output.find(needle), std::string::npos)
        << "missing diagnostic " << needle << "\nin output:\n"
        << run.output;
  }
  const std::string count_line =
      std::to_string(expected.size()) + " violation";
  EXPECT_NE(run.output.find(count_line), std::string::npos)
      << "expected exactly " << expected.size() << " violations; got:\n"
      << run.output;
}

void ExpectClean(const std::string& fixture) {
  const LintRun run = RunLint(Fixture(fixture));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("0 violations"), std::string::npos) << run.output;
}

TEST(LintTest, DiscardedStatus) {
  ExpectViolations("bad_discarded_status.cc",
                   {{11, "sketchml-discarded-status"},
                    {12, "sketchml-discarded-status"}});
  ExpectClean("good_discarded_status.cc");
}

TEST(LintTest, BannedRandom) {
  ExpectViolations("bad_banned_random.cc",
                   {{10, "sketchml-banned-random"},
                    {11, "sketchml-banned-random"},
                    {11, "sketchml-banned-random"}});
  ExpectClean("good_banned_random.cc");
}

TEST(LintTest, Wallclock) {
  ExpectViolations("bad_wallclock.cc", {{8, "sketchml-wallclock"},
                                        {9, "sketchml-wallclock"}});
  ExpectClean("good_wallclock.cc");
}

TEST(LintTest, Stdout) {
  ExpectViolations("bad_stdout.cc",
                   {{9, "sketchml-stdout"}, {10, "sketchml-stdout"}});
  ExpectClean("good_stdout.cc");
}

TEST(LintTest, IncludeHygiene) {
  ExpectViolations("bad_include_hygiene.cc",
                   {{5, "sketchml-include-hygiene"},
                    {6, "sketchml-include-hygiene"}});
  ExpectClean("good_include_hygiene.cc");
}

TEST(LintTest, NakedNew) {
  ExpectViolations("bad_naked_new.cc", {{11, "sketchml-naked-new"},
                                        {13, "sketchml-naked-new"}});
  ExpectClean("good_naked_new.cc");
}

TEST(LintTest, RawSimd) {
  ExpectViolations("bad_raw_simd.cc", {{3, "sketchml-raw-simd"},
                                       {8, "sketchml-raw-simd"},
                                       {10, "sketchml-raw-simd"}});
  ExpectClean("good_raw_simd.cc");
}

TEST(LintTest, TraceCategory) {
  ExpectViolations("bad_trace_category.cc",
                   {{11, "sketchml-trace-category"},
                    {12, "sketchml-trace-category"},
                    {14, "sketchml-trace-category"},
                    {17, "sketchml-trace-category"}});
  ExpectClean("good_trace_category.cc");
}

TEST(LintTest, NolintJustification) {
  ExpectViolations("bad_nolint_justification.cc",
                   {{10, "sketchml-nolint-justification"},
                    {11, "sketchml-nolint-justification"},
                    {13, "sketchml-nolint-justification"},
                    {15, "sketchml-nolint-justification"}});
  ExpectClean("good_nolint_justification.cc");
}

// --rule= restricts checking to one rule: the banned-random fixture has
// no wallclock violations, so filtering by sketchml-wallclock is clean.
TEST(LintTest, RuleFilter) {
  const LintRun filtered =
      RunLint("--rule=sketchml-wallclock " + Fixture("bad_banned_random.cc"));
  EXPECT_EQ(filtered.exit_code, 0) << filtered.output;
}

TEST(LintTest, ListRules) {
  const LintRun run = RunLint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"sketchml-discarded-status", "sketchml-banned-random",
        "sketchml-wallclock", "sketchml-stdout", "sketchml-include-hygiene",
        "sketchml-naked-new", "sketchml-raw-simd",
        "sketchml-trace-category", "sketchml-nolint-justification"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << run.output;
  }
}

TEST(LintTest, UsageErrors) {
  EXPECT_EQ(RunLint("").exit_code, 2);                       // No paths.
  EXPECT_EQ(RunLint("--rule=no-such-rule x.cc").exit_code, 2);
  EXPECT_EQ(RunLint("/no/such/path.cc").exit_code, 2);
}

// Directory scans skip lint_fixtures/ so the bad fixtures never fail the
// tree-wide gate; explicit file arguments always lint.
TEST(LintTest, FixtureDirectorySkippedInScan) {
  const LintRun scan = RunLint(std::string(SKETCHML_LINT_FIXTURE_DIR));
  EXPECT_EQ(scan.exit_code, 0) << scan.output;
  EXPECT_NE(scan.output.find("0 files"), std::string::npos) << scan.output;
}

}  // namespace
