#include "common/murmur_hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace sketchml::common {
namespace {

TEST(MurmurHash3Test, DeterministicAndSeedSensitive) {
  const std::string data = "sketchml";
  EXPECT_EQ(MurmurHash3_32(data.data(), data.size(), 1),
            MurmurHash3_32(data.data(), data.size(), 1));
  EXPECT_NE(MurmurHash3_32(data.data(), data.size(), 1),
            MurmurHash3_32(data.data(), data.size(), 2));
}

TEST(MurmurHash3Test, HandlesAllTailLengths) {
  // Lengths 0..7 exercise every switch arm of the tail handling.
  const std::string data = "abcdefgh";
  std::set<uint32_t> hashes;
  for (size_t len = 0; len <= data.size(); ++len) {
    hashes.insert(MurmurHash3_32(data.data(), len, 99));
  }
  EXPECT_EQ(hashes.size(), data.size() + 1);  // All distinct.
}

TEST(MurmurMix64Test, DistinctKeysRarelyCollide) {
  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < 10000; ++k) {
    seen.insert(MurmurMix64(k, 7));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashFunctionTest, BucketIsUniformish) {
  HashFunction h(123);
  const int buckets = 64;
  std::vector<int> counts(buckets, 0);
  const int n = 64000;
  for (int k = 0; k < n; ++k) {
    ++counts[h.Bucket(static_cast<uint64_t>(k), buckets)];
  }
  for (int c : counts) {
    EXPECT_GT(c, n / buckets / 2);
    EXPECT_LT(c, n / buckets * 2);
  }
}

TEST(HashFunctionTest, DifferentSeedsActIndependently) {
  HashFunction h1(1), h2(2);
  const uint64_t buckets = 1024;
  int collisions = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    if (h1.Bucket(k, buckets) == h2.Bucket(k, buckets)) ++collisions;
  }
  // Expected collisions ~ 1000 / 1024 ≈ 1.
  EXPECT_LT(collisions, 10);
}

TEST(HashFunctionTest, ConsecutiveKeysSpread) {
  // Gradient keys are often consecutive integers; the mixer must not map
  // them to consecutive buckets.
  HashFunction h(5);
  int adjacent = 0;
  const uint64_t buckets = 1 << 20;
  for (uint64_t k = 1; k < 1000; ++k) {
    const uint64_t a = h.Bucket(k - 1, buckets);
    const uint64_t b = h.Bucket(k, buckets);
    if (b == a + 1 || a == b + 1) ++adjacent;
  }
  EXPECT_LT(adjacent, 5);
}

}  // namespace
}  // namespace sketchml::common
