// Cross-module integration tests: the full public API surface working
// together — real gradients from the ML stack, through every codec's
// wire format, decoded by *fresh* codec instances (the messages must be
// fully self-describing, as they would be on a different machine), and
// the end-to-end trainer loop with checksummed transport.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/sketchml.h"
#include "dist/trainer.h"
#include "ml/gradient.h"
#include "ml/mlp.h"
#include "ml/synthetic.h"

namespace sketchml {
namespace {

TEST(IntegrationTest, RealGradientThroughEveryCodecWithFreshDecoder) {
  ml::SyntheticConfig config;
  config.num_instances = 2000;
  config.dim = 1 << 16;
  config.avg_nnz = 50;
  config.seed = 61;
  const ml::Dataset data = ml::GenerateSynthetic(config);
  auto loss = ml::MakeLoss("lr");
  ml::DenseVector w(data.dim(), 0.0);
  const auto grad = ml::ComputeBatchGradient(*loss, w, data, 0, 500, 0.01);
  ASSERT_GT(grad.size(), 1000u);

  for (const auto& name : core::KnownCodecNames()) {
    // Encode with one instance...
    auto encoder = std::move(core::MakeCodec(name)).value();
    compress::EncodedGradient msg;
    ASSERT_TRUE(encoder->Encode(grad, &msg).ok()) << name;
    // ...decode with a brand-new instance: the wire format must be
    // self-describing (seeds, shapes, splits all serialized).
    auto decoder = std::move(core::MakeCodec(name)).value();
    common::SparseGradient decoded;
    ASSERT_TRUE(decoder->Decode(msg, &decoded).ok()) << name;
    ASSERT_EQ(decoded.size(), grad.size()) << name;
    for (size_t i = 0; i < grad.size(); ++i) {
      ASSERT_EQ(decoded[i].key, grad[i].key) << name << " at " << i;
    }
  }
}

TEST(IntegrationTest, EncodeCallsProduceIndependentlyDecodableMessages) {
  // SketchML's per-message seeds must not leak state between messages:
  // decode them out of order with a fresh codec.
  core::SketchMlCodec encoder;
  ml::SyntheticConfig config;
  config.num_instances = 1000;
  config.dim = 1 << 14;
  config.seed = 67;
  const ml::Dataset data = ml::GenerateSynthetic(config);
  auto loss = ml::MakeLoss("svm");
  ml::DenseVector w(data.dim(), 0.01);

  std::vector<common::SparseGradient> grads;
  std::vector<compress::EncodedGradient> msgs(3);
  for (int i = 0; i < 3; ++i) {
    grads.push_back(ml::ComputeBatchGradient(*loss, w, data,
                                             i * 300, (i + 1) * 300, 0.01));
    ASSERT_TRUE(encoder.Encode(grads[i], &msgs[i]).ok());
  }
  core::SketchMlCodec decoder;
  for (int i = 2; i >= 0; --i) {
    common::SparseGradient decoded;
    ASSERT_TRUE(decoder.Decode(msgs[i], &decoded).ok());
    ASSERT_EQ(decoded.size(), grads[i].size());
  }
}

TEST(IntegrationTest, ChecksummedSketchMlEndToEndTraining) {
  ml::SyntheticConfig config;
  config.num_instances = 1500;
  config.dim = 1 << 13;
  config.seed = 71;
  ml::Dataset all = ml::GenerateSynthetic(config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  auto codec = std::make_unique<compress::ChecksummedCodec>(
      std::move(core::MakeCodec("sketchml")).value());
  dist::ClusterConfig cluster;
  cluster.num_workers = 3;
  dist::TrainerConfig trainer_config;
  trainer_config.learning_rate = 0.05;
  trainer_config.adam_epsilon = 0.01;
  dist::DistributedTrainer trainer(&train, &test, loss.get(),
                                   std::move(codec), cluster,
                                   trainer_config);
  auto stats = trainer.Run(4);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->back().train_loss, stats->front().train_loss * 1.05);
  EXPECT_LT(stats->back().train_loss, 0.8);
}

TEST(IntegrationTest, GkBackendTrainsEquivalently) {
  ml::SyntheticConfig data_config;
  data_config.num_instances = 1500;
  data_config.dim = 1 << 13;
  data_config.seed = 73;
  ml::Dataset all = ml::GenerateSynthetic(data_config);
  auto [train, test] = all.Split(0.25);
  auto loss = ml::MakeLoss("lr");

  double final_loss[2];
  int i = 0;
  for (auto backend :
       {core::QuantileBackend::kKll, core::QuantileBackend::kGk}) {
    core::SketchMlConfig codec_config;
    codec_config.quantile_backend = backend;
    dist::ClusterConfig cluster;
    cluster.num_workers = 3;
    dist::TrainerConfig trainer_config;
    trainer_config.learning_rate = 0.05;
    trainer_config.adam_epsilon = 0.01;
    dist::DistributedTrainer trainer(
        &train, &test, loss.get(),
        std::make_unique<core::SketchMlCodec>(codec_config), cluster,
        trainer_config);
    auto stats = trainer.Run(4);
    ASSERT_TRUE(stats.ok());
    final_loss[i++] = stats->back().train_loss;
  }
  EXPECT_NEAR(final_loss[0], final_loss[1], 0.05);
}

TEST(IntegrationTest, MlpGradientsThroughSketchMl) {
  // The Appendix B.3 path end to end at test scale.
  ml::Dataset data = ml::GenerateSyntheticMnist(400, 8, 4, 79);
  ml::Mlp mlp({64, 24, 4}, 83);
  core::SketchMlCodec codec;
  common::SparseGradient grad, decoded;
  compress::EncodedGradient msg;
  const double initial = mlp.ComputeMeanLoss(data);
  for (int step = 0; step < 40; ++step) {
    const size_t begin = (step * 50) % 350;
    mlp.ComputeBatchGradient(data, begin, begin + 50, &grad);
    ASSERT_TRUE(codec.Encode(grad, &msg).ok());
    ASSERT_TRUE(codec.Decode(msg, &decoded).ok());
    mlp.ApplySgd(decoded, 0.05);
  }
  EXPECT_LT(mlp.ComputeMeanLoss(data), initial * 0.8);
}

}  // namespace
}  // namespace sketchml
