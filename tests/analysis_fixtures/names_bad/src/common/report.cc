// Name-registry fixture: the consumer asks for "trainer/steps" but the
// registration site spells it "trainer/step" — the pass must flag the
// orphan and suggest the near-miss.

namespace demo {

void RegisterMetrics() {
  auto counter = MetricsRegistry::GetCounter("trainer/step");
  counter.Increment();
}

long ReadMetrics(const Snapshot& snapshot) {
  return CounterValueOf(snapshot, "trainer/steps");
}

}  // namespace demo
