// Replay-purity fixture: EncodeImpl (a built-in replay-critical entry)
// reaches a helper that reads the wall clock, so the pass must report
// the witness path EncodeImpl -> TimedHelper.
#include <chrono>

namespace demo {

long TimedHelper() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

int EncodeImpl(const double* grad, int n) {
  const long stamp = TimedHelper();
  return n + static_cast<int>(stamp % 2);
}

}  // namespace demo
