#ifndef DEMO_UTIL_H_
#define DEMO_UTIL_H_

namespace demo {

inline int Twice(int n) { return n * 2; }

}  // namespace demo

#endif  // DEMO_UTIL_H_
