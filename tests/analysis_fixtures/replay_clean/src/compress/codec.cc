// Clean replay-purity fixture: the default entry point only reaches a
// pure helper. WallClockDebugOnly is tainted but unreachable — it must
// not fire unless named explicitly via --replay-entry=.
#include <chrono>

namespace demo {

int PureHelper(int n) { return n * 2; }

int EncodeImpl(const double* grad, int n) { return PureHelper(n); }

long WallClockDebugOnly() {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count();
}

}  // namespace demo
