// Clean layering fixture: sketch including common is allowed, and the
// whole tree must come back clean under every pass.
#include "common/util.h"

namespace demo {

int UsesCommon() { return Twice(21); }

}  // namespace demo
