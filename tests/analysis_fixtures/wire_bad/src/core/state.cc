// Wire-symmetry fixture: ShardState::Serialize writes [u32,u64] but
// Deserialize reads only [u32] (field-sequence mismatch), and
// ClockState::SaveState has no RestoreState at all.

namespace demo {

void ShardState::Serialize(ByteWriter* writer) const {
  writer->WriteU32(version_);
  writer->WriteU64(count_);
}

bool ShardState::Deserialize(ByteReader* reader) {
  version_ = reader->ReadU32();
  return true;
}

void ClockState::SaveState(ByteWriter* writer) const {
  writer->WriteU64(ticks_);
}

}  // namespace demo
