// Clean name-registry fixture: registration, consumption, and docs all
// agree on "trainer/step".

namespace demo {

void RegisterMetrics() {
  auto counter = MetricsRegistry::GetCounter("trainer/step");
  counter.Increment();
}

long ReadMetrics(const Snapshot& snapshot) {
  return CounterValueOf(snapshot, "trainer/step");
}

}  // namespace demo
