// Same layering violation as layering_bad/, but this fixture tree ships
// a tools/analysis_baseline.txt entry covering it, so the default
// baseline discovery must suppress the finding.
#include "core/engine.h"

namespace demo {

int UsesCore() { return 1; }

}  // namespace demo
