// Layering fixture: the sketch layer may only include sketch + common,
// so the core/ include below must fire exactly one layering finding.
#include "core/engine.h"

#include "common/cycle_a.h"

namespace demo {

int UsesCore() { return 1; }

}  // namespace demo
