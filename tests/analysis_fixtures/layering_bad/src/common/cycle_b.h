#ifndef DEMO_CYCLE_B_H_
#define DEMO_CYCLE_B_H_

// Other half of the include cycle.
#include "common/cycle_a.h"

#endif  // DEMO_CYCLE_B_H_
