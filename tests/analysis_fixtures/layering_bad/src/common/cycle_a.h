#ifndef DEMO_CYCLE_A_H_
#define DEMO_CYCLE_A_H_

// Half of an include cycle the layering pass must report exactly once.
#include "common/cycle_b.h"

#endif  // DEMO_CYCLE_A_H_
