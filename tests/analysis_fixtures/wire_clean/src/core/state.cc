// Clean wire-symmetry fixture: both sides issue the same [u32,u64]
// field sequence.

namespace demo {

void ShardState::Serialize(ByteWriter* writer) const {
  writer->WriteU32(version_);
  writer->WriteU64(count_);
}

bool ShardState::Deserialize(ByteReader* reader) {
  version_ = reader->ReadU32();
  count_ = reader->ReadU64();
  return true;
}

}  // namespace demo
