#include "common/framing.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sketchml::common {
namespace {

std::vector<uint8_t> SamplePayload(size_t n) {
  std::vector<uint8_t> payload(n);
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  return payload;
}

TEST(FramingTest, RoundTripsPayload) {
  const std::vector<uint8_t> payload = SamplePayload(257);
  std::vector<uint8_t> framed, decoded;
  FrameMessage(payload, &framed);
  EXPECT_EQ(framed.size(), payload.size() + kFrameHeaderBytes);
  ASSERT_TRUE(UnframeMessage(framed, &decoded).ok());
  EXPECT_EQ(decoded, payload);
}

TEST(FramingTest, RoundTripsEmptyPayload) {
  std::vector<uint8_t> framed, decoded;
  FrameMessage({}, &framed);
  EXPECT_EQ(framed.size(), kFrameHeaderBytes);
  ASSERT_TRUE(UnframeMessage(framed, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(FramingTest, RejectsEveryTruncation) {
  const std::vector<uint8_t> payload = SamplePayload(64);
  std::vector<uint8_t> framed;
  FrameMessage(payload, &framed);
  for (size_t keep = 0; keep < framed.size(); ++keep) {
    std::vector<uint8_t> cut(framed.begin(), framed.begin() + keep);
    std::vector<uint8_t> decoded;
    const Status status = UnframeMessage(cut, &decoded);
    EXPECT_EQ(status.code(), StatusCode::kCorruptedData)
        << "prefix of " << keep << " bytes accepted";
  }
}

TEST(FramingTest, RejectsEverySingleBitFlip) {
  const std::vector<uint8_t> payload = SamplePayload(48);
  std::vector<uint8_t> framed;
  FrameMessage(payload, &framed);
  for (size_t byte = 0; byte < framed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> flipped = framed;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      std::vector<uint8_t> decoded;
      EXPECT_FALSE(UnframeMessage(flipped, &decoded).ok())
          << "bit " << bit << " of byte " << byte << " undetected";
    }
  }
}

TEST(FramingTest, RejectsTrailingGarbage) {
  std::vector<uint8_t> framed;
  FrameMessage(SamplePayload(16), &framed);
  framed.push_back(0xAB);
  std::vector<uint8_t> decoded;
  EXPECT_EQ(UnframeMessage(framed, &decoded).code(),
            StatusCode::kCorruptedData);
}

TEST(FramingTest, RejectsOversizedLengthHeader) {
  std::vector<uint8_t> framed;
  FrameMessage(SamplePayload(16), &framed);
  // Declare a payload far larger than the buffer holds; a sloppy decoder
  // would read past the end.
  framed[0] = 0xFF;
  framed[1] = 0xFF;
  framed[2] = 0xFF;
  framed[3] = 0x7F;
  std::vector<uint8_t> decoded;
  EXPECT_EQ(UnframeMessage(framed, &decoded).code(),
            StatusCode::kCorruptedData);
}

}  // namespace
}  // namespace sketchml::common
