#include "common/byte_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "common/bit_util.h"

namespace sketchml::common {
namespace {

TEST(ByteWriterTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI32(-42);
  w.WriteI64(-1234567890123LL);
  w.WriteFloat(1.5f);
  w.WriteDouble(-2.25);

  ByteReader r(w.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  float f;
  double d;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadFloat(&f).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_EQ(f, 1.5f);
  EXPECT_EQ(d, -2.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteWriterTest, UintNWritesExactWidth) {
  ByteWriter w;
  w.WriteUintN(0x7f, 1);
  EXPECT_EQ(w.size(), 1u);
  w.WriteUintN(0xbeef, 2);
  EXPECT_EQ(w.size(), 3u);
  w.WriteUintN(0xabcdef, 3);
  EXPECT_EQ(w.size(), 6u);

  ByteReader r(w.buffer());
  uint64_t v;
  ASSERT_TRUE(r.ReadUintN(1, &v).ok());
  EXPECT_EQ(v, 0x7fu);
  ASSERT_TRUE(r.ReadUintN(2, &v).ok());
  EXPECT_EQ(v, 0xbeefu);
  ASSERT_TRUE(r.ReadUintN(3, &v).ok());
  EXPECT_EQ(v, 0xabcdefu);
}

TEST(ByteReaderTest, ReadPastEndFails) {
  ByteWriter w;
  w.WriteU16(7);
  ByteReader r(w.buffer());
  uint32_t v32;
  EXPECT_FALSE(r.ReadU32(&v32).ok());
}

TEST(ByteReaderTest, ReadUintNRejectsBadWidth) {
  std::vector<uint8_t> buf(16, 0);
  ByteReader r(buf.data(), buf.size());
  uint64_t v;
  EXPECT_EQ(r.ReadUintN(0, &v).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ReadUintN(9, &v).code(), StatusCode::kInvalidArgument);
}

class VarintRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTripTest, RoundTrips) {
  ByteWriter w;
  w.WriteVarint(GetParam());
  ByteReader r(w.buffer());
  uint64_t v = 0;
  ASSERT_TRUE(r.ReadVarint(&v).ok());
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeValues, VarintRoundTripTest,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 123,
                      std::numeric_limits<uint64_t>::max()));

// VarintSize is the closed-form replacement for the old probe-a-writer
// idiom; it must match what WriteVarint actually emits, especially at
// every 7-bit group boundary where the byte count steps up.
TEST(VarintTest, VarintSizeMatchesWrittenBytesAtBoundaries) {
  std::vector<uint64_t> probes = {0, 1, 0x7e};
  for (int group = 1; group <= 9; ++group) {
    const uint64_t step_up = uint64_t{1} << (7 * group);  // Needs group+1.
    probes.push_back(step_up - 1);  // Last value of `group` bytes.
    probes.push_back(step_up);      // First value of `group` + 1 bytes.
  }
  probes.push_back(std::numeric_limits<uint64_t>::max());
  for (uint64_t v : probes) {
    ByteWriter w;
    w.WriteVarint(v);
    EXPECT_EQ(static_cast<size_t>(VarintSize(v)), w.size()) << "v=" << v;
  }
  // Spot-check the closed form itself.
  static_assert(VarintSize(0) == 1);
  static_assert(VarintSize(127) == 1);
  static_assert(VarintSize(128) == 2);
  static_assert(VarintSize((uint64_t{1} << 63) - 1) == 9);
  static_assert(VarintSize(uint64_t{1} << 63) == 10);
  static_assert(VarintSize(std::numeric_limits<uint64_t>::max()) == 10);
}

TEST(BytesNeededTest, BranchlessFormMatchesDefinition) {
  static_assert(BytesNeeded(0) == 1);
  static_assert(BytesNeeded(0xff) == 1);
  static_assert(BytesNeeded(0x100) == 2);
  static_assert(BytesNeeded(0xffff) == 2);
  static_assert(BytesNeeded(0x10000) == 3);
  static_assert(BytesNeeded(0xffffff) == 3);
  static_assert(BytesNeeded(0x1000000) == 4);
  static_assert(BytesNeeded(0xffffffffULL) == 4);
  static_assert(BytesNeeded(0x100000000ULL) == 5);
  static_assert(BytesNeeded(std::numeric_limits<uint64_t>::max()) == 8);
}

TEST(ByteWriterTest, ExtendTruncateAndMutableData) {
  ByteWriter w;
  w.WriteU8(0xaa);
  const size_t offset = w.Extend(4);
  EXPECT_EQ(offset, 1u);
  EXPECT_EQ(w.size(), 5u);
  // Extended region is zero-filled and writable in place.
  std::vector<uint8_t> expected = {0xaa, 0, 0, 0, 0};
  EXPECT_EQ(w.buffer(), expected);
  const uint32_t patch = 0xdeadbeef;
  std::memcpy(w.MutableData() + offset, &patch, sizeof(patch));
  w.Truncate(3);  // Drop the trailing slack.
  expected = {0xaa, 0xef, 0xbe};
  EXPECT_EQ(w.buffer(), expected);
}

TEST(ByteWriterTest, WriteSpanAndReserve) {
  ByteWriter w;
  w.Reserve(64);  // Capacity hint only: size stays 0.
  EXPECT_EQ(w.size(), 0u);
  const std::vector<uint8_t> payload = {1, 2, 3};
  w.WriteSpan(std::span<const uint8_t>(payload));
  w.WriteSpan(std::span<const uint8_t>());  // Empty span is a no-op.
  EXPECT_EQ(w.buffer(), payload);
}

TEST(VarintTest, TruncatedVarintFails) {
  std::vector<uint8_t> buf = {0x80, 0x80};  // Continuation with no end.
  ByteReader r(buf.data(), buf.size());
  uint64_t v;
  EXPECT_EQ(r.ReadVarint(&v).code(), StatusCode::kCorruptedData);
}

TEST(VarintTest, OverlongVarintFails) {
  std::vector<uint8_t> buf(11, 0x80);  // > 64 bits of continuation.
  ByteReader r(buf.data(), buf.size());
  uint64_t v;
  EXPECT_EQ(r.ReadVarint(&v).code(), StatusCode::kCorruptedData);
}

TEST(TwoBitStreamTest, RoundTripsAllSymbols) {
  TwoBitWriter w;
  std::vector<uint8_t> symbols = {0, 1, 2, 3, 3, 2, 1, 0, 2};
  for (uint8_t s : symbols) w.Append(s);
  EXPECT_EQ(w.size(), symbols.size());
  EXPECT_EQ(w.bytes().size(), 3u);  // ceil(9 / 4).

  TwoBitReader r(w.bytes().data(), w.bytes().size(), w.size());
  for (uint8_t expected : symbols) {
    uint8_t got = 0;
    ASSERT_TRUE(r.Next(&got).ok());
    EXPECT_EQ(got, expected);
  }
  uint8_t extra;
  EXPECT_FALSE(r.Next(&extra).ok());
}

TEST(TwoBitStreamTest, EmptyStream) {
  TwoBitWriter w;
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(w.bytes().empty());
  TwoBitReader r(nullptr, 0, 0);
  uint8_t v;
  EXPECT_FALSE(r.Next(&v).ok());
}

}  // namespace
}  // namespace sketchml::common
