#include "ml/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "ml/gradient.h"
#include "ml/loss.h"
#include "ml/synthetic.h"

namespace sketchml::ml {
namespace {

TEST(SgdOptimizerTest, SingleStep) {
  SgdOptimizer opt(4, 0.5);
  opt.Apply({{1, 2.0}, {3, -4.0}});
  EXPECT_DOUBLE_EQ(opt.weights()[0], 0.0);
  EXPECT_DOUBLE_EQ(opt.weights()[1], -1.0);
  EXPECT_DOUBLE_EQ(opt.weights()[2], 0.0);
  EXPECT_DOUBLE_EQ(opt.weights()[3], 2.0);
}

TEST(AdamOptimizerTest, FirstStepIsScaledLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(g).
  AdamOptimizer opt(2, 0.1);
  opt.Apply({{0, 0.5}, {1, -3.0}});
  EXPECT_NEAR(opt.weights()[0], -0.1, 1e-6);
  EXPECT_NEAR(opt.weights()[1], 0.1, 1e-6);
  EXPECT_EQ(opt.step(), 1u);
}

TEST(AdamOptimizerTest, AdaptsToGradientScale) {
  // A dimension with persistently tiny gradients still takes ~lr-sized
  // steps — the property §3.3 Solution 2 relies on to compensate
  // MinMaxSketch's decay.
  AdamOptimizer opt(2, 0.01);
  for (int i = 0; i < 100; ++i) {
    opt.Apply({{0, 1e-6}, {1, 1.0}});
  }
  // Both dimensions moved on the order of 100 * lr despite a 1e6 gradient
  // magnitude gap.
  EXPECT_LT(opt.weights()[0], -0.5 * 100 * 0.01 * 0.5);
  EXPECT_LT(opt.weights()[1], -0.5 * 100 * 0.01 * 0.5);
  EXPECT_GT(opt.weights()[0] / opt.weights()[1], 0.5);
}

TEST(AdamOptimizerTest, RejectsBadBetas) {
  EXPECT_DEATH(AdamOptimizer(2, 0.1, 1.0), "");
  EXPECT_DEATH(AdamOptimizer(2, 0.1, 0.9, 1.5), "");
}

TEST(AdamOptimizerTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 by feeding its gradient.
  AdamOptimizer opt(1, 0.1);
  for (int i = 0; i < 2000; ++i) {
    const double w = opt.weights()[0];
    opt.Apply({{0, 2 * (w - 3.0)}});
  }
  EXPECT_NEAR(opt.weights()[0], 3.0, 0.05);
}

TEST(GradientTest, BatchGradientMatchesManualComputation) {
  // One instance, squared loss: grad = 2(m - y) x + lambda w.
  std::vector<Instance> instances(1);
  instances[0].features = {{0, 2.0f}, {2, 1.0f}};
  instances[0].label = 1.0;
  Dataset data(std::move(instances), 3);
  SquaredLoss loss;
  DenseVector w = {0.5, 0.0, 1.0};
  // margin = 0.5*2 + 1*1 = 2; scale = 2*(2-1) = 2.
  auto grad = ComputeBatchGradient(loss, w, data, 0, 1, 0.1);
  ASSERT_EQ(grad.size(), 2u);
  EXPECT_EQ(grad[0].key, 0u);
  EXPECT_NEAR(grad[0].value, 2 * 2.0 + 0.1 * 0.5, 1e-12);
  EXPECT_EQ(grad[1].key, 2u);
  EXPECT_NEAR(grad[1].value, 2 * 1.0 + 0.1 * 1.0, 1e-12);
}

TEST(GradientTest, GradientIsSortedAndSparse) {
  SyntheticConfig config;
  config.num_instances = 500;
  config.dim = 1 << 16;
  Dataset data = GenerateSynthetic(config);
  LogisticLoss loss;
  DenseVector w(data.dim(), 0.0);
  auto grad = ComputeBatchGradient(loss, w, data, 0, 100, 0.01);
  EXPECT_TRUE(common::IsSortedByKey(grad));
  EXPECT_GT(grad.size(), 100u);
  EXPECT_LT(grad.size(), data.dim() / 10);
}

TEST(GradientTest, EmptyBatchYieldsEmptyGradient) {
  Dataset data({}, 10);
  LogisticLoss loss;
  DenseVector w(10, 0.0);
  auto grad = ComputeBatchGradient(loss, w, data, 0, 0, 0.01);
  EXPECT_TRUE(grad.empty());
}

TEST(GradientTest, FullBatchDescentReducesLoss) {
  SyntheticConfig config;
  config.num_instances = 1000;
  config.dim = 1 << 12;
  config.seed = 11;
  Dataset data = GenerateSynthetic(config);
  LogisticLoss loss;
  SgdOptimizer opt(data.dim(), 0.5);
  const double initial =
      ComputeMeanLoss(loss, opt.weights(), data, 0.01);
  for (int i = 0; i < 20; ++i) {
    opt.Apply(ComputeBatchGradient(loss, opt.weights(), data, 0, data.size(),
                                   0.01));
  }
  const double trained = ComputeMeanLoss(loss, opt.weights(), data, 0.01);
  EXPECT_LT(trained, initial * 0.9);
}

TEST(GradientTest, AccuracyImprovesWithTraining) {
  SyntheticConfig config;
  config.num_instances = 2000;
  config.dim = 1 << 12;
  config.label_noise = 0.02;
  config.seed = 13;
  Dataset data = GenerateSynthetic(config);
  LogisticLoss loss;
  AdamOptimizer opt(data.dim(), 0.05);
  const double before = ComputeAccuracy(opt.weights(), data);
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (size_t b = 0; b < data.size(); b += 200) {
      opt.Apply(ComputeBatchGradient(loss, opt.weights(), data, b,
                                     std::min(data.size(), b + 200), 0.001));
    }
  }
  const double after = ComputeAccuracy(opt.weights(), data);
  EXPECT_GT(after, before + 0.1);
  EXPECT_GT(after, 0.7);
}

}  // namespace
}  // namespace sketchml::ml
