#include "sketch/grouped_min_max_sketch.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/byte_buffer.h"
#include "common/random.h"

namespace sketchml::sketch {
namespace {

TEST(GroupedMinMaxSketchTest, GroupAssignmentIsEqualWidth) {
  GroupedMinMaxSketch sketch(256, 8, 2, 64);
  EXPECT_EQ(sketch.group_width(), 32);
  EXPECT_EQ(sketch.GroupOf(0), 0);
  EXPECT_EQ(sketch.GroupOf(31), 0);
  EXPECT_EQ(sketch.GroupOf(32), 1);
  EXPECT_EQ(sketch.GroupOf(255), 7);
}

TEST(GroupedMinMaxSketchTest, RoundTripWithoutCollisions) {
  GroupedMinMaxSketch sketch(256, 8, 2, 1 << 16);
  common::Rng rng(97);
  std::map<uint64_t, int> truth;
  for (uint64_t key = 0; key < 300; ++key) {
    const int bucket = static_cast<int>(rng.NextBounded(256));
    truth[key] = bucket;
    sketch.Insert(key, bucket);
  }
  for (const auto& [key, bucket] : truth) {
    EXPECT_EQ(sketch.Query(key, sketch.GroupOf(bucket)), bucket);
  }
}

TEST(GroupedMinMaxSketchTest, ErrorBoundedByGroupWidth) {
  // §3.3 Solution 2: grouping caps the decoded-index error at q/r.
  GroupedMinMaxSketch sketch(256, 8, 2, 100);  // Cramped per group.
  common::Rng rng(101);
  std::map<uint64_t, int> truth;
  for (uint64_t key = 0; key < 5000; ++key) {
    const int bucket = static_cast<int>(rng.NextBounded(256));
    truth[key] = bucket;
    sketch.Insert(key, bucket);
  }
  for (const auto& [key, bucket] : truth) {
    const int decoded = sketch.Query(key, sketch.GroupOf(bucket));
    EXPECT_LE(decoded, bucket);                          // Never amplified.
    EXPECT_LT(bucket - decoded, sketch.group_width());   // Error < q/r.
    EXPECT_EQ(sketch.GroupOf(decoded), sketch.GroupOf(bucket));
  }
}

class GroupCountTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupCountTest, MoreGroupsNeverWorsenMaxError) {
  const int groups = GetParam();
  GroupedMinMaxSketch sketch(256, groups, 2, 200);
  common::Rng rng(103);
  int max_err = 0;
  std::vector<std::pair<uint64_t, int>> items;
  for (uint64_t key = 0; key < 3000; ++key) {
    const int bucket = static_cast<int>(rng.NextBounded(256));
    items.emplace_back(key, bucket);
    sketch.Insert(key, bucket);
  }
  for (const auto& [key, bucket] : items) {
    max_err = std::max(max_err,
                       bucket - sketch.Query(key, sketch.GroupOf(bucket)));
  }
  EXPECT_LT(max_err, sketch.group_width());
}

INSTANTIATE_TEST_SUITE_P(Groups, GroupCountTest,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(GroupedMinMaxSketchTest, SerializationRoundTrips) {
  GroupedMinMaxSketch sketch(128, 4, 2, 64, /*seed=*/555);
  common::Rng rng(107);
  std::vector<std::pair<uint64_t, int>> items;
  for (uint64_t key = 0; key < 400; ++key) {
    const int bucket = static_cast<int>(rng.NextBounded(128));
    items.emplace_back(key, bucket);
    sketch.Insert(key, bucket);
  }
  common::ByteWriter writer;
  sketch.Serialize(&writer);
  common::ByteReader reader(writer.buffer());
  GroupedMinMaxSketch restored(1, 1, 1, 1);
  ASSERT_TRUE(GroupedMinMaxSketch::Deserialize(&reader, &restored).ok());
  EXPECT_EQ(restored.num_buckets(), 128);
  EXPECT_EQ(restored.num_groups(), 4);
  for (const auto& [key, bucket] : items) {
    EXPECT_EQ(restored.Query(key, restored.GroupOf(bucket)),
              sketch.Query(key, sketch.GroupOf(bucket)));
  }
}

TEST(GroupedMinMaxSketchTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> junk = {0x00};
  common::ByteReader reader(junk.data(), junk.size());
  GroupedMinMaxSketch out(1, 1, 1, 1);
  EXPECT_FALSE(GroupedMinMaxSketch::Deserialize(&reader, &out).ok());
}

TEST(GroupedMinMaxSketchTest, RejectsOutOfRangeInsert) {
  GroupedMinMaxSketch sketch(16, 4, 1, 16);
  EXPECT_DEATH(sketch.Insert(1, 16), "");
  EXPECT_DEATH(sketch.Insert(1, -1), "");
}

TEST(GroupedMinMaxSketchTest, SizeBytesSumsGroups) {
  GroupedMinMaxSketch sketch(256, 8, 2, 80);
  // 8 groups x 2 rows x ceil(80/8)=10 cols = 160 bins.
  EXPECT_EQ(sketch.SizeBytes(), 160u);
}

}  // namespace
}  // namespace sketchml::sketch
