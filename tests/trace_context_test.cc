// Causal tracing: span identity, the thread-local context stack,
// cross-thread hand-off via TraceContextScope, multi-arg EmitSpan
// parenting, category filtering, flow events in the Chrome export, and
// dropped-event accounting under concurrent multi-thread recording.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/obs.h"
#include "common/trace.h"

namespace sketchml::obs {
namespace {

/// Enables tracing for one test, clears the log and the category filter,
/// and restores the previous state.
class ScopedTracing {
 public:
  ScopedTracing() : was_enabled_(TracingEnabled()) {
    SetTracingEnabled(true);
    SetTraceCategories("");
    TraceLog::Global().Reset();
  }
  ~ScopedTracing() {
    TraceLog::Global().Reset();
    SetTraceCategories("");
    SetTracingEnabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

const TraceEvent* FindByName(const std::vector<TraceEvent>& events,
                             std::string_view name) {
  for (const TraceEvent& event : events) {
    if (event.name == name) return &event;
  }
  return nullptr;
}

TEST(TraceContextTest, NestedSpansFormOneRootedTree) {
  ScopedTracing scoped;
  {
    TraceSpan outer("test", "outer");
    {
      TraceSpan inner("test", "inner");
      { TraceSpan leaf("test", "leaf"); }
    }
    TraceSpan sibling("test", "sibling");
  }
  const auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 4u);
  const TraceEvent* outer = FindByName(events, "outer");
  const TraceEvent* inner = FindByName(events, "inner");
  const TraceEvent* leaf = FindByName(events, "leaf");
  const TraceEvent* sibling = FindByName(events, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(sibling, nullptr);
  // One trace, rooted at outer.
  EXPECT_NE(outer->trace_id, 0u);
  EXPECT_EQ(outer->parent_span_id, 0u);
  for (const TraceEvent* event : {inner, leaf, sibling}) {
    EXPECT_EQ(event->trace_id, outer->trace_id);
  }
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_EQ(leaf->parent_span_id, inner->span_id);
  EXPECT_EQ(sibling->parent_span_id, outer->span_id);
  // Span ids are unique.
  EXPECT_NE(inner->span_id, outer->span_id);
  EXPECT_NE(leaf->span_id, inner->span_id);
}

TEST(TraceContextTest, SiblingRootsStartSeparateTraces) {
  ScopedTracing scoped;
  { TraceSpan a("test", "a"); }
  { TraceSpan b("test", "b"); }
  const auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].trace_id, events[1].trace_id);
  EXPECT_EQ(events[0].parent_span_id, 0u);
  EXPECT_EQ(events[1].parent_span_id, 0u);
}

TEST(TraceContextTest, CurrentSpanContextTracksTheOpenSpan) {
  ScopedTracing scoped;
  EXPECT_FALSE(CurrentSpanContext().valid());
  {
    TraceSpan span("test", "open");
    const SpanContext ctx = CurrentSpanContext();
    EXPECT_TRUE(ctx.valid());
    EXPECT_EQ(ctx.span_id, span.context().span_id);
    EXPECT_EQ(ctx.trace_id, span.context().trace_id);
  }
  EXPECT_FALSE(CurrentSpanContext().valid());
}

TEST(TraceContextTest, ContextScopeHandsSpanAcrossThreads) {
  ScopedTracing scoped;
  SpanContext parent_ctx;
  {
    TraceSpan parent("test", "parent");
    parent_ctx = parent.context();
    std::thread worker([parent_ctx] {
      TraceContextScope scope(parent_ctx);
      TraceSpan child("test", "child");
    });
    worker.join();
  }
  const auto events = TraceLog::Global().CollectEvents();
  const TraceEvent* parent = FindByName(events, "parent");
  const TraceEvent* child = FindByName(events, "child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, parent->trace_id);
  EXPECT_EQ(child->parent_span_id, parent->span_id);
  EXPECT_NE(child->tid, parent->tid);  // Recorded on the worker thread.
}

TEST(TraceContextTest, InvalidContextScopeIsANoOp) {
  ScopedTracing scoped;
  {
    TraceContextScope scope(SpanContext{});
    TraceSpan span("test", "rooted");
  }
  const auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].parent_span_id, 0u);  // Still roots its own trace.
}

TEST(TraceContextTest, EmitSpanTakesTwoArgsAndParentsUnderCurrent) {
  ScopedTracing scoped;
  SpanContext emitted;
  SpanContext parent_ctx;
  {
    TraceSpan parent("test", "parent");
    parent_ctx = parent.context();
    emitted = EmitSpan("test", "modeled", 100, 200,
                       {{"attempt", 2.0}, {"bytes", 512.0}, {"extra", 9.0}});
  }
  ASSERT_TRUE(emitted.valid());
  EXPECT_EQ(emitted.trace_id, parent_ctx.trace_id);
  const auto events = TraceLog::Global().CollectEvents();
  const TraceEvent* modeled = FindByName(events, "modeled");
  ASSERT_NE(modeled, nullptr);
  EXPECT_EQ(modeled->parent_span_id, parent_ctx.span_id);
  // kMaxArgs stick; the third arg is dropped.
  ASSERT_EQ(modeled->num_args, TraceEvent::kMaxArgs);
  EXPECT_STREQ(modeled->args[0].key, "attempt");
  EXPECT_DOUBLE_EQ(modeled->args[0].value, 2.0);
  EXPECT_STREQ(modeled->args[1].key, "bytes");
  EXPECT_DOUBLE_EQ(modeled->args[1].value, 512.0);
}

TEST(TraceContextTest, EmitSpanWithParentChainsSyntheticSpans) {
  ScopedTracing scoped;
  const SpanContext first = EmitSpan("test", "first", 10, 5);
  const SpanContext second =
      EmitSpanWithParent("test", "second", 20, 5, first);
  ASSERT_TRUE(second.valid());
  EXPECT_EQ(second.trace_id, first.trace_id);
  const auto events = TraceLog::Global().CollectEvents();
  const TraceEvent* second_event = FindByName(events, "second");
  ASSERT_NE(second_event, nullptr);
  EXPECT_EQ(second_event->parent_span_id, first.span_id);
}

TEST(TraceContextTest, CategoryFilterDropsOtherCategories) {
  ScopedTracing scoped;
  SetTraceCategories("trainer, network");
  EXPECT_TRUE(TraceCategoryEnabled("trainer"));
  EXPECT_TRUE(TraceCategoryEnabled("network"));
  EXPECT_FALSE(TraceCategoryEnabled("codec"));
  { TraceSpan kept("trainer", "kept"); }
  { TraceSpan filtered("codec", "filtered"); }
  const SpanContext emitted = EmitSpan("codec", "filtered_too", 1, 2);
  EXPECT_FALSE(emitted.valid());
  const auto events = TraceLog::Global().CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), "kept");
  SetTraceCategories("");
  EXPECT_TRUE(TraceCategoryEnabled("codec"));
}

TEST(TraceContextTest, FilteredSpanDoesNotBreakTheParentChain) {
  ScopedTracing scoped;
  SetTraceCategories("trainer");
  TraceEvent child_event;
  {
    TraceSpan parent("trainer", "parent");
    const SpanContext parent_ctx = parent.context();
    {
      // Filtered: inactive, pushes no context.
      TraceSpan filtered("codec", "filtered");
      EXPECT_FALSE(filtered.context().valid());
      TraceSpan child("trainer", "child");
      EXPECT_EQ(child.context().trace_id, parent_ctx.trace_id);
    }
  }
  const auto events = TraceLog::Global().CollectEvents();
  const TraceEvent* parent = FindByName(events, "parent");
  const TraceEvent* child = FindByName(events, "child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  // The filtered middle span is transparent: child parents to parent.
  EXPECT_EQ(child->parent_span_id, parent->span_id);
  SetTraceCategories("");
}

TEST(TraceContextTest, ChromeTraceCarriesIdsAndCrossThreadFlows) {
  ScopedTracing scoped;
  {
    TraceSpan parent("test", "parent");
    const SpanContext ctx = parent.context();
    std::thread worker([ctx] {
      TraceContextScope scope(ctx);
      TraceSpan child("test", "child");
    });
    worker.join();
  }
  std::ostringstream out;
  TraceLog::Global().WriteChromeTrace(out);
  const std::string json = out.str();
  // Causal ids are exported as args.
  EXPECT_NE(json.find("\"trace_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":"), std::string::npos);
  // The cross-thread edge produces a flow start/finish pair.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\""), std::string::npos);
}

TEST(TraceContextTest, SameThreadChildEmitsNoFlowPair) {
  ScopedTracing scoped;
  {
    TraceSpan parent("test", "parent");
    TraceSpan child("test", "child");
  }
  std::ostringstream out;
  TraceLog::Global().WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"f\""), std::string::npos);
}

// Satellite: ring wraparound + DroppedEvents() under concurrent
// multi-thread recording (the single-thread paths are pinned in
// trace_span_test.cc).
TEST(TraceContextTest, ConcurrentWraparoundCountsDropsPerThread) {
  ScopedTracing scoped;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  constexpr size_t kCapacity = 16;
  TraceLog::Global().SetRingCapacity(kCapacity);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("test",
                       "t" + std::to_string(t) + "_" + std::to_string(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const auto events = TraceLog::Global().CollectEvents();
  EXPECT_EQ(events.size(), kThreads * kCapacity);
  EXPECT_EQ(TraceLog::Global().DroppedEvents(),
            static_cast<uint64_t>(kThreads) * (kSpansPerThread - kCapacity));

  const auto by_thread = TraceLog::Global().DroppedEventsByThread();
  ASSERT_EQ(by_thread.size(), static_cast<size_t>(kThreads));
  uint64_t sum = 0;
  uint32_t last_tid = 0;
  for (const ThreadDroppedEvents& entry : by_thread) {
    EXPECT_EQ(entry.dropped, kSpansPerThread - kCapacity);
    EXPECT_GT(entry.tid, last_tid);  // Sorted, unique tids.
    last_tid = entry.tid;
    sum += entry.dropped;
  }
  EXPECT_EQ(sum, TraceLog::Global().DroppedEvents());
  TraceLog::Global().SetRingCapacity(1 << 14);
}

TEST(TraceContextTest, PublishDroppedEventsExportsPerThreadGauges) {
  ScopedTracing scoped;
  const bool metrics_were_enabled = MetricsEnabled();
  SetMetricsEnabled(true);
  TraceLog::Global().SetRingCapacity(16);
  std::thread worker([] {
    for (int i = 0; i < 20; ++i) {
      TraceSpan span("test", "overflow" + std::to_string(i));
    }
  });
  worker.join();
  const auto by_thread = TraceLog::Global().DroppedEventsByThread();
  ASSERT_EQ(by_thread.size(), 1u);
  TraceLog::Global().PublishDroppedEvents();

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.GaugeValueOf("trace/dropped_events"), 4.0);
  const std::string labeled = LabeledName(
      "trace/dropped_events", {{"thread", std::to_string(by_thread[0].tid)}});
  EXPECT_DOUBLE_EQ(snapshot.GaugeValueOf(labeled), 4.0);

  TraceLog::Global().SetRingCapacity(1 << 14);
  SetMetricsEnabled(metrics_were_enabled);
}

}  // namespace
}  // namespace sketchml::obs
