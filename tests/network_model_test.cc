#include "dist/network_model.h"

#include <gtest/gtest.h>

namespace sketchml::dist {
namespace {

TEST(NetworkModelTest, TransferSecondsIsLinearInBytes) {
  const NetworkModel lab = NetworkModel::Lab1Gbps();
  // 1 Gbps = 125 MB/s; 125 MB should take 1 s of transfer plus latency.
  EXPECT_DOUBLE_EQ(lab.TransferSeconds(125'000'000),
                   lab.latency_seconds + 1.0);
  EXPECT_DOUBLE_EQ(lab.TransferSeconds(0), lab.latency_seconds);
}

TEST(NetworkModelTest, CongestionDividesEffectiveBandwidth) {
  NetworkModel clean{10.0, 0.0, 1.0};
  NetworkModel congested{10.0, 0.0, 20.0};
  EXPECT_DOUBLE_EQ(congested.TransferSeconds(1 << 20),
                   20.0 * clean.TransferSeconds(1 << 20));
}

TEST(NetworkModelScaled, DividesBandwidthOnly) {
  const NetworkModel base = NetworkModel::Lab1Gbps();
  const NetworkModel scaled = NetworkModel::Scaled(base, 840.0);
  EXPECT_DOUBLE_EQ(scaled.bandwidth_gbps, base.bandwidth_gbps / 840.0);
  // Per-message latency is a link property, not a message-size property:
  // scaling it too would double-charge the fixed per-message cost.
  EXPECT_DOUBLE_EQ(scaled.latency_seconds, base.latency_seconds);
  EXPECT_DOUBLE_EQ(scaled.congestion_factor, base.congestion_factor);
}

TEST(NetworkModelScaled, ScaledMessageOverScaledLinkCostsTheSame) {
  // The invariant the scaling exists for: a message data_scale times
  // smaller moved over the scaled link takes exactly as long (up to a
  // few ulps of division rounding) as the original message over the
  // original link.
  for (const NetworkModel& base :
       {NetworkModel::Lab1Gbps(), NetworkModel::Congested10Gbps(),
        NetworkModel::Wan()}) {
    for (const double scale : {2.0, 100.0, 840.0}) {
      const NetworkModel scaled = NetworkModel::Scaled(base, scale);
      const size_t full_bytes = 35'000'000 * 24;  // Divisible by scales.
      const size_t scaled_bytes =
          static_cast<size_t>(static_cast<double>(full_bytes) / scale);
      const double expected = base.TransferSeconds(full_bytes);
      EXPECT_NEAR(scaled.TransferSeconds(scaled_bytes), expected,
                  1e-12 * expected)
          << "scale=" << scale;
    }
  }
}

TEST(NetworkModelScaled, RelativeOrderingsArePreserved) {
  // Because only bandwidth scales, the *ratio* between two codecs' times
  // for large messages is scale-invariant: who wins never changes.
  const NetworkModel base{1.0, 0.0, 1.0};  // No latency: pure bandwidth.
  const NetworkModel scaled = NetworkModel::Scaled(base, 840.0);
  const double base_ratio =
      base.TransferSeconds(8'400'000) / base.TransferSeconds(840'000);
  const double scaled_ratio =
      scaled.TransferSeconds(10'000) / scaled.TransferSeconds(1'000);
  EXPECT_DOUBLE_EQ(base_ratio, scaled_ratio);
}

}  // namespace
}  // namespace sketchml::dist
