#include "common/flags.h"

#include <gtest/gtest.h>

namespace sketchml::common {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  auto result =
      FlagParser::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(FlagParserTest, EqualsSyntax) {
  auto flags = Parse({"--name=value", "--count=42"});
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_EQ(flags.GetInt("count", 0).value(), 42);
}

TEST(FlagParserTest, SpaceSyntax) {
  auto flags = Parse({"--name", "value", "--count", "7"});
  EXPECT_EQ(flags.GetString("name", ""), "value");
  EXPECT_EQ(flags.GetInt("count", 0).value(), 7);
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  auto flags = Parse({"--verbose", "--dry-run"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("dry-run", false));
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_TRUE(flags.GetBool("missing", true));
}

TEST(FlagParserTest, BoolValueParsing) {
  auto flags = Parse({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  auto flags = Parse({});
  EXPECT_EQ(flags.GetString("x", "dflt"), "dflt");
  EXPECT_EQ(flags.GetInt("y", -5).value(), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("z", 2.5).value(), 2.5);
}

TEST(FlagParserTest, PositionalArguments) {
  auto flags = Parse({"file1", "--opt=1", "file2"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file1");
  EXPECT_EQ(flags.positional()[1], "file2");
}

TEST(FlagParserTest, NumericParseErrors) {
  auto flags = Parse({"--n=abc", "--d=1.2.3"});
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
  EXPECT_FALSE(flags.GetDouble("d", 0).ok());
}

TEST(FlagParserTest, NegativeAndFloatValues) {
  auto flags = Parse({"--n=-17", "--d=-0.25"});
  EXPECT_EQ(flags.GetInt("n", 0).value(), -17);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 0).value(), -0.25);
}

TEST(FlagParserTest, UnusedFlagDetection) {
  auto flags = Parse({"--used=1", "--typo=2"});
  EXPECT_TRUE(flags.GetInt("used", 0).ok());
  const auto unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagParserTest, MalformedFlagFails) {
  const char* args[] = {"prog", "--=value"};
  EXPECT_FALSE(FlagParser::Parse(2, args).ok());
  const char* args2[] = {"prog", "--"};
  EXPECT_FALSE(FlagParser::Parse(2, args2).ok());
}

TEST(FlagParserTest, LastValueWins) {
  auto flags = Parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0).value(), 2);
}

}  // namespace
}  // namespace sketchml::common
