#include "ml/csr_matrix.h"

#include <gtest/gtest.h>

#include "ml/gradient.h"
#include "ml/synthetic.h"

namespace sketchml::ml {
namespace {

Dataset SmallDataset() {
  std::vector<Instance> instances(3);
  instances[0].features = {{0, 1.0f}, {3, 2.0f}};
  instances[0].label = 1.0;
  instances[1].features = {};  // Empty row.
  instances[1].label = -1.0;
  instances[2].features = {{1, 0.5f}, {2, -1.0f}, {4, 4.0f}};
  instances[2].label = 1.0;
  return Dataset(std::move(instances), 5);
}

TEST(CsrMatrixTest, LayoutMatchesDataset) {
  const Dataset data = SmallDataset();
  const CsrMatrix matrix = CsrMatrix::FromDataset(data);
  EXPECT_EQ(matrix.rows(), 3u);
  EXPECT_EQ(matrix.cols(), 5u);
  EXPECT_EQ(matrix.nnz(), 5u);
  EXPECT_DOUBLE_EQ(matrix.label(1), -1.0);

  const auto row0 = matrix.Row(0);
  ASSERT_EQ(row0.nnz, 2u);
  EXPECT_EQ(row0.indices[0], 0u);
  EXPECT_EQ(row0.indices[1], 3u);
  EXPECT_FLOAT_EQ(row0.values[1], 2.0f);

  const auto row1 = matrix.Row(1);
  EXPECT_EQ(row1.nnz, 0u);

  const auto row2 = matrix.Row(2);
  ASSERT_EQ(row2.nnz, 3u);
  EXPECT_EQ(row2.indices[2], 4u);
}

TEST(CsrMatrixTest, RowDotMatchesAosDot) {
  SyntheticConfig config;
  config.num_instances = 500;
  config.dim = 1 << 12;
  config.seed = 37;
  const Dataset data = GenerateSynthetic(config);
  const CsrMatrix matrix = CsrMatrix::FromDataset(data);

  common::Rng rng(41);
  DenseVector w(data.dim());
  for (auto& x : w) x = rng.NextGaussian();
  for (size_t i = 0; i < data.size(); i += 17) {
    EXPECT_DOUBLE_EQ(matrix.RowDot(i, w), Dot(w, data.instances()[i]));
  }
}

TEST(CsrMatrixTest, GradientMatchesAosGradient) {
  SyntheticConfig config;
  config.num_instances = 1000;
  config.dim = 1 << 13;
  config.seed = 43;
  const Dataset data = GenerateSynthetic(config);
  const CsrMatrix matrix = CsrMatrix::FromDataset(data);
  LogisticLoss loss;
  common::Rng rng(47);
  DenseVector w(data.dim());
  for (auto& x : w) x = rng.NextGaussian() * 0.1;

  const auto aos = ComputeBatchGradient(loss, w, data, 100, 400, 0.01);
  const auto csr = ComputeBatchGradientCsr(loss, w, matrix, 100, 400, 0.01);
  ASSERT_EQ(aos.size(), csr.size());
  for (size_t i = 0; i < aos.size(); ++i) {
    EXPECT_EQ(aos[i].key, csr[i].key);
    EXPECT_NEAR(aos[i].value, csr[i].value, 1e-12);
  }
}

TEST(CsrMatrixTest, MemoryIsLeanerThanAos) {
  SyntheticConfig config;
  config.num_instances = 2000;
  config.dim = 1 << 14;
  const Dataset data = GenerateSynthetic(config);
  const CsrMatrix matrix = CsrMatrix::FromDataset(data);
  // AoS cost: per-feature 8 bytes + per-instance vector header (24) +
  // label; CSR trims the per-instance overhead.
  size_t aos_bytes = 0;
  for (const auto& inst : data.instances()) {
    aos_bytes += inst.features.size() * sizeof(Feature) +
                 sizeof(std::vector<Feature>) + sizeof(double);
  }
  EXPECT_LT(matrix.MemoryBytes(), aos_bytes);
  EXPECT_EQ(matrix.nnz(),
            static_cast<size_t>(data.AvgNnz() * data.size() + 0.5));
}

TEST(CsrMatrixTest, EmptyDataset) {
  const Dataset data({}, 10);
  const CsrMatrix matrix = CsrMatrix::FromDataset(data);
  EXPECT_EQ(matrix.rows(), 0u);
  EXPECT_EQ(matrix.nnz(), 0u);
}

}  // namespace
}  // namespace sketchml::ml
