// Scalar-vs-SIMD differential property tests for the dispatch seam
// (src/common/simd.h).
//
// The contract under test is strict: every compiled kernel level must be
// *bit-identical* to the scalar reference — same bucket indexes, same
// clamp counts, same hashed bins, same wire bytes — not merely
// equivalent. Each property is exercised on every level DetectedLevel()
// allows, so on an AVX2 host this covers both paths in one binary (and
// the forced-scalar ctest entries re-run the rest of the suite with
// SKETCHML_SIMD=off for the dispatch-default path).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include "common/byte_buffer.h"
#include "common/murmur_hash.h"
#include "common/simd.h"
#include "compress/delta_binary_key_codec.h"
#include "compress/quantile_bucket_quantizer.h"
#include "core/sketchml_codec.h"
#include "gtest/gtest.h"
#include "sketch/min_max_sketch.h"

namespace sketchml {
namespace {

namespace simd = common::simd;

std::vector<simd::Level> CompiledLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::LevelSupported(simd::Level::kAvx2)) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

/// Pins the dispatch to one level for a scope, restoring the previous
/// level on exit so tests stay order-independent.
class LevelGuard {
 public:
  explicit LevelGuard(simd::Level level) : saved_(simd::ActiveLevel()) {
    simd::SetActiveLevel(level);
  }
  ~LevelGuard() { simd::SetActiveLevel(saved_); }

 private:
  simd::Level saved_;
};

/// Element-at-a-time oracle: the exact upper_bound + clamp definition
/// BucketOf has always used.
std::pair<std::vector<uint16_t>, size_t> BucketOracle(
    const std::vector<double>& splits, const std::vector<double>& values) {
  std::vector<uint16_t> out(values.size());
  size_t clamped_count = 0;
  const int top = static_cast<int>(splits.size()) - 2;
  for (size_t i = 0; i < values.size(); ++i) {
    const auto it =
        std::upper_bound(splits.begin(), splits.end(), values[i]);
    const int idx = static_cast<int>(it - splits.begin()) - 1;
    const int clamped = std::clamp(idx, 0, top);
    clamped_count += static_cast<size_t>(clamped != idx);
    out[i] = static_cast<uint16_t>(clamped);
  }
  return {out, clamped_count};
}

std::vector<double> RandomGradientValues(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> small(0.0, 0.05);
  std::normal_distribution<double> large(0.0, 2.0);
  std::vector<double> values(n);
  for (auto& v : values) v = rng() % 10 == 0 ? large(rng) : small(rng);
  return values;
}

TEST(SimdDifferentialTest, BucketSearchMatchesOracleOnEveryLevel) {
  // Split-array sizes straddling the AVX2 chunking (8), the wire maximum
  // (257 = 256 buckets), and the stack-buffer fallback bound (> 2048).
  for (size_t num_splits : {2u, 3u, 7u, 8u, 9u, 16u, 17u, 129u, 257u,
                            300u, 2048u, 2049u, 4096u}) {
    std::vector<double> splits(num_splits);
    for (size_t i = 0; i < num_splits; ++i) {
      splits[i] = -3.0 + 6.0 * static_cast<double>(i) /
                             static_cast<double>(num_splits - 1);
    }
    std::vector<double> values = RandomGradientValues(1003, num_splits);
    // Extremes, exact split hits, and non-finite values.
    values[0] = std::numeric_limits<double>::quiet_NaN();
    values[1] = std::numeric_limits<double>::infinity();
    values[2] = -std::numeric_limits<double>::infinity();
    values[3] = splits.front();
    values[4] = splits.back();
    values[5] = splits[num_splits / 2];
    values[6] = std::nextafter(splits.back(), 1e308);
    values[7] = std::nextafter(splits.front(), -1e308);

    const auto [expected, expected_clamped] = BucketOracle(splits, values);
    for (simd::Level level : CompiledLevels()) {
      LevelGuard guard(level);
      std::vector<uint16_t> out(values.size(), 0xbeef);
      const size_t clamped =
          simd::BucketSearch(splits.data(), splits.size(), values.data(),
                             values.size(), out.data());
      EXPECT_EQ(out, expected) << "level=" << simd::LevelName(level)
                               << " num_splits=" << num_splits;
      EXPECT_EQ(clamped, expected_clamped)
          << "level=" << simd::LevelName(level);
    }
  }
}

TEST(SimdDifferentialTest, BucketSearchDegenerateAndTinyBatches) {
  // All-equal splits (a constant stream collapses every quantile) and
  // duplicated interior splits; empty and 1-element batches.
  const std::vector<std::vector<double>> split_sets = {
      {0.0, 0.0},
      {1.5, 1.5, 1.5, 1.5, 1.5},
      {-1.0, 0.0, 0.0, 0.0, 2.0},
      {0.0, 1.0},
  };
  for (const auto& splits : split_sets) {
    const std::vector<std::vector<double>> batches = {
        {},
        {0.0},
        {1.5},
        {-7.0},
        {7.0},
        {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0},
        {1.5, 1.5, 1.5, 1.5},
    };
    for (const auto& values : batches) {
      const auto [expected, expected_clamped] = BucketOracle(splits, values);
      for (simd::Level level : CompiledLevels()) {
        LevelGuard guard(level);
        std::vector<uint16_t> out(values.size());
        const size_t clamped =
            simd::BucketSearch(splits.data(), splits.size(), values.data(),
                               values.size(), out.data());
        EXPECT_EQ(out, expected) << "level=" << simd::LevelName(level);
        EXPECT_EQ(clamped, expected_clamped);
      }
    }
  }
}

TEST(SimdDifferentialTest, HashBucketsMatchesHashFunction) {
  std::mt19937_64 rng(99);
  std::vector<uint64_t> keys(517);
  for (auto& k : keys) k = rng();
  keys[0] = 0;
  keys[1] = std::numeric_limits<uint64_t>::max();
  for (uint64_t num_buckets :
       {uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{64}, uint64_t{97},
        uint64_t{1} << 16, (uint64_t{1} << 16) + 1, uint64_t{1} << 32}) {
    for (uint64_t seed : {uint64_t{0}, uint64_t{13}, uint64_t{0x9E3779B9}}) {
      const common::HashFunction oracle(seed);
      for (simd::Level level : CompiledLevels()) {
        LevelGuard guard(level);
        std::vector<uint32_t> out(keys.size());
        simd::HashBuckets(keys.data(), keys.size(), seed, num_buckets,
                          out.data());
        for (size_t i = 0; i < keys.size(); ++i) {
          ASSERT_EQ(out[i], oracle.Bucket(keys[i], num_buckets))
              << "level=" << simd::LevelName(level) << " key=" << keys[i]
              << " buckets=" << num_buckets;
        }
      }
    }
  }
}

/// Reimplementation of the pre-batch staged delta encoder (TwoBitWriter +
/// (delta, nbytes) pairs + WriteUintN), kept as the wire-format oracle.
common::Status StagedOracleEncode(const std::vector<uint64_t>& keys,
                                  common::ByteWriter* writer) {
  writer->WriteVarint(keys.size());
  if (keys.empty()) return common::Status::Ok();
  common::TwoBitWriter flags;
  std::vector<std::pair<uint64_t, int>> deltas;
  uint64_t previous = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0 && keys[i] <= previous) {
      return common::Status::InvalidArgument(
          "keys must be strictly increasing");
    }
    const uint64_t delta = keys[i] - previous;
    if (delta > std::numeric_limits<uint32_t>::max()) {
      return common::Status::OutOfRange("key delta exceeds 4 bytes");
    }
    int nbytes = 1;
    for (uint64_t v = delta; v > 0xff; v >>= 8) ++nbytes;
    flags.Append(static_cast<uint8_t>(nbytes - 1));
    deltas.emplace_back(delta, nbytes);
    previous = keys[i];
  }
  writer->WriteBytes(flags.bytes());
  for (const auto& [delta, nbytes] : deltas) {
    writer->WriteUintN(delta, nbytes);
  }
  return common::Status::Ok();
}

std::vector<uint64_t> RandomAscendingKeys(size_t n, uint64_t seed,
                                          uint64_t max_step) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> keys(n);
  uint64_t k = rng() % 4;  // Sometimes start at 0.
  for (auto& key : keys) {
    k += 1 + rng() % max_step;
    key = k;
  }
  return keys;
}

TEST(SimdDifferentialTest, DeltaEncodeMatchesStagedOracle) {
  std::vector<std::vector<uint64_t>> cases = {
      {},
      {0},
      {1},
      {0xffffffffULL},
      // Every width boundary back to back.
      {0xff, 0xff + 0x100, 0xff + 0x100 + 0xffff,
       0xff + 0x100 + 0xffff + 0x10000,
       0xff + 0x100 + 0xffff + 0x10000 + 0xffffff,
       0xff + 0x100 + 0xffff + 0x10000 + 0xffffffULL + 0x1000000,
       0xff + 0x100 + 0xffff + 0x10000 + 0xffffffULL + 0x1000000 +
           0xffffffffULL},
  };
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const uint64_t max_step = seed % 4 == 0 ? 90'000'000 : 1'000;
    cases.push_back(RandomAscendingKeys(seed * 13 % 600, seed, max_step));
  }
  for (const auto& keys : cases) {
    common::ByteWriter expected;
    const common::Status oracle_status = StagedOracleEncode(keys, &expected);
    ASSERT_TRUE(oracle_status.ok());
    for (simd::Level level : CompiledLevels()) {
      LevelGuard guard(level);
      common::ByteWriter writer;
      ASSERT_TRUE(
          compress::DeltaBinaryKeyCodec::Encode(keys, &writer).ok());
      EXPECT_EQ(writer.buffer(), expected.buffer())
          << "level=" << simd::LevelName(level) << " n=" << keys.size();
    }
  }
}

TEST(SimdDifferentialTest, DeltaEncodeErrorsMatchOnEveryLevel) {
  // Unsorted / duplicate keys and >4-byte deltas must fail identically —
  // including when the offending element sits mid-vector-block or in the
  // scalar tail.
  std::vector<std::vector<uint64_t>> bad = {
      {5, 4},
      {1, 1},
      {1, 2, 3, 4, 5, 6, 7, 3},
      {0x1'00000000ULL},
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 12},
      {1, 1ULL << 40},
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 13ULL + (1ULL << 33)},
  };
  for (const auto& keys : bad) {
    common::ByteWriter oracle_writer;
    const auto expected = StagedOracleEncode(keys, &oracle_writer);
    ASSERT_FALSE(expected.ok());
    for (simd::Level level : CompiledLevels()) {
      LevelGuard guard(level);
      common::ByteWriter writer;
      const common::Status status =
          compress::DeltaBinaryKeyCodec::Encode(keys, &writer);
      EXPECT_EQ(status.code(), expected.code())
          << "level=" << simd::LevelName(level);
    }
  }
}

TEST(SimdDifferentialTest, QuantizerBucketsOfMatchesBucketOf) {
  const std::vector<double> build_values = RandomGradientValues(4096, 7);
  for (int num_buckets : {1, 2, 16, 256}) {
    const auto quantizer = compress::QuantileBucketQuantizer::Build(
        build_values, num_buckets);
    std::vector<double> probe = RandomGradientValues(777, 11);
    probe[0] = std::numeric_limits<double>::infinity();
    probe[1] = -std::numeric_limits<double>::infinity();
    probe.push_back(0.0);
    for (simd::Level level : CompiledLevels()) {
      LevelGuard guard(level);
      std::vector<uint16_t> batch(probe.size());
      quantizer.BucketsOf(probe, batch.data());
      for (size_t i = 0; i < probe.size(); ++i) {
        ASSERT_EQ(static_cast<int>(batch[i]), quantizer.BucketOf(probe[i]))
            << "level=" << simd::LevelName(level) << " i=" << i;
      }
    }
  }
}

TEST(SimdDifferentialTest, MinMaxBatchMatchesPerElement) {
  std::mt19937_64 rng(21);
  const size_t n = 700;
  std::vector<uint64_t> keys(n);
  std::vector<uint8_t> values(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng() % 5000;  // Force collisions and repeated keys.
    values[i] = static_cast<uint8_t>(rng() % 256);
  }
  for (simd::Level level : CompiledLevels()) {
    LevelGuard guard(level);
    sketch::MinMaxSketch batch_sketch(3, 97, 13);
    sketch::MinMaxSketch scalar_sketch(3, 97, 13);
    std::vector<uint32_t> scratch;
    batch_sketch.InsertBatch(keys, values, &scratch);
    for (size_t i = 0; i < n; ++i) scalar_sketch.Insert(keys[i], values[i]);
    common::ByteWriter batch_bytes, scalar_bytes;
    batch_sketch.Serialize(&batch_bytes);
    scalar_sketch.Serialize(&scalar_bytes);
    EXPECT_EQ(batch_bytes.buffer(), scalar_bytes.buffer())
        << "level=" << simd::LevelName(level);
    EXPECT_EQ(batch_sketch.NumInsertions(), scalar_sketch.NumInsertions());

    std::vector<uint64_t> probe(keys);
    probe.push_back(999'999);  // Never inserted: must stay kEmpty.
    std::vector<uint8_t> answers(probe.size());
    batch_sketch.QueryBatch(probe, answers.data(), &scratch);
    for (size_t i = 0; i < probe.size(); ++i) {
      ASSERT_EQ(answers[i], scalar_sketch.Query(probe[i]))
          << "level=" << simd::LevelName(level) << " i=" << i;
    }
    // Empty batches are no-ops.
    batch_sketch.InsertBatch({}, {}, &scratch);
    batch_sketch.QueryBatch({}, answers.data(), &scratch);
    EXPECT_EQ(batch_sketch.NumInsertions(), n);
  }
}

common::SparseGradient MakeGradient(size_t n, uint64_t dim, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> small(0.0, 0.05);
  std::normal_distribution<double> large(0.0, 2.0);
  common::SparseGradient grad(n);
  uint64_t key = 0;
  const uint64_t max_step = std::max<uint64_t>(1, dim / (n + 1));
  for (auto& pair : grad) {
    key += 1 + rng() % max_step;
    pair.key = key;
    pair.value = rng() % 10 == 0 ? large(rng) : small(rng);
  }
  return grad;
}

TEST(SimdDifferentialTest, SketchMlEncodeBytesIdenticalAcrossLevels) {
  const auto levels = CompiledLevels();
  for (uint64_t seed : {uint64_t{7}, uint64_t{21}}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{2000}}) {
      const common::SparseGradient grad = MakeGradient(n, 1 << 22, seed);
      std::vector<std::vector<uint8_t>> encodings;
      for (simd::Level level : levels) {
        LevelGuard guard(level);
        core::SketchMlConfig config;
        config.seed = seed;
        core::SketchMlCodec codec(config);
        compress::EncodedGradient encoded;
        ASSERT_TRUE(codec.Encode(grad, &encoded).ok());
        encodings.push_back(encoded.bytes);
        // The encode must decode on every level too (decode queries the
        // sketch through the same dispatched kernels).
        common::SparseGradient decoded;
        ASSERT_TRUE(codec.Decode(encoded, &decoded).ok());
        ASSERT_EQ(decoded.size(), grad.size());
      }
      for (size_t i = 1; i < encodings.size(); ++i) {
        EXPECT_EQ(encodings[i], encodings[0])
            << "level " << simd::LevelName(levels[i])
            << " bytes differ from scalar for n=" << n;
      }
    }
  }
}

TEST(SimdDifferentialTest, QuantileOnlyEncodeBytesIdenticalAcrossLevels) {
  const auto levels = CompiledLevels();
  const common::SparseGradient grad = MakeGradient(1500, 1 << 20, 5);
  std::vector<std::vector<uint8_t>> encodings;
  for (simd::Level level : levels) {
    LevelGuard guard(level);
    core::QuantileOnlyCodec codec;
    compress::EncodedGradient encoded;
    ASSERT_TRUE(codec.Encode(grad, &encoded).ok());
    encodings.push_back(encoded.bytes);
  }
  for (size_t i = 1; i < encodings.size(); ++i) {
    EXPECT_EQ(encodings[i], encodings[0])
        << "level " << simd::LevelName(levels[i]);
  }
}

TEST(SimdDifferentialTest, SetActiveLevelFromStringVocabulary) {
  LevelGuard guard(simd::Level::kScalar);  // Restore point.
  EXPECT_TRUE(simd::SetActiveLevelFromString("off").ok());
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_TRUE(simd::SetActiveLevelFromString("scalar").ok());
  EXPECT_TRUE(simd::SetActiveLevelFromString("auto").ok());
  EXPECT_EQ(simd::ActiveLevel(), simd::DetectedLevel());
  EXPECT_TRUE(simd::SetActiveLevelFromString("on").ok());
  EXPECT_EQ(simd::ActiveLevel(), simd::DetectedLevel());
  EXPECT_FALSE(simd::SetActiveLevelFromString("avx512-please").ok());
  if (simd::LevelSupported(simd::Level::kAvx2)) {
    EXPECT_TRUE(simd::SetActiveLevelFromString("avx2").ok());
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kAvx2);
  } else {
    EXPECT_FALSE(simd::SetActiveLevelFromString("avx2").ok());
  }
}

}  // namespace
}  // namespace sketchml
