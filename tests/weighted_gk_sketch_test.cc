#include "sketch/weighted_gk_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace sketchml::sketch {
namespace {

// Exact weighted quantile by sorting: value whose cumulative weight
// first reaches q * total.
double ExactWeightedQuantile(std::vector<std::pair<double, double>> items,
                             double q) {
  std::sort(items.begin(), items.end());
  double total = 0.0;
  for (const auto& [v, w] : items) total += w;
  const double target = q * total;
  double cumulative = 0.0;
  for (const auto& [v, w] : items) {
    cumulative += w;
    if (cumulative >= target) return v;
  }
  return items.back().first;
}

// Weighted rank fraction of `value`.
double WeightedRank(const std::vector<std::pair<double, double>>& items,
                    double value) {
  double below = 0.0, total = 0.0;
  for (const auto& [v, w] : items) {
    total += w;
    if (v <= value) below += w;
  }
  return below / total;
}

TEST(WeightedGkSketchTest, UnitWeightsActLikePlainQuantiles) {
  WeightedGkSketch sketch(0.01);
  for (int i = 1; i <= 10000; ++i) sketch.Update(i);
  EXPECT_DOUBLE_EQ(sketch.TotalWeight(), 10000.0);
  EXPECT_NEAR(sketch.Quantile(0.5), 5000.0, 300.0);
  EXPECT_NEAR(sketch.Quantile(0.9), 9000.0, 300.0);
  EXPECT_DOUBLE_EQ(sketch.Min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Max(), 10000.0);
}

TEST(WeightedGkSketchTest, HeavyItemDominatesQuantiles) {
  WeightedGkSketch sketch(0.01);
  // 1000 light items spread over [0, 1], one item at 5 carrying half the
  // total weight: every quantile above ~0.5 must answer 5.
  common::Rng rng(431);
  for (int i = 0; i < 1000; ++i) sketch.Update(rng.NextDouble(), 1.0);
  sketch.Update(5.0, 1000.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.75), 5.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.99), 5.0);
  EXPECT_LT(sketch.Quantile(0.25), 1.0);
}

class WeightedGkErrorTest : public ::testing::TestWithParam<double> {};

TEST_P(WeightedGkErrorTest, WeightedRankErrorBounded) {
  const double epsilon = GetParam();
  WeightedGkSketch sketch(epsilon);
  common::Rng rng(433);
  std::vector<std::pair<double, double>> items;
  for (int i = 0; i < 30000; ++i) {
    const double v = rng.NextGaussian();
    const double w = 0.1 + rng.NextDouble() * 4.0;  // Weights in [0.1, 4.1].
    items.emplace_back(v, w);
    sketch.Update(v, w);
  }
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double estimate = sketch.Quantile(q);
    EXPECT_NEAR(WeightedRank(items, estimate), q, 4.0 * epsilon + 1e-3)
        << "q=" << q << " eps=" << epsilon;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, WeightedGkErrorTest,
                         ::testing::Values(0.005, 0.01, 0.05));

TEST(WeightedGkSketchTest, MatchesExactOnSmallWeightedSet) {
  WeightedGkSketch sketch(0.001);
  std::vector<std::pair<double, double>> items = {
      {1.0, 1.0}, {2.0, 3.0}, {3.0, 1.0}, {4.0, 5.0}};
  for (const auto& [v, w] : items) sketch.Update(v, w);
  for (double q : {0.1, 0.4, 0.5, 0.95}) {
    EXPECT_DOUBLE_EQ(sketch.Quantile(q), ExactWeightedQuantile(items, q))
        << "q=" << q;
  }
}

TEST(WeightedGkSketchTest, SpaceStaysSublinear) {
  WeightedGkSketch sketch(0.01);
  common::Rng rng(439);
  for (int i = 0; i < 200000; ++i) {
    sketch.Update(rng.NextDouble(), 0.5 + rng.NextDouble());
  }
  EXPECT_LT(sketch.NumTuples(), 6000u);
  EXPECT_EQ(sketch.Count(), 200000u);
}

TEST(WeightedGkSketchTest, RejectsBadArguments) {
  EXPECT_DEATH(WeightedGkSketch(0.0), "");
  WeightedGkSketch sketch(0.01);
  EXPECT_DEATH(sketch.Update(1.0, 0.0), "");
  EXPECT_DEATH(sketch.Update(1.0, -1.0), "");
  EXPECT_DEATH(sketch.Quantile(0.5), "");  // Empty sketch.
}

}  // namespace
}  // namespace sketchml::sketch
